// Ablation (not a paper artifact): how much of the distributed platforms'
// strong-scaling behaviour is network-bound? DAS-5 nodes have both
// 1 Gbit/s Ethernet and FDR InfiniBand (Table 7); the paper's runs used
// the platforms' defaults. Re-running Figure 8's BFS column on both
// fabrics shows which effects are bandwidth artifacts (Giraph's 1->2
// cliff shrinks dramatically on InfiniBand) and which are structural
// (GraphX's join costs, memory crash points — unchanged).
#include "bench/bench_common.h"
#include "platforms/platform.h"

namespace ga::bench {
namespace {

int Main() {
  harness::BenchmarkConfig config = harness::BenchmarkConfig::FromEnv();
  PrintHeader("Ablation — network fabric",
              "BFS on D1000(XL), 1 Gbit/s Ethernet vs FDR InfiniBand",
              config);

  harness::DatasetRegistry registry(config);
  auto graph = registry.Load("D1000");
  auto params = registry.ParamsFor("D1000");
  if (!graph.ok() || !params.ok()) return 1;

  for (bool infiniband : {false, true}) {
    std::vector<std::string> headers = {"machines"};
    std::vector<std::string> ids;
    for (const std::string& id : platform::AllPlatformIds()) {
      auto platform = platform::CreatePlatform(id);
      if (platform.ok() && (*platform)->info().distributed) {
        ids.push_back(id);
      }
    }
    for (const std::string& id : ids) headers.push_back(id);
    harness::TextTable table(
        infiniband ? "FDR InfiniBand (56 Gbit/s)" : "1 Gbit/s Ethernet",
        headers);
    for (int machines : {1, 2, 4, 8, 16}) {
      std::vector<std::string> row = {std::to_string(machines)};
      for (const std::string& id : ids) {
        auto platform = platform::CreatePlatform(id);
        platform::ExecutionEnvironment env;
        env.num_machines = machines;
        env.memory_budget_bytes = config.ScaledMemoryBudget();
        env.overhead_scale =
            1.0 / static_cast<double>(config.scale_divisor);
        env.prefer_distributed_backend = true;
        env.network = infiniband
                          ? sysmodel::NetworkSpec::InfinibandFdr()
                          : sysmodel::NetworkSpec::GigabitEthernet();
        auto run = (*platform)->RunJob(**graph, Algorithm::kBfs, *params,
                                       env);
        row.push_back(run.ok()
                          ? harness::FormatSeconds(config.Project(
                                run->metrics.processing_sim_seconds))
                          : "F");
      }
      table.AddRow(std::move(row));
    }
    std::printf("%s\n", table.Render().c_str());
  }
  std::printf(
      "Reading: the message-heavy engines (bsplite, dataflow) owe most of\n"
      "their multi-machine cost to the 1 GbE fabric — on InfiniBand their\n"
      "2-machine cliff largely disappears — while memory crash points (F)\n"
      "and the CSR engines' times barely move: those are structural.\n");
  return 0;
}

}  // namespace
}  // namespace ga::bench

int main() { return ga::bench::Main(); }
