// Shared plumbing for the experiment binaries in bench/.
//
// Every binary regenerates one table or figure of the paper's evaluation
// (Section 4); see DESIGN.md §4 for the experiment index. Configuration
// comes from the environment: GA_SCALE_DIVISOR (default 1024) and GA_SEED.
#ifndef GRAPHALYTICS_BENCH_BENCH_COMMON_H_
#define GRAPHALYTICS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "harness/report.h"
#include "harness/runner.h"
#include "harness/scale.h"

namespace ga::bench {

inline void PrintHeader(const std::string& artifact,
                        const std::string& description,
                        const harness::BenchmarkConfig& config) {
  std::printf("================================================================\n");
  std::printf("LDBC Graphalytics reproduction — %s\n", artifact.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("scale divisor: 1/%lld of paper-scale datasets; "
              "times projected back to paper scale; SLA %.0fs\n",
              static_cast<long long>(config.scale_divisor),
              config.sla_projected_seconds);
  std::printf("================================================================\n\n");
}

/// Cell text for a job outcome: formatted time, or the paper's failure
/// markers — "F" (crash / SLA breach), "NA" (not implemented).
inline std::string OutcomeCell(const harness::JobReport& report,
                               double seconds) {
  switch (report.outcome) {
    case harness::JobOutcome::kCompleted:
      return harness::FormatSeconds(seconds);
    case harness::JobOutcome::kCrashed:
    case harness::JobOutcome::kTimedOut:
      return "F";
    case harness::JobOutcome::kUnsupported:
      return "NA";
    case harness::JobOutcome::kFailed:
      return "ERR";
  }
  return "?";
}

/// The display names the paper's figures use for the platforms, in the
/// same order as platform::AllPlatformIds().
inline std::vector<std::string> PaperPlatformNames() {
  return {"Giraph~bsplite",   "GraphX~dataflow",
          "P'Graph~gaslite",  "G'Mat~spmat",
          "OpenG~nativekernel", "PGX.D~pushpull"};
}

}  // namespace ga::bench

#endif  // GRAPHALYTICS_BENCH_BENCH_COMMON_H_
