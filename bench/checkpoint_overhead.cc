// Bounded-overhead gate for superstep checkpointing (PR 8,
// docs/ROBUSTNESS.md): running a checkpoint-capable kernel with the
// default cadence-8 checkpoint plan (state serialized, checksummed and
// atomically renamed every 8th superstep) must cost < 5% wall time
// versus the plain run, geomean over the kernels — and the checkpointed
// run's outputs and ledger must be byte-identical to the plain run's.
//
// Hand-rolled min-of-N timing (no google-benchmark dependency), with
// plain/checkpointed reps interleaved so scheduler noise and frequency
// drift hit both sides alike. Emits BENCH_PR8.json to the path in
// argv[1] (default: stdout).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/json_writer.h"
#include "platforms/platform.h"

namespace ga::bench {
namespace {

struct Kernel {
  const char* platform_id;
  Algorithm algorithm;
};

// Every engine/algorithm pair that participates in checkpointing: the
// sparse-matrix sweeps and the Pregel runtime, over the frontier (BFS),
// fixed-iteration (PR) and label-propagation (WCC) shapes.
constexpr Kernel kKernels[] = {
    {"spmat", Algorithm::kBfs},   {"spmat", Algorithm::kPageRank},
    {"spmat", Algorithm::kWcc},   {"bsplite", Algorithm::kBfs},
    {"bsplite", Algorithm::kPageRank}, {"bsplite", Algorithm::kWcc},
};

// The gate runs at the recommended production cadence (checkpoint every
// 8th superstep, docs/ROBUSTNESS.md). The cadence is the amortization
// knob the <5% bound is ABOUT: a checkpoint serializes O(n) state, so
// writing one every superstep of a short job can never be cheap —
// instead short jobs (BFS/WCC finish in < cadence supersteps here)
// write none and restart from scratch, while long iterative jobs (PR)
// spread a handful of writes over many supersteps. Cadence-1 chaos runs
// trade this overhead for superstep-exact restart; the kill/restart
// tests cover that mode's correctness, this bench gates the default's
// cost.
constexpr int kGateCadence = 8;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

platform::RunResult RunOnce(const Kernel& kernel, const Graph& graph,
                            const AlgorithmParams& params,
                            const harness::BenchmarkConfig& config,
                            const std::string& checkpoint_path) {
  auto platform = platform::CreatePlatform(kernel.platform_id);
  if (!platform.ok()) std::abort();
  platform::ExecutionEnvironment env;
  env.memory_budget_bytes = config.ScaledMemoryBudget();
  env.overhead_scale = 1.0 / static_cast<double>(config.scale_divisor);
  env.host_pool = nullptr;  // serial: measures hook cost, not scheduling
  if (!checkpoint_path.empty()) {
    env.checkpoint.path = checkpoint_path;
    env.checkpoint.cadence = kGateCadence;
    env.checkpoint.resume = false;
  }
  auto run = (*platform)->RunJob(graph, kernel.algorithm, params, env);
  if (!run.ok()) {
    std::fprintf(stderr, "%s/%s: %s\n", kernel.platform_id,
                 AlgorithmName(kernel.algorithm).data(),
                 run.status().ToString().c_str());
    std::abort();
  }
  return std::move(run).value();
}

double WallSecondsOnce(const Kernel& kernel, const Graph& graph,
                       const AlgorithmParams& params,
                       const harness::BenchmarkConfig& config,
                       const std::string& checkpoint_path) {
  const double begin = Now();
  platform::RunResult run =
      RunOnce(kernel, graph, params, config, checkpoint_path);
  const double elapsed = Now() - begin;
  (void)run;
  return elapsed;
}

struct PairedTiming {
  double plain_s = 0.0;
  double checkpointed_s = 0.0;
  int reps = 0;
};

PairedTiming MeasurePair(const Kernel& kernel, const Graph& graph,
                         const AlgorithmParams& params,
                         const harness::BenchmarkConfig& config,
                         const std::string& checkpoint_path) {
  const double estimate =
      WallSecondsOnce(kernel, graph, params, config, {});
  const double target_total_s = 0.04;  // per configuration
  const int reps = static_cast<int>(std::clamp(
      target_total_s / std::max(estimate, 1e-6), 7.0, 150.0));
  PairedTiming timing;
  timing.reps = reps;
  timing.plain_s = 1e300;
  timing.checkpointed_s = 1e300;
  for (int r = 0; r < reps; ++r) {
    timing.plain_s = std::min(
        timing.plain_s, WallSecondsOnce(kernel, graph, params, config, {}));
    timing.checkpointed_s = std::min(
        timing.checkpointed_s,
        WallSecondsOnce(kernel, graph, params, config, checkpoint_path));
  }
  return timing;
}

bool BitIdentical(const platform::RunResult& a,
                  const platform::RunResult& b) {
  if (a.output.int_values != b.output.int_values) return false;
  if (a.output.double_values.size() != b.output.double_values.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.output.double_values.size(); ++i) {
    if (std::memcmp(&a.output.double_values[i], &b.output.double_values[i],
                    sizeof(double)) != 0) {
      return false;
    }
  }
  return a.metrics.supersteps == b.metrics.supersteps &&
         a.metrics.ledger.compute_ops == b.metrics.ledger.compute_ops &&
         a.metrics.ledger.messages == b.metrics.ledger.messages &&
         a.metrics.processing_sim_seconds ==
             b.metrics.processing_sim_seconds &&
         a.metrics.makespan_sim_seconds == b.metrics.makespan_sim_seconds;
}

int Main(int argc, char** argv) {
  harness::BenchmarkConfig config = harness::BenchmarkConfig::FromEnv();
  PrintHeader("checkpoint_overhead (PR 8 gate)",
              "superstep checkpointing at the default cadence (8) on vs "
              "off: <5% geomean wall overhead, byte-identical outputs",
              config);

  // D300, as the trace-overhead gate uses: big enough that per-superstep
  // serialization amortizes the way it does on real workloads; tiny
  // graphs would measure the file-create constant, not the streaming
  // write.
  harness::DatasetRegistry registry(config);
  auto graph = registry.Load("D300");
  auto params = registry.ParamsFor("D300");
  if (!graph.ok() || !params.ok()) {
    std::fprintf(stderr, "dataset load failed\n");
    return 1;
  }
  const std::string checkpoint_path = "/tmp/ga_checkpoint_overhead.ckpt";

  JsonWriter json;
  json.BeginObject();
  json.Field("artifact", std::string_view("checkpoint_overhead"));
  json.Field("scale_divisor", config.scale_divisor);
  json.Field("dataset", std::string_view("D300"));
  json.Field("cadence", kGateCadence);
  json.Key("kernels").BeginArray();

  harness::TextTable table(
      "checkpoint overhead, interleaved min-of-N (serial host, cadence 8)",
      {"kernel", "plain", "checkpointed", "overhead", "writes", "reps",
       "outputs"});
  double log_sum = 0.0;
  int measured = 0;
  bool all_identical = true;
  for (const Kernel& kernel : kKernels) {
    // Byte-identity first (also warms caches for the timed runs).
    const platform::RunResult plain_run =
        RunOnce(kernel, **graph, *params, config, {});
    std::remove(checkpoint_path.c_str());
    const platform::RunResult checkpointed_run =
        RunOnce(kernel, **graph, *params, config, checkpoint_path);
    const bool identical = BitIdentical(plain_run, checkpointed_run);
    all_identical = all_identical && identical;
    const int writes = plain_run.metrics.supersteps / kGateCadence;

    const PairedTiming timing =
        MeasurePair(kernel, **graph, *params, config, checkpoint_path);
    const double ratio = timing.checkpointed_s / timing.plain_s;
    log_sum += std::log(ratio);
    ++measured;

    const std::string name = std::string(kernel.platform_id) + "/" +
                             std::string(AlgorithmName(kernel.algorithm));
    char overhead_text[32];
    std::snprintf(overhead_text, sizeof(overhead_text), "%+.2f%%",
                  (ratio - 1.0) * 100.0);
    table.AddRow({name, harness::FormatSeconds(timing.plain_s),
                  harness::FormatSeconds(timing.checkpointed_s),
                  overhead_text, std::to_string(writes),
                  std::to_string(timing.reps),
                  identical ? "identical" : "DIFFER"});

    json.BeginObject();
    json.Field("platform", std::string_view(kernel.platform_id));
    json.Field("algorithm", AlgorithmName(kernel.algorithm));
    json.Field("plain_s", timing.plain_s);
    json.Field("checkpointed_s", timing.checkpointed_s);
    json.Field("reps", timing.reps);
    json.Field("checkpoint_writes", writes);
    json.Field("overhead_ratio", ratio);
    json.Field("outputs_identical", identical);
    json.EndObject();
  }
  json.EndArray();
  std::remove(checkpoint_path.c_str());

  const double geomean =
      measured > 0 ? std::exp(log_sum / measured) : 1.0;
  const bool pass = geomean < 1.05 && all_identical;
  json.Field("geomean_overhead_ratio", geomean);
  json.Field("gate_max_ratio", 1.05);
  json.Field("outputs_identical", all_identical);
  json.Field("pass", pass);
  json.EndObject();

  std::printf("%s\n", table.Render().c_str());
  std::printf("geomean overhead: %+.2f%% (gate: <5%%) — %s\n",
              (geomean - 1.0) * 100.0, pass ? "PASS" : "FAIL");

  const std::string document = json.str();
  if (argc > 1) {
    std::FILE* file = std::fopen(argv[1], "wb");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
    std::fwrite(document.data(), 1, document.size(), file);
    std::fputc('\n', file);
    std::fclose(file);
    std::printf("json written to %s\n", argv[1]);
  } else {
    std::printf("%s\n", document.c_str());
  }
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace ga::bench

int main(int argc, char** argv) { return ga::bench::Main(argc, argv); }
