// Engine-throughput microbenchmarks (google-benchmark): the PageRank, BFS,
// WCC, SSSP, CDLP and LCC kernels of all six platform engines, driven
// directly through Platform::ExecuteKernel — no startup/upload simulation,
// no Granula tree, no memory accounting — so the numbers isolate the real
// data path this repo's perf work targets (arena messaging, pooled scratch,
// hybrid frontiers; DESIGN.md §8-§9).
//
// Output: the usual google-benchmark console table, plus a JSON trajectory
// point written to $GA_BENCH_OUT (default BENCH_PR4.json). Each kernel
// entry reports ns per full kernel run, supersteps per run, ns per
// superstep, and sweep throughput in adjacency entries per second (the
// per-superstep edge-traversal rate; meaningful for the full-sweep PR and
// CDLP kernels, a whole-traversal average for the frontier kernels).
//
// Flags: --filter=S1,S2,... keeps only kernels whose "platform/algo" name
// contains one of the substrings (cheaper than --benchmark_filter:
// unmatched kernels are never registered, so smoke runs stay fast — CI
// uses --filter=/bfs,/wcc,/sssp,/lcc). Reading the numbers:
// docs/BENCHMARK_GUIDE.md, "Reading the micro and engine benchmarks". CI
// runs the traversal kernels in smoke mode (--benchmark_min_time=0.05s)
// and uploads the JSON as an artifact.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/json_writer.h"
#include "datagen/graph500.h"
#include "platforms/platform.h"
#include "sysmodel/cluster.h"

namespace ga::bench {
namespace {

// One R-MAT graph shared by every kernel: skewed degrees (the shape that
// stresses per-vertex message buffers, frontier direction switches and
// CDLP histograms), directed so both adjacency directions are exercised,
// weighted so SSSP runs too.
const Graph& BenchGraph() {
  static const Graph graph = [] {
    datagen::Graph500Config config;
    config.scale = 12;
    config.num_edges = 60000;
    config.directedness = Directedness::kDirected;
    config.weighted = true;
    config.seed = 7;
    auto built = datagen::GenerateGraph500(config);
    if (!built.ok()) {
      std::fprintf(stderr, "bench graph generation failed: %s\n",
                   built.status().message().c_str());
      std::abort();
    }
    return std::move(built).value();
  }();
  return graph;
}

struct KernelCase {
  std::string platform;
  Algorithm algorithm;
  const char* algorithm_name;
};

AlgorithmParams BenchParams(const Graph& graph) {
  AlgorithmParams params;
  params.source_vertex = graph.ExternalId(0);
  params.pagerank_iterations = 10;
  params.cdlp_iterations = 5;
  return params;
}

void RunKernel(benchmark::State& state, const KernelCase& kernel) {
  const Graph& graph = BenchGraph();
  auto platform = platform::CreatePlatform(kernel.platform);
  if (!platform.ok()) {
    state.SkipWithError("unknown platform");
    return;
  }
  const AlgorithmParams params = BenchParams(graph);
  platform::ExecutionEnvironment env;
  env.host_pool = nullptr;  // single-threaded: the wins must be local
  const platform::CostProfile& profile = platform.value()->profile();
  sysmodel::ClusterModel cluster(platform::MakeClusterConfig(env, profile));

  std::int64_t supersteps = 0;
  for (auto _ : state) {
    platform::JobContext ctx(cluster, /*memory=*/nullptr, profile,
                             /*processing_op=*/nullptr, env);
    auto output =
        platform.value()->ExecuteKernel(ctx, graph, kernel.algorithm, params);
    if (!output.ok()) {
      state.SkipWithError(output.status().message().c_str());
      return;
    }
    benchmark::DoNotOptimize(output.value());
    supersteps = ctx.supersteps();
  }
  state.counters["supersteps"] = static_cast<double>(supersteps);
  // Adjacency entries touched per full-graph sweep; the per-superstep
  // traversal rate for PR/CDLP.
  state.SetItemsProcessed(state.iterations() * supersteps *
                          graph.num_adjacency_entries());
}

/// --filter grammar: comma-separated substrings; a kernel registers when
/// its "platform/algo" name contains any of them.
bool MatchesFilter(const std::string& name, const std::string& filter) {
  if (filter.empty()) return true;
  std::size_t begin = 0;
  while (begin <= filter.size()) {
    const std::size_t comma = filter.find(',', begin);
    const std::size_t end = comma == std::string::npos ? filter.size() : comma;
    if (end > begin &&
        name.find(filter.substr(begin, end - begin)) != std::string::npos) {
      return true;
    }
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return false;
}

std::vector<KernelCase> AllKernels(const std::string& filter) {
  static constexpr struct {
    Algorithm algorithm;
    const char* name;
  } kAlgorithms[] = {
      {Algorithm::kPageRank, "pr"}, {Algorithm::kBfs, "bfs"},
      {Algorithm::kWcc, "wcc"},     {Algorithm::kSssp, "sssp"},
      {Algorithm::kCdlp, "cdlp"},   {Algorithm::kLcc, "lcc"},
  };
  platform::ExecutionEnvironment env;
  env.host_pool = nullptr;
  std::vector<KernelCase> kernels;
  for (const std::string& id : platform::AllPlatformIds()) {
    auto platform = platform::CreatePlatform(id);
    if (!platform.ok()) continue;
    for (const auto& algorithm : kAlgorithms) {
      if (!platform.value()->SupportsAlgorithm(algorithm.algorithm, env)) {
        continue;  // e.g. pushpull has no LCC ("NA" in Figure 6)
      }
      const std::string name = id + "/" + algorithm.name;
      if (!MatchesFilter(name, filter)) continue;
      kernels.push_back({id, algorithm.algorithm, algorithm.name});
    }
  }
  return kernels;
}

/// Console output as usual, plus a collected copy of every finished run
/// for the JSON trajectory point.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  struct Sample {
    std::string name;
    double ns_per_run = 0.0;
    double supersteps = 0.0;
    double items_per_second = 0.0;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.iterations == 0) continue;
      Sample sample;
      sample.name = run.benchmark_name();
      sample.ns_per_run = run.real_accumulated_time /
                          static_cast<double>(run.iterations) * 1e9;
      auto supersteps = run.counters.find("supersteps");
      if (supersteps != run.counters.end()) {
        sample.supersteps = supersteps->second.value;
      }
      auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        sample.items_per_second = items->second.value;
      }
      samples_.push_back(std::move(sample));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Sample>& samples() const { return samples_; }

 private:
  std::vector<Sample> samples_;
};

int WriteJson(const std::string& path, const Graph& graph,
              const std::vector<CollectingReporter::Sample>& samples) {
  JsonWriter json;
  json.BeginObject();
  json.Field("bench", "engine_throughput");
  json.Field("trajectory_point", "PR4");
  json.Key("config").BeginObject();
  json.Field("graph",
             "graph500 scale=12 edges=60000 directed weighted seed=7");
  json.Field("vertices", static_cast<std::int64_t>(graph.num_vertices()));
  json.Field("adjacency_entries",
             static_cast<std::int64_t>(graph.num_adjacency_entries()));
  json.Field("pagerank_iterations", 10);
  json.Field("cdlp_iterations", 5);
  json.Field("host_threads", 1);
  json.EndObject();
  json.Key("kernels").BeginArray();
  for (const auto& sample : samples) {
    json.BeginObject();
    json.Field("name", sample.name);
    json.Field("ns_per_run", sample.ns_per_run);
    json.Field("supersteps_per_run", sample.supersteps);
    json.Field("ns_per_superstep",
               sample.supersteps > 0 ? sample.ns_per_run / sample.supersteps
                                     : sample.ns_per_run);
    json.Field("sweep_entries_per_sec", sample.items_per_second);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fputs(json.str().c_str(), out);
  std::fputc('\n', out);
  std::fclose(out);
  std::printf("\nwrote %s (%zu kernels)\n", path.c_str(), samples.size());
  return 0;
}

}  // namespace
}  // namespace ga::bench

int main(int argc, char** argv) {
  // Pull out --filter before google-benchmark parses the rest.
  std::string filter;
  int argc_out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--filter=", 9) == 0) {
      filter = argv[i] + 9;
    } else {
      argv[argc_out++] = argv[i];
    }
  }
  argc = argc_out;
  benchmark::Initialize(&argc, argv);
  for (const auto& kernel : ga::bench::AllKernels(filter)) {
    benchmark::RegisterBenchmark(
        (kernel.platform + "/" + kernel.algorithm_name).c_str(),
        [kernel](benchmark::State& state) {
          ga::bench::RunKernel(state, kernel);
        });
  }
  ga::bench::CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const char* out = std::getenv("GA_BENCH_OUT");
  return ga::bench::WriteJson(out != nullptr ? out : "BENCH_PR4.json",
                              ga::bench::BenchGraph(), reporter.samples());
}
