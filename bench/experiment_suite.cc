// experiment_suite: the canonical experiments.json producer.
//
// Runs an experiment plan (GA_SUITE_PLAN: preset name or plan file,
// default "smoke") through ga::experiments TWICE — once on 1 host thread
// and once on N — and verifies the exec determinism contract end to end:
// the rendered report and the experiments.json must be bit-identical
// (DESIGN.md §6-§7). Prints the report and the JSON artifact, and exits
// non-zero on any divergence.
//
// Environment: GA_SCALE_DIVISOR / GA_SEED as usual; GA_SUITE_PLAN selects
// the plan; GA_SUITE_THREADS overrides N (default: hardware concurrency,
// min 2 so the check is meaningful on single-core CI hosts).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_common.h"
#include "core/exec/thread_pool.h"
#include "experiments/plan.h"
#include "experiments/suite.h"

int main() {
  ga::harness::BenchmarkConfig config =
      ga::harness::BenchmarkConfig::FromEnv();
  std::string plan_name = "smoke";
  if (const char* env_plan = std::getenv("GA_SUITE_PLAN")) {
    plan_name = env_plan;
  }
  int parallel_threads =
      std::max(2, ga::exec::ThreadPool::HardwareConcurrency());
  if (const char* env_threads = std::getenv("GA_SUITE_THREADS")) {
    const int value = std::atoi(env_threads);
    if (value > 1) parallel_threads = value;
  }
  ga::bench::PrintHeader(
      "experiment_suite",
      "paper §4 experiment suite, plan \"" + plan_name +
          "\" — run at 1 and " + std::to_string(parallel_threads) +
          " host threads, artifacts bit-compared",
      config);

  auto plan = ga::experiments::ResolvePlan(plan_name);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }

  std::string reports[2];
  std::string jsons[2];
  const int thread_counts[2] = {1, parallel_threads};
  for (int pass = 0; pass < 2; ++pass) {
    ga::harness::BenchmarkConfig pass_config = config;
    pass_config.host_jobs = thread_counts[pass];
    ga::harness::BenchmarkRunner runner(pass_config);
    auto result = ga::experiments::RunSuite(runner, *plan);
    if (!result.ok()) {
      std::fprintf(stderr, "suite run (%d host threads): %s\n",
                   thread_counts[pass],
                   result.status().ToString().c_str());
      return 1;
    }
    reports[pass] = ga::experiments::RenderSuiteReport(*result);
    jsons[pass] = ga::experiments::SuiteToJson(*result);
  }

  std::printf("%s\n", reports[0].c_str());
  std::printf("%s\n", jsons[0].c_str());

  const bool report_identical = reports[0] == reports[1];
  const bool json_identical = jsons[0] == jsons[1];
  std::printf(
      "determinism: report %s, experiments.json %s across 1 vs %d host "
      "threads\n",
      report_identical ? "identical" : "DIVERGED",
      json_identical ? "identical" : "DIVERGED", parallel_threads);
  if (!report_identical || !json_identical) {
    std::fprintf(stderr,
                 "determinism violation: suite artifacts differ across "
                 "host thread counts\n");
    return 1;
  }
  return 0;
}
