// Figure 4 (paper §4.1, "Dataset variety"): processing time (T_proc) of
// BFS and PageRank for all six platforms on all datasets up to class L,
// on a single machine.
//
// Paper findings this should reproduce: GraphMat and PGX.D fastest;
// PowerGraph and OpenG ~an order of magnitude slower; Giraph and GraphX
// ~two orders of magnitude slower.
#include "bench/bench_common.h"
#include "platforms/platform.h"

namespace ga::bench {
namespace {

int Main() {
  harness::BenchmarkConfig config = harness::BenchmarkConfig::FromEnv();
  harness::BenchmarkRunner runner(config);
  PrintHeader("Figure 4 — Dataset variety",
              "T_proc for BFS and PR, all datasets up to class L, 1 machine",
              config);

  // Datasets of Figure 4, ordered by scale (paper y-axis, bottom-up).
  const std::vector<std::string> datasets = {"R1", "R2", "R3",
                                             "R4", "G23", "D300"};
  const auto platform_ids = platform::AllPlatformIds();

  for (Algorithm algorithm : {Algorithm::kBfs, Algorithm::kPageRank}) {
    std::vector<std::string> headers = {"dataset", "class"};
    for (const std::string& name : PaperPlatformNames()) {
      headers.push_back(name);
    }
    harness::TextTable table(
        std::string("T_proc, ") + std::string(AlgorithmName(algorithm)),
        headers);
    for (const std::string& dataset : datasets) {
      auto spec = runner.registry().Find(dataset);
      if (!spec.ok()) continue;
      std::vector<std::string> row = {
          dataset + "(" + spec->scale_label + ")",
          spec->scale_label};
      for (const std::string& platform_id : platform_ids) {
        harness::JobSpec job;
        job.platform_id = platform_id;
        job.dataset_id = dataset;
        job.algorithm = algorithm;
        auto report = runner.Run(job);
        if (!report.ok()) {
          row.push_back("ERR");
          continue;
        }
        row.push_back(OutcomeCell(*report, report->tproc_seconds));
      }
      table.AddRow(std::move(row));
    }
    std::printf("%s\n", table.Render().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace ga::bench

int main() { return ga::bench::Main(); }
