// Figure 5 (paper §4.1): EPS (edges per second) and EVPS (edges+vertices
// per second) for BFS on all datasets up to class L — normalised
// performance, exposing each platform's sensitivity to the dataset.
//
// Paper finding: ideally the normalised throughput would be constant per
// platform; in practice all platforms vary noticeably across datasets.
#include "bench/bench_common.h"
#include "platforms/platform.h"

namespace ga::bench {
namespace {

int Main() {
  harness::BenchmarkConfig config = harness::BenchmarkConfig::FromEnv();
  harness::BenchmarkRunner runner(config);
  PrintHeader("Figure 5 — Normalised throughput",
              "EPS and EVPS for BFS, all datasets up to class L, 1 machine",
              config);

  const std::vector<std::string> datasets = {"R1", "R2", "R3",
                                             "R4", "G23", "D300"};
  const auto platform_ids = platform::AllPlatformIds();

  for (bool use_evps : {false, true}) {
    std::vector<std::string> headers = {"dataset"};
    for (const std::string& name : PaperPlatformNames()) {
      headers.push_back(name);
    }
    harness::TextTable table(
        use_evps ? "Edges and vertices per second (BFS)"
                 : "Edges per second (BFS)",
        headers);
    for (const std::string& dataset : datasets) {
      auto spec = runner.registry().Find(dataset);
      if (!spec.ok()) continue;
      std::vector<std::string> row = {dataset + "(" + spec->scale_label +
                                      ")"};
      for (const std::string& platform_id : platform_ids) {
        harness::JobSpec job;
        job.platform_id = platform_id;
        job.dataset_id = dataset;
        job.algorithm = Algorithm::kBfs;
        auto report = runner.Run(job);
        if (!report.ok() || !report->completed()) {
          row.push_back("F");
          continue;
        }
        row.push_back(harness::FormatThroughput(use_evps ? report->evps
                                                          : report->eps));
      }
      table.AddRow(std::move(row));
    }
    std::printf("%s\n", table.Render().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace ga::bench

int main() { return ga::bench::Main(); }
