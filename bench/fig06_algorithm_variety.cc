// Figure 6 (paper §4.2, "Algorithm variety"): T_proc of all six core
// algorithms on the two weighted graphs R4(S) and D300(L).
//
// Paper findings: relative platform order is similar for BFS/WCC/PR/SSSP;
// LCC is much more demanding — only OpenG and PowerGraph complete it;
// CDLP times are much closer across platforms, OpenG best, GraphX unable
// to complete; PGX.D has no LCC implementation (NA).
#include "bench/bench_common.h"
#include "platforms/platform.h"

namespace ga::bench {
namespace {

int Main() {
  harness::BenchmarkConfig config = harness::BenchmarkConfig::FromEnv();
  harness::BenchmarkRunner runner(config);
  PrintHeader("Figure 6 — Algorithm variety",
              "T_proc for all six algorithms on R4(S) and D300(L), "
              "1 machine ('F' = failed, 'NA' = not implemented)",
              config);

  for (const std::string& dataset : {std::string("R4"),
                                     std::string("D300")}) {
    auto spec = runner.registry().Find(dataset);
    if (!spec.ok()) continue;
    std::vector<std::string> headers = {"algorithm"};
    for (const std::string& name : PaperPlatformNames()) {
      headers.push_back(name);
    }
    harness::TextTable table(dataset + "(" + spec->scale_label + ")",
                             headers);
    // Paper's row order: bfs, wcc, cdlp, pr, lcc, sssp.
    for (Algorithm algorithm :
         {Algorithm::kBfs, Algorithm::kWcc, Algorithm::kCdlp,
          Algorithm::kPageRank, Algorithm::kLcc, Algorithm::kSssp}) {
      std::vector<std::string> row = {
          std::string(AlgorithmName(algorithm))};
      for (const std::string& platform_id : platform::AllPlatformIds()) {
        harness::JobSpec job;
        job.platform_id = platform_id;
        job.dataset_id = dataset;
        job.algorithm = algorithm;
        auto report = runner.Run(job);
        if (!report.ok()) {
          row.push_back("ERR");
          continue;
        }
        row.push_back(OutcomeCell(*report, report->tproc_seconds));
      }
      table.AddRow(std::move(row));
    }
    std::printf("%s\n", table.Render().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace ga::bench

int main() { return ga::bench::Main(); }
