// Figure 7 + Table 9 (paper §4.3, "Vertical scalability"): T_proc of BFS
// and PageRank on D300(L) with 1..32 threads on one machine, plus the
// maximum speedup per platform (Table 9 is derived from the same runs).
//
// Paper findings: all platforms gain from more cores; only PGX.D and
// GraphMat approach optimal efficiency (max speedups 15.0 / 11.3); most
// platforms gain little from hyper-threading (threads 17..32).
#include "bench/bench_common.h"
#include "harness/metrics.h"
#include "platforms/platform.h"

namespace ga::bench {
namespace {

int Main() {
  harness::BenchmarkConfig config = harness::BenchmarkConfig::FromEnv();
  harness::BenchmarkRunner runner(config);
  PrintHeader("Figure 7 + Table 9 — Vertical scalability",
              "T_proc vs #threads (1-32) for BFS and PR on D300(L), "
              "1 machine", config);

  const int thread_counts[] = {1, 2, 4, 8, 16, 32};
  const auto platform_ids = platform::AllPlatformIds();
  const auto names = PaperPlatformNames();

  std::vector<std::string> speedup_headers = {"algorithm"};
  for (const std::string& name : names) speedup_headers.push_back(name);
  harness::TextTable speedups(
      "Table 9 — max speedup on D300(L), 1-32 threads", speedup_headers);

  for (Algorithm algorithm : {Algorithm::kBfs, Algorithm::kPageRank}) {
    std::vector<std::string> headers = {"threads"};
    for (const std::string& name : names) headers.push_back(name);
    harness::TextTable table(
        std::string("T_proc vs threads, ") +
            std::string(AlgorithmName(algorithm)),
        headers);

    std::vector<double> baseline(platform_ids.size(), 0.0);
    std::vector<double> best_speedup(platform_ids.size(), 0.0);
    for (int threads : thread_counts) {
      std::vector<std::string> row = {std::to_string(threads)};
      for (std::size_t p = 0; p < platform_ids.size(); ++p) {
        harness::JobSpec job;
        job.platform_id = platform_ids[p];
        job.dataset_id = "D300";
        job.algorithm = algorithm;
        job.threads_per_machine = threads;
        auto report = runner.Run(job);
        if (!report.ok() || !report->completed()) {
          row.push_back("F");
          continue;
        }
        if (threads == 1) baseline[p] = report->tproc_seconds;
        if (baseline[p] > 0) {
          best_speedup[p] = std::max(
              best_speedup[p],
              harness::Speedup(baseline[p], report->tproc_seconds));
        }
        row.push_back(harness::FormatSeconds(report->tproc_seconds));
      }
      table.AddRow(std::move(row));
    }
    std::printf("%s\n", table.Render().c_str());

    std::vector<std::string> speedup_row = {
        std::string(AlgorithmName(algorithm))};
    for (double s : best_speedup) {
      char text[32];
      std::snprintf(text, sizeof(text), "%.1f", s);
      speedup_row.push_back(text);
    }
    speedups.AddRow(std::move(speedup_row));
  }
  std::printf("%s\n", speedups.Render().c_str());
  return 0;
}

}  // namespace
}  // namespace ga::bench

int main() { return ga::bench::Main(); }
