// Figure 8 (paper §4.4, "Strong horizontal scalability"): T_proc of BFS
// and PageRank on D1000(XL) while growing the cluster from 1 to 16
// machines (dataset constant).
//
// Paper findings: PGX.D and GraphMat show reasonable speedup; Giraph's
// performance degrades sharply from 1 to 2 machines (network activation)
// then recovers with more machines; PowerGraph and GraphX scale poorly;
// PGX.D cannot run D1000 on a single machine (memory); GraphX needs
// 2 machines for BFS and 4 for PR; GraphMat's single-machine run is a
// swapping outlier.
#include "bench/bench_common.h"
#include "platforms/platform.h"

namespace ga::bench {
namespace {

int Main() {
  harness::BenchmarkConfig config = harness::BenchmarkConfig::FromEnv();
  harness::BenchmarkRunner runner(config);
  PrintHeader("Figure 8 — Strong horizontal scalability",
              "T_proc vs #machines (1-16) for BFS and PR on D1000(XL); "
              "distributed platforms only", config);

  const int machine_counts[] = {1, 2, 4, 8, 16};

  for (Algorithm algorithm : {Algorithm::kBfs, Algorithm::kPageRank}) {
    std::vector<std::string> headers = {"machines"};
    std::vector<std::string> ids;
    for (const std::string& platform_id : platform::AllPlatformIds()) {
      auto platform = platform::CreatePlatform(platform_id);
      if (platform.ok() && (*platform)->info().distributed) {
        ids.push_back(platform_id);
      }
    }
    for (const std::string& id : ids) headers.push_back(id);
    harness::TextTable table(
        std::string("T_proc vs machines, ") +
            std::string(AlgorithmName(algorithm)) + " on D1000(XL)",
        headers);
    for (int machines : machine_counts) {
      std::vector<std::string> row = {std::to_string(machines)};
      for (const std::string& platform_id : ids) {
        harness::JobSpec job;
        job.platform_id = platform_id;
        job.dataset_id = "D1000";
        job.algorithm = algorithm;
        job.num_machines = machines;
        job.prefer_distributed_backend = true;
        auto report = runner.Run(job);
        if (!report.ok()) {
          row.push_back("ERR");
          continue;
        }
        row.push_back(OutcomeCell(*report, report->tproc_seconds));
      }
      table.AddRow(std::move(row));
    }
    std::printf("%s\n", table.Render().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace ga::bench

int main() { return ga::bench::Main(); }
