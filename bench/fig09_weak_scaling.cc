// Figure 9 (paper §4.5, "Weak horizontal scalability"): BFS and PageRank
// on Graph500 G22(S)..G26(XL) with 1..16 machines — each doubling of the
// cluster also doubles the dataset, so ideal T_proc is constant.
//
// Paper findings: no platform achieves flat weak scaling; Giraph dips at
// 2 machines then stabilises; GraphMat and PowerGraph scale reasonably;
// GraphX poorly; PGX.D fails several configurations on memory.
#include "bench/bench_common.h"
#include "platforms/platform.h"

namespace ga::bench {
namespace {

int Main() {
  harness::BenchmarkConfig config = harness::BenchmarkConfig::FromEnv();
  harness::BenchmarkRunner runner(config);
  PrintHeader("Figure 9 — Weak horizontal scalability",
              "G22..G26 on 1..16 machines (work per machine ~constant)",
              config);

  const std::pair<std::string, int> series[] = {
      {"G22", 1}, {"G23", 2}, {"G24", 4}, {"G25", 8}, {"G26", 16}};

  std::vector<std::string> ids;
  for (const std::string& platform_id : platform::AllPlatformIds()) {
    auto platform = platform::CreatePlatform(platform_id);
    if (platform.ok() && (*platform)->info().distributed) {
      ids.push_back(platform_id);
    }
  }

  for (Algorithm algorithm : {Algorithm::kBfs, Algorithm::kPageRank}) {
    std::vector<std::string> headers = {"dataset@machines"};
    for (const std::string& id : ids) headers.push_back(id);
    harness::TextTable table(
        std::string("T_proc, weak scaling, ") +
            std::string(AlgorithmName(algorithm)),
        headers);
    for (const auto& [dataset, machines] : series) {
      std::vector<std::string> row = {dataset + "@" +
                                      std::to_string(machines)};
      for (const std::string& platform_id : ids) {
        harness::JobSpec job;
        job.platform_id = platform_id;
        job.dataset_id = dataset;
        job.algorithm = algorithm;
        job.num_machines = machines;
        job.prefer_distributed_backend = true;
        auto report = runner.Run(job);
        if (!report.ok()) {
          row.push_back("ERR");
          continue;
        }
        row.push_back(OutcomeCell(*report, report->tproc_seconds));
      }
      table.AddRow(std::move(row));
    }
    std::printf("%s\n", table.Render().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace ga::bench

int main() { return ga::bench::Main(); }
