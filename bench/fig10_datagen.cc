// Figure 10 (paper §4.8, "Data generation"): Datagen execution time.
//   Left panel : old flow (v0.2.1) vs new flow (v0.2.6) on 16 machines,
//                scale factors 30..3000 (millions of edges).
//   Right panel: new flow on 4/8/16 machines, scale factors up to 10000.
//
// Paper findings: the new flow wins at every scale factor and its
// advantage grows with scale (1.16x at SF30 up to 2.9x at SF3000;
// ~44 min for a billion-edge graph on 16 machines vs 95 min before);
// horizontal speedup 4->16 machines also grows with the scale factor
// (1.1, 1.4, 2.0, 3.0 for SF 30..1000) because Hadoop's fixed job
// overhead dominates small runs.
//
// Generation cost is computed from the same ledger the real generator
// produces (validated against real runs below and in tests); paper-sized
// scale factors are evaluated analytically because 10^10 edges cannot be
// materialised (DESIGN.md §1).
#include <cmath>

#include "bench/bench_common.h"
#include "datagen/socialnet.h"

namespace ga::bench {
namespace {

using datagen::DatagenFlow;
using datagen::GenerationCost;
using datagen::SocialNetConfig;

// Datagen's person-to-edge ratio at SF100 (1.67M persons, 102M edges).
constexpr double kEdgesPerPerson = 61.0;

SocialNetConfig ConfigForScaleFactor(double millions_of_edges,
                                     DatagenFlow flow) {
  SocialNetConfig config;
  config.num_persons = static_cast<std::int64_t>(
      millions_of_edges * 1e6 / kEdgesPerPerson);
  config.avg_degree = 2.0 * kEdgesPerPerson;
  config.target_clustering = 0.10;
  config.flow = flow;
  config.seed = 1;
  return config;
}

// Simulated Hadoop 2.4 on DAS-4 (paper §4.8): one master plus workers
// running 6 reducers each; every generation step is one MapReduce job
// with a fixed spawn overhead, a parallel sort/shuffle phase, and a
// master-side coordination component that does not parallelise.
double SimulateHadoopSeconds(const GenerationCost& cost, int machines) {
  const int reducers = 6 * std::max(machines - 1, 1);
  constexpr double kJobOverheadSeconds = 40.0;       // job spawn (Hadoop)
  constexpr double kSortRecordsPerSecond = 280e3;    // per reducer
  constexpr double kIoRecordsPerSecond = 500e3;      // per reducer
  constexpr double kMasterRecordsPerSecond = 1.8e6;  // serial component

  double total = 0.0;
  for (const datagen::StepCost& step : cost.steps) {
    const double sorted = static_cast<double>(step.records_sorted);
    const double io = static_cast<double>(step.records_in +
                                          step.records_out);
    total += kJobOverheadSeconds;
    total += sorted * std::log2(sorted + 2.0) /
             (reducers * kSortRecordsPerSecond);
    total += io / (reducers * kIoRecordsPerSecond);
    total += io / kMasterRecordsPerSecond;
  }
  return total;
}

int Main() {
  harness::BenchmarkConfig config = harness::BenchmarkConfig::FromEnv();
  harness::BenchmarkRunner runner(config);
  PrintHeader("Figure 10 — Datagen generation time",
              "old (v0.2.1) vs new (v0.2.6) execution flow, simulated "
              "Hadoop on DAS-4", config);

  // Left panel: old vs new on 16 machines.
  harness::TextTable left("SF (M edges) on 16 machines",
                          {"SF", "v0.2.1 (old)", "v0.2.6 (new)",
                           "speedup"});
  for (double sf : {30.0, 100.0, 300.0, 1000.0, 3000.0}) {
    GenerationCost old_cost = datagen::EstimateGenerationCost(
        ConfigForScaleFactor(sf, DatagenFlow::kOldSequential));
    GenerationCost new_cost = datagen::EstimateGenerationCost(
        ConfigForScaleFactor(sf, DatagenFlow::kNewIndependent));
    const double old_seconds = SimulateHadoopSeconds(old_cost, 16);
    const double new_seconds = SimulateHadoopSeconds(new_cost, 16);
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  old_seconds / new_seconds);
    left.AddRow({harness::FormatCount(static_cast<std::int64_t>(sf)) + "M",
                 harness::FormatSeconds(old_seconds),
                 harness::FormatSeconds(new_seconds), speedup});
  }
  std::printf("%s\n", left.Render().c_str());

  // Right panel: new flow on 4 / 8 / 16 machines.
  harness::TextTable right("v0.2.6 by cluster size",
                           {"SF", "4 machines", "8 machines", "16 machines",
                            "speedup 4->16"});
  for (double sf : {30.0, 100.0, 300.0, 1000.0, 3000.0, 10000.0}) {
    GenerationCost cost = datagen::EstimateGenerationCost(
        ConfigForScaleFactor(sf, DatagenFlow::kNewIndependent));
    const double t4 = SimulateHadoopSeconds(cost, 4);
    const double t8 = SimulateHadoopSeconds(cost, 8);
    const double t16 = SimulateHadoopSeconds(cost, 16);
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", t4 / t16);
    right.AddRow({harness::FormatCount(static_cast<std::int64_t>(sf)) + "M",
                  harness::FormatSeconds(t4), harness::FormatSeconds(t8),
                  harness::FormatSeconds(t16), speedup});
  }
  std::printf("%s\n", right.Render().c_str());

  // Ground the analytic ledgers: really generate a small instance with
  // both flows and compare measured vs estimated sort volumes.
  SocialNetConfig small =
      ConfigForScaleFactor(0.5, DatagenFlow::kNewIndependent);
  auto generated = datagen::GenerateSocialNetwork(small);
  if (generated.ok()) {
    GenerationCost estimate = datagen::EstimateGenerationCost(small);
    std::printf("ledger check (SF0.5, really generated): measured sorted "
                "records %lld vs estimated %lld; |V|=%lld |E|=%lld\n",
                static_cast<long long>(generated->cost.TotalSorted()),
                static_cast<long long>(estimate.TotalSorted()),
                static_cast<long long>(generated->graph.num_vertices()),
                static_cast<long long>(generated->graph.num_edges()));
  }
  return 0;
}

}  // namespace
}  // namespace ga::bench

int main() { return ga::bench::Main(); }
