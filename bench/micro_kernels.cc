// Engineering microbenchmarks (google-benchmark) for the hot kernels
// underneath the harness: graph construction, reference algorithms,
// generators and partitioners. Not a paper artifact — used to keep the
// substrate fast enough that the experiment binaries stay interactive.
#include <benchmark/benchmark.h>

#include "algo/reference.h"
#include "core/partition.h"
#include "datagen/graph500.h"
#include "datagen/socialnet.h"

namespace ga {
namespace {

Graph MakeBenchGraph(int scale, std::int64_t edges) {
  datagen::Graph500Config config;
  config.scale = scale;
  config.num_edges = edges;
  config.weighted = true;
  config.seed = 1;
  auto graph = datagen::GenerateGraph500(config);
  if (!graph.ok()) std::abort();
  return std::move(graph).value();
}

void BM_GraphBuild(benchmark::State& state) {
  datagen::Graph500Config config;
  config.scale = 14;
  config.num_edges = state.range(0);
  config.seed = 2;
  for (auto _ : state) {
    auto graph = datagen::GenerateGraph500(config);
    benchmark::DoNotOptimize(graph);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GraphBuild)->Arg(10000)->Arg(100000);

void BM_ReferenceBfs(benchmark::State& state) {
  Graph graph = MakeBenchGraph(15, state.range(0));
  const VertexId source = graph.ExternalId(0);
  for (auto _ : state) {
    auto output = reference::Bfs(graph, source);
    benchmark::DoNotOptimize(output);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReferenceBfs)->Arg(100000)->Arg(400000);

void BM_ReferencePageRank(benchmark::State& state) {
  Graph graph = MakeBenchGraph(15, state.range(0));
  for (auto _ : state) {
    auto output = reference::PageRank(graph, 10, 0.85);
    benchmark::DoNotOptimize(output);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 10);
}
BENCHMARK(BM_ReferencePageRank)->Arg(100000);

void BM_ReferenceWcc(benchmark::State& state) {
  Graph graph = MakeBenchGraph(15, state.range(0));
  for (auto _ : state) {
    auto output = reference::Wcc(graph);
    benchmark::DoNotOptimize(output);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReferenceWcc)->Arg(400000);

void BM_ReferenceCdlp(benchmark::State& state) {
  Graph graph = MakeBenchGraph(14, state.range(0));
  for (auto _ : state) {
    auto output = reference::Cdlp(graph, 5);
    benchmark::DoNotOptimize(output);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 5);
}
BENCHMARK(BM_ReferenceCdlp)->Arg(100000);

void BM_ReferenceLcc(benchmark::State& state) {
  Graph graph = MakeBenchGraph(13, state.range(0));
  for (auto _ : state) {
    auto output = reference::Lcc(graph);
    benchmark::DoNotOptimize(output);
  }
}
BENCHMARK(BM_ReferenceLcc)->Arg(50000);

void BM_ReferenceSssp(benchmark::State& state) {
  Graph graph = MakeBenchGraph(15, state.range(0));
  const VertexId source = graph.ExternalId(0);
  for (auto _ : state) {
    auto output = reference::Sssp(graph, source);
    benchmark::DoNotOptimize(output);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReferenceSssp)->Arg(100000);

void BM_GreedyVertexCut(benchmark::State& state) {
  Graph graph = MakeBenchGraph(14, 100000);
  for (auto _ : state) {
    auto partition = GreedyVertexCut(graph, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(partition);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_GreedyVertexCut)->Arg(4)->Arg(16);

void BM_SocialNetGen(benchmark::State& state) {
  datagen::SocialNetConfig config;
  config.num_persons = state.range(0);
  config.avg_degree = 16;
  config.seed = 3;
  for (auto _ : state) {
    auto network = datagen::GenerateSocialNetwork(config);
    benchmark::DoNotOptimize(network);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SocialNetGen)->Arg(5000)->Arg(20000);

}  // namespace
}  // namespace ga

BENCHMARK_MAIN();
