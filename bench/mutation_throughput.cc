// Streaming mutation throughput (the PR7 trajectory point): evolves
// graphs through chains of random delta epochs at several update rates
// and races the incremental PageRank/WCC engines against full
// recomputes, with the byte-identity oracle armed in both sweeps.
//
// Two regimes, both recorded in the artifact:
//   * "powerlaw" — the registry's Graph500 G22: tiny diameter, so the
//     PageRank dirty wave engulfs the graph and deletes reset the giant
//     component. The honest adversarial ceiling for byte-identical
//     incrementality.
//   * "rings" — disjoint ring lattice (rings:<count>x<size>): mutations
//     stay inside the cycles they touch, the regime streaming engines
//     are built for. The incremental-beats-recompute acceptance gate
//     runs on this sweep.
//
// Emits BENCH_PR7.json (env GA_BENCH_OUT overrides the path). Exits
// nonzero if any epoch diverges from the recompute oracle or if the
// rings regime fails to beat full recompute in aggregate.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_common.h"
#include "core/exec/thread_pool.h"
#include "experiments/mutation_sweep.h"
#include "harness/dataset_registry.h"

namespace {

struct SweepOutcome {
  std::string json;
  double pagerank_speedup = 0.0;
  double wcc_speedup = 0.0;
  bool ok = false;
};

SweepOutcome RunOne(const ga::experiments::MutationSweepConfig& sweep,
                    ga::harness::DatasetRegistry& registry,
                    ga::exec::ThreadPool* host_pool) {
  SweepOutcome outcome;
  auto result = ga::experiments::RunMutationSweep(sweep, registry,
                                                  host_pool);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return outcome;
  }
  std::fputs(ga::experiments::RenderMutationReport(*result).c_str(),
             stdout);
  if (!result->all_verified) {
    std::fprintf(stderr, "incremental outputs diverged from the oracle\n");
    return outcome;
  }
  double inc_pr = 0, full_pr = 0, inc_wcc = 0, full_wcc = 0;
  for (const auto& row : result->rows) {
    inc_pr += row.inc_pagerank_seconds;
    full_pr += row.full_pagerank_seconds;
    inc_wcc += row.inc_wcc_seconds;
    full_wcc += row.full_wcc_seconds;
  }
  outcome.pagerank_speedup = inc_pr > 0 ? full_pr / inc_pr : 0.0;
  outcome.wcc_speedup = inc_wcc > 0 ? full_wcc / inc_wcc : 0.0;
  outcome.json = ga::experiments::MutationSweepToJson(*result);
  outcome.ok = true;
  return outcome;
}

}  // namespace

int main() {
  ga::harness::BenchmarkConfig config =
      ga::harness::BenchmarkConfig::FromEnv();
  ga::bench::PrintHeader(
      "mutation_throughput",
      "streaming delta epochs: incremental PageRank/WCC vs full "
      "recompute, recompute-equivalence oracle armed",
      config);

  ga::exec::ThreadPool pool(config.host_jobs);
  ga::exec::ThreadPool* host_pool = pool.num_threads() > 1 ? &pool : nullptr;
  ga::harness::DatasetRegistry registry(config);
  registry.set_host_pool(host_pool);

  // Adversarial regime: registry power-law graph, default rates.
  ga::experiments::MutationSweepConfig powerlaw;
  powerlaw.seed = config.seed;
  std::printf("\n== powerlaw regime (%s) ==\n", powerlaw.dataset_id.c_str());
  const SweepOutcome adversarial = RunOne(powerlaw, registry, host_pool);
  if (!adversarial.ok) return 1;

  // Locality regime: disjoint rings, low churn — where incremental wins.
  ga::experiments::MutationSweepConfig rings;
  rings.seed = config.seed;
  rings.dataset_id = "rings:512x256";
  rings.update_rates = {0.00025, 0.001};
  std::printf("\n== rings regime (%s) ==\n", rings.dataset_id.c_str());
  const SweepOutcome locality = RunOne(rings, registry, host_pool);
  if (!locality.ok) return 1;

  const char* out_path = std::getenv("GA_BENCH_OUT");
  const std::string json_path =
      out_path != nullptr ? out_path : "BENCH_PR7.json";
  // Each sweep serialises itself; the artifact nests them verbatim.
  const std::string json = "{\"artifact\":\"mutation_throughput\","
                           "\"powerlaw\":" + adversarial.json +
                           ",\"rings\":" + locality.json + "}\n";
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), out);
  std::fclose(out);
  std::printf("wrote %s\n", json_path.c_str());

  if (locality.pagerank_speedup <= 1.0 || locality.wcc_speedup <= 1.0) {
    std::fprintf(stderr,
                 "rings regime did not beat full recompute "
                 "(PageRank %.2fx, WCC %.2fx)\n",
                 locality.pagerank_speedup, locality.wcc_speedup);
    return 1;
  }
  return 0;
}
