// parallel_speedup: host-side wall-time speedup of the exec subsystem.
//
// Not a paper artifact — this measures the REAL parallelism of this
// reproduction (the ga::exec thread pool), not the simulated cluster.
// Runs PageRank at the default scale on every platform engine plus the
// reference implementation with 1 and N host threads, checks that the
// outputs and simulated metrics are identical (the exec determinism
// contract), and emits a JSON record so later PRs have a wall-clock
// trajectory to compare against.
//
// Environment: GA_SCALE_DIVISOR / GA_SEED as usual; GA_SPEEDUP_THREADS
// overrides N (default: hardware concurrency, min 4 so the artifact is
// comparable across differently-sized CI hosts).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "algo/reference.h"
#include "bench/bench_common.h"
#include "core/exec/thread_pool.h"
#include "core/json_writer.h"
#include "core/timer.h"
#include "platforms/platform.h"

namespace {

struct SpeedupRow {
  std::string engine;
  double serial_seconds = 0.0;
  double parallel_seconds = 0.0;
  double speedup = 0.0;
  bool deterministic = false;
};

double MedianWallSeconds(const std::function<void()>& body, int repeats) {
  std::vector<double> samples;
  samples.reserve(repeats);
  for (int r = 0; r < repeats; ++r) {
    ga::WallTimer timer;
    body();
    samples.push_back(timer.ElapsedSeconds());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main() {
  ga::harness::BenchmarkConfig config =
      ga::harness::BenchmarkConfig::FromEnv();
  int parallel_threads =
      std::max(4, ga::exec::ThreadPool::HardwareConcurrency());
  if (const char* override_threads = std::getenv("GA_SPEEDUP_THREADS")) {
    const int value = std::atoi(override_threads);
    if (value > 1) parallel_threads = value;
  }
  ga::bench::PrintHeader(
      "parallel_speedup",
      "host wall-time speedup of ga::exec (PageRank, 1 vs " +
          std::to_string(parallel_threads) + " host threads)",
      config);

  ga::harness::BenchmarkRunner runner(config);
  auto graph = runner.registry().Load("R4");
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  auto params = runner.registry().ParamsFor("R4");
  if (!params.ok()) {
    std::fprintf(stderr, "%s\n", params.status().ToString().c_str());
    return 1;
  }

  ga::exec::ThreadPool serial_pool(1);
  ga::exec::ThreadPool parallel_pool(parallel_threads);
  const int repeats = 3;

  std::vector<SpeedupRow> rows;
  for (auto& platform : ga::platform::CreateAllPlatforms()) {
    ga::platform::ExecutionEnvironment env;
    env.memory_budget_bytes = 1LL << 30;
    env.overhead_scale = 1.0 / static_cast<double>(config.scale_divisor);

    SpeedupRow row;
    row.engine = platform->info().id;
    ga::AlgorithmOutput serial_output;
    ga::AlgorithmOutput parallel_output;
    ga::platform::RunMetrics serial_metrics;
    ga::platform::RunMetrics parallel_metrics;
    bool run_failed = false;  // a failed run must not pass vacuously
    env.host_pool = &serial_pool;
    row.serial_seconds = MedianWallSeconds(
        [&] {
          auto run = platform->RunJob(**graph, ga::Algorithm::kPageRank,
                                      *params, env);
          if (!run.ok()) {
            run_failed = true;
            std::fprintf(stderr, "%s (serial): %s\n", row.engine.c_str(),
                         run.status().ToString().c_str());
            return;
          }
          serial_output = std::move(run->output);
          serial_metrics = run->metrics;
        },
        repeats);
    env.host_pool = &parallel_pool;
    row.parallel_seconds = MedianWallSeconds(
        [&] {
          auto run = platform->RunJob(**graph, ga::Algorithm::kPageRank,
                                      *params, env);
          if (!run.ok()) {
            run_failed = true;
            std::fprintf(stderr, "%s (parallel): %s\n", row.engine.c_str(),
                         run.status().ToString().c_str());
            return;
          }
          parallel_output = std::move(run->output);
          parallel_metrics = run->metrics;
        },
        repeats);
    row.speedup = row.parallel_seconds > 0.0
                      ? row.serial_seconds / row.parallel_seconds
                      : 0.0;
    row.deterministic =
        !run_failed &&
        serial_output.double_values == parallel_output.double_values &&
        serial_metrics.ledger.compute_ops ==
            parallel_metrics.ledger.compute_ops &&
        serial_metrics.processing_sim_seconds ==
            parallel_metrics.processing_sim_seconds;
    rows.push_back(row);
  }

  // Reference PageRank over the same graph.
  {
    SpeedupRow row;
    row.engine = "reference";
    ga::AlgorithmOutput serial_output;
    ga::AlgorithmOutput parallel_output;
    bool run_failed = false;
    row.serial_seconds = MedianWallSeconds(
        [&] {
          auto out = ga::reference::PageRank(**graph, 30, 0.85,
                                             &serial_pool);
          if (!out.ok()) {
            run_failed = true;
            return;
          }
          serial_output = std::move(out).value();
        },
        repeats);
    row.parallel_seconds = MedianWallSeconds(
        [&] {
          auto out = ga::reference::PageRank(**graph, 30, 0.85,
                                             &parallel_pool);
          if (!out.ok()) {
            run_failed = true;
            return;
          }
          parallel_output = std::move(out).value();
        },
        repeats);
    row.speedup = row.parallel_seconds > 0.0
                      ? row.serial_seconds / row.parallel_seconds
                      : 0.0;
    row.deterministic =
        !run_failed && !serial_output.double_values.empty() &&
        serial_output.double_values == parallel_output.double_values;
    rows.push_back(row);
  }

  ga::harness::TextTable table(
      "PageRank host speedup",
      {"engine", "1 thread", std::to_string(parallel_threads) + " threads",
       "speedup", "deterministic"});
  for (const SpeedupRow& row : rows) {
    char serial_text[32];
    char parallel_text[32];
    char speedup_text[32];
    std::snprintf(serial_text, sizeof(serial_text), "%.3fs",
                  row.serial_seconds);
    std::snprintf(parallel_text, sizeof(parallel_text), "%.3fs",
                  row.parallel_seconds);
    std::snprintf(speedup_text, sizeof(speedup_text), "%.2fx", row.speedup);
    table.AddRow({row.engine, serial_text, parallel_text, speedup_text,
                  row.deterministic ? "yes" : "NO"});
  }
  std::printf("%s\n", table.Render().c_str());

  ga::JsonWriter json;
  json.BeginObject();
  json.Field("artifact", "parallel_speedup");
  json.Field("algorithm", "pr");
  json.Field("dataset", "R4");
  json.Field("host_threads", parallel_threads);
  json.Field("hardware_concurrency",
             ga::exec::ThreadPool::HardwareConcurrency());
  json.Key("engines");
  json.BeginArray();
  for (const SpeedupRow& row : rows) {
    json.BeginObject();
    json.Field("engine", std::string_view(row.engine));
    json.Field("serial_wall_seconds", row.serial_seconds);
    json.Field("parallel_wall_seconds", row.parallel_seconds);
    json.Field("speedup", row.speedup);
    json.Field("deterministic", row.deterministic);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  std::printf("%s\n", json.str().c_str());

  for (const SpeedupRow& row : rows) {
    if (!row.deterministic) {
      std::fprintf(stderr,
                   "determinism violation in engine %s: outputs or "
                   "metrics differ across host thread counts\n",
                   row.engine.c_str());
      return 1;
    }
  }
  return 0;
}
