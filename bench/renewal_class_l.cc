// Renewal process (paper §2.4): re-evaluates the reference class L from
// the current platform and dataset catalogue — "class L is redefined as
// the largest class of graphs such that a state-of-the-art platform can
// complete the BFS algorithm within one hour on all graphs in class L
// using a single common-off-the-shelf machine."
//
// With the default configuration the procedure lands on class L itself,
// matching the paper's own calibration of the reference point.
#include "bench/bench_common.h"
#include "harness/renewal.h"

namespace ga::bench {
namespace {

int Main() {
  harness::BenchmarkConfig config = harness::BenchmarkConfig::FromEnv();
  harness::BenchmarkRunner runner(config);
  PrintHeader("Renewal process — class L re-evaluation",
              "BFS capacity of the state-of-the-art platform per dataset "
              "(1 machine, 1-hour SLA)", config);

  auto renewal = harness::EvaluateClassL(runner);
  if (!renewal.ok()) {
    std::fprintf(stderr, "%s\n", renewal.status().ToString().c_str());
    return 1;
  }

  harness::TextTable table(
      "per-dataset capacity evidence",
      {"dataset", "class", "best platform", "best T_proc"});
  for (const harness::DatasetEvidence& evidence : renewal->evidence) {
    table.AddRow({evidence.dataset_id, evidence.scale_label,
                  evidence.best_platform.empty() ? "(none — unprocessable)"
                                                 : evidence.best_platform,
                  evidence.best_platform.empty()
                      ? "-"
                      : harness::FormatSeconds(
                            evidence.best_tproc_seconds)});
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf("recommended reference class L: %s\n",
              renewal->recommended_class_l.c_str());
  std::printf("fully processable classes:");
  for (const std::string& label : renewal->passing_classes) {
    std::printf(" %s", label.c_str());
  }
  std::printf("\nclasses with unprocessable graphs:");
  for (const std::string& label : renewal->failing_classes) {
    std::printf(" %s", label.c_str());
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace ga::bench

int main() { return ga::bench::Main(); }
