// Load/robustness gate for the ga::serve daemon (PR 9, docs/SERVING.md).
//
// Drives the in-process server (the same admission/residency/execution
// path the socket listener feeds) through four phases:
//
//   calibrate   a few warm requests measure the base service time.
//   overload    closed-loop clients at rising concurrency up to ~4x the
//               executor capacity against a small admission queue:
//               latency percentiles of admitted work, throughput, and
//               shed rate per level. Gates: the daemon SHEDS under 4x
//               (instead of queueing unboundedly) and the p99 of
//               completed requests stays within the request deadline.
//   memory      a budget sized at ~2/3 of the working set forces LRU
//               eviction while jobs rotate datasets. Gates: resident
//               bytes never exceed the budget and evictions happen.
//               (VmRSS is recorded for the record, not gated: the
//               process shares the heap with caches outside the
//               governor's scope.)
//   chaos       ~10% of requests carry a fault plan (crash injection).
//               Gates: faulted requests fail cleanly, and every CLEAN
//               completed response's output checksum is byte-identical
//               to the same workload run in batch mode (platform
//               RunJob) — overload machinery must never perturb
//               results.
//
// Emits BENCH_PR9.json to argv[1] (default stdout); exits non-zero if
// any gate fails. GA_SCALE_DIVISOR/GA_SEED/GA_JOBS/GA_DATA_DIR
// configure scale, as everywhere in bench/.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <limits>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "algo/output.h"
#include "bench/bench_common.h"
#include "core/json_writer.h"
#include "harness/dataset_registry.h"
#include "platforms/platform.h"
#include "serve/server.h"
#include "store/snapshot.h"

namespace ga::bench {
namespace {

using serve::Request;
using serve::RequestOp;
using serve::Response;
using serve::ServeOptions;
using serve::Server;

struct Workload {
  const char* dataset;
  Algorithm algorithm;
};

// Small datasets, mixed traversal/iterative shapes: the request mix the
// clients cycle through.
constexpr Workload kWorkloads[] = {
    {"R1", Algorithm::kBfs},
    {"R2", Algorithm::kWcc},
    {"R1", Algorithm::kPageRank},
    {"R2", Algorithm::kBfs},
};
constexpr int kNumWorkloads =
    static_cast<int>(sizeof(kWorkloads) / sizeof(kWorkloads[0]));

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string FnvHex(const std::string& text) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(
                    store::Fnv1a64(text.data(), text.size())));
  return hex;
}

/// Blocking submit: drives Server::Submit and waits for the response.
Response SubmitAndWait(Server& server, const Request& request) {
  std::mutex mutex;
  std::condition_variable done;
  Response result;
  bool ready = false;
  server.Submit(request, [&](const Response& response) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      result = response;
      ready = true;
    }
    done.notify_one();
  });
  std::unique_lock<std::mutex> lock(mutex);
  done.wait(lock, [&] { return ready; });
  return result;
}

Request MakeRequest(const std::string& id, const Workload& workload,
                    double deadline_ms = 0.0) {
  Request request;
  request.op = RequestOp::kRun;
  request.id = id;
  request.dataset = workload.dataset;
  request.algorithm = workload.algorithm;
  request.deadline_ms = deadline_ms;
  return request;
}

double Percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  std::sort(sorted_ms.begin(), sorted_ms.end());
  const double rank = p * static_cast<double>(sorted_ms.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_ms[lo] * (1.0 - frac) + sorted_ms[hi] * frac;
}

std::int64_t ReadVmRssKb() {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return -1;
  char line[256];
  std::int64_t kb = -1;
  while (std::fgets(line, sizeof(line), status) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      std::sscanf(line + 6, "%" SCNd64, &kb);
      break;
    }
  }
  std::fclose(status);
  return kb;
}

struct LevelResult {
  int concurrency = 0;
  std::int64_t completed = 0;
  std::int64_t shed = 0;
  std::int64_t timed_out = 0;
  std::int64_t other = 0;
  double wall_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double throughput_rps = 0.0;
  double shed_rate = 0.0;
};

/// Closed loop: `concurrency` clients, each `per_client` sequential
/// requests against `server`. Latencies are recorded for COMPLETED
/// requests (shed responses return in microseconds by design — mixing
/// them in would flatter the percentiles).
LevelResult RunClosedLoop(Server& server, int concurrency, int per_client,
                          double deadline_ms, const char* id_prefix) {
  LevelResult result;
  result.concurrency = concurrency;
  std::mutex mutex;
  std::vector<double> latencies_ms;
  const double start_ms = NowMs();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(concurrency));
  std::atomic<std::int64_t> completed{0}, shed{0}, timed_out{0}, other{0};
  for (int c = 0; c < concurrency; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < per_client; ++i) {
        const Workload& workload =
            kWorkloads[(c * per_client + i) % kNumWorkloads];
        const std::string id = std::string(id_prefix) + "-" +
                               std::to_string(c) + "-" + std::to_string(i);
        const double sent_ms = NowMs();
        const Response response =
            SubmitAndWait(server, MakeRequest(id, workload, deadline_ms));
        const double latency = NowMs() - sent_ms;
        if (response.status == "completed") {
          completed.fetch_add(1);
          std::lock_guard<std::mutex> lock(mutex);
          latencies_ms.push_back(latency);
        } else if (response.status == "shed") {
          shed.fetch_add(1);
        } else if (response.status == "timed-out") {
          timed_out.fetch_add(1);
        } else {
          other.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  result.wall_ms = NowMs() - start_ms;
  result.completed = completed.load();
  result.shed = shed.load();
  result.timed_out = timed_out.load();
  result.other = other.load();
  result.p50_ms = Percentile(latencies_ms, 0.50);
  result.p95_ms = Percentile(latencies_ms, 0.95);
  result.p99_ms = Percentile(latencies_ms, 0.99);
  const std::int64_t total =
      result.completed + result.shed + result.timed_out + result.other;
  result.throughput_rps =
      result.wall_ms > 0.0
          ? 1000.0 * static_cast<double>(result.completed) / result.wall_ms
          : 0.0;
  result.shed_rate = total > 0 ? static_cast<double>(result.shed) /
                                     static_cast<double>(total)
                               : 0.0;
  return result;
}

int Main(int argc, char** argv) {
  const harness::BenchmarkConfig config = harness::BenchmarkConfig::FromEnv();
  PrintHeader("serve_load (PR 9 gate)",
              "overload shedding, deadline-bounded latency, memory-budget "
              "eviction, chaos byte-identity",
              config);

  bool pass = true;
  JsonWriter json;
  json.BeginObject();
  json.Field("artifact", "serve_load");
  json.Field("scale_divisor", config.scale_divisor);
  json.Field("seed", static_cast<std::int64_t>(config.seed));

  // ---- Batch-mode reference checksums (chaos gate baseline) ----------
  std::map<std::string, std::string> batch_fnv;
  {
    harness::DatasetRegistry registry(config);
    exec::ThreadPool pool(config.host_jobs);
    registry.set_host_pool(&pool);
    for (const Workload& workload : kWorkloads) {
      auto graph = registry.Load(workload.dataset);
      auto params = registry.ParamsFor(workload.dataset);
      auto platform = platform::CreatePlatform("bsplite");
      if (!graph.ok() || !params.ok() || !platform.ok()) {
        std::fprintf(stderr, "batch baseline failed for %s\n",
                     workload.dataset);
        return 1;
      }
      platform::ExecutionEnvironment env;
      env.memory_budget_bytes = config.ScaledMemoryBudget();
      env.overhead_scale =
          1.0 / static_cast<double>(config.scale_divisor);
      env.host_pool = &pool;
      auto run =
          (*platform)->RunJob(**graph, workload.algorithm, *params, env);
      if (!run.ok()) {
        std::fprintf(stderr, "batch run failed: %s\n",
                     run.status().ToString().c_str());
        return 1;
      }
      const std::string key = std::string(workload.dataset) + "/" +
                              std::string(AlgorithmName(workload.algorithm));
      batch_fnv[key] = FnvHex(FormatOutput(**graph, run->output));
    }
  }
  std::printf("batch baselines: %zu workload checksums\n\n",
              batch_fnv.size());

  // ---- Phase 1: calibrate -------------------------------------------
  double service_ms = 0.0;
  {
    ServeOptions options;
    options.queue_capacity = 4;
    options.workers = 1;
    options.bench = config;
    Server server(options);
    if (!server.Start().ok()) return 1;
    // One cold pass loads the datasets, one warm pass measures.
    for (const Workload& w : kWorkloads) {
      SubmitAndWait(server, MakeRequest("warm-" + std::string(w.dataset) +
                                            AlgorithmName(w.algorithm).data(),
                                        w));
    }
    const double start = NowMs();
    int measured = 0;
    for (const Workload& w : kWorkloads) {
      const Response r = SubmitAndWait(
          server,
          MakeRequest("cal-" + std::string(w.dataset) +
                          AlgorithmName(w.algorithm).data(),
                      w));
      if (r.status == "completed") ++measured;
    }
    service_ms =
        measured > 0 ? (NowMs() - start) / measured : 1.0;
    server.Drain();
  }
  json.Field("calibration_service_ms", service_ms);
  std::printf("calibrated warm service time: %.2f ms/request\n\n",
              service_ms);

  // ---- Phase 2: overload sweep --------------------------------------
  // One executor, a 2-deep queue: 3 in-flight requests saturate the
  // server, so 12 closed-loop clients are 4x capacity. The deadline
  // gives every admitted request ample room (50x warm service, >= 2s):
  // a p99 above it means admitted work sat behind an unbounded backlog,
  // which is exactly what admission control must prevent.
  const double deadline_ms = std::max(2000.0, 50.0 * service_ms);
  bool shed_at_overload = false;
  bool p99_within_deadline = true;
  {
    ServeOptions options;
    options.queue_capacity = 2;
    options.workers = 1;
    options.bench = config;
    Server server(options);
    if (!server.Start().ok()) return 1;
    // Warm the residency so the sweep measures service, not datagen.
    for (const Workload& w : kWorkloads) {
      SubmitAndWait(server, MakeRequest("ow-" + std::string(w.dataset) +
                                            AlgorithmName(w.algorithm).data(),
                                        w));
    }
    json.Key("overload");
    json.BeginObject();
    json.Field("workers", 1);
    json.Field("queue_capacity", 2);
    json.Field("deadline_ms", deadline_ms);
    json.Key("levels");
    json.BeginArray();
    for (int concurrency : {1, 3, 6, 12}) {
      const LevelResult level = RunClosedLoop(
          server, concurrency, /*per_client=*/8, deadline_ms,
          ("load" + std::to_string(concurrency)).c_str());
      json.BeginObject();
      json.Field("concurrency", level.concurrency);
      json.Field("completed", level.completed);
      json.Field("shed", level.shed);
      json.Field("timed_out", level.timed_out);
      json.Field("other", level.other);
      json.Field("throughput_rps", level.throughput_rps);
      json.Field("shed_rate", level.shed_rate);
      json.Field("p50_ms", level.p50_ms);
      json.Field("p95_ms", level.p95_ms);
      json.Field("p99_ms", level.p99_ms);
      json.EndObject();
      std::printf(
          "concurrency %2d: %3lld ok %3lld shed (%.0f%%) %2lld late | "
          "%.1f req/s | p50 %.1f p95 %.1f p99 %.1f ms\n",
          level.concurrency, static_cast<long long>(level.completed),
          static_cast<long long>(level.shed), 100.0 * level.shed_rate,
          static_cast<long long>(level.timed_out), level.throughput_rps,
          level.p50_ms, level.p95_ms, level.p99_ms);
      if (concurrency >= 12 && level.shed > 0) shed_at_overload = true;
      if (level.completed > 0 && level.p99_ms > deadline_ms) {
        p99_within_deadline = false;
      }
    }
    json.EndArray();
    json.Field("shed_at_overload", shed_at_overload);
    json.Field("p99_within_deadline", p99_within_deadline);
    json.EndObject();
    server.Drain();
  }
  if (!shed_at_overload) {
    std::fprintf(stderr, "GATE FAIL: no shedding at 4x overload\n");
    pass = false;
  }
  if (!p99_within_deadline) {
    std::fprintf(stderr, "GATE FAIL: p99 of admitted work exceeds the "
                         "deadline\n");
    pass = false;
  }
  std::printf("\n");

  // ---- Phase 3: memory budget ---------------------------------------
  {
    // Measure the working set per dataset (resident-bytes deltas under
    // an unlimited budget), then rerun under a budget that fits the
    // LARGEST dataset but not the whole set: every request can run, and
    // rotating datasets must evict in LRU order.
    std::int64_t working_set = 0;
    std::int64_t largest = 0, smallest = 0;
    {
      ServeOptions options;
      options.bench = config;
      Server server(options);
      if (!server.Start().ok()) return 1;
      std::int64_t previous = 0;
      smallest = std::numeric_limits<std::int64_t>::max();
      for (const Workload& w : kWorkloads) {
        SubmitAndWait(server,
                      MakeRequest("ws-" + std::string(w.dataset) +
                                      AlgorithmName(w.algorithm).data(),
                                  w));
        const std::int64_t resident = server.StatsSnapshot().resident_bytes;
        const std::int64_t delta = resident - previous;  // 0 on a re-visit
        if (delta > 0) {
          largest = std::max(largest, delta);
          smallest = std::min(smallest, delta);
        }
        previous = resident;
      }
      working_set = server.StatsSnapshot().resident_bytes;
      server.Drain();
    }
    const std::int64_t budget = largest + smallest / 2;
    ServeOptions options;
    options.bench = config;
    options.memory_budget_bytes = budget;
    Server server(options);
    if (!server.Start().ok()) return 1;
    std::int64_t peak_resident = 0;
    std::int64_t over_budget_samples = 0;
    std::int64_t completed = 0;
    constexpr int kMemoryRequests = 24;
    for (int i = 0; i < kMemoryRequests; ++i) {
      const Workload& w = kWorkloads[i % kNumWorkloads];
      const Response response = SubmitAndWait(
          server, MakeRequest("mem-" + std::to_string(i), w));
      if (response.status == "completed") ++completed;
      const std::int64_t resident = server.StatsSnapshot().resident_bytes;
      peak_resident = std::max(peak_resident, resident);
      if (resident > budget) ++over_budget_samples;
    }
    const serve::ServeStats stats = server.StatsSnapshot();
    const std::int64_t rss_kb = ReadVmRssKb();
    json.Key("memory");
    json.BeginObject();
    json.Field("working_set_bytes", working_set);
    json.Field("budget_bytes", budget);
    json.Field("requests", static_cast<std::int64_t>(kMemoryRequests));
    json.Field("completed", completed);
    json.Field("peak_resident_bytes", peak_resident);
    json.Field("evictions", stats.evictions);
    json.Field("residency_hits", stats.residency_hits);
    json.Field("residency_misses", stats.residency_misses);
    json.Field("over_budget_samples", over_budget_samples);
    json.Field("vm_rss_kb", rss_kb);
    json.EndObject();
    std::printf("memory: budget %lld of %lld bytes, peak %lld, "
                "%lld evictions, %lld/%d completed, RSS %lld kB\n\n",
                static_cast<long long>(budget),
                static_cast<long long>(working_set),
                static_cast<long long>(peak_resident),
                static_cast<long long>(stats.evictions),
                static_cast<long long>(completed), kMemoryRequests,
                static_cast<long long>(rss_kb));
    server.Drain();
    if (over_budget_samples > 0 || peak_resident > budget) {
      std::fprintf(stderr, "GATE FAIL: resident bytes exceeded the "
                           "budget\n");
      pass = false;
    }
    if (stats.evictions == 0) {
      std::fprintf(stderr, "GATE FAIL: no LRU evictions under budget "
                           "pressure\n");
      pass = false;
    }
    if (completed != kMemoryRequests) {
      std::fprintf(stderr, "GATE FAIL: degradation was not graceful "
                           "(%lld/%d completed)\n",
                   static_cast<long long>(completed), kMemoryRequests);
      pass = false;
    }
  }

  // ---- Phase 4: chaos ------------------------------------------------
  {
    ServeOptions options;
    options.bench = config;
    options.workers = 2;
    Server server(options);
    if (!server.Start().ok()) return 1;
    constexpr int kChaosRequests = 40;
    std::int64_t faulted_failed = 0, faulted_completed = 0;
    std::int64_t clean_completed = 0, clean_failed = 0, mismatches = 0;
    for (int i = 0; i < kChaosRequests; ++i) {
      const Workload& w = kWorkloads[i % kNumWorkloads];
      Request request = MakeRequest("chaos-" + std::to_string(i), w);
      const bool faulted = i % 10 == 0;  // 10% fault rate
      if (faulted) {
        request.faults = "crash_at_superstep=1,seed=" + std::to_string(i);
      }
      const Response response = SubmitAndWait(server, request);
      if (faulted) {
        if (response.status == "completed") {
          ++faulted_completed;
        } else {
          ++faulted_failed;
        }
        continue;
      }
      if (response.status != "completed") {
        ++clean_failed;
        continue;
      }
      ++clean_completed;
      const std::string key = std::string(w.dataset) + "/" +
                              std::string(AlgorithmName(w.algorithm));
      if (response.output_fnv != batch_fnv[key]) ++mismatches;
    }
    json.Key("chaos");
    json.BeginObject();
    json.Field("requests", static_cast<std::int64_t>(kChaosRequests));
    json.Field("fault_rate", 0.1);
    json.Field("faulted_failed", faulted_failed);
    json.Field("faulted_completed", faulted_completed);
    json.Field("clean_completed", clean_completed);
    json.Field("clean_failed", clean_failed);
    json.Field("batch_mismatches", mismatches);
    json.EndObject();
    std::printf("chaos: %lld faulted failed cleanly, %lld clean completed, "
                "%lld batch mismatches\n\n",
                static_cast<long long>(faulted_failed),
                static_cast<long long>(clean_completed),
                static_cast<long long>(mismatches));
    server.Drain();
    if (faulted_failed == 0) {
      std::fprintf(stderr, "GATE FAIL: fault injection never fired\n");
      pass = false;
    }
    if (clean_failed > 0) {
      std::fprintf(stderr, "GATE FAIL: %lld clean requests failed during "
                           "chaos\n",
                   static_cast<long long>(clean_failed));
      pass = false;
    }
    if (mismatches > 0) {
      std::fprintf(stderr, "GATE FAIL: %lld clean outputs differ from "
                           "batch mode\n",
                   static_cast<long long>(mismatches));
      pass = false;
    }
  }

  json.Field("pass", pass);
  json.EndObject();

  const char* out_path = argc > 1 ? argv[1] : nullptr;
  if (out_path != nullptr) {
    std::FILE* out = std::fopen(out_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path);
      return 1;
    }
    std::fprintf(out, "%s\n", json.str().c_str());
    std::fclose(out);
    std::printf("wrote %s\n", out_path);
  } else {
    std::printf("%s\n", json.str().c_str());
  }
  std::printf("serve_load: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace ga::bench

int main(int argc, char** argv) { return ga::bench::Main(argc, argv); }
