// store_io: loader-throughput trajectory for the ga::store subsystem.
//
// Compares the three ways a registry dataset can materialise —
//   generate   in-process generation (the only path before PR 5),
//   text       LDBC `.v`/`.e` import (chunked parser, ga::store),
//   snapshot   zero-copy mmap of a `.gab` snapshot (checksums verified)
// — and times a cold (generate + snapshot store) vs warm (all datasets
// snapshot-served) smoke-plan suite run. Every mmap-loaded graph is
// byte-compared against its generated twin, so the artifact doubles as a
// determinism check of the cache path.
//
// Emits the BENCH_PR5.json trajectory point (env GA_BENCH_OUT overrides
// the output path). Environment: GA_SCALE_DIVISOR / GA_SEED as usual.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/json_writer.h"
#include "core/timer.h"
#include "experiments/plan.h"
#include "experiments/suite.h"
#include "store/snapshot.h"
#include "store/text_io.h"

namespace {

double MedianWallSeconds(const std::function<void()>& body, int repeats) {
  std::vector<double> samples;
  samples.reserve(repeats);
  for (int r = 0; r < repeats; ++r) {
    ga::WallTimer timer;
    body();
    samples.push_back(timer.ElapsedSeconds());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct DatasetRow {
  std::string id;
  std::int64_t vertices = 0;
  std::int64_t edges = 0;
  std::int64_t snapshot_bytes = 0;
  double generate_s = 0.0;
  double snapshot_write_s = 0.0;
  double snapshot_load_s = 0.0;
  double snapshot_load_unverified_s = 0.0;
  double text_export_s = 0.0;
  double text_import_s = 0.0;
  bool deterministic = false;
};

}  // namespace

int main() {
  ga::harness::BenchmarkConfig config =
      ga::harness::BenchmarkConfig::FromEnv();
  // The per-dataset section times *generation*; an inherited GA_DATA_DIR
  // would quietly turn the generate column into another mmap load (and
  // pollute the user's real cache). The suite section opts into its own
  // scratch cache explicitly.
  config.data_dir.clear();
  ga::bench::PrintHeader(
      "store_io",
      "dataset acquisition paths: in-process generation vs .v/.e text "
      "import vs .gab snapshot mmap (ga::store)",
      config);

  const std::filesystem::path work_dir =
      std::filesystem::temp_directory_path() / "ga_bench_store_io";
  std::error_code ec;
  std::filesystem::remove_all(work_dir, ec);
  std::filesystem::create_directories(work_dir);

  // --- Per-dataset path comparison -----------------------------------
  const std::vector<std::string> datasets = {"R1", "R2", "R3", "G22"};
  std::vector<DatasetRow> rows;
  double generate_total_s = 0.0;
  double snapshot_total_s = 0.0;
  std::printf("%-6s %10s %10s | %10s %10s %10s %10s | %8s\n", "id", "V",
              "E", "generate", "text-in", "mmap", "mmap-raw", "speedup");
  for (const std::string& id : datasets) {
    ga::harness::DatasetRegistry registry(config);
    DatasetRow row;
    row.id = id;

    ga::WallTimer generate_timer;
    auto generated = registry.Load(id);
    row.generate_s = generate_timer.ElapsedSeconds();
    if (!generated.ok()) {
      std::fprintf(stderr, "%s: %s\n", id.c_str(),
                   generated.status().ToString().c_str());
      return 1;
    }
    const ga::Graph& graph = **generated;
    row.vertices = graph.num_vertices();
    row.edges = graph.num_edges();

    const std::string snapshot_path =
        (work_dir / (id + ".gab")).string();
    row.snapshot_write_s = MedianWallSeconds(
        [&] {
          ga::Status written = ga::store::WriteSnapshot(graph, snapshot_path);
          if (!written.ok()) std::abort();
        },
        3);
    row.snapshot_bytes = static_cast<std::int64_t>(
        std::filesystem::file_size(snapshot_path, ec));

    row.snapshot_load_s = MedianWallSeconds(
        [&] {
          auto loaded = ga::store::ReadSnapshot(snapshot_path);
          if (!loaded.ok()) std::abort();
        },
        5);
    ga::store::ReadOptions unverified;
    unverified.verify_checksums = false;
    row.snapshot_load_unverified_s = MedianWallSeconds(
        [&] {
          auto loaded = ga::store::ReadSnapshot(snapshot_path, unverified);
          if (!loaded.ok()) std::abort();
        },
        5);

    const std::string text_prefix = (work_dir / id).string();
    row.text_export_s = MedianWallSeconds(
        [&] {
          ga::Status written =
              ga::store::ExportGraphText(graph, text_prefix);
          if (!written.ok()) std::abort();
        },
        3);
    ga::store::ImportOptions import_options;
    import_options.directedness = graph.directedness();
    import_options.weighted = graph.is_weighted();
    row.text_import_s = MedianWallSeconds(
        [&] {
          auto imported =
              ga::store::ImportGraphText(text_prefix, import_options);
          if (!imported.ok()) std::abort();
        },
        3);

    auto loaded = ga::store::ReadSnapshot(snapshot_path);
    row.deterministic = loaded.ok() && GraphsBitIdentical(graph, *loaded);
    if (!row.deterministic) {
      std::fprintf(stderr, "%s: mmap-loaded graph differs from generated\n",
                   id.c_str());
      return 1;
    }

    generate_total_s += row.generate_s;
    snapshot_total_s += row.snapshot_load_s;
    std::printf("%-6s %10lld %10lld | %9.4fs %9.4fs %9.4fs %9.4fs | %7.1fx\n",
                id.c_str(), static_cast<long long>(row.vertices),
                static_cast<long long>(row.edges), row.generate_s,
                row.text_import_s, row.snapshot_load_s,
                row.snapshot_load_unverified_s,
                row.generate_s / std::max(row.snapshot_load_s, 1e-9));
    rows.push_back(row);
  }

  // --- Cold vs warm suite smoke --------------------------------------
  auto plan = ga::experiments::ResolvePlan("smoke");
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  ga::harness::BenchmarkConfig cached_config = config;
  cached_config.data_dir = (work_dir / "cache").string();

  double suite_cold_s = 0.0;
  double suite_warm_s = 0.0;
  std::string cold_json;
  std::string warm_json;
  {
    // Cold: empty cache — every dataset generates, then snapshots.
    ga::harness::BenchmarkRunner runner(cached_config);
    ga::WallTimer timer;
    auto result = ga::experiments::RunSuite(runner, *plan);
    suite_cold_s = timer.ElapsedSeconds();
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    cold_json = ga::experiments::SuiteToJson(*result);
  }
  {
    // Warm: every dataset mmap-served from the cache the cold run left.
    ga::harness::BenchmarkRunner runner(cached_config);
    ga::WallTimer timer;
    auto result = ga::experiments::RunSuite(runner, *plan);
    suite_warm_s = timer.ElapsedSeconds();
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    warm_json = ga::experiments::SuiteToJson(*result);
  }
  const bool suite_identical = cold_json == warm_json;
  std::printf("\nsuite smoke: cold %.3fs, warm %.3fs (%.2fx); "
              "artifacts %s\n",
              suite_cold_s, suite_warm_s,
              suite_cold_s / std::max(suite_warm_s, 1e-9),
              suite_identical ? "bit-identical" : "DIFFER");
  std::printf("dataset acquisition: generate %.3fs vs snapshot mmap "
              "%.3fs (%.1fx)\n",
              generate_total_s, snapshot_total_s,
              generate_total_s / std::max(snapshot_total_s, 1e-9));
  if (!suite_identical) {
    std::fprintf(stderr,
                 "cache-warm suite artifacts differ from cold run\n");
    return 1;
  }

  // --- JSON trajectory point -----------------------------------------
  const char* out_path = std::getenv("GA_BENCH_OUT");
  const std::string json_path =
      out_path != nullptr ? out_path : "BENCH_PR5.json";
  ga::JsonWriter json;
  json.BeginObject();
  json.Field("artifact", "store_io");
  json.Field("scale_divisor",
             static_cast<std::int64_t>(config.scale_divisor));
  json.Field("hardware_concurrency",
             ga::exec::ThreadPool::HardwareConcurrency());
  json.Key("datasets").BeginArray();
  for (const DatasetRow& row : rows) {
    json.BeginObject();
    json.Field("id", row.id);
    json.Field("vertices", row.vertices);
    json.Field("edges", row.edges);
    json.Field("snapshot_bytes", row.snapshot_bytes);
    json.Field("generate_s", row.generate_s);
    json.Field("snapshot_write_s", row.snapshot_write_s);
    json.Field("snapshot_load_s", row.snapshot_load_s);
    json.Field("snapshot_load_unverified_s",
               row.snapshot_load_unverified_s);
    json.Field("text_export_s", row.text_export_s);
    json.Field("text_import_s", row.text_import_s);
    json.Field("load_speedup_vs_generate",
               row.generate_s / std::max(row.snapshot_load_s, 1e-9));
    json.Field("deterministic", row.deterministic);
    json.EndObject();
  }
  json.EndArray();
  json.Key("suite_smoke").BeginObject();
  json.Field("cold_s", suite_cold_s);
  json.Field("warm_s", suite_warm_s);
  json.Field("speedup", suite_cold_s / std::max(suite_warm_s, 1e-9));
  json.Field("artifacts_bit_identical", suite_identical);
  json.EndObject();
  json.Key("load_path").BeginObject();
  json.Field("generate_total_s", generate_total_s);
  json.Field("snapshot_load_total_s", snapshot_total_s);
  json.Field("speedup",
             generate_total_s / std::max(snapshot_total_s, 1e-9));
  json.EndObject();
  json.EndObject();
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "%s\n", json.str().c_str());
  std::fclose(out);
  std::printf("trajectory point written to %s\n", json_path.c_str());

  std::filesystem::remove_all(work_dir, ec);
  return 0;
}
