// Table 2 (paper §2.2.4): the mapping of dataset scale ranges to
// "T-shirt size" labels, printed from the implementation so the table in
// the paper can be compared directly against the code's behaviour.
#include "bench/bench_common.h"

namespace ga::bench {
namespace {

int Main() {
  harness::BenchmarkConfig config = harness::BenchmarkConfig::FromEnv();
  PrintHeader("Table 2 — Scale classes",
              "mapping of graph scale to T-shirt labels", config);

  harness::TextTable table("scale -> class",
                           {"scale range", "label (from code)"});
  struct Range {
    const char* text;
    double sample;
  };
  const Range ranges[] = {
      {"< 7", 6.9},      {"[7.0, 7.5)", 7.2}, {"[7.5, 8.0)", 7.7},
      {"[8.0, 8.5)", 8.3}, {"[8.5, 9.0)", 8.7}, {"[9.0, 9.5)", 9.3},
      {">= 9.5", 9.6},   {">= 10.0", 10.2},   {"< 6.5", 6.3},
  };
  for (const Range& range : ranges) {
    table.AddRow({range.text, harness::ScaleClassLabel(range.sample)});
  }
  std::printf("%s\n", table.Render().c_str());
  return 0;
}

}  // namespace
}  // namespace ga::bench

int main() { return ga::bench::Main(); }
