// Tables 3 and 4 (paper §2.2.4): the dataset catalogue — paper sizes,
// scales and classes — plus the actually generated proxy sizes at the
// configured scale divisor, with structural statistics.
#include "bench/bench_common.h"
#include "datagen/stats.h"

namespace ga::bench {
namespace {

int Main() {
  harness::BenchmarkConfig config = harness::BenchmarkConfig::FromEnv();
  harness::BenchmarkRunner runner(config);
  PrintHeader("Tables 3 & 4 — Dataset catalogue",
              "paper sizes vs generated instances at the scale divisor",
              config);

  harness::TextTable table(
      "datasets",
      {"ID", "name", "|V| paper", "|E| paper", "scale", "class", "dir",
       "wgt", "|V| gen", "|E| gen", "max deg", "avg CC"});
  for (const harness::DatasetSpec& spec : runner.registry().specs()) {
    auto graph = runner.registry().Load(spec.id);
    std::string gen_v = "-";
    std::string gen_e = "-";
    std::string max_deg = "-";
    std::string cc = "-";
    if (graph.ok()) {
      gen_v = harness::FormatCount((*graph)->num_vertices());
      gen_e = harness::FormatCount((*graph)->num_edges());
      max_deg = harness::FormatCount((*graph)->max_out_degree());
      auto clustering = datagen::AverageClusteringCoefficient(**graph);
      if (clustering.ok()) {
        char buffer[16];
        std::snprintf(buffer, sizeof(buffer), "%.3f", *clustering);
        cc = buffer;
      }
    }
    char scale[16];
    std::snprintf(scale, sizeof(scale), "%.1f", spec.paper_scale);
    table.AddRow({spec.id, spec.name,
                  harness::FormatCount(spec.paper_vertices),
                  harness::FormatCount(spec.paper_edges), scale,
                  spec.scale_label,
                  spec.directedness == Directedness::kDirected ? "D" : "U",
                  spec.weighted ? "yes" : "no", gen_v, gen_e, max_deg, cc});
    runner.registry().Evict(spec.id);
  }
  std::printf("%s\n", table.Render().c_str());
  return 0;
}

}  // namespace
}  // namespace ga::bench

int main() { return ga::bench::Main(); }
