// Table 8 (paper §4.1): makespan vs T_proc for BFS on D300(L), exposing
// per-platform overhead (resource allocation, graph loading, ...).
//
// Paper values: overhead ranges from 66% (OpenG) to 99.8% (PGX.D) of the
// makespan; the breakdown itself comes from the Granula archive.
#include "bench/bench_common.h"
#include "granula/archive.h"
#include "platforms/platform.h"

namespace ga::bench {
namespace {

int Main() {
  harness::BenchmarkConfig config = harness::BenchmarkConfig::FromEnv();
  harness::BenchmarkRunner runner(config);
  PrintHeader("Table 8 — Makespan vs T_proc",
              "BFS on D300(L), 1 machine; ratio = T_proc / makespan",
              config);

  harness::TextTable table(
      "BFS on D300(L)",
      {"metric", "Giraph~bsplite", "GraphX~dataflow", "P'Graph~gaslite",
       "G'Mat~spmat", "OpenG~nativekernel", "PGX.D~pushpull"});
  std::vector<std::string> makespan_row = {"Makespan"};
  std::vector<std::string> tproc_row = {"T_proc"};
  std::vector<std::string> ratio_row = {"Ratio"};
  for (const std::string& platform_id : platform::AllPlatformIds()) {
    harness::JobSpec job;
    job.platform_id = platform_id;
    job.dataset_id = "D300";
    job.algorithm = Algorithm::kBfs;
    auto report = runner.Run(job);
    if (!report.ok() || !report->completed()) {
      makespan_row.push_back("F");
      tproc_row.push_back("F");
      ratio_row.push_back("-");
      continue;
    }
    makespan_row.push_back(
        harness::FormatSeconds(report->makespan_seconds));
    tproc_row.push_back(harness::FormatSeconds(report->tproc_seconds));
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.1f%%",
                  100.0 * report->tproc_seconds / report->makespan_seconds);
    ratio_row.push_back(ratio);
  }
  table.AddRow(std::move(makespan_row));
  table.AddRow(std::move(tproc_row));
  table.AddRow(std::move(ratio_row));
  std::printf("%s\n", table.Render().c_str());

  // Granula drill-down for one platform, as the visualizer would show it.
  auto platform = platform::CreatePlatform("bsplite");
  auto graph = runner.registry().Load("D300");
  auto params = runner.registry().ParamsFor("D300");
  if (platform.ok() && graph.ok() && params.ok()) {
    platform::ExecutionEnvironment env;
    env.memory_budget_bytes = config.ScaledMemoryBudget();
    auto run = (*platform)->RunJob(**graph, Algorithm::kBfs, *params, env);
    if (run.ok()) {
      std::printf("Granula phase breakdown (bsplite, simulated seconds):\n%s\n",
                  granula::RenderText(run->archive.root()).c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace ga::bench

int main() { return ga::bench::Main(); }
