// Table 10 (paper §4.6, "Stress test"): the smallest dataset (by scale)
// on which each platform fails to complete BFS on a single machine.
//
// Paper results: Giraph -> G26(9.0), GraphX -> G25(8.7),
// PowerGraph -> R5(9.3), GraphMat -> G26(9.0), OpenG -> R5(9.3),
// PGX.D -> G25(8.7). Most platforms fail on a Graph500 graph while
// passing the Datagen graph of equal scale — skew sensitivity that
// Graph500 itself cannot reveal.
#include <algorithm>

#include "bench/bench_common.h"
#include "platforms/platform.h"

namespace ga::bench {
namespace {

int Main() {
  harness::BenchmarkConfig config = harness::BenchmarkConfig::FromEnv();
  harness::BenchmarkRunner runner(config);
  PrintHeader("Table 10 — Stress test",
              "smallest dataset failing BFS on one machine, per platform",
              config);

  // Datasets ordered by paper scale (ascending), catalogue order breaking
  // ties — so "smallest failing" resolves exactly as in the paper.
  std::vector<harness::DatasetSpec> ordered(
      runner.registry().specs().begin(), runner.registry().specs().end());
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const auto& a, const auto& b) {
                     return a.paper_scale < b.paper_scale;
                   });

  harness::TextTable table("Stress test (BFS, 1 machine)",
                           {"platform", "analogue of", "smallest failing",
                            "scale", "failure"});
  for (const std::string& platform_id : platform::AllPlatformIds()) {
    auto platform = platform::CreatePlatform(platform_id);
    if (!platform.ok()) continue;
    std::string failing = "none";
    std::string scale = "-";
    std::string failure = "-";
    for (const harness::DatasetSpec& spec : ordered) {
      harness::JobSpec job;
      job.platform_id = platform_id;
      job.dataset_id = spec.id;
      job.algorithm = Algorithm::kBfs;
      auto report = runner.Run(job);
      if (!report.ok()) continue;
      if (report->outcome == harness::JobOutcome::kCrashed ||
          report->outcome == harness::JobOutcome::kTimedOut) {
        failing = spec.id + "(" + spec.scale_label + ")";
        char buffer[16];
        std::snprintf(buffer, sizeof(buffer), "%.1f", spec.paper_scale);
        scale = buffer;
        failure = std::string(JobOutcomeName(report->outcome));
        break;
      }
      // Free memory between the large datasets.
      runner.registry().Evict(spec.id);
    }
    table.AddRow({platform_id, (*platform)->info().analogue_of, failing,
                  scale, failure});
  }
  std::printf("%s\n", table.Render().c_str());
  return 0;
}

}  // namespace
}  // namespace ga::bench

int main() { return ga::bench::Main(); }
