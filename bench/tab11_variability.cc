// Table 11 (paper §4.7, "Variability"): mean and coefficient of variation
// of T_proc over 10 repeated BFS runs — on D300(L) with 1 machine (S) and
// on D1000(XL) with 16 machines (D, distributed platforms only).
//
// Paper findings: all platforms stay below 10% CV; PowerGraph is the most
// stable; GraphMat and PGX.D vary the most relatively, but their absolute
// deviations are tiny because their means are tiny.
#include "bench/bench_common.h"
#include "platforms/platform.h"

namespace ga::bench {
namespace {

int Main() {
  harness::BenchmarkConfig config = harness::BenchmarkConfig::FromEnv();
  harness::BenchmarkRunner runner(config);
  PrintHeader("Table 11 — Performance variability",
              "mean T_proc and CV over n=10 BFS runs", config);

  struct Setup {
    std::string label;
    std::string dataset;
    int machines;
  };
  const Setup setups[] = {{"S (D300, 1 machine)", "D300", 1},
                          {"D (D1000, 16 machines)", "D1000", 16}};

  for (const Setup& setup : setups) {
    std::vector<std::string> headers = {"metric"};
    for (const std::string& name : PaperPlatformNames()) {
      headers.push_back(name);
    }
    harness::TextTable table(setup.label, headers);
    std::vector<std::string> mean_row = {"mean"};
    std::vector<std::string> cv_row = {"CV"};
    for (const std::string& platform_id : platform::AllPlatformIds()) {
      auto platform = platform::CreatePlatform(platform_id);
      if (setup.machines > 1 && platform.ok() &&
          !(*platform)->info().distributed) {
        mean_row.push_back("-");
        cv_row.push_back("-");
        continue;
      }
      harness::JobSpec job;
      job.platform_id = platform_id;
      job.dataset_id = setup.dataset;
      job.algorithm = Algorithm::kBfs;
      job.num_machines = setup.machines;
      job.repetitions = 10;
      auto report = runner.Run(job);
      if (!report.ok() || !report->completed()) {
        mean_row.push_back("F");
        cv_row.push_back("-");
        continue;
      }
      mean_row.push_back(harness::FormatSeconds(report->tproc_seconds));
      char cv[32];
      std::snprintf(cv, sizeof(cv), "%.1f%%", 100.0 * report->tproc_cv);
      cv_row.push_back(cv);
    }
    table.AddRow(std::move(mean_row));
    table.AddRow(std::move(cv_row));
    std::printf("%s\n", table.Render().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace ga::bench

int main() { return ga::bench::Main(); }
