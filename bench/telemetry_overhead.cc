// Bounded-overhead gate for the always-on service telemetry layer
// (PR 10, docs/OBSERVABILITY.md): driving the serving daemon with
// telemetry armed (stage histograms, admission/residency counters, exec
// CounterSheet aggregation) must cost < 5% request wall time versus the
// same path with telemetry::SetEnabled(false), geomean over the engine
// kernels — and the telemetered outputs must be byte-identical to the
// untelemetered ones at host_jobs 1, 2 and 8.
//
// Requests are submitted in-process (Server::Submit + a synchronous
// waiter), so the measurement covers the full serve lifecycle the
// instruments hook: admission, queue handoff, residency acquire, job
// execution, serialization. Hand-rolled interleaved min-of-N timing (no
// google-benchmark dependency). Emits BENCH_PR10.json to the path in
// argv[1] (default: stdout).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/json_writer.h"
#include "serve/server.h"
#include "telemetry/metrics.h"

namespace ga::bench {
namespace {

struct Kernel {
  const char* platform_id;
  Algorithm algorithm;
};

// At least one kernel per engine; BFS/PR cover the frontier and
// fixed-iteration sweep shapes, CDLP/WCC the label-propagation shape.
constexpr Kernel kKernels[] = {
    {"spmat", Algorithm::kBfs},       {"spmat", Algorithm::kPageRank},
    {"bsplite", Algorithm::kPageRank}, {"pushpull", Algorithm::kWcc},
    {"gaslite", Algorithm::kCdlp},    {"nativekernel", Algorithm::kWcc},
    {"dataflow", Algorithm::kBfs},
};

constexpr const char* kDataset = "R1";

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Submit + block until the single response for this request arrives.
serve::Response RunSync(serve::Server& server,
                        const serve::Request& request) {
  std::mutex mutex;
  std::condition_variable arrived;
  bool done = false;
  serve::Response response;
  server.Submit(request, [&](const serve::Response& r) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      response = r;
      done = true;
    }
    arrived.notify_all();
  });
  std::unique_lock<std::mutex> lock(mutex);
  arrived.wait(lock, [&] { return done; });
  return response;
}

serve::Request RequestFor(const Kernel& kernel, std::int64_t sequence) {
  serve::Request request;
  request.op = serve::RequestOp::kRun;
  request.id = std::string(kernel.platform_id) + "-" +
               std::string(AlgorithmName(kernel.algorithm)) + "-" +
               std::to_string(sequence);
  request.dataset = kDataset;
  request.platform = kernel.platform_id;
  request.algorithm = kernel.algorithm;
  return request;
}

serve::Response MustComplete(serve::Server& server,
                             const serve::Request& request) {
  serve::Response response = RunSync(server, request);
  if (response.status != "completed") {
    std::fprintf(stderr, "%s: %s (%s)\n", request.id.c_str(),
                 response.status.c_str(), response.message.c_str());
    std::abort();
  }
  return response;
}

/// One timed submit->response round trip with telemetry in the given
/// state.
double WallSecondsOnce(serve::Server& server, const Kernel& kernel,
                       std::int64_t sequence, bool telemetered) {
  telemetry::SetEnabled(telemetered);
  const double begin = Now();
  serve::Response response =
      MustComplete(server, RequestFor(kernel, sequence));
  const double elapsed = Now() - begin;
  (void)response;
  return elapsed;
}

/// Paired interleaved min-of-N timing: the untelemetered/telemetered
/// runs alternate so scheduler noise and frequency drift hit both sides
/// alike, and the rep count adapts to the kernel so sub-millisecond
/// requests get enough reps for a stable minimum.
struct PairedTiming {
  double untelemetered_s = 0.0;
  double telemetered_s = 0.0;
  int reps = 0;
};

PairedTiming MeasurePair(serve::Server& server, const Kernel& kernel,
                         std::int64_t* sequence) {
  const double estimate =
      WallSecondsOnce(server, kernel, (*sequence)++, /*telemetered=*/false);
  const double target_total_s = 0.04;  // per configuration
  const int reps = static_cast<int>(std::clamp(
      target_total_s / std::max(estimate, 1e-6), 7.0, 150.0));
  PairedTiming timing;
  timing.reps = reps;
  timing.untelemetered_s = 1e300;
  timing.telemetered_s = 1e300;
  for (int r = 0; r < reps; ++r) {
    timing.untelemetered_s =
        std::min(timing.untelemetered_s,
                 WallSecondsOnce(server, kernel, (*sequence)++,
                                 /*telemetered=*/false));
    timing.telemetered_s =
        std::min(timing.telemetered_s,
                 WallSecondsOnce(server, kernel, (*sequence)++,
                                 /*telemetered=*/true));
  }
  return timing;
}

serve::ServeOptions OptionsFor(const harness::BenchmarkConfig& config,
                               int host_jobs) {
  serve::ServeOptions options;
  options.queue_capacity = 4;
  options.workers = 1;
  options.bench = config;
  options.bench.host_jobs = host_jobs;
  return options;
}

int Main(int argc, char** argv) {
  harness::BenchmarkConfig config = harness::BenchmarkConfig::FromEnv();
  PrintHeader("telemetry_overhead (PR 10 gate)",
              "service telemetry on vs off through the serving daemon: "
              "<5% geomean request overhead, byte-identical outputs at "
              "host_jobs 1/2/8",
              config);

  JsonWriter json;
  json.BeginObject();
  json.Field("artifact", std::string_view("telemetry_overhead"));
  json.Field("scale_divisor", config.scale_divisor);
  json.Field("dataset", std::string_view(kDataset));

  // Phase 1 — byte-identity sweep: for every kernel and every host_jobs
  // in {1, 2, 8}, the telemetered run must hand back the same output
  // FNV and the same simulated metrics as the untelemetered jobs=1
  // reference.
  std::int64_t sequence = 0;
  bool all_identical = true;
  std::vector<std::string> reference_fnv;
  json.Key("identity").BeginArray();
  for (int host_jobs : {1, 2, 8}) {
    serve::Server server(OptionsFor(config, host_jobs));
    if (!server.Start().ok()) {
      std::fprintf(stderr, "server start failed\n");
      return 1;
    }
    for (std::size_t k = 0; k < std::size(kKernels); ++k) {
      telemetry::SetEnabled(false);
      const serve::Response off =
          MustComplete(server, RequestFor(kKernels[k], sequence++));
      telemetry::SetEnabled(true);
      const serve::Response on =
          MustComplete(server, RequestFor(kKernels[k], sequence++));
      if (host_jobs == 1) reference_fnv.push_back(off.output_fnv);
      const bool identical = off.output_fnv == reference_fnv[k] &&
                             on.output_fnv == reference_fnv[k] &&
                             off.tproc_seconds == on.tproc_seconds &&
                             off.supersteps == on.supersteps;
      all_identical = all_identical && identical;
      json.BeginObject();
      json.Field("platform", std::string_view(kKernels[k].platform_id));
      json.Field("algorithm", AlgorithmName(kKernels[k].algorithm));
      json.Field("host_jobs", host_jobs);
      json.Field("output_fnv", on.output_fnv);
      json.Field("identical", identical);
      json.EndObject();
      if (!identical) {
        std::fprintf(stderr,
                     "IDENTITY BREACH %s/%s jobs=%d: off=%s on=%s ref=%s\n",
                     kKernels[k].platform_id,
                     AlgorithmName(kKernels[k].algorithm).data(), host_jobs,
                     off.output_fnv.c_str(), on.output_fnv.c_str(),
                     reference_fnv[k].c_str());
      }
    }
  }
  json.EndArray();

  // Phase 2 — paired timing on a serial pool (host_jobs = 1): measures
  // the instrument hook cost, not scheduling noise.
  serve::Server server(OptionsFor(config, /*host_jobs=*/1));
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    return 1;
  }

  harness::TextTable table(
      "telemetry overhead, interleaved min-of-N (serve round trip)",
      {"kernel", "telemetry off", "telemetry on", "overhead", "reps"});
  json.Key("kernels").BeginArray();
  double log_sum = 0.0;
  int measured = 0;
  for (const Kernel& kernel : kKernels) {
    const PairedTiming timing = MeasurePair(server, kernel, &sequence);
    const double ratio = timing.telemetered_s / timing.untelemetered_s;
    log_sum += std::log(ratio);
    ++measured;

    const std::string name = std::string(kernel.platform_id) + "/" +
                             std::string(AlgorithmName(kernel.algorithm));
    char overhead_text[32];
    std::snprintf(overhead_text, sizeof(overhead_text), "%+.2f%%",
                  (ratio - 1.0) * 100.0);
    table.AddRow({name, harness::FormatSeconds(timing.untelemetered_s),
                  harness::FormatSeconds(timing.telemetered_s),
                  overhead_text, std::to_string(timing.reps)});

    json.BeginObject();
    json.Field("platform", std::string_view(kernel.platform_id));
    json.Field("algorithm", AlgorithmName(kernel.algorithm));
    json.Field("untelemetered_s", timing.untelemetered_s);
    json.Field("telemetered_s", timing.telemetered_s);
    json.Field("reps", timing.reps);
    json.Field("overhead_ratio", ratio);
    json.EndObject();
  }
  json.EndArray();
  telemetry::SetEnabled(true);  // leave the process in the default state

  const double geomean =
      measured > 0 ? std::exp(log_sum / measured) : 1.0;
  const bool pass = geomean < 1.05 && all_identical;
  json.Field("geomean_overhead_ratio", geomean);
  json.Field("gate_max_ratio", 1.05);
  json.Field("outputs_identical", all_identical);
  json.Field("pass", pass);
  json.EndObject();

  std::printf("%s\n", table.Render().c_str());
  std::printf("geomean overhead: %+.2f%% (gate: <5%%), outputs %s — %s\n",
              (geomean - 1.0) * 100.0,
              all_identical ? "identical" : "DIFFER",
              pass ? "PASS" : "FAIL");

  const std::string document = json.str();
  if (argc > 1) {
    std::FILE* file = std::fopen(argv[1], "wb");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
    std::fwrite(document.data(), 1, document.size(), file);
    std::fputc('\n', file);
    std::fclose(file);
    std::printf("json written to %s\n", argv[1]);
  } else {
    std::printf("%s\n", document.c_str());
  }
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace ga::bench

int main(int argc, char** argv) { return ga::bench::Main(argc, argv); }
