// Bounded-overhead gate for the deep-tracing layer (PR 6,
// docs/OBSERVABILITY.md): running an engine kernel with --trace armed
// (per-superstep spans, CounterSheet chunk timing, Chrome-trace
// retention) must cost < 5% wall time versus the untraced fast path,
// geomean over the engine-throughput kernels — and the traced outputs
// must be byte-identical to the untraced ones.
//
// Hand-rolled min-of-N timing (no google-benchmark dependency): each
// kernel's full Platform::RunJob is repeated; the minimum wall time per
// configuration is the noise-robust estimate. Emits BENCH_PR6.json to
// the path in argv[1] (default: stdout).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/json_writer.h"
#include "platforms/platform.h"

namespace ga::bench {
namespace {

struct Kernel {
  const char* platform_id;
  Algorithm algorithm;
};

// At least one kernel per engine; BFS/PR cover the frontier and
// fixed-iteration sweep shapes, CDLP/WCC the label-propagation shape.
constexpr Kernel kKernels[] = {
    {"spmat", Algorithm::kBfs},       {"spmat", Algorithm::kPageRank},
    {"pushpull", Algorithm::kBfs},    {"bsplite", Algorithm::kPageRank},
    {"gaslite", Algorithm::kCdlp},    {"nativekernel", Algorithm::kWcc},
    {"dataflow", Algorithm::kBfs},    {"pushpull", Algorithm::kWcc},
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

platform::RunResult RunOnce(const Kernel& kernel, const Graph& graph,
                            const AlgorithmParams& params,
                            const harness::BenchmarkConfig& config,
                            bool traced) {
  auto platform = platform::CreatePlatform(kernel.platform_id);
  if (!platform.ok()) std::abort();
  platform::ExecutionEnvironment env;
  env.memory_budget_bytes = config.ScaledMemoryBudget();
  env.overhead_scale = 1.0 / static_cast<double>(config.scale_divisor);
  env.host_pool = nullptr;  // serial: measures hook cost, not scheduling
  env.trace_enabled = traced;
  auto run = (*platform)->RunJob(graph, kernel.algorithm, params, env);
  if (!run.ok()) {
    std::fprintf(stderr, "%s/%s: %s\n", kernel.platform_id,
                 AlgorithmName(kernel.algorithm).data(),
                 run.status().ToString().c_str());
    std::abort();
  }
  return std::move(run).value();
}

/// One timed RunJob invocation.
double WallSecondsOnce(const Kernel& kernel, const Graph& graph,
                       const AlgorithmParams& params,
                       const harness::BenchmarkConfig& config, bool traced) {
  const double begin = Now();
  platform::RunResult run = RunOnce(kernel, graph, params, config, traced);
  const double elapsed = Now() - begin;
  // Keep the result alive through the timestamp so archive teardown
  // (part of tracing's cost) is inside the timed region.
  (void)run;
  return elapsed;
}

/// Paired min-of-N timing. The untraced/traced runs are interleaved so
/// scheduler noise and frequency drift hit both sides alike, and the rep
/// count adapts to the kernel: sub-millisecond kernels get enough reps
/// that the minimum is a stable estimate, multi-millisecond kernels keep
/// a small fixed count.
struct PairedTiming {
  double untraced_s = 0.0;
  double traced_s = 0.0;
  int reps = 0;
};

PairedTiming MeasurePair(const Kernel& kernel, const Graph& graph,
                         const AlgorithmParams& params,
                         const harness::BenchmarkConfig& config) {
  const double estimate =
      WallSecondsOnce(kernel, graph, params, config, /*traced=*/false);
  const double target_total_s = 0.04;  // per configuration
  const int reps = static_cast<int>(std::clamp(
      target_total_s / std::max(estimate, 1e-6), 7.0, 150.0));
  PairedTiming timing;
  timing.reps = reps;
  timing.untraced_s = 1e300;
  timing.traced_s = 1e300;
  for (int r = 0; r < reps; ++r) {
    timing.untraced_s = std::min(
        timing.untraced_s,
        WallSecondsOnce(kernel, graph, params, config, /*traced=*/false));
    timing.traced_s = std::min(
        timing.traced_s,
        WallSecondsOnce(kernel, graph, params, config, /*traced=*/true));
  }
  return timing;
}

int Main(int argc, char** argv) {
  harness::BenchmarkConfig config = harness::BenchmarkConfig::FromEnv();
  PrintHeader("trace_overhead (PR 6 gate)",
              "deep tracing on vs off: <5% geomean wall overhead, "
              "byte-identical outputs",
              config);

  // D300 is the largest dataset that stays comfortable in CI: at the
  // default divisor the engines sweep ~300k adjacency entries per
  // superstep, so the per-superstep tracing constants (span node, info
  // strings) amortize the way they do on real workloads. Tiny graphs
  // (R1/R2 BFS finishes in ~20us) measure the constants, not the hooks.
  harness::DatasetRegistry registry(config);
  auto graph = registry.Load("D300");
  auto params = registry.ParamsFor("D300");
  if (!graph.ok() || !params.ok()) {
    std::fprintf(stderr, "dataset load failed\n");
    return 1;
  }

  JsonWriter json;
  json.BeginObject();
  json.Field("artifact", std::string_view("trace_overhead"));
  json.Field("scale_divisor", config.scale_divisor);
  json.Field("dataset", std::string_view("D300"));
  json.Key("kernels").BeginArray();

  harness::TextTable table(
      "trace overhead, interleaved min-of-N (serial host)",
      {"kernel", "untraced", "traced", "overhead", "reps", "outputs"});
  double log_sum = 0.0;
  int measured = 0;
  bool all_identical = true;
  for (const Kernel& kernel : kKernels) {
    // Byte-identity first (also warms caches for the timed runs).
    const platform::RunResult untraced_run =
        RunOnce(kernel, **graph, *params, config, /*traced=*/false);
    const platform::RunResult traced_run =
        RunOnce(kernel, **graph, *params, config, /*traced=*/true);
    const bool identical =
        untraced_run.output.int_values == traced_run.output.int_values &&
        untraced_run.output.double_values ==
            traced_run.output.double_values &&
        untraced_run.metrics.processing_sim_seconds ==
            traced_run.metrics.processing_sim_seconds &&
        untraced_run.metrics.ledger.compute_ops ==
            traced_run.metrics.ledger.compute_ops &&
        untraced_run.metrics.ledger.messages ==
            traced_run.metrics.ledger.messages;
    all_identical = all_identical && identical;

    const PairedTiming timing =
        MeasurePair(kernel, **graph, *params, config);
    const double ratio = timing.traced_s / timing.untraced_s;
    log_sum += std::log(ratio);
    ++measured;

    const std::string name = std::string(kernel.platform_id) + "/" +
                             std::string(AlgorithmName(kernel.algorithm));
    char overhead_text[32];
    std::snprintf(overhead_text, sizeof(overhead_text), "%+.2f%%",
                  (ratio - 1.0) * 100.0);
    table.AddRow({name, harness::FormatSeconds(timing.untraced_s),
                  harness::FormatSeconds(timing.traced_s), overhead_text,
                  std::to_string(timing.reps),
                  identical ? "identical" : "DIFFER"});

    json.BeginObject();
    json.Field("platform", std::string_view(kernel.platform_id));
    json.Field("algorithm", AlgorithmName(kernel.algorithm));
    json.Field("untraced_s", timing.untraced_s);
    json.Field("traced_s", timing.traced_s);
    json.Field("reps", timing.reps);
    json.Field("overhead_ratio", ratio);
    json.Field("outputs_identical", identical);
    json.EndObject();
  }
  json.EndArray();

  const double geomean =
      measured > 0 ? std::exp(log_sum / measured) : 1.0;
  const bool pass = geomean < 1.05 && all_identical;
  json.Field("geomean_overhead_ratio", geomean);
  json.Field("gate_max_ratio", 1.05);
  json.Field("outputs_identical", all_identical);
  json.Field("pass", pass);
  json.EndObject();

  std::printf("%s\n", table.Render().c_str());
  std::printf("geomean overhead: %+.2f%% (gate: <5%%) — %s\n",
              (geomean - 1.0) * 100.0, pass ? "PASS" : "FAIL");

  const std::string document = json.str();
  if (argc > 1) {
    std::FILE* file = std::fopen(argv[1], "wb");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
    std::fwrite(document.data(), 1, document.size(), file);
    std::fputc('\n', file);
    std::fclose(file);
    std::printf("json written to %s\n", argv[1]);
  } else {
    std::printf("%s\n", document.c_str());
  }
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace ga::bench

int main(int argc, char** argv) { return ga::bench::Main(argc, argv); }
