// Import an external LDBC Graphalytics dataset (`.v`/`.e` text) through
// ga::store and benchmark it: BFS + PageRank on two platform analogues,
// with the paper-style metric lines (T_proc, makespan, EPS) per job.
//
// Usage:  ./build/examples/import_dataset [path-prefix] [--undirected]
//                                         [--weighted]
//         loads <path-prefix>.v + <path-prefix>.e
//
// With no arguments, a demo dataset is synthesised in the system temp
// directory (a scale-11 R-MAT graph exported to text) and imported back —
// the full external-dataset workflow, self-contained.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "algo/params.h"
#include "datagen/graph500.h"
#include "platforms/platform.h"
#include "store/text_io.h"

namespace {

// Writes the self-contained demo dataset and returns its path prefix.
std::string WriteDemoDataset() {
  ga::datagen::Graph500Config generator;
  generator.scale = 11;
  generator.num_edges = 40'000;
  generator.seed = 42;
  auto graph = ga::datagen::GenerateGraph500(generator);
  if (!graph.ok()) {
    std::fprintf(stderr, "demo generation failed: %s\n",
                 graph.status().ToString().c_str());
    return "";
  }
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "ga_demo_dataset").string();
  ga::Status written = ga::store::ExportGraphText(*graph, prefix);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return "";
  }
  std::printf("demo dataset written to %s.v / %s.e\n", prefix.c_str(),
              prefix.c_str());
  return prefix;
}

}  // namespace

int main(int argc, char** argv) {
  std::string prefix;
  ga::store::ImportOptions options;
  bool direction_given = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--undirected") == 0) {
      options.directedness = ga::Directedness::kUndirected;
      direction_given = true;
    } else if (std::strcmp(argv[i], "--directed") == 0) {
      options.directedness = ga::Directedness::kDirected;
      direction_given = true;
    } else if (std::strcmp(argv[i], "--weighted") == 0) {
      options.weighted = true;
    } else {
      prefix = argv[i];
    }
  }
  if (!direction_given) {
    // LDBC datasets default to directed; the synthesised demo graph is
    // undirected (R-MAT per Table 4).
    options.directedness = prefix.empty() ? ga::Directedness::kUndirected
                                          : ga::Directedness::kDirected;
  }
  if (prefix.empty()) {
    prefix = WriteDemoDataset();
    if (prefix.empty()) return 1;
  }

  // 1. Import: chunked parse -> canonical CSR (exactly what the dataset
  //    registry would serve from a .gab snapshot).
  auto graph = ga::store::ImportGraphText(prefix, options);
  if (!graph.ok()) {
    std::fprintf(stderr, "import failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("imported %s: %lld vertices, %lld edges (%s, %s)\n\n",
              prefix.c_str(),
              static_cast<long long>(graph->num_vertices()),
              static_cast<long long>(graph->num_edges()),
              ga::DirectednessName(graph->directedness()).data(),
              graph->is_weighted() ? "weighted" : "unweighted");

  // 2. Benchmark parameters per the Graphalytics description: the root is
  //    the first vertex with maximum out-degree.
  if (graph->num_vertices() == 0) {
    std::fprintf(stderr, "dataset has no vertices — nothing to run\n");
    return 1;
  }
  ga::AlgorithmParams params;
  ga::VertexIndex best = 0;
  for (ga::VertexIndex v = 0; v < graph->num_vertices(); ++v) {
    if (graph->OutDegree(v) > graph->OutDegree(best)) best = v;
  }
  params.source_vertex = graph->ExternalId(best);
  params.pagerank_iterations = 20;

  // 3. BFS + PageRank on two engine families (matrix sweeps vs Pregel
  //    message passing), one simulated 16-core machine each.
  for (const char* platform_id : {"spmat", "bsplite"}) {
    auto platform = ga::platform::CreatePlatform(platform_id);
    if (!platform.ok()) return 1;
    for (ga::Algorithm algorithm :
         {ga::Algorithm::kBfs, ga::Algorithm::kPageRank}) {
      ga::platform::ExecutionEnvironment environment;
      environment.memory_budget_bytes = 1LL << 30;
      auto run = (*platform)->RunJob(*graph, algorithm, params,
                                     environment);
      if (!run.ok()) {
        std::fprintf(stderr, "%s/%s failed: %s\n", platform_id,
                     ga::AlgorithmName(algorithm).data(),
                     run.status().ToString().c_str());
        return 1;
      }
      std::printf("%s/%s:\n", platform_id,
                  ga::AlgorithmName(algorithm).data());
      std::printf("  T_proc     : %.6f simulated s\n",
                  run->metrics.processing_sim_seconds);
      std::printf("  makespan   : %.6f simulated s\n",
                  run->metrics.makespan_sim_seconds);
      std::printf("  supersteps : %d\n", run->metrics.supersteps);
      std::printf("  EPS        : %.3g edges/s\n",
                  static_cast<double>(graph->num_edges()) /
                      run->metrics.processing_sim_seconds);
    }
  }
  return 0;
}
