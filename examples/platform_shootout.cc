// Platform shootout: run the full Graphalytics harness on a user-chosen
// dataset and print a compact comparison of all six platform analogues,
// including the Granula phase breakdown of the winner — the workflow a
// benchmark user follows to choose a platform (paper Section 2.3).
//
// Usage:  ./build/examples/platform_shootout [dataset-id] [algorithm]
// e.g.    ./build/examples/platform_shootout D300 pr
#include <cstdio>
#include <string>

#include "granula/archive.h"
#include "harness/report.h"
#include "harness/runner.h"

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "R2";
  ga::Algorithm algorithm = ga::Algorithm::kBfs;
  if (argc > 2 && !ga::ParseAlgorithm(argv[2], &algorithm)) {
    std::fprintf(stderr,
                 "unknown algorithm '%s' (use bfs, pr, wcc, cdlp, lcc, "
                 "sssp)\n",
                 argv[2]);
    return 1;
  }

  ga::harness::BenchmarkConfig config =
      ga::harness::BenchmarkConfig::FromEnv();
  ga::harness::BenchmarkRunner runner(config);
  auto spec = runner.registry().Find(dataset);
  if (!spec.ok()) {
    std::fprintf(stderr, "unknown dataset '%s'; available:", dataset.c_str());
    for (const auto& candidate : runner.registry().specs()) {
      std::fprintf(stderr, " %s", candidate.id.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }

  std::printf("shootout: %s on %s(%s) — projected paper-scale seconds\n\n",
              std::string(ga::AlgorithmName(algorithm)).c_str(),
              dataset.c_str(), spec->scale_label.c_str());

  ga::harness::TextTable table(
      "results",
      {"platform", "analogue of", "outcome", "T_proc", "makespan", "EPS",
       "validated"});
  std::string best_platform;
  double best_tproc = 1e300;
  for (const std::string& platform_id : ga::platform::AllPlatformIds()) {
    auto platform = ga::platform::CreatePlatform(platform_id);
    ga::harness::JobSpec job;
    job.platform_id = platform_id;
    job.dataset_id = dataset;
    job.algorithm = algorithm;
    auto report = runner.Run(job);
    if (!report.ok()) {
      table.AddRow({platform_id, (*platform)->info().analogue_of, "error",
                    "-", "-", "-", "-"});
      continue;
    }
    const bool completed = report->completed();
    if (completed && report->tproc_seconds < best_tproc) {
      best_tproc = report->tproc_seconds;
      best_platform = platform_id;
    }
    table.AddRow(
        {platform_id, (*platform)->info().analogue_of,
         std::string(ga::harness::JobOutcomeName(report->outcome)),
         completed ? ga::harness::FormatSeconds(report->tproc_seconds) : "-",
         completed ? ga::harness::FormatSeconds(report->makespan_seconds)
                   : "-",
         completed ? ga::harness::FormatThroughput(report->eps) : "-",
         report->output_validated ? "yes" : "-"});
  }
  std::printf("%s\n", table.Render().c_str());

  if (!best_platform.empty()) {
    std::printf("fastest platform: %s — Granula phase breakdown:\n",
                best_platform.c_str());
    auto platform = ga::platform::CreatePlatform(best_platform);
    auto graph = runner.registry().Load(dataset);
    auto params = runner.registry().ParamsFor(dataset);
    ga::platform::ExecutionEnvironment environment;
    environment.memory_budget_bytes = config.ScaledMemoryBudget();
    environment.overhead_scale =
        1.0 / static_cast<double>(config.scale_divisor);
    auto run =
        (*platform)->RunJob(**graph, algorithm, *params, environment);
    if (run.ok()) {
      std::printf("%s", ga::granula::RenderText(run->archive.root()).c_str());
    }
  }
  return 0;
}
