// Quickstart: the smallest end-to-end use of the library.
//
//  1. generate a Graph500 R-MAT graph,
//  2. run BFS on the GraphMat analogue in a simulated single-machine
//     environment,
//  3. validate the output against the reference implementation,
//  4. print the Graphalytics metrics.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "algo/reference.h"
#include "datagen/graph500.h"
#include "platforms/platform.h"

int main() {
  // 1. A scale-12 R-MAT graph with 50k edges.
  ga::datagen::Graph500Config generator;
  generator.scale = 12;
  generator.num_edges = 50'000;
  generator.seed = 42;
  auto graph = ga::datagen::GenerateGraph500(generator);
  if (!graph.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("graph: %lld vertices, %lld edges\n",
              static_cast<long long>(graph->num_vertices()),
              static_cast<long long>(graph->num_edges()));

  // 2. Run BFS on the GraphMat analogue (one 16-core machine).
  auto platform = ga::platform::CreatePlatform("spmat");
  if (!platform.ok()) return 1;
  ga::AlgorithmParams params;
  params.source_vertex = graph->ExternalId(0);
  ga::platform::ExecutionEnvironment environment;  // 1 DAS-5 node
  environment.memory_budget_bytes = 1LL << 30;

  auto run = (*platform)->RunJob(*graph, ga::Algorithm::kBfs, params,
                                 environment);
  if (!run.ok()) {
    std::fprintf(stderr, "job failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }

  // 3. Validate against the reference implementation — the Graphalytics
  //    definition of correctness.
  auto reference = ga::reference::Bfs(*graph, params.source_vertex);
  if (!reference.ok()) return 1;
  ga::Status valid = ga::ValidateOutput(*graph, *reference, run->output);
  std::printf("validation: %s\n", valid.ok() ? "OK" : valid.ToString().c_str());

  // 4. Metrics.
  std::printf("T_proc     : %.6f simulated s\n",
              run->metrics.processing_sim_seconds);
  std::printf("makespan   : %.6f simulated s\n",
              run->metrics.makespan_sim_seconds);
  std::printf("supersteps : %d\n", run->metrics.supersteps);
  std::printf("EPS        : %.3g edges/s\n",
              static_cast<double>(graph->num_edges()) /
                  run->metrics.processing_sim_seconds);
  return valid.ok() ? 0 : 1;
}
