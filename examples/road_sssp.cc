// Road-network routing: build a weighted grid road network (the classic
// SSSP substrate), write it in the Graphalytics .v/.e file format, load
// it back, and compare single-source shortest paths across every platform
// that implements SSSP.
//
// Demonstrates: the on-disk dataset format, weighted graphs, and
// cross-platform output equivalence on a non-social topology.
//
// Build & run:  ./build/examples/road_sssp
#include <cstdio>
#include <filesystem>

#include "algo/reference.h"
#include "core/edge_list.h"
#include "core/rng.h"
#include "platforms/platform.h"

namespace {

// A city-like road grid: Manhattan lattice with random travel times and a
// few diagonal expressways.
ga::Result<ga::Graph> BuildRoadNetwork(int width, int height,
                                       std::uint64_t seed) {
  ga::GraphBuilder builder(ga::Directedness::kUndirected, /*weighted=*/true);
  ga::SplitMix64 rng(seed);
  auto node = [width](int x, int y) {
    return static_cast<ga::VertexId>(y * width + x);
  };
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      if (x + 1 < width) {
        builder.AddEdge(node(x, y), node(x + 1, y),
                        1.0 + 4.0 * rng.NextDouble());
      }
      if (y + 1 < height) {
        builder.AddEdge(node(x, y), node(x, y + 1),
                        1.0 + 4.0 * rng.NextDouble());
      }
      // Sparse expressways: fast diagonal links.
      if (x + 1 < width && y + 1 < height && rng.NextBounded(23) == 0) {
        builder.AddEdge(node(x, y), node(x + 1, y + 1),
                        0.5 + rng.NextDouble());
      }
    }
  }
  return std::move(builder).Build();
}

}  // namespace

int main() {
  auto road = BuildRoadNetwork(120, 80, 7);
  if (!road.ok()) return 1;
  std::printf("road network: %lld intersections, %lld segments\n",
              static_cast<long long>(road->num_vertices()),
              static_cast<long long>(road->num_edges()));

  // Round-trip through the Graphalytics dataset format.
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "road-network").string();
  if (!ga::WriteGraphFiles(*road, prefix).ok()) return 1;
  auto loaded = ga::ReadGraphFiles(prefix, ga::Directedness::kUndirected,
                                   /*weighted=*/true);
  if (!loaded.ok()) {
    std::fprintf(stderr, "reload failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("round-tripped through %s.{v,e}\n\n", prefix.c_str());

  ga::AlgorithmParams params;
  params.source_vertex = 0;  // top-left corner
  auto reference = ga::reference::Sssp(*loaded, params.source_vertex);
  if (!reference.ok()) return 1;

  ga::platform::ExecutionEnvironment environment;
  environment.memory_budget_bytes = 1LL << 30;
  std::printf("%-14s %-12s %-10s %s\n", "platform", "T_proc(sim)",
              "supersteps", "output vs reference");
  for (auto& platform : ga::platform::CreateAllPlatforms()) {
    auto run = platform->RunJob(*loaded, ga::Algorithm::kSssp, params,
                                environment);
    if (!run.ok()) {
      std::printf("%-14s %s\n", platform->info().id.c_str(),
                  run.status().ToString().c_str());
      continue;
    }
    ga::Status valid = ga::ValidateOutput(*loaded, *reference, run->output);
    std::printf("%-14s %-12.6f %-10d %s\n", platform->info().id.c_str(),
                run->metrics.processing_sim_seconds,
                run->metrics.supersteps,
                valid.ok() ? "equivalent" : valid.ToString().c_str());
  }

  // Report one concrete route length.
  const ga::VertexIndex corner = loaded->IndexOf(120 * 80 - 1);
  std::printf("\nshortest travel time to the opposite corner: %.2f\n",
              reference->double_values[corner]);
  std::remove((prefix + ".v").c_str());
  std::remove((prefix + ".e").c_str());
  return 0;
}
