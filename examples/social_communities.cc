// Social-network community analysis — the scenario behind the paper's
// Figure 2: generate two social networks with different target clustering
// coefficients (0.05 vs 0.30), detect communities with CDLP, and show how
// the clustering knob changes the measured coefficient and the community
// structure.
//
// Build & run:  ./build/examples/social_communities
#include <cstdio>
#include <unordered_set>

#include "algo/reference.h"
#include "datagen/socialnet.h"
#include "datagen/stats.h"
#include "platforms/platform.h"

namespace {

void AnalyzeNetwork(double target_clustering) {
  ga::datagen::SocialNetConfig config;
  config.num_persons = 4000;
  config.avg_degree = 18;
  config.target_clustering = target_clustering;
  config.seed = 2026;
  auto network = ga::datagen::GenerateSocialNetwork(config);
  if (!network.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 network.status().ToString().c_str());
    return;
  }
  const ga::Graph& graph = network->graph;

  auto measured = ga::datagen::AverageClusteringCoefficient(graph);
  auto degrees = ga::datagen::ComputeDegreeStats(graph);

  // Detect communities on the GAS engine (PowerGraph analogue), which is
  // one of the platforms that handles community workloads robustly.
  auto platform = ga::platform::CreatePlatform("gaslite");
  ga::AlgorithmParams params;
  params.cdlp_iterations = 10;
  ga::platform::ExecutionEnvironment environment;
  environment.memory_budget_bytes = 1LL << 30;
  auto run = (*platform)->RunJob(graph, ga::Algorithm::kCdlp, params,
                                 environment);
  if (!run.ok()) {
    std::fprintf(stderr, "CDLP failed: %s\n",
                 run.status().ToString().c_str());
    return;
  }
  std::unordered_set<std::int64_t> communities(
      run->output.int_values.begin(), run->output.int_values.end());

  std::printf("target CC %.2f:\n", target_clustering);
  std::printf("  vertices/edges      : %lld / %lld\n",
              static_cast<long long>(graph.num_vertices()),
              static_cast<long long>(graph.num_edges()));
  std::printf("  measured avg CC     : %.3f\n",
              measured.ok() ? *measured : -1.0);
  std::printf("  degree mean/max/gini: %.1f / %lld / %.2f\n", degrees.mean,
              static_cast<long long>(degrees.max), degrees.gini);
  std::printf("  CDLP communities    : %zu  (ground truth blocks: %lld)\n",
              communities.size(),
              static_cast<long long>(network->community_of.back() + 1));
  std::printf("  CDLP T_proc         : %.4f simulated s\n\n",
              run->metrics.processing_sim_seconds);
}

}  // namespace

int main() {
  std::printf(
      "Datagen with a tunable clustering coefficient (paper Figure 2):\n"
      "the same block structure, two very different community densities.\n\n");
  AnalyzeNetwork(0.05);
  AnalyzeNetwork(0.30);
  std::printf(
      "A higher target coefficient yields denser, better-defined\n"
      "communities — fewer, larger CDLP labels — exactly the contrast\n"
      "the paper's Figure 2 visualises.\n");
  return 0;
}
