#include <queue>

#include "algo/reference.h"

namespace ga::reference {

Result<AlgorithmOutput> Bfs(const Graph& graph, VertexId source) {
  const VertexIndex root = graph.IndexOf(source);
  if (root == kInvalidVertex) {
    return Status::InvalidArgument("BFS source vertex " +
                                   std::to_string(source) + " not in graph");
  }
  AlgorithmOutput output;
  output.algorithm = Algorithm::kBfs;
  output.int_values.assign(graph.num_vertices(), kUnreachableHops);
  output.int_values[root] = 0;

  std::queue<VertexIndex> frontier;
  frontier.push(root);
  while (!frontier.empty()) {
    const VertexIndex v = frontier.front();
    frontier.pop();
    const std::int64_t next_hops = output.int_values[v] + 1;
    for (VertexIndex u : graph.OutNeighbors(v)) {
      if (output.int_values[u] == kUnreachableHops) {
        output.int_values[u] = next_hops;
        frontier.push(u);
      }
    }
  }
  return output;
}

}  // namespace ga::reference
