#include <vector>

#include "algo/reference.h"

namespace ga::reference {

Result<AlgorithmOutput> Bfs(const Graph& graph, VertexId source,
                            exec::ThreadPool* pool, granula::Tracer* tracer,
                            granula::Operation* trace_parent) {
  const VertexIndex root = graph.IndexOf(source);
  if (root == kInvalidVertex) {
    return Status::InvalidArgument("BFS source vertex " +
                                   std::to_string(source) + " not in graph");
  }
  AlgorithmOutput output;
  output.algorithm = Algorithm::kBfs;
  output.int_values.assign(graph.num_vertices(), kUnreachableHops);
  output.int_values[root] = 0;

  // Level-synchronous frontier BFS: each level expands host-parallel over
  // frontier slices against the previous level's state; the slot-ordered
  // commit dedupes duplicate discoveries, so hop counts are identical at
  // any thread count (and to a serial queue-based traversal).
  exec::ExecContext ctx(pool);
  std::vector<VertexIndex> frontier{root};
  std::vector<VertexIndex> next;
  exec::SlotBuffers<VertexIndex> discovered;
  std::int64_t hops = 0;
  while (!frontier.empty()) {
    ++hops;
    const std::int64_t frontier_size =
        static_cast<std::int64_t>(frontier.size());
    discovered.Reset(exec::ExecContext::NumSlots(frontier_size));
    exec::parallel_for(
        ctx, 0, frontier_size, [&](const exec::Slice& slice) {
          std::vector<VertexIndex>& out = discovered.buf(slice.slot);
          for (std::int64_t i = slice.begin; i < slice.end; ++i) {
            for (VertexIndex u : graph.OutNeighbors(frontier[i])) {
              if (output.int_values[u] == kUnreachableHops) {
                out.push_back(u);
              }
            }
          }
        });
    next.clear();
    discovered.Drain([&](VertexIndex u) {
      if (output.int_values[u] == kUnreachableHops) {
        output.int_values[u] = hops;
        next.push_back(u);
      }
    });
    if (tracer != nullptr && tracer->enabled() && trace_parent != nullptr) {
      // One wall-clock Superstep child per BFS level, mirroring the
      // engine-side per-superstep spans (the reference has no simulated
      // clock, so only wall timestamps are meaningful).
      tracer->AnnotateFrontier(frontier_size, 0);
      tracer->Annotate("discovered",
                       std::to_string(static_cast<std::int64_t>(next.size())));
      tracer->CloseStepUnder(trace_parent, "Reference", "bfs");
    }
    frontier.swap(next);
  }
  return output;
}

}  // namespace ga::reference
