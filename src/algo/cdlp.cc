#include <vector>

#include "algo/reference.h"
#include "core/exec/scratch_pool.h"

namespace ga::reference {

Result<AlgorithmOutput> Cdlp(const Graph& graph, int iterations) {
  if (iterations < 0) {
    return Status::InvalidArgument("CDLP iterations must be >= 0");
  }
  const VertexIndex n = graph.num_vertices();
  AlgorithmOutput output;
  output.algorithm = Algorithm::kCdlp;
  output.int_values.resize(n);
  for (VertexIndex v = 0; v < n; ++v) {
    output.int_values[v] = graph.ExternalId(v);
  }

  std::vector<std::int64_t> next(n);
  // Reusable sorted-scan label counter: mode with smallest-label
  // tie-break, identical to the hash histogram it replaces but without
  // per-vertex node allocations (reset, not reallocated).
  exec::LabelCounter votes;
  for (int iteration = 0; iteration < iterations; ++iteration) {
    for (VertexIndex v = 0; v < n; ++v) {
      votes.Clear();
      // Directed graphs: in- and out-neighbours each contribute one vote
      // (a reciprocal pair therefore votes twice). Undirected graphs:
      // InNeighbors aliases OutNeighbors, so count only one side.
      for (VertexIndex u : graph.OutNeighbors(v)) {
        votes.Add(output.int_values[u]);
      }
      if (graph.is_directed()) {
        for (VertexIndex u : graph.InNeighbors(v)) {
          votes.Add(output.int_values[u]);
        }
      }
      next[v] = votes.empty() ? output.int_values[v] : votes.Mode();
    }
    output.int_values.swap(next);
  }
  return output;
}

}  // namespace ga::reference
