#include <unordered_map>
#include <vector>

#include "algo/reference.h"

namespace ga::reference {

Result<AlgorithmOutput> Cdlp(const Graph& graph, int iterations) {
  if (iterations < 0) {
    return Status::InvalidArgument("CDLP iterations must be >= 0");
  }
  const VertexIndex n = graph.num_vertices();
  AlgorithmOutput output;
  output.algorithm = Algorithm::kCdlp;
  output.int_values.resize(n);
  for (VertexIndex v = 0; v < n; ++v) {
    output.int_values[v] = graph.ExternalId(v);
  }

  std::vector<std::int64_t> next(n);
  std::unordered_map<std::int64_t, std::int64_t> histogram;
  for (int iteration = 0; iteration < iterations; ++iteration) {
    for (VertexIndex v = 0; v < n; ++v) {
      histogram.clear();
      // Directed graphs: in- and out-neighbours each contribute one vote
      // (a reciprocal pair therefore votes twice). Undirected graphs:
      // InNeighbors aliases OutNeighbors, so count only one side.
      for (VertexIndex u : graph.OutNeighbors(v)) {
        ++histogram[output.int_values[u]];
      }
      if (graph.is_directed()) {
        for (VertexIndex u : graph.InNeighbors(v)) {
          ++histogram[output.int_values[u]];
        }
      }
      if (histogram.empty()) {
        next[v] = output.int_values[v];
        continue;
      }
      std::int64_t best_label = 0;
      std::int64_t best_count = -1;
      for (const auto& [label, count] : histogram) {
        if (count > best_count ||
            (count == best_count && label < best_label)) {
          best_label = label;
          best_count = count;
        }
      }
      next[v] = best_label;
    }
    output.int_values.swap(next);
  }
  return output;
}

}  // namespace ga::reference
