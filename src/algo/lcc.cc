#include <algorithm>
#include <vector>

#include "algo/reference.h"

namespace ga::reference {

Result<AlgorithmOutput> Lcc(const Graph& graph) {
  const VertexIndex n = graph.num_vertices();
  AlgorithmOutput output;
  output.algorithm = Algorithm::kLcc;
  output.double_values.assign(n, 0.0);

  // flag[w] marks membership of w in the current neighbourhood N(v).
  std::vector<char> flag(n, 0);
  std::vector<VertexIndex> neighborhood;
  for (VertexIndex v = 0; v < n; ++v) {
    // N(v) = distinct union of in- and out-neighbours, excluding v.
    neighborhood.clear();
    for (VertexIndex u : graph.OutNeighbors(v)) {
      if (u != v && !flag[u]) {
        flag[u] = 1;
        neighborhood.push_back(u);
      }
    }
    if (graph.is_directed()) {
      for (VertexIndex u : graph.InNeighbors(v)) {
        if (u != v && !flag[u]) {
          flag[u] = 1;
          neighborhood.push_back(u);
        }
      }
    }
    const double degree = static_cast<double>(neighborhood.size());
    if (neighborhood.size() >= 2) {
      // Count directed edges u -> w with both u, w in N(v). For undirected
      // graphs each triangle edge is counted in both directions, matching
      // the undirected denominator convention d*(d-1).
      std::int64_t links = 0;
      for (VertexIndex u : neighborhood) {
        for (VertexIndex w : graph.OutNeighbors(u)) {
          if (w != v && flag[w]) ++links;
        }
      }
      output.double_values[v] =
          static_cast<double>(links) / (degree * (degree - 1.0));
    }
    for (VertexIndex u : neighborhood) flag[u] = 0;
  }
  return output;
}

}  // namespace ga::reference
