#include <cstdint>
#include <vector>

#include "algo/lcc_kernel.h"
#include "algo/reference.h"

namespace ga::reference {

Result<AlgorithmOutput> Lcc(const Graph& graph) {
  const VertexIndex n = graph.num_vertices();
  AlgorithmOutput output;
  output.algorithm = Algorithm::kLcc;
  output.double_values.assign(n, 0.0);

  // Degree-oriented triangle counting over the sorted CSR
  // (algo/lcc_kernel.h): each support triangle is found once from its
  // lowest-rank corner and contributes its opposite edge's directed
  // multiplicity to every corner's links counter. For undirected graphs
  // each triangle edge is counted in both directions, matching the
  // undirected denominator convention d*(d-1).
  exec::ExecContext serial;
  lcc::NeighborhoodIndex index;
  index.Build(serial, graph);
  std::vector<std::int64_t> links;
  index.CountLinks(serial, &links);
  for (VertexIndex v = 0; v < n; ++v) {
    output.double_values[v] = lcc::Coefficient(links[v], index.Degree(v));
  }
  return output;
}

}  // namespace ga::reference
