#include "algo/lcc_kernel.h"

#include <algorithm>

namespace ga::lcc {

void NeighborhoodIndex::Build(exec::ExecContext& exec, const Graph& graph) {
  n_ = graph.num_vertices();
  directed_ = graph.is_directed();

  if (!directed_) {
    // Undirected: the CSR already is the sorted distinct neighbourhood
    // (self-loops and duplicates are dropped at Build), and every
    // support edge has dir == 2 (w in out(u) and u in out(w)).
    support_offsets_ = graph.out_offsets();
    support_adj_ = graph.out_targets();
    support_end_.assign(static_cast<std::size_t>(n_), 0);
    for (VertexIndex v = 0; v < n_; ++v) {
      support_end_[static_cast<std::size_t>(v)] = support_offsets_[v + 1];
    }
    support_dir_.clear();
  } else {
    // Directed: one sorted two-pointer merge of out(v) and in(v) per
    // vertex; an entry present in both directions gets dir == 2. Gap
    // layout: segments are sized by the outdeg+indeg upper bound so no
    // counting pre-pass is needed; support_end_ records the merged size.
    support_offsets_store_.assign(static_cast<std::size_t>(n_) + 1, 0);
    for (VertexIndex v = 0; v < n_; ++v) {
      support_offsets_store_[static_cast<std::size_t>(v) + 1] =
          support_offsets_store_[static_cast<std::size_t>(v)] +
          graph.OutDegree(v) + graph.InDegree(v);
    }
    const auto capacity =
        static_cast<std::size_t>(support_offsets_store_[n_]);
    support_adj_store_.resize(capacity);
    support_dir_.resize(capacity);
    support_end_.assign(static_cast<std::size_t>(n_), 0);
    exec::parallel_for(exec, 0, n_, [&](const exec::Slice& slice) {
      for (VertexIndex v = slice.begin; v < slice.end; ++v) {
        const auto out = graph.OutNeighbors(v);
        const auto in = graph.InNeighbors(v);
        auto cursor =
            static_cast<std::size_t>(support_offsets_store_[v]);
        std::size_t i = 0;
        std::size_t j = 0;
        while (i < out.size() || j < in.size()) {
          VertexIndex u;
          std::uint8_t dir;
          if (j >= in.size() || (i < out.size() && out[i] < in[j])) {
            u = out[i++];
            dir = 1;
          } else if (i >= out.size() || in[j] < out[i]) {
            u = in[j++];
            dir = 1;
          } else {
            u = out[i++];
            ++j;
            dir = 2;
          }
          support_adj_store_[cursor] = u;
          support_dir_[cursor] = dir;
          ++cursor;
        }
        support_end_[static_cast<std::size_t>(v)] =
            static_cast<EdgeIndex>(cursor);
      }
    });
    support_offsets_ = support_offsets_store_;
    support_adj_ = support_adj_store_;
  }

  // Orient: A+(v) keeps the higher-rank members of N(v), id order
  // preserved (filtering a sorted list). Same gap layout — segment
  // capacity |N(v)|, oriented_end_ records the kept count.
  auto rank_less = [this](VertexIndex a, VertexIndex b) {
    const EdgeIndex da = Degree(a);
    const EdgeIndex db = Degree(b);
    return da != db ? da < db : a < b;
  };
  oriented_offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (VertexIndex v = 0; v < n_; ++v) {
    oriented_offsets_[static_cast<std::size_t>(v) + 1] =
        oriented_offsets_[static_cast<std::size_t>(v)] + Degree(v);
  }
  oriented_adj_.resize(static_cast<std::size_t>(oriented_offsets_[n_]));
  if (directed_) {
    oriented_dir_.resize(oriented_adj_.size());
  } else {
    oriented_dir_.clear();
  }
  oriented_end_.assign(static_cast<std::size_t>(n_), 0);
  exec::parallel_for(exec, 0, n_, [&](const exec::Slice& slice) {
    for (VertexIndex v = slice.begin; v < slice.end; ++v) {
      auto cursor = static_cast<std::size_t>(oriented_offsets_[v]);
      const auto base = static_cast<std::size_t>(support_offsets_[v]);
      const auto end = static_cast<std::size_t>(support_end_[v]);
      for (std::size_t k = base; k < end; ++k) {
        const VertexIndex u = support_adj_[k];
        if (!rank_less(v, u)) continue;
        oriented_adj_[cursor] = u;
        if (directed_) oriented_dir_[cursor] = support_dir_[k];
        ++cursor;
      }
      oriented_end_[static_cast<std::size_t>(v)] =
          static_cast<EdgeIndex>(cursor);
    }
  });
}

void NeighborhoodIndex::CountLinks(exec::ExecContext& exec,
                                   std::vector<std::int64_t>* links) const {
  links->assign(static_cast<std::size_t>(n_), 0);
  if (n_ == 0) return;
  const int num_slots =
      exec::ExecContext::NumSlots(n_, exec::ExecContext::kScratchSlots);
  // Triangle corners scatter across slot boundaries, so each slot
  // accumulates into its own O(n) counter array; integer sums merge by
  // index afterwards — order-free, hence thread-count invariant.
  const auto slots = static_cast<std::size_t>(std::max(num_slots, 1));
  std::vector<std::vector<std::int64_t>> slot_links(slots);
  for (auto& acc : slot_links) {
    acc.assign(static_cast<std::size_t>(n_), 0);
  }
  // Forward marking ("count each wedge from its lower-rank endpoint"):
  // stamp A+(v) into the slot's epoch-tagged mark array, then probe each
  // A+(u) against the marks — O(|A+(u)|) per oriented pair instead of
  // the |A+(v)| + |A+(u)| of a pairwise merge, which re-walks the
  // lowest corner's list once per neighbour. The v- and u-corner
  // contributions fold into locals and land once per pair; only the
  // third corner w takes a per-match array write.
  std::vector<std::vector<std::uint32_t>> slot_stamps(slots);
  std::vector<std::vector<std::uint8_t>> slot_mark_dir(slots);
  for (std::size_t s = 0; s < slots; ++s) {
    slot_stamps[s].assign(static_cast<std::size_t>(n_), 0);
    if (directed_) slot_mark_dir[s].resize(static_cast<std::size_t>(n_));
  }
  exec::parallel_for(
      exec, 0, n_,
      [&](const exec::Slice& slice) {
        std::vector<std::int64_t>& acc = slot_links[slice.slot];
        std::vector<std::uint32_t>& stamps = slot_stamps[slice.slot];
        std::vector<std::uint8_t>& mark_dir = slot_mark_dir[slice.slot];
        std::uint32_t epoch = 0;
        for (VertexIndex v = slice.begin; v < slice.end; ++v) {
          const auto v_begin =
              static_cast<std::size_t>(oriented_offsets_[v]);
          const auto v_end = static_cast<std::size_t>(
              oriented_end_[static_cast<std::size_t>(v)]);
          if (v_end - v_begin < 2) continue;  // no wedge can close
          if (++epoch == 0) {
            // Stamp wrap-around: one full reset every 2^32 vertices.
            std::fill(stamps.begin(), stamps.end(), 0u);
            epoch = 1;
          }
          for (std::size_t p = v_begin; p < v_end; ++p) {
            const auto w = static_cast<std::size_t>(oriented_adj_[p]);
            stamps[w] = epoch;
            if (directed_) mark_dir[w] = oriented_dir_[p];
          }
          // The probe loops are branch-free: triangle-closure rates on
          // clustered graphs sit near 50%, the worst case for a branch
          // predictor, so each probe folds through a match mask instead
          // (the masked acc[w] update stays cache-resident — the mark
          // array already touched the same working set).
          std::int64_t v_total = 0;
          for (std::size_t p = v_begin; p < v_end; ++p) {
            const VertexIndex u = oriented_adj_[p];
            const std::int64_t dir_vu = directed_ ? oriented_dir_[p] : 2;
            auto q = static_cast<std::size_t>(oriented_offsets_[u]);
            const auto q_end = static_cast<std::size_t>(
                oriented_end_[static_cast<std::size_t>(u)]);
            std::int64_t u_total = 0;
            if (directed_) {
              for (; q < q_end; ++q) {
                const auto w = static_cast<std::size_t>(oriented_adj_[q]);
                // Triangle {v, u, w}, v lowest rank; each corner gains
                // the directed multiplicity of its opposite edge.
                const std::int64_t m =
                    -static_cast<std::int64_t>(stamps[w] == epoch);
                v_total += m & oriented_dir_[q];  // dir(u, w)
                u_total += m & mark_dir[w];       // dir(v, w)
                acc[w] += m & dir_vu;
              }
            } else {
              for (; q < q_end; ++q) {
                const auto w = static_cast<std::size_t>(oriented_adj_[q]);
                const std::int64_t m =
                    -static_cast<std::int64_t>(stamps[w] == epoch);
                v_total += m & 2;
                u_total += m & 2;
                acc[w] += m & 2;
              }
            }
            if (u_total != 0) acc[static_cast<std::size_t>(u)] += u_total;
          }
          if (v_total != 0) acc[static_cast<std::size_t>(v)] += v_total;
        }
      },
      exec::ExecContext::kScratchSlots);
  exec::parallel_for(exec, 0, n_, [&](const exec::Slice& slice) {
    for (VertexIndex v = slice.begin; v < slice.end; ++v) {
      std::int64_t total = 0;
      for (const auto& acc : slot_links) {
        total += acc[static_cast<std::size_t>(v)];
      }
      (*links)[static_cast<std::size_t>(v)] = total;
    }
  });
}

}  // namespace ga::lcc
