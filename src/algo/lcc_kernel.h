// Degree-oriented triangle kernel for LCC over sorted CSR adjacency.
//
// LCC(v) needs links(v) = |{(u, w) : u, w in N(v), w in out(u)}|, where
// N(v) is the distinct union of v's in- and out-neighbours. The engines
// used to count it with an O(n) per-slot flag array: mark N(v), rescan
// every u's out-list testing flags — O(sum_{u in N(v)} outdeg(u)) work
// per vertex, which double-counts every wedge from both endpoints and
// explodes on hubs (the degree-squared term that makes LCC the paper's
// failure-mode workload, §4.2).
//
// NeighborhoodIndex does the standard orientation trick instead. Each
// unordered neighbour pair {u, w} is a *support edge* carrying its
// directed multiplicity dir(u, w) = (w in out(u)) + (u in out(w)); the
// support edges are oriented from the lower-degree endpoint (ties by id),
// which bounds every oriented adjacency list by O(sqrt(m))-ish even on
// hubs. Each support triangle {v, u, w} is then found exactly once — a
// sorted merge of the two oriented lists of its lowest-rank corner — and
// contributes dir() of its opposite edge to each corner's links counter:
//
//   links(v) = sum over support triangles {v, u, w} of dir(u, w).
//
// Everything is built from the already-sorted CSR (GraphBuilder
// guarantees sorted, self-loop-free, duplicate-free adjacency): for
// undirected graphs the support graph IS the CSR (aliased, dir == 2
// everywhere); for directed graphs it is one sorted out/in merge per
// vertex. Counting runs host-parallel with per-slot integer accumulators
// merged in fixed order — sums of integers are order-free, so results
// are identical at any host thread count.
//
// The engines keep charging their *simulated* platforms for the
// flag-array scan the modeled Feb'16 systems actually perform
// (ScannedEdgesProxy), so simulated metrics stay faithful while the host
// does asymptotically less work.
#ifndef GRAPHALYTICS_ALGO_LCC_KERNEL_H_
#define GRAPHALYTICS_ALGO_LCC_KERNEL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/exec/exec.h"
#include "core/graph.h"
#include "core/types.h"

namespace ga::lcc {

class NeighborhoodIndex {
 public:
  /// Builds the support graph and its degree-oriented DAG. Host-parallel
  /// and deterministic; O(adjacency) work, O(support edges) memory (zero
  /// extra for undirected graphs, which alias the CSR).
  void Build(exec::ExecContext& exec, const Graph& graph);

  /// N(v): sorted distinct neighbourhood of v, self excluded.
  std::span<const VertexIndex> Neighbors(VertexIndex v) const {
    return {support_adj_.data() + support_offsets_[v],
            static_cast<std::size_t>(support_end_[v] -
                                     support_offsets_[v])};
  }
  /// |N(v)| — the LCC denominator's d.
  EdgeIndex Degree(VertexIndex v) const {
    return support_end_[v] - support_offsets_[v];
  }

  /// links(v) for every vertex into `links` (sized n). Host-parallel;
  /// per-slot accumulators merge by index, so the result is identical at
  /// any thread count.
  void CountLinks(exec::ExecContext& exec,
                  std::vector<std::int64_t>* links) const;

 private:
  VertexIndex n_ = 0;
  bool directed_ = false;

  // Support adjacency in gap layout (segment v occupies
  // [offsets[v], end[v]), capacity to offsets[v+1] — sized by the
  // outdeg+indeg upper bound so the build needs no counting pre-pass).
  // Directed graphs store their own arrays; undirected graphs point the
  // spans at the Graph's CSR.
  std::vector<EdgeIndex> support_offsets_store_;
  std::vector<VertexIndex> support_adj_store_;
  std::span<const EdgeIndex> support_offsets_;
  std::span<const VertexIndex> support_adj_;
  std::vector<EdgeIndex> support_end_;
  std::vector<std::uint8_t> support_dir_;  // dir(v, u); empty if undirected

  // Degree-oriented DAG: A+(v) = {u in N(v) : rank(v) < rank(u)}, each
  // list sorted by vertex id (same gap layout); oriented_dir_ carries
  // dir(v, u).
  std::vector<EdgeIndex> oriented_offsets_;
  std::vector<VertexIndex> oriented_adj_;
  std::vector<EdgeIndex> oriented_end_;
  std::vector<std::uint8_t> oriented_dir_;  // empty if undirected (== 2)
};

/// The edge-scan volume of the flag-array formulation this kernel
/// replaces: sum over u in `neighborhood` of outdeg(u). Engines charge
/// their simulated platforms with this (the modeled systems do scan it),
/// even though the host-side oriented count touches far less.
inline std::uint64_t ScannedEdgesProxy(
    const Graph& graph, std::span<const VertexIndex> neighborhood) {
  std::uint64_t scanned = 0;
  for (VertexIndex u : neighborhood) {
    scanned += static_cast<std::uint64_t>(graph.OutDegree(u));
  }
  return scanned;
}

/// LCC(v) given links and the distinct-neighbour count: links / (d(d-1)).
inline double Coefficient(std::int64_t links, std::int64_t degree) {
  if (degree < 2) return 0.0;
  const double d = static_cast<double>(degree);
  return static_cast<double>(links) / (d * (d - 1.0));
}

}  // namespace ga::lcc

#endif  // GRAPHALYTICS_ALGO_LCC_KERNEL_H_
