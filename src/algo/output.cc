#include "algo/output.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>

namespace ga {

namespace {

std::string VertexLabel(const Graph& graph, std::size_t index) {
  return "vertex " + std::to_string(graph.ExternalId(
                         static_cast<VertexIndex>(index)));
}

Status ValidateExactInts(const Graph& graph,
                         const std::vector<std::int64_t>& reference,
                         const std::vector<std::int64_t>& actual) {
  if (reference.size() != actual.size()) {
    return Status::InvalidArgument("output size mismatch");
  }
  for (std::size_t i = 0; i < reference.size(); ++i) {
    if (reference[i] != actual[i]) {
      return Status::InvalidArgument(
          VertexLabel(graph, i) + ": expected " +
          std::to_string(reference[i]) + ", got " + std::to_string(actual[i]));
    }
  }
  return Status::Ok();
}

Status ValidateEpsilonDoubles(const Graph& graph,
                              const std::vector<double>& reference,
                              const std::vector<double>& actual,
                              double epsilon) {
  if (reference.size() != actual.size()) {
    return Status::InvalidArgument("output size mismatch");
  }
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double expected = reference[i];
    const double got = actual[i];
    if (std::isinf(expected) || std::isinf(got)) {
      if (std::isinf(expected) && std::isinf(got)) continue;
      return Status::InvalidArgument(VertexLabel(graph, i) +
                                     ": infinity mismatch");
    }
    const double scale = std::max({std::fabs(expected), std::fabs(got), 1e-30});
    if (std::fabs(expected - got) > epsilon * scale &&
        std::fabs(expected - got) > 1e-12) {
      char buffer[128];
      std::snprintf(buffer, sizeof(buffer), ": expected %.12g, got %.12g",
                    expected, got);
      return Status::InvalidArgument(VertexLabel(graph, i) + buffer);
    }
  }
  return Status::Ok();
}

// Two labellings are equivalent iff they induce the same partition of the
// vertex set: there must be a bijection between reference labels and actual
// labels.
Status ValidateEquivalence(const Graph& graph,
                           const std::vector<std::int64_t>& reference,
                           const std::vector<std::int64_t>& actual) {
  if (reference.size() != actual.size()) {
    return Status::InvalidArgument("output size mismatch");
  }
  std::unordered_map<std::int64_t, std::int64_t> forward;
  std::unordered_map<std::int64_t, std::int64_t> backward;
  // Worst case one component per vertex: size the maps to the output so
  // the validation sweep never rehashes mid-scan.
  forward.reserve(reference.size());
  backward.reserve(reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    auto [fit, finserted] = forward.emplace(reference[i], actual[i]);
    if (!finserted && fit->second != actual[i]) {
      return Status::InvalidArgument(
          VertexLabel(graph, i) +
          ": splits reference component " + std::to_string(reference[i]));
    }
    auto [bit, binserted] = backward.emplace(actual[i], reference[i]);
    if (!binserted && bit->second != reference[i]) {
      return Status::InvalidArgument(
          VertexLabel(graph, i) + ": merges reference components " +
          std::to_string(bit->second) + " and " +
          std::to_string(reference[i]));
    }
  }
  return Status::Ok();
}

}  // namespace

Status ValidateOutput(const Graph& graph, const AlgorithmOutput& reference,
                      const AlgorithmOutput& actual,
                      const ValidationOptions& options) {
  if (reference.algorithm != actual.algorithm) {
    return Status::InvalidArgument("algorithm mismatch");
  }
  switch (reference.algorithm) {
    case Algorithm::kBfs:
    case Algorithm::kCdlp:
      return ValidateExactInts(graph, reference.int_values,
                               actual.int_values);
    case Algorithm::kWcc:
      return ValidateEquivalence(graph, reference.int_values,
                                 actual.int_values);
    case Algorithm::kPageRank:
    case Algorithm::kLcc:
    case Algorithm::kSssp:
      return ValidateEpsilonDoubles(graph, reference.double_values,
                                    actual.double_values, options.epsilon);
  }
  return Status::Internal("unknown algorithm");
}

std::string FormatOutput(const Graph& graph, const AlgorithmOutput& output) {
  std::string text;
  const bool integral = !output.int_values.empty();
  const std::size_t n = output.size();
  for (std::size_t i = 0; i < n; ++i) {
    text += std::to_string(graph.ExternalId(static_cast<VertexIndex>(i)));
    text += ' ';
    if (integral) {
      text += std::to_string(output.int_values[i]);
    } else {
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "%.12g", output.double_values[i]);
      text += buffer;
    }
    text += '\n';
  }
  return text;
}

}  // namespace ga
