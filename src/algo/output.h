// Algorithm output container and output-equivalence validation.
//
// The paper defines platform correctness as "output equivalence to the
// provided reference implementation" (Section 2.2.3). Equivalence is
// algorithm-specific:
//   * BFS  : exact hop counts (unreachable = kUnreachableHops);
//   * PR   : element-wise match within relative epsilon (summation order
//            differs across engines);
//   * WCC  : component labellings must induce the same partition (labels
//            themselves are platform-specific);
//   * CDLP : exact labels (the selected variant is deterministic);
//   * LCC  : element-wise match within epsilon;
//   * SSSP : distances within epsilon, infinities matching exactly.
#ifndef GRAPHALYTICS_ALGO_OUTPUT_H_
#define GRAPHALYTICS_ALGO_OUTPUT_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/graph.h"
#include "core/status.h"
#include "core/types.h"

namespace ga {

/// Hop count reported by BFS for unreachable vertices (Graphalytics uses
/// the maximum representable integer).
inline constexpr std::int64_t kUnreachableHops =
    std::numeric_limits<std::int64_t>::max();

/// Distance reported by SSSP for unreachable vertices.
inline constexpr double kUnreachableDistance =
    std::numeric_limits<double>::infinity();

/// One value per vertex, indexed by internal vertex index. Which vector is
/// populated depends on the algorithm: BFS/WCC/CDLP produce integers,
/// PR/LCC/SSSP produce doubles.
struct AlgorithmOutput {
  Algorithm algorithm = Algorithm::kBfs;
  std::vector<std::int64_t> int_values;
  std::vector<double> double_values;

  std::size_t size() const {
    return int_values.empty() ? double_values.size() : int_values.size();
  }
};

struct ValidationOptions {
  /// Relative tolerance for floating-point outputs.
  double epsilon = 1e-4;
};

/// Checks `actual` against `reference` under the algorithm's equivalence
/// rule. Returns OK on match; otherwise an InvalidArgument status naming
/// the first offending vertex (by external id, resolved through `graph`).
Status ValidateOutput(const Graph& graph, const AlgorithmOutput& reference,
                      const AlgorithmOutput& actual,
                      const ValidationOptions& options = {});

/// Renders the output in the Graphalytics reference-output file format:
/// one "<external vertex id> <value>" line per vertex.
std::string FormatOutput(const Graph& graph, const AlgorithmOutput& output);

}  // namespace ga

#endif  // GRAPHALYTICS_ALGO_OUTPUT_H_
