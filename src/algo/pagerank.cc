#include <vector>

#include "algo/reference.h"

namespace ga::reference {

Result<AlgorithmOutput> PageRank(const Graph& graph, int iterations,
                                 double damping) {
  if (iterations < 0) {
    return Status::InvalidArgument("PageRank iterations must be >= 0");
  }
  if (damping < 0.0 || damping > 1.0) {
    return Status::InvalidArgument("damping factor must be in [0, 1]");
  }
  const VertexIndex n = graph.num_vertices();
  AlgorithmOutput output;
  output.algorithm = Algorithm::kPageRank;
  if (n == 0) return output;

  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (int iteration = 0; iteration < iterations; ++iteration) {
    double dangling_mass = 0.0;
    for (VertexIndex v = 0; v < n; ++v) {
      if (graph.OutDegree(v) == 0) dangling_mass += rank[v];
    }
    const double base = (1.0 - damping) / static_cast<double>(n) +
                        damping * dangling_mass / static_cast<double>(n);
    for (VertexIndex v = 0; v < n; ++v) {
      double incoming = 0.0;
      for (VertexIndex u : graph.InNeighbors(v)) {
        incoming += rank[u] / static_cast<double>(graph.OutDegree(u));
      }
      next[v] = base + damping * incoming;
    }
    rank.swap(next);
  }
  output.double_values = std::move(rank);
  return output;
}

}  // namespace ga::reference
