#include <vector>

#include "algo/reference.h"

namespace ga::reference {

Result<AlgorithmOutput> PageRank(const Graph& graph, int iterations,
                                 double damping, exec::ThreadPool* pool) {
  if (iterations < 0) {
    return Status::InvalidArgument("PageRank iterations must be >= 0");
  }
  if (damping < 0.0 || damping > 1.0) {
    return Status::InvalidArgument("damping factor must be in [0, 1]");
  }
  const VertexIndex n = graph.num_vertices();
  AlgorithmOutput output;
  output.algorithm = Algorithm::kPageRank;
  if (n == 0) return output;

  // Pull-based power iteration, host-parallel per sweep. The dangling
  // mass reduces per slot and merges in slot order; the per-vertex pull
  // writes are disjoint — bit-identical at any thread count.
  exec::ExecContext ctx(pool);
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (int iteration = 0; iteration < iterations; ++iteration) {
    const double dangling_mass = exec::parallel_reduce(
        ctx, 0, n, 0.0,
        [&](const exec::Slice& slice, double& acc) {
          for (VertexIndex v = slice.begin; v < slice.end; ++v) {
            if (graph.OutDegree(v) == 0) acc += rank[v];
          }
        },
        [](double& into, double from) { into += from; });
    const double base = (1.0 - damping) / static_cast<double>(n) +
                        damping * dangling_mass / static_cast<double>(n);
    exec::parallel_for(ctx, 0, n, [&](const exec::Slice& slice) {
      for (VertexIndex v = slice.begin; v < slice.end; ++v) {
        double incoming = 0.0;
        for (VertexIndex u : graph.InNeighbors(v)) {
          incoming += rank[u] / static_cast<double>(graph.OutDegree(u));
        }
        next[v] = base + damping * incoming;
      }
    });
    rank.swap(next);
  }
  output.double_values = std::move(rank);
  return output;
}

}  // namespace ga::reference
