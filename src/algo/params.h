// Per-algorithm parameters, as defined by the Graphalytics benchmark
// description (Figure 1, component 1: "the algorithm parameters for each
// graph (e.g., the root for BFS or number of iterations for PR)").
#ifndef GRAPHALYTICS_ALGO_PARAMS_H_
#define GRAPHALYTICS_ALGO_PARAMS_H_

#include "core/types.h"

namespace ga {

struct AlgorithmParams {
  /// Source vertex (external id) for BFS and SSSP.
  VertexId source_vertex = 0;
  /// Fixed iteration count for PageRank.
  int pagerank_iterations = 20;
  /// Damping factor for PageRank.
  double damping_factor = 0.85;
  /// Fixed iteration count for CDLP.
  int cdlp_iterations = 10;
};

}  // namespace ga

#endif  // GRAPHALYTICS_ALGO_PARAMS_H_
