// Reference (serial, exact) implementations of the six Graphalytics core
// algorithms (Section 2.2.3 of the paper). These define ground truth for
// validating the platform analogues, exactly as the paper's reference
// implementations define correctness for the real platforms.
#ifndef GRAPHALYTICS_ALGO_REFERENCE_H_
#define GRAPHALYTICS_ALGO_REFERENCE_H_

#include <cstdint>
#include <vector>

#include "algo/output.h"
#include "algo/params.h"
#include "core/exec/exec.h"
#include "core/graph.h"
#include "core/status.h"
#include "core/types.h"
#include "granula/tracer.h"

namespace ga::reference {

// The frontier/sweep-parallel references (BFS, PageRank's pull sweep,
// WCC's labelling pass) run their main loops through ga::exec; `pool` is
// optional host parallelism — outputs are identical at any thread count.
//
// References share the deep-tracing API with the platform engines
// (docs/OBSERVABILITY.md): pass an enabled granula::Tracer plus a parent
// Operation and the frontier-driven references append one wall-clock
// Superstep child per level/iteration (Tracer::CloseStepUnder). Tracing
// never alters the computed output.

/// Breadth-first search: minimum number of hops from `source` (external id)
/// to every vertex, following out-edges; kUnreachableHops if unreachable.
Result<AlgorithmOutput> Bfs(const Graph& graph, VertexId source,
                            exec::ThreadPool* pool = nullptr,
                            granula::Tracer* tracer = nullptr,
                            granula::Operation* trace_parent = nullptr);

/// PageRank with a fixed number of iterations, damping factor d, uniform
/// 1/n initialisation, and dangling-vertex mass redistributed uniformly.
Result<AlgorithmOutput> PageRank(const Graph& graph, int iterations,
                                 double damping,
                                 exec::ThreadPool* pool = nullptr);

/// Weakly connected components. Label = smallest external vertex id in the
/// component (deterministic canonical labelling).
Result<AlgorithmOutput> Wcc(const Graph& graph,
                            exec::ThreadPool* pool = nullptr);

/// Community detection by label propagation — the deterministic parallel
/// variant used by the paper [Raghavan et al., modified per the technical
/// report]: synchronous updates for a fixed number of iterations; the new
/// label is the most frequent label among in- and out-neighbours (each
/// direction contributes separately), ties broken towards the smallest
/// label. Initial label = external vertex id.
Result<AlgorithmOutput> Cdlp(const Graph& graph, int iterations);

/// Local clustering coefficient: for each vertex, the ratio of the number
/// of directed edges that exist between its neighbours (union of in- and
/// out-neighbours) to the number that could exist, d*(d-1). Vertices with
/// fewer than two neighbours score 0.
Result<AlgorithmOutput> Lcc(const Graph& graph);

/// Single-source shortest paths over double edge weights (Dijkstra).
/// Requires a weighted graph; kUnreachableDistance if unreachable.
Result<AlgorithmOutput> Sssp(const Graph& graph, VertexId source);

/// Dispatches to the implementation for `algorithm`.
Result<AlgorithmOutput> Run(const Graph& graph, Algorithm algorithm,
                            const AlgorithmParams& params,
                            exec::ThreadPool* pool = nullptr);

}  // namespace ga::reference

#endif  // GRAPHALYTICS_ALGO_REFERENCE_H_
