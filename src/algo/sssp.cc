#include <queue>
#include <utility>
#include <vector>

#include "algo/reference.h"

namespace ga::reference {

Result<AlgorithmOutput> Sssp(const Graph& graph, VertexId source) {
  if (!graph.is_weighted()) {
    return Status::FailedPrecondition("SSSP requires a weighted graph");
  }
  const VertexIndex root = graph.IndexOf(source);
  if (root == kInvalidVertex) {
    return Status::InvalidArgument("SSSP source vertex " +
                                   std::to_string(source) + " not in graph");
  }
  AlgorithmOutput output;
  output.algorithm = Algorithm::kSssp;
  output.double_values.assign(graph.num_vertices(), kUnreachableDistance);
  output.double_values[root] = 0.0;

  using Entry = std::pair<double, VertexIndex>;  // (distance, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.emplace(0.0, root);
  while (!heap.empty()) {
    const auto [distance, v] = heap.top();
    heap.pop();
    if (distance > output.double_values[v]) continue;  // stale entry
    const auto neighbors = graph.OutNeighbors(v);
    const auto weights = graph.OutWeights(v);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const double candidate = distance + weights[i];
      if (candidate < output.double_values[neighbors[i]]) {
        output.double_values[neighbors[i]] = candidate;
        heap.emplace(candidate, neighbors[i]);
      }
    }
  }
  return output;
}

Result<AlgorithmOutput> Run(const Graph& graph, Algorithm algorithm,
                            const AlgorithmParams& params,
                            exec::ThreadPool* pool) {
  switch (algorithm) {
    case Algorithm::kBfs:
      return Bfs(graph, params.source_vertex, pool);
    case Algorithm::kPageRank:
      return PageRank(graph, params.pagerank_iterations,
                      params.damping_factor, pool);
    case Algorithm::kWcc:
      return Wcc(graph, pool);
    case Algorithm::kCdlp:
      return Cdlp(graph, params.cdlp_iterations);
    case Algorithm::kLcc:
      return Lcc(graph);
    case Algorithm::kSssp:
      return Sssp(graph, params.source_vertex);
  }
  return Status::Internal("unknown algorithm");
}

}  // namespace ga::reference
