#include <numeric>
#include <vector>

#include "algo/reference.h"

namespace ga::reference {

namespace {

// Union-find with path halving and union by size.
class DisjointSets {
 public:
  explicit DisjointSets(VertexIndex n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), VertexIndex{0});
  }

  VertexIndex Find(VertexIndex v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }

  void Union(VertexIndex a, VertexIndex b) {
    VertexIndex ra = Find(a);
    VertexIndex rb = Find(b);
    if (ra == rb) return;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
  }

 private:
  std::vector<VertexIndex> parent_;
  std::vector<VertexIndex> size_;
};

}  // namespace

Result<AlgorithmOutput> Wcc(const Graph& graph, exec::ThreadPool* pool) {
  const VertexIndex n = graph.num_vertices();
  DisjointSets sets(n);
  for (const Edge& edge : graph.edges()) {
    sets.Union(edge.source, edge.target);
  }

  // Canonical label: smallest external id in the component. External ids
  // are sorted ascending by construction, so the first vertex index seen
  // per root has the smallest external id. The union phase above is
  // inherently sequential; the labelling sweep below runs host-parallel
  // over the compressed (read-only) root array.
  AlgorithmOutput output;
  output.algorithm = Algorithm::kWcc;
  output.int_values.assign(n, -1);
  std::vector<VertexIndex> root_of(n);
  std::vector<std::int64_t> label_of_root(n, -1);
  for (VertexIndex v = 0; v < n; ++v) {
    root_of[v] = sets.Find(v);
    if (label_of_root[root_of[v]] == -1) {
      label_of_root[root_of[v]] = graph.ExternalId(v);
    }
  }
  exec::ExecContext ctx(pool);
  exec::parallel_for(ctx, 0, n, [&](const exec::Slice& slice) {
    for (VertexIndex v = slice.begin; v < slice.end; ++v) {
      output.int_values[v] = label_of_root[root_of[v]];
    }
  });
  return output;
}

}  // namespace ga::reference
