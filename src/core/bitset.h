// Dense dynamic bitset used for BFS frontiers and visited sets.
#ifndef GRAPHALYTICS_CORE_BITSET_H_
#define GRAPHALYTICS_CORE_BITSET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ga {

class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  std::size_t size() const { return size_; }

  void Set(std::size_t i) { words_[i >> 6] |= 1ULL << (i & 63); }
  void Reset(std::size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }
  bool Test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  /// Sets bit i; returns true iff the bit was previously clear.
  bool TestAndSet(std::size_t i) {
    std::uint64_t& word = words_[i >> 6];
    std::uint64_t mask = 1ULL << (i & 63);
    if (word & mask) return false;
    word |= mask;
    return true;
  }

  void Clear() { words_.assign(words_.size(), 0); }

  std::size_t Count() const {
    std::size_t total = 0;
    for (std::uint64_t word : words_) total += std::popcount(word);
    return total;
  }

  bool Any() const {
    for (std::uint64_t word : words_) {
      if (word != 0) return true;
    }
    return false;
  }

  /// Calls fn(index) for every set bit, in increasing index order.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        int bit = std::countr_zero(word);
        fn(w * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace ga

#endif  // GRAPHALYTICS_CORE_BITSET_H_
