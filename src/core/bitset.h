// Dense dynamic bitset used for BFS frontiers and visited sets.
#ifndef GRAPHALYTICS_CORE_BITSET_H_
#define GRAPHALYTICS_CORE_BITSET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ga {

class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  /// Re-targets the bitset at `size` bits, all clear. The backing word
  /// array only ever grows, so alternating between sizes stays
  /// allocation-free once the high-water mark is reached.
  void Resize(std::size_t size) {
    size_ = size;
    words_.assign((size + 63) / 64, 0);
  }

  std::size_t size() const { return size_; }

  void Set(std::size_t i) { words_[i >> 6] |= 1ULL << (i & 63); }
  void Reset(std::size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }
  bool Test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  /// Sets bit i; returns true iff the bit was previously clear.
  bool TestAndSet(std::size_t i) {
    std::uint64_t& word = words_[i >> 6];
    std::uint64_t mask = 1ULL << (i & 63);
    if (word & mask) return false;
    word |= mask;
    return true;
  }

  void Clear() { words_.assign(words_.size(), 0); }

  /// Sets every bit in [0, size). Word-parallel: whole words are filled
  /// and the tail word is masked.
  void SetAll() {
    if (words_.empty()) return;
    words_.assign(words_.size(), ~std::uint64_t{0});
    const std::size_t tail = size_ & 63;
    if (tail != 0) words_.back() = (std::uint64_t{1} << tail) - 1;
  }

  /// Raw word view (64 bits per word, bit i at word i/64). Lets callers
  /// run word-parallel scans (popcounts, unions) without per-bit calls.
  std::span<const std::uint64_t> words() const { return words_; }

  /// Replaces the whole bit array from a checkpointed word dump
  /// (ga::resilience). `size` is the bit count; `words` must hold
  /// exactly (size+63)/64 entries — callers validate before restoring.
  void RestoreWords(std::size_t size, std::span<const std::uint64_t> words) {
    size_ = size;
    words_.assign(words.begin(), words.end());
  }

  std::size_t Count() const {
    std::size_t total = 0;
    for (std::uint64_t word : words_) total += std::popcount(word);
    return total;
  }

  bool Any() const {
    for (std::uint64_t word : words_) {
      if (word != 0) return true;
    }
    return false;
  }

  /// Calls fn(index) for every set bit, in increasing index order.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        int bit = std::countr_zero(word);
        fn(w * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// Calls fn(index) for every set bit in [begin, end), ascending.
  /// Word-parallel: whole words scan via popcount chains, the boundary
  /// words are masked — O((end-begin)/64 + bits set in range).
  template <typename Fn>
  void ForEachSetInRange(std::size_t begin, std::size_t end, Fn&& fn) const {
    if (begin >= end) return;
    const std::size_t first_word = begin >> 6;
    const std::size_t last_word = (end - 1) >> 6;
    for (std::size_t w = first_word; w <= last_word; ++w) {
      std::uint64_t word = words_[w];
      if (w == first_word && (begin & 63) != 0) {
        word &= ~std::uint64_t{0} << (begin & 63);
      }
      if (w == last_word && (end & 63) != 0) {
        word &= (std::uint64_t{1} << (end & 63)) - 1;
      }
      while (word != 0) {
        int bit = std::countr_zero(word);
        fn(w * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace ga

#endif  // GRAPHALYTICS_CORE_BITSET_H_
