#include "core/edge_list.h"

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace ga {

namespace {

// Parses one whitespace-separated token as T starting at *pos; advances *pos.
template <typename T>
bool ParseToken(std::string_view line, std::size_t* pos, T* out) {
  while (*pos < line.size() && (line[*pos] == ' ' || line[*pos] == '\t')) {
    ++*pos;
  }
  if (*pos >= line.size()) return false;
  const char* begin = line.data() + *pos;
  const char* end = line.data() + line.size();
  // std::from_chars for double is available in libstdc++ 11+.
  const std::from_chars_result result = std::from_chars(begin, end, *out);
  if (result.ec != std::errc()) return false;
  *pos = static_cast<std::size_t>(result.ptr - line.data());
  return true;
}

// A fully consumed line may only carry whitespace after its last token.
bool OnlyTrailingWhitespace(std::string_view line, std::size_t pos) {
  for (; pos < line.size(); ++pos) {
    if (line[pos] != ' ' && line[pos] != '\t') return false;
  }
  return true;
}

std::string_view StripCarriageReturn(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

Status MalformedAt(const std::string& name, int line_number,
                   std::string_view what) {
  return Status::IoError(name + ":" + std::to_string(line_number) + ": " +
                         std::string(what));
}

// Visits every line of `text` (split on '\n'), calling
// fn(line_number, line). Stops at the first non-OK Status.
template <typename Fn>
Status ForEachLine(const std::string& text, Fn&& fn) {
  std::size_t line_start = 0;
  int line_number = 0;
  while (line_start < text.size()) {
    std::size_t line_end = text.find('\n', line_start);
    if (line_end == std::string::npos) line_end = text.size();
    std::string_view line(text.data() + line_start, line_end - line_start);
    ++line_number;
    line_start = line_end + 1;
    GA_RETURN_IF_ERROR(fn(line_number, line));
  }
  return Status::Ok();
}

}  // namespace

LineParse ParseVertexLine(std::string_view line, VertexId* id) {
  line = StripCarriageReturn(line);
  if (line.empty() || line[0] == '#') return LineParse::kSkip;
  std::size_t pos = 0;
  if (!ParseToken(line, &pos, id)) return LineParse::kMalformed;
  if (!OnlyTrailingWhitespace(line, pos)) return LineParse::kMalformed;
  return LineParse::kOk;
}

LineParse ParseEdgeLine(std::string_view line, bool weighted,
                        VertexId* source, VertexId* target, Weight* weight) {
  line = StripCarriageReturn(line);
  if (line.empty() || line[0] == '#') return LineParse::kSkip;
  std::size_t pos = 0;
  if (!ParseToken(line, &pos, source) || !ParseToken(line, &pos, target)) {
    return LineParse::kMalformed;
  }
  *weight = 1.0;
  if (weighted && !ParseToken(line, &pos, weight)) {
    return LineParse::kMalformed;
  }
  if (!OnlyTrailingWhitespace(line, pos)) return LineParse::kMalformed;
  return LineParse::kOk;
}

Result<std::string> ReadTextFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

Status WriteGraphFiles(const Graph& graph, const std::string& path_prefix) {
  {
    std::ofstream vfile(path_prefix + ".v");
    if (!vfile) return Status::IoError("cannot write " + path_prefix + ".v");
    for (VertexIndex v = 0; v < graph.num_vertices(); ++v) {
      vfile << graph.ExternalId(v) << '\n';
    }
  }
  {
    std::ofstream efile(path_prefix + ".e");
    if (!efile) return Status::IoError("cannot write " + path_prefix + ".e");
    for (const Edge& edge : graph.edges()) {
      efile << graph.ExternalId(edge.source) << ' '
            << graph.ExternalId(edge.target);
      if (graph.is_weighted()) efile << ' ' << edge.weight;
      efile << '\n';
    }
  }
  return Status::Ok();
}

Result<Graph> ReadGraphFiles(const std::string& path_prefix,
                             Directedness directedness, bool weighted,
                             exec::ThreadPool* pool) {
  GA_ASSIGN_OR_RETURN(std::string vertex_text,
                      ReadTextFile(path_prefix + ".v"));
  GA_ASSIGN_OR_RETURN(std::string edge_text, ReadTextFile(path_prefix + ".e"));
  return ParseGraphText(vertex_text, edge_text, directedness, weighted,
                        path_prefix + ".v", path_prefix + ".e", pool);
}

Result<Graph> ParseGraphText(const std::string& vertex_text,
                             const std::string& edge_text,
                             Directedness directedness, bool weighted,
                             const std::string& vertex_name,
                             const std::string& edge_name,
                             exec::ThreadPool* pool) {
  GraphBuilder builder(directedness, weighted,
                       GraphBuilder::AnomalyPolicy::kReject);
  GA_RETURN_IF_ERROR(ForEachLine(
      vertex_text, [&](int line_number, std::string_view line) -> Status {
        VertexId id = 0;
        switch (ParseVertexLine(line, &id)) {
          case LineParse::kSkip:
            return Status::Ok();
          case LineParse::kMalformed:
            return MalformedAt(vertex_name, line_number,
                               "malformed vertex line (expected \"<id>\")");
          case LineParse::kOk:
            builder.AddVertex(id);
            return Status::Ok();
        }
        return Status::Internal("unreachable");
      }));
  GA_RETURN_IF_ERROR(ForEachLine(
      edge_text, [&](int line_number, std::string_view line) -> Status {
        VertexId source = 0;
        VertexId target = 0;
        Weight weight = 1.0;
        switch (ParseEdgeLine(line, weighted, &source, &target, &weight)) {
          case LineParse::kSkip:
            return Status::Ok();
          case LineParse::kMalformed:
            return MalformedAt(
                edge_name, line_number,
                weighted
                    ? "malformed edge line (expected \"<source> <target> "
                      "<weight>\")"
                    : "malformed edge line (expected \"<source> <target>\")");
          case LineParse::kOk:
            builder.AddEdge(source, target, weight);
            return Status::Ok();
        }
        return Status::Internal("unreachable");
      }));
  return std::move(builder).Build(pool);
}

}  // namespace ga
