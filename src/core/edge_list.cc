#include "core/edge_list.h"

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string_view>

namespace ga {

namespace {

// Parses one whitespace-separated token as T starting at *pos; advances *pos.
template <typename T>
bool ParseToken(std::string_view line, std::size_t* pos, T* out) {
  while (*pos < line.size() && (line[*pos] == ' ' || line[*pos] == '\t')) {
    ++*pos;
  }
  if (*pos >= line.size()) return false;
  const char* begin = line.data() + *pos;
  const char* end = line.data() + line.size();
  std::from_chars_result result;
  if constexpr (std::is_floating_point_v<T>) {
    // std::from_chars for double is available in libstdc++ 11+.
    result = std::from_chars(begin, end, *out);
  } else {
    result = std::from_chars(begin, end, *out);
  }
  if (result.ec != std::errc()) return false;
  *pos = static_cast<std::size_t>(result.ptr - line.data());
  return true;
}

Status ParseVertexLines(const std::string& text, GraphBuilder* builder) {
  std::size_t line_start = 0;
  int line_number = 0;
  while (line_start < text.size()) {
    std::size_t line_end = text.find('\n', line_start);
    if (line_end == std::string::npos) line_end = text.size();
    std::string_view line(text.data() + line_start, line_end - line_start);
    ++line_number;
    line_start = line_end + 1;
    if (line.empty() || line[0] == '#') continue;
    std::size_t pos = 0;
    VertexId id = 0;
    if (!ParseToken(line, &pos, &id)) {
      return Status::IoError("malformed vertex line " +
                             std::to_string(line_number));
    }
    builder->AddVertex(id);
  }
  return Status::Ok();
}

Status ParseEdgeLines(const std::string& text, bool weighted,
                      GraphBuilder* builder) {
  std::size_t line_start = 0;
  int line_number = 0;
  while (line_start < text.size()) {
    std::size_t line_end = text.find('\n', line_start);
    if (line_end == std::string::npos) line_end = text.size();
    std::string_view line(text.data() + line_start, line_end - line_start);
    ++line_number;
    line_start = line_end + 1;
    if (line.empty() || line[0] == '#') continue;
    std::size_t pos = 0;
    VertexId source = 0;
    VertexId target = 0;
    if (!ParseToken(line, &pos, &source) ||
        !ParseToken(line, &pos, &target)) {
      return Status::IoError("malformed edge line " +
                             std::to_string(line_number));
    }
    Weight weight = 1.0;
    if (weighted && !ParseToken(line, &pos, &weight)) {
      return Status::IoError("missing weight on edge line " +
                             std::to_string(line_number));
    }
    builder->AddEdge(source, target, weight);
  }
  return Status::Ok();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

}  // namespace

Status WriteGraphFiles(const Graph& graph, const std::string& path_prefix) {
  {
    std::ofstream vfile(path_prefix + ".v");
    if (!vfile) return Status::IoError("cannot write " + path_prefix + ".v");
    for (VertexIndex v = 0; v < graph.num_vertices(); ++v) {
      vfile << graph.ExternalId(v) << '\n';
    }
  }
  {
    std::ofstream efile(path_prefix + ".e");
    if (!efile) return Status::IoError("cannot write " + path_prefix + ".e");
    for (const Edge& edge : graph.edges()) {
      efile << graph.ExternalId(edge.source) << ' '
            << graph.ExternalId(edge.target);
      if (graph.is_weighted()) efile << ' ' << edge.weight;
      efile << '\n';
    }
  }
  return Status::Ok();
}

Result<Graph> ReadGraphFiles(const std::string& path_prefix,
                             Directedness directedness, bool weighted) {
  GA_ASSIGN_OR_RETURN(std::string vertex_text,
                      ReadFile(path_prefix + ".v"));
  GA_ASSIGN_OR_RETURN(std::string edge_text, ReadFile(path_prefix + ".e"));
  return ParseGraphText(vertex_text, edge_text, directedness, weighted);
}

Result<Graph> ParseGraphText(const std::string& vertex_text,
                             const std::string& edge_text,
                             Directedness directedness, bool weighted) {
  GraphBuilder builder(directedness, weighted,
                       GraphBuilder::AnomalyPolicy::kReject);
  GA_RETURN_IF_ERROR(ParseVertexLines(vertex_text, &builder));
  GA_RETURN_IF_ERROR(ParseEdgeLines(edge_text, weighted, &builder));
  return std::move(builder).Build();
}

}  // namespace ga
