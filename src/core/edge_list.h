// Reader/writer for the Graphalytics on-disk graph format.
//
// A dataset consists of two text files:
//   <name>.v : one vertex id per line
//   <name>.e : "<source> <target>[ <weight>]" per line
// plus (by convention) reference-output files "<name>-<algo>" with
// "<vertex id> <value>" per line, handled by algo/output.h.
//
// Malformed input is rejected with a Status naming the file and the
// 1-based line number — lines are never silently skipped. Lines that are
// empty or start with '#' are comments; a trailing '\r' (CRLF files) is
// tolerated. The parallel chunked importer in ga::store builds on the
// per-line parsers exported here.
#ifndef GRAPHALYTICS_CORE_EDGE_LIST_H_
#define GRAPHALYTICS_CORE_EDGE_LIST_H_

#include <string>
#include <string_view>

#include "core/graph.h"
#include "core/status.h"
#include "core/types.h"

namespace ga {

/// Outcome of parsing one line of a `.v`/`.e` file.
enum class LineParse {
  kOk,         // tokens parsed, nothing trailing
  kSkip,       // blank line or '#' comment
  kMalformed,  // bad token, missing column, or trailing garbage
};

/// Parses one `.v` line ("<vertex id>"). Rejects trailing non-whitespace.
LineParse ParseVertexLine(std::string_view line, VertexId* id);

/// Parses one `.e` line ("<source> <target>[ <weight>]"). The weight
/// column is required iff `weighted` and rejected otherwise.
LineParse ParseEdgeLine(std::string_view line, bool weighted,
                        VertexId* source, VertexId* target, Weight* weight);

/// Reads a whole file into memory (binary-exact).
Result<std::string> ReadTextFile(const std::string& path);

/// Writes `graph` as `<path_prefix>.v` and `<path_prefix>.e`.
/// Weighted graphs emit a third column with the edge weight.
Status WriteGraphFiles(const Graph& graph, const std::string& path_prefix);

/// Loads a graph from `<path_prefix>.v` + `<path_prefix>.e`. The optional
/// pool parallelises the graph build (parsing is serial here; the chunked
/// parallel importer lives in ga::store).
Result<Graph> ReadGraphFiles(const std::string& path_prefix,
                             Directedness directedness, bool weighted,
                             exec::ThreadPool* pool = nullptr);

/// Parses an in-memory edge-list text (the `.e` format). Vertices present
/// only in `vertex_text` (the `.v` format) are added as isolated vertices;
/// pass an empty string to derive vertices from edges alone. Error
/// messages cite `vertex_name` / `edge_name` as the offending file.
Result<Graph> ParseGraphText(const std::string& vertex_text,
                             const std::string& edge_text,
                             Directedness directedness, bool weighted,
                             const std::string& vertex_name = "<vertex text>",
                             const std::string& edge_name = "<edge text>",
                             exec::ThreadPool* pool = nullptr);

}  // namespace ga

#endif  // GRAPHALYTICS_CORE_EDGE_LIST_H_
