// Reader/writer for the Graphalytics on-disk graph format.
//
// A dataset consists of two text files:
//   <name>.v : one vertex id per line
//   <name>.e : "<source> <target>[ <weight>]" per line
// plus (by convention) reference-output files "<name>-<algo>" with
// "<vertex id> <value>" per line, handled by algo/output.h.
#ifndef GRAPHALYTICS_CORE_EDGE_LIST_H_
#define GRAPHALYTICS_CORE_EDGE_LIST_H_

#include <string>

#include "core/graph.h"
#include "core/status.h"
#include "core/types.h"

namespace ga {

/// Writes `graph` as `<path_prefix>.v` and `<path_prefix>.e`.
/// Weighted graphs emit a third column with the edge weight.
Status WriteGraphFiles(const Graph& graph, const std::string& path_prefix);

/// Loads a graph from `<path_prefix>.v` + `<path_prefix>.e`.
Result<Graph> ReadGraphFiles(const std::string& path_prefix,
                             Directedness directedness, bool weighted);

/// Parses an in-memory edge-list text (the `.e` format). Vertices present
/// only in `vertex_text` (the `.v` format) are added as isolated vertices;
/// pass an empty string to derive vertices from edges alone.
Result<Graph> ParseGraphText(const std::string& vertex_text,
                             const std::string& edge_text,
                             Directedness directedness, bool weighted);

}  // namespace ga

#endif  // GRAPHALYTICS_CORE_EDGE_LIST_H_
