// Instrumentation for the flat data-path structures (MessageArena,
// ScratchPool, Frontier): process-global counters of backing-storage
// growth events, attributed per structure.
//
// The steady-state contract (DESIGN.md §8): after the first superstep has
// warmed every buffer to its high-water capacity, further supersteps must
// not grow anything. Tests pin this by running an engine for k and k+d
// supersteps and asserting the counters advanced by the same amount — the
// extra supersteps contributed zero growth events. Attribution exists so
// a violated contract names the structure that grew (and by how many
// bytes) instead of reporting a bare count.
//
// The growth paths are rare (cold-start only, by contract), so the
// atomics here are never on a hot path; the per-superstep observability
// counters that ARE hot live in counter_sheet.h, which is atomics-free.
#ifndef GRAPHALYTICS_CORE_EXEC_ALLOC_STATS_H_
#define GRAPHALYTICS_CORE_EXEC_ALLOC_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace ga::exec {

/// The data-path structures whose backing-storage growth is tracked.
enum class AllocSite : int {
  kMessageArena = 0,  // MessageArena value/count buffers
  kScratchPool,       // ScratchPool slot table
  kScratchFlags,      // ScratchPool per-slot flag arrays
  kLabelCounter,      // LabelCounter open-addressing table
  kFrontier,          // Frontier sparse queues / bitsets
  kMutate,            // ga::mutate incremental-algorithm state buffers
  kOther,             // unattributed legacy call sites
  kCount,
};

inline std::string_view AllocSiteName(AllocSite site) {
  switch (site) {
    case AllocSite::kMessageArena:
      return "MessageArena";
    case AllocSite::kScratchPool:
      return "ScratchPool";
    case AllocSite::kScratchFlags:
      return "ScratchPool flags";
    case AllocSite::kLabelCounter:
      return "LabelCounter";
    case AllocSite::kFrontier:
      return "Frontier";
    case AllocSite::kMutate:
      return "Mutate";
    case AllocSite::kOther:
    case AllocSite::kCount:
      break;
  }
  return "other";
}

namespace internal {

struct AllocSiteCounters {
  std::atomic<std::uint64_t> events{0};
  std::atomic<std::uint64_t> bytes{0};
};

inline std::array<AllocSiteCounters,
                  static_cast<std::size_t>(AllocSite::kCount)>&
AllocCounters() {
  static std::array<AllocSiteCounters,
                    static_cast<std::size_t>(AllocSite::kCount)>
      counters;
  return counters;
}

}  // namespace internal

/// Records one backing-storage (re)allocation in a data-path structure,
/// attributed to `site`, growing to roughly `bytes` of storage (0 when
/// the caller cannot cheaply tell). Relaxed: the counters are a
/// diagnostic, not a synchroniser.
inline void NoteDataPathAlloc(AllocSite site = AllocSite::kOther,
                              std::uint64_t bytes = 0) {
  internal::AllocSiteCounters& counters =
      internal::AllocCounters()[static_cast<std::size_t>(site)];
  counters.events.fetch_add(1, std::memory_order_relaxed);
  counters.bytes.fetch_add(bytes, std::memory_order_relaxed);
}

/// Growth events attributed to one site since process start.
inline std::uint64_t DataPathAllocEvents(AllocSite site) {
  return internal::AllocCounters()[static_cast<std::size_t>(site)]
      .events.load(std::memory_order_relaxed);
}

/// Bytes the site's structures grew to, summed over growth events.
inline std::uint64_t DataPathAllocBytes(AllocSite site) {
  return internal::AllocCounters()[static_cast<std::size_t>(site)]
      .bytes.load(std::memory_order_relaxed);
}

/// Total growth events across every site since process start.
inline std::uint64_t DataPathAllocEvents() {
  std::uint64_t total = 0;
  for (int s = 0; s < static_cast<int>(AllocSite::kCount); ++s) {
    total += DataPathAllocEvents(static_cast<AllocSite>(s));
  }
  return total;
}

/// Point-in-time copy of every site's counters, for delta reporting.
struct AllocSnapshot {
  std::uint64_t events[static_cast<std::size_t>(AllocSite::kCount)] = {};
  std::uint64_t bytes[static_cast<std::size_t>(AllocSite::kCount)] = {};

  std::uint64_t total_events() const {
    std::uint64_t total = 0;
    for (std::uint64_t e : events) total += e;
    return total;
  }
};

inline AllocSnapshot TakeAllocSnapshot() {
  AllocSnapshot snapshot;
  for (int s = 0; s < static_cast<int>(AllocSite::kCount); ++s) {
    snapshot.events[s] = DataPathAllocEvents(static_cast<AllocSite>(s));
    snapshot.bytes[s] = DataPathAllocBytes(static_cast<AllocSite>(s));
  }
  return snapshot;
}

/// Human-readable per-site delta between two snapshots, e.g.
/// "MessageArena +2 events (+49152 bytes), LabelCounter +1 event". Empty
/// string when nothing grew.
inline std::string FormatAllocDelta(const AllocSnapshot& before,
                                    const AllocSnapshot& after) {
  std::string out;
  for (int s = 0; s < static_cast<int>(AllocSite::kCount); ++s) {
    const std::uint64_t events = after.events[s] - before.events[s];
    if (events == 0) continue;
    if (!out.empty()) out += ", ";
    out += AllocSiteName(static_cast<AllocSite>(s));
    out += " +" + std::to_string(events);
    out += events == 1 ? " event" : " events";
    const std::uint64_t bytes = after.bytes[s] - before.bytes[s];
    if (bytes > 0) out += " (+" + std::to_string(bytes) + " bytes)";
  }
  return out;
}

}  // namespace ga::exec

#endif  // GRAPHALYTICS_CORE_EXEC_ALLOC_STATS_H_
