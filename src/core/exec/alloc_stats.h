// Instrumentation for the flat data-path structures (MessageArena,
// ScratchPool): a process-global counter of backing-storage growth events.
//
// The steady-state contract (DESIGN.md §8): after the first superstep has
// warmed every buffer to its high-water capacity, further supersteps must
// not grow anything. Tests pin this by running an engine for k and k+d
// supersteps and asserting the counter advanced by the same amount — the
// extra supersteps contributed zero growth events.
#ifndef GRAPHALYTICS_CORE_EXEC_ALLOC_STATS_H_
#define GRAPHALYTICS_CORE_EXEC_ALLOC_STATS_H_

#include <atomic>
#include <cstdint>

namespace ga::exec {

inline std::atomic<std::uint64_t>& DataPathAllocCounter() {
  static std::atomic<std::uint64_t> counter{0};
  return counter;
}

/// Records `events` backing-storage (re)allocations in a data-path
/// structure. Relaxed: the counter is a diagnostic, not a synchroniser.
inline void NoteDataPathAlloc(std::uint64_t events = 1) {
  DataPathAllocCounter().fetch_add(events, std::memory_order_relaxed);
}

/// Total growth events since process start.
inline std::uint64_t DataPathAllocEvents() {
  return DataPathAllocCounter().load(std::memory_order_relaxed);
}

}  // namespace ga::exec

#endif  // GRAPHALYTICS_CORE_EXEC_ALLOC_STATS_H_
