// CancelToken: cooperative cancellation + host-deadline signal for one
// job (DESIGN.md §14).
//
// A token is armed by whoever owns the job's lifetime (the serve daemon
// when a client disconnects or its deadline passes, a drain sequence, a
// test) and *observed* at the two places engine work can be stopped
// without corrupting shared state: the start of every exec chunk (so a
// cancelled job stops within one chunk, not one superstep) and
// JobContext::EndSuperstep (the resilience boundary, where the engine's
// Status plumbing already propagates failures cleanly).
//
// Cancellation is inherently a wall-clock event, so WHEN a job observes
// it is not deterministic — but the observation itself never mutates
// engine state: a chunk either ran completely or threw before its body.
// Jobs that are never cancelled pay one relaxed atomic load per chunk
// (deadline-armed tokens add one steady_clock read), and tokenless runs
// a null test — the batch path is unchanged.
#ifndef GRAPHALYTICS_CORE_EXEC_CANCEL_H_
#define GRAPHALYTICS_CORE_EXEC_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>

#include "core/status.h"

namespace ga::exec {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;

  /// Arms explicit cancellation with a reason the job's failure Status
  /// will carry ("client disconnected", "server draining", ...). First
  /// caller wins; later calls are no-ops.
  void Cancel(const std::string& reason) {
    bool expected = false;
    if (reason_claimed_.compare_exchange_strong(expected, true,
                                                std::memory_order_acq_rel)) {
      reason_ = reason;
      cancelled_.store(true, std::memory_order_release);
    }
  }

  /// Arms a host-time deadline; past it the token reads as expired and
  /// status() reports kDeadlineExceeded. Unset by default.
  void SetDeadline(Clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_release);
  }
  void SetDeadlineAfter(std::chrono::nanoseconds budget) {
    SetDeadline(Clock::now() + budget);
  }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_acquire);
  }
  bool deadline_expired() const {
    const std::int64_t deadline =
        deadline_ns_.load(std::memory_order_acquire);
    return deadline != kNoDeadline &&
           Clock::now().time_since_epoch().count() >= deadline;
  }

  /// The per-chunk test: explicit cancel OR expired deadline.
  bool stop_requested() const {
    return cancel_requested() || deadline_expired();
  }

  /// The Status a stopped job fails with: kCancelled with the armed
  /// reason, or kDeadlineExceeded for a deadline expiry. Ok when the
  /// token was never tripped (callers normally gate on stop_requested).
  Status status() const {
    if (cancel_requested()) {
      return Status::Cancelled(reason_.empty() ? "job cancelled" : reason_);
    }
    if (deadline_expired()) {
      return Status::DeadlineExceeded("request deadline expired");
    }
    return Status::Ok();
  }

 private:
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();

  std::atomic<bool> cancelled_{false};
  std::atomic<bool> reason_claimed_{false};
  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
  std::string reason_;  // written once, before cancelled_ releases it
};

}  // namespace ga::exec

#endif  // GRAPHALYTICS_CORE_EXEC_CANCEL_H_
