// CounterSheet — slot-local observability counters for the exec layer.
//
// When tracing is enabled (ExecutionEnvironment::trace_enabled), the
// ExecContext carries a pointer to one of these sheets and parallel_for
// records, per chunk it dispatches, which slot ran it and for how long.
// The design constraints come straight from the determinism contract
// (DESIGN.md §6) and the bounded-overhead contract (docs/OBSERVABILITY.md):
//
//   * No atomics, no locks, no ordering effects on the hot path. Each
//     slot writes only its own cache-line-padded row, exactly the
//     ownership discipline of SlotBuffers / slot_charges. The rows are
//     drained serially at superstep close (FlushStep), commit-side.
//   * Tracing must not perturb results. The sheet only *observes* the
//     slot decomposition — it never influences chunk sizing, scheduling
//     or iteration order, so outputs and WorkLedger stay byte-identical
//     with tracing on or off at any --jobs value.
//   * Null fast path. With no sheet attached (the default), the only
//     cost in parallel_for is one pointer test per loop and per chunk.
//
// Of the counters, loop/chunk *counts* are functions of range sizes alone
// (slot decomposition is thread-count-invariant) and therefore
// deterministic; chunk *timings* are host wall-clock and are not — the
// split matters downstream, where experiments.json may only absorb the
// deterministic ones.
#ifndef GRAPHALYTICS_CORE_EXEC_COUNTER_SHEET_H_
#define GRAPHALYTICS_CORE_EXEC_COUNTER_SHEET_H_

#include <chrono>
#include <cstdint>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#define GA_COUNTER_SHEET_TSC 1
#else
#define GA_COUNTER_SHEET_TSC 0
#endif

namespace ga::exec {

/// One timed parallel_for chunk: host-clock nanoseconds since the sheet
/// was enabled, the slot that executed it, and the superstep it was
/// flushed under. Inside the sheet the stamps are raw NowTicks() values;
/// FlushStep converts them to nanoseconds and stamps the step before any
/// span leaves the sheet, so consumers only ever see nanoseconds.
struct ChunkSpan {
  std::int64_t begin_ns = 0;
  std::int64_t end_ns = 0;
  int slot = 0;
  int step = 0;
};

class CounterSheet {
 public:
  // Matches ExecContext::kMaxSlots (static_assert'ed in exec.h; this
  // header stays below exec.h in the include order).
  static constexpr int kMaxSlots = 32;
  /// Per-slot retained-span cap per superstep. A pathological superstep
  /// with more chunks than this keeps counting (chunks/busy_ns stay
  /// exact) but stops retaining individual spans, and reports the drop.
  static constexpr std::size_t kMaxSpansPerSlot = 1u << 14;

  /// Arms the sheet and starts its host-clock epoch. Disabled sheets
  /// ignore every Note* call. `retain_spans` false keeps only the
  /// aggregate counters (chunks, busy ticks) and never touches the span
  /// vectors — the always-on telemetry mode (ga::telemetry), where
  /// per-chunk timelines would be dead weight and the recording path
  /// must stay allocation-free.
  void Enable(bool retain_spans = true) {
    enabled_ = true;
    retain_spans_ = retain_spans;
    epoch_ = std::chrono::steady_clock::now();
    tick_epoch_ = 0;
    tick_epoch_ = NowTicks();
    ns_per_tick_ = 0.0;  // calibrated lazily at the first FlushStep
  }
  bool enabled() const { return enabled_; }

  /// Raw chunk timestamp in ticks since Enable(). On x86 this is one
  /// RDTSC (~3x cheaper than the vDSO clock_gettime behind
  /// steady_clock — the difference is the whole bounded-overhead story,
  /// because traced parallel_for takes two of these per chunk);
  /// elsewhere it falls back to steady_clock nanoseconds and the
  /// tick->ns conversion below becomes the identity. Modern x86 TSCs
  /// are constant-rate and core-synchronized, which is all the chunk
  /// spans need.
  std::int64_t NowTicks() const {
#if GA_COUNTER_SHEET_TSC
    return static_cast<std::int64_t>(__rdtsc()) - tick_epoch_;
#else
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
#endif
  }

  /// Commit-side: one parallel_for / parallel_reduce dispatch started.
  void NoteLoop() {
    if (enabled_) ++loops_;
  }

  /// Slot-side: `slot` finished one chunk spanning [begin_ticks,
  /// end_ticks) on the NowTicks() clock. Only the owning slot may call
  /// this for its row. Span stamps stay in raw ticks here — the tick->ns
  /// conversion is one multiply per span, paid serially at FlushStep
  /// instead of on the hot path.
  void NoteChunk(int slot, std::int64_t begin_ticks,
                 std::int64_t end_ticks) {
    Row& row = rows_[slot];
    ++row.chunks;
    row.busy_ticks += end_ticks - begin_ticks;
    if (!retain_spans_) return;
    if (row.spans.size() < kMaxSpansPerSlot) {
      // One up-front block per row beats the doubling realloc chain the
      // first superstep would otherwise pay (clear() keeps capacity, so
      // later supersteps reuse it either way).
      if (row.spans.capacity() == 0) row.spans.reserve(kSpanReserve);
      row.spans.push_back(ChunkSpan{begin_ticks, end_ticks, slot, 0});
    } else {
      ++row.dropped;
    }
  }

  /// Serial fold of one superstep's rows.
  struct StepTotals {
    std::uint64_t loops = 0;
    std::uint64_t chunks = 0;
    std::int64_t busy_ns = 0;
    std::uint64_t dropped = 0;
  };

  /// Commit-side, at superstep close: folds and resets every row, stamps
  /// the retained spans with `step` and moves them into `sink` (pass
  /// nullptr to discard). Returns the superstep's totals; job-lifetime
  /// totals keep accumulating for the end-of-job summary.
  StepTotals FlushStep(int step, std::vector<ChunkSpan>* sink) {
    // Lazy calibration: the first flush measures both clocks over the
    // same elapsed interval since Enable() and derives ns-per-tick from
    // their ratio. Even the shortest supersteps put tens of
    // microseconds between Enable and first flush, so the two ~25ns
    // clock reads bound the calibration error well under 1%.
    if (ns_per_tick_ == 0.0) {
#if GA_COUNTER_SHEET_TSC
      const std::int64_t ticks = NowTicks();
      const std::int64_t ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - epoch_)
              .count();
      ns_per_tick_ = ticks > 0 ? static_cast<double>(ns) /
                                     static_cast<double>(ticks)
                               : 1.0;
#else
      ns_per_tick_ = 1.0;  // ticks already are nanoseconds
#endif
    }
    StepTotals totals;
    totals.loops = loops_;
    loops_ = 0;
    std::int64_t busy_ticks = 0;
    for (Row& row : rows_) {
      totals.chunks += row.chunks;
      busy_ticks += row.busy_ticks;
      totals.dropped += row.dropped;
      row.chunks = 0;
      row.busy_ticks = 0;
      row.dropped = 0;
      if (sink != nullptr) {
        for (ChunkSpan& span : row.spans) {
          span.begin_ns = ToNs(span.begin_ns);
          span.end_ns = ToNs(span.end_ns);
          span.step = step;
          sink->push_back(span);
        }
      }
      row.spans.clear();
    }
    totals.busy_ns = ToNs(busy_ticks);
    job_totals_.loops += totals.loops;
    job_totals_.chunks += totals.chunks;
    job_totals_.busy_ns += totals.busy_ns;
    job_totals_.dropped += totals.dropped;
    return totals;
  }

  /// Totals accumulated across every flushed superstep.
  const StepTotals& job_totals() const { return job_totals_; }

 private:
  /// Initial span capacity per row — covers a typical superstep's chunks
  /// in one allocation (32 slots x a handful of loops).
  static constexpr std::size_t kSpanReserve = 256;

  std::int64_t ToNs(std::int64_t ticks) const {
    return static_cast<std::int64_t>(static_cast<double>(ticks) *
                                     ns_per_tick_);
  }

  // Padded so concurrent slots never share a line. The span vector grows
  // on the slot's own thread — a heap allocation, but only on traced
  // runs, which are explicitly outside the zero-steady-state-alloc
  // contract (it is measured untraced).
  struct alignas(64) Row {
    std::uint64_t chunks = 0;
    std::int64_t busy_ticks = 0;
    std::uint64_t dropped = 0;
    std::vector<ChunkSpan> spans;
  };

  bool enabled_ = false;
  bool retain_spans_ = true;
  std::chrono::steady_clock::time_point epoch_{};
  std::int64_t tick_epoch_ = 0;
  double ns_per_tick_ = 0.0;
  std::uint64_t loops_ = 0;
  Row rows_[kMaxSlots];
  StepTotals job_totals_;
};

}  // namespace ga::exec

#endif  // GRAPHALYTICS_CORE_EXEC_COUNTER_SHEET_H_
