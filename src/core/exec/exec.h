// ga::exec — deterministic host-parallel execution primitives.
//
// The contract (DESIGN.md §6): every parallel construct decomposes its
// index range into a fixed sequence of *slots* whose count depends only on
// the range size — never on the host thread count. A slot is one
// contiguous sub-range executed by exactly one thread; per-slot results
// (reductions, emitted buffers, work-ledger charges) are merged in slot
// order after the loop. Because the decomposition and the merge order are
// both thread-count independent, algorithm outputs AND simulated-cost
// accounting are bit-identical whether a job runs on 1 or N host threads.
//
// parallel_for(ctx, begin, end, body)        body(const Slice&)
// parallel_reduce(ctx, begin, end, id, m, r) per-slot map + ordered reduce
// parallel_sort(ctx, &items, less)           chunk sort + stable merge tree
// SlotBuffers<T>                             per-slot appends, ordered drain
#ifndef GRAPHALYTICS_CORE_EXEC_EXEC_H_
#define GRAPHALYTICS_CORE_EXEC_EXEC_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/exec/cancel.h"
#include "core/exec/counter_sheet.h"
#include "core/exec/thread_pool.h"

namespace ga::exec {

/// One slot of a parallel loop: the contiguous sub-range [begin, end) and
/// the slot index that keys every side effect of the body.
struct Slice {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  int slot = 0;
};

/// Execution handle carried by a job: a (possibly absent) thread pool plus
/// the slot-decomposition policy. With no pool the constructs run the same
/// slot sequence inline, so serial and parallel runs are byte-equivalent.
class ExecContext {
 public:
  /// Hard cap on slots per loop. More slots than threads keeps the
  /// work-stealing balanced on skewed ranges; the cap bounds per-slot
  /// scratch (flag arrays, histograms) and merge cost.
  static constexpr int kMaxSlots = 32;
  /// Minimum items per slot; tiny ranges collapse to one slot.
  static constexpr std::int64_t kMinGrain = 64;
  /// Recommended max_slots for loops whose bodies allocate O(range)
  /// scratch (e.g. LCC neighbourhood flag arrays): bounds the total
  /// scratch allocated/zeroed at 8x the serial cost.
  static constexpr int kScratchSlots = 8;

  ExecContext() = default;
  explicit ExecContext(ThreadPool* pool) : pool_(pool) {}

  ThreadPool* pool() const { return pool_; }
  int num_host_threads() const { return pool_ ? pool_->num_threads() : 1; }

  /// Attaches an observability sheet (nullptr detaches — the default).
  /// With a sheet attached, parallel_for/parallel_reduce time each chunk
  /// they dispatch; without one, the only cost is a pointer test. The
  /// sheet never influences decomposition or scheduling.
  void set_counters(CounterSheet* sheet) { counters_ = sheet; }
  CounterSheet* counters() const { return counters_; }

  /// Attaches a cooperative cancellation token (nullptr — the default —
  /// detaches). With a token attached, every chunk a parallel construct
  /// dispatches tests it BEFORE running its body and throws the token's
  /// StatusException (kCancelled / kDeadlineExceeded) when tripped; the
  /// ThreadPool surfaces the lowest-index chunk's exception on the
  /// submitting thread and the platform job boundary converts it to a
  /// Status. Remaining chunks still "run" (the pool's no-early-abort
  /// contract) but each throws at its first instruction, so a cancelled
  /// job stops within one chunk's work, not one superstep's.
  void set_cancel_token(const CancelToken* token) { cancel_ = token; }
  const CancelToken* cancel_token() const { return cancel_; }

  /// Slot count for a range of `size` items — a function of the size
  /// (and an optional per-call-site cap) alone, never of the thread
  /// count, which is what makes the decomposition deterministic. Loops
  /// whose bodies carry O(n) per-slot scratch pass a lower `max_slots`
  /// to bound the scratch-allocation multiplier.
  static int NumSlots(std::int64_t size, int max_slots = kMaxSlots) {
    if (size <= 0) return 0;
    const std::int64_t by_grain = (size + kMinGrain - 1) / kMinGrain;
    return static_cast<int>(std::min<std::int64_t>(max_slots, by_grain));
  }

  /// The `slot`-th of `num_slots` near-equal contiguous sub-ranges of
  /// [begin, end).
  static Slice SliceOf(std::int64_t begin, std::int64_t end, int slot,
                       int num_slots) {
    const std::int64_t size = end - begin;
    const std::int64_t base = size / num_slots;
    const std::int64_t remainder = size % num_slots;
    const std::int64_t slice_begin =
        begin + base * slot + std::min<std::int64_t>(slot, remainder);
    const std::int64_t slice_size = base + (slot < remainder ? 1 : 0);
    return Slice{slice_begin, slice_begin + slice_size, slot};
  }

 private:
  ThreadPool* pool_ = nullptr;
  CounterSheet* counters_ = nullptr;
  const CancelToken* cancel_ = nullptr;
};

static_assert(CounterSheet::kMaxSlots >= ExecContext::kMaxSlots,
              "CounterSheet rows must cover every exec slot");

/// Runs body(slice) for every slot of [begin, end). Bodies may only write
/// to locations owned by their slot (slot-indexed accumulators, their
/// sub-range of an output array); cross-slot state must go through
/// SlotBuffers or per-slot partials merged after the call.
template <typename Body>
void parallel_for(ExecContext& ctx, std::int64_t begin, std::int64_t end,
                  Body&& body, int max_slots = ExecContext::kMaxSlots) {
  const int num_slots = ExecContext::NumSlots(end - begin, max_slots);
  if (num_slots == 0) return;
  CounterSheet* const sheet = ctx.counters();
  if (sheet != nullptr) sheet->NoteLoop();
  // Fault-injection hooks (null unless a ga::faults plan is installed).
  // The loop hook counts dispatches on the submitting thread; the chunk
  // hook may throw an injected fault inside a worker chunk. Both fire on
  // the inline and pooled paths alike, so an armed plan reproduces the
  // same failure sequence at any host thread count.
  if (ParallelLoopHook loop_hook = GetParallelLoopHook()) loop_hook();
  const ParallelChunkHook chunk_hook = GetParallelChunkHook();
  const CancelToken* const cancel = ctx.cancel_token();
  // The timed and untimed paths run the identical slot sequence; timing
  // wraps the body without touching the decomposition.
  const auto run = [&](int slot) {
    if (cancel != nullptr && cancel->stop_requested()) {
      throw StatusException(cancel->status());
    }
    if (chunk_hook != nullptr) chunk_hook(slot);
    if (sheet != nullptr) {
      const std::int64_t chunk_begin = sheet->NowTicks();
      body(ExecContext::SliceOf(begin, end, slot, num_slots));
      sheet->NoteChunk(slot, chunk_begin, sheet->NowTicks());
    } else {
      body(ExecContext::SliceOf(begin, end, slot, num_slots));
    }
  };
  if (ctx.pool() == nullptr || num_slots == 1 ||
      ctx.num_host_threads() == 1) {
    for (int slot = 0; slot < num_slots; ++slot) {
      run(slot);
    }
    return;
  }
  ctx.pool()->Execute(num_slots,
                      [&](std::int64_t slot) { run(static_cast<int>(slot)); });
}

/// Per-slot map + reduction merged in slot order. `map(slice, acc)`
/// accumulates into the slot's accumulator (initialised to `identity`);
/// `reduce(into, from)` folds the accumulators left-to-right. For
/// floating-point types the grouping is fixed by the slot decomposition,
/// so the result is identical at any thread count.
/// parallel_reduce with caller-owned accumulator scratch. Loops that run
/// once per superstep hoist `partials` out of the iteration so the
/// per-slot accumulators are reset, not reallocated — part of the
/// steady-state zero-allocation contract (DESIGN.md §8).
template <typename T, typename Map, typename Reduce>
T parallel_reduce(ExecContext& ctx, std::int64_t begin, std::int64_t end,
                  T identity, Map&& map, Reduce&& reduce,
                  std::vector<T>* partials,
                  int max_slots = ExecContext::kMaxSlots) {
  const int num_slots = ExecContext::NumSlots(end - begin, max_slots);
  if (num_slots == 0) return identity;
  partials->assign(num_slots, identity);
  parallel_for(
      ctx, begin, end,
      [&](const Slice& slice) { map(slice, (*partials)[slice.slot]); },
      max_slots);
  T result = std::move(identity);
  for (int slot = 0; slot < num_slots; ++slot) {
    reduce(result, (*partials)[slot]);
  }
  return result;
}

template <typename T, typename Map, typename Reduce>
T parallel_reduce(ExecContext& ctx, std::int64_t begin, std::int64_t end,
                  T identity, Map&& map, Reduce&& reduce,
                  int max_slots = ExecContext::kMaxSlots) {
  std::vector<T> partials;
  return parallel_reduce(ctx, begin, end, std::move(identity),
                         std::forward<Map>(map), std::forward<Reduce>(reduce),
                         &partials, max_slots);
}

/// Append-only per-slot buffers. A parallel producer loop appends through
/// buf(slot); the ordered drain then replays the elements exactly as a
/// serial loop over the same range would have emitted them (slots are
/// contiguous ascending sub-ranges).
template <typename T>
class SlotBuffers {
 public:
  void Reset(int num_slots) {
    per_slot_.resize(num_slots);
    for (auto& buffer : per_slot_) buffer.clear();
  }
  int num_slots() const { return static_cast<int>(per_slot_.size()); }
  std::vector<T>& buf(int slot) { return per_slot_[slot]; }

  std::size_t TotalSize() const {
    std::size_t total = 0;
    for (const auto& buffer : per_slot_) total += buffer.size();
    return total;
  }

  /// Visits every element in slot order (== serial emission order).
  template <typename Fn>
  void Drain(Fn&& fn) const {
    for (const auto& buffer : per_slot_) {
      for (const T& item : buffer) fn(item);
    }
  }

  /// Appends all elements to `out` in slot order.
  void MergeInto(std::vector<T>* out) const {
    out->reserve(out->size() + TotalSize());
    for (const auto& buffer : per_slot_) {
      out->insert(out->end(), buffer.begin(), buffer.end());
    }
  }

 private:
  std::vector<std::vector<T>> per_slot_;
};

/// Deterministic parallel sort: per-slot std::sort, then a stable merge
/// tree (ties keep the left run first). The run boundaries come from the
/// slot decomposition, so the permutation of equal keys is identical at
/// any thread count — which keeps downstream dedup decisions stable.
template <typename T, typename Less>
void parallel_sort(ExecContext& ctx, std::vector<T>* items, Less less) {
  const std::int64_t size = static_cast<std::int64_t>(items->size());
  const int num_slots = ExecContext::NumSlots(size);
  if (num_slots <= 1) {
    std::sort(items->begin(), items->end(), less);
    return;
  }
  std::vector<std::int64_t> bounds;
  bounds.reserve(num_slots + 1);
  for (int slot = 0; slot <= num_slots; ++slot) {
    bounds.push_back(slot < num_slots
                         ? ExecContext::SliceOf(0, size, slot, num_slots).begin
                         : size);
  }
  parallel_for(ctx, 0, size, [&](const Slice& slice) {
    std::sort(items->begin() + slice.begin, items->begin() + slice.end, less);
  });

  // Merge adjacent runs pairwise until one run remains. Each round merges
  // disjoint output ranges, so pairs run in parallel.
  std::vector<T> scratch(items->size());
  std::vector<T>* source = items;
  std::vector<T>* target = &scratch;
  while (bounds.size() > 2) {
    const std::int64_t num_pairs =
        static_cast<std::int64_t>(bounds.size() - 1) / 2;
    const bool has_tail = (bounds.size() - 1) % 2 != 0;
    auto merge_pair = [&](std::int64_t pair) {
      const std::int64_t lo = bounds[2 * pair];
      const std::int64_t mid = bounds[2 * pair + 1];
      const std::int64_t hi = bounds[2 * pair + 2];
      std::merge(source->begin() + lo, source->begin() + mid,
                 source->begin() + mid, source->begin() + hi,
                 target->begin() + lo, less);
    };
    if (ctx.pool() != nullptr && num_pairs > 1 &&
        ctx.num_host_threads() > 1) {
      ctx.pool()->Execute(num_pairs, merge_pair);
    } else {
      for (std::int64_t pair = 0; pair < num_pairs; ++pair) merge_pair(pair);
    }
    if (has_tail) {
      const std::int64_t lo = bounds[bounds.size() - 2];
      const std::int64_t hi = bounds[bounds.size() - 1];
      std::copy(source->begin() + lo, source->begin() + hi,
                target->begin() + lo);
    }
    std::vector<std::int64_t> next_bounds;
    next_bounds.reserve(bounds.size() / 2 + 2);
    for (std::size_t i = 0; i < bounds.size(); i += 2) {
      next_bounds.push_back(bounds[i]);
    }
    if (next_bounds.back() != size) next_bounds.push_back(size);
    bounds.swap(next_bounds);
    std::swap(source, target);
  }
  if (source != items) {
    items->swap(scratch);
  }
}

}  // namespace ga::exec

#endif  // GRAPHALYTICS_CORE_EXEC_EXEC_H_
