// ga::exec::Frontier — hybrid sparse/dense active-set for traversal
// engines (BFS, SSSP, WCC, vote-to-halt Pregel supersteps).
//
// Every traversal engine in this repo used to re-derive its active set ad
// hoc: char vectors scanned O(n) per round, std::queue worklists, full
// adjacency sweeps that test an activity flag per edge. The frontier keeps
// BOTH canonical representations in sync at O(active) maintenance cost:
//
//   * sparse: a slot-ordered index queue — the exact sequence a serial
//     sweep would have activated, so iterating it (or slot-decomposing it
//     with exec::parallel_for) is deterministic at any host thread count;
//   * dense: a word-parallel Bitset (core/bitset.h) giving O(1) membership
//     tests for pull-direction scans and commit-side deduplication.
//
// Alongside membership the frontier tracks two statistics, maintained
// incrementally as vertices are activated: the active count and the sum of
// the activated vertices' (caller-supplied) degrees. They are exactly what
// the Beamer direction-optimizing heuristic needs, so Decide() can pick
// push vs pull from frontier state alone — never from thread count, timing
// or iteration order — keeping algorithm results `--jobs`-invariant
// (DESIGN.md §9).
//
// Population is double-buffered with zero-steady-state-allocation swap
// semantics: Activate() writes the *next* side, Advance() swaps sides and
// sparsely clears the consumed one (O(consumed active), not O(n)); all
// backing storage is sized once by Init and reused for the whole job.
// Parallel producers stage candidate vertices per exec slot (stage(slot))
// and CommitStage replays them in slot order — the same ownership
// discipline as exec::SlotBuffers.
//
// Concurrency rule: Activate/Advance/CommitStage and the stats getters are
// commit-side (serial) operations; inside a parallel region a body may
// only read (Contains, active, bits) and append to its own slot's stage.
#ifndef GRAPHALYTICS_CORE_EXEC_FRONTIER_H_
#define GRAPHALYTICS_CORE_EXEC_FRONTIER_H_

#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "core/bitset.h"
#include "core/exec/alloc_stats.h"
#include "core/exec/exec.h"
#include "core/types.h"

namespace ga::exec {

/// Direction of one traversal superstep: push scatters from the sparse
/// queue along out-edges; pull scans candidate vertices' in-edges against
/// the dense bitset.
enum class TraversalDirection { kPush, kPull };

class Frontier {
 public:
  /// Beamer-style switch point for traversals whose pull direction can
  /// stop at the first discovered parent (BFS): pull once the frontier's
  /// out-edge sum reaches 1/kPullAlpha of the graph's adjacency entries.
  /// 20 matches the push/pull crossover the pushpull engine shipped with
  /// (PGX.D's cooperative runtime) and Beamer's published alpha=14..32
  /// band.
  static constexpr std::int64_t kPullAlpha = 20;
  /// Switch point for min/label propagation (WCC, SSSP), whose pull
  /// direction has NO early exit — every in-edge must be folded. A pull
  /// round costs O(total) regardless of frontier size, so it only beats
  /// push when the frontier's edge volume reaches the whole graph
  /// (alpha = 1: in practice, the all-active first round).
  static constexpr std::int64_t kPullAlphaSweep = 1;

  /// Sizes both representations for a universe of `n` vertices and clears
  /// them. O(n) once per job; everything after runs at O(active).
  void Init(VertexIndex n) {
    n_ = n;
    for (int side = 0; side < 2; ++side) {
      if (sparse_[side].capacity() < static_cast<std::size_t>(n)) {
        NoteDataPathAlloc(AllocSite::kFrontier,
                          static_cast<std::uint64_t>(n) *
                              sizeof(VertexIndex));
      }
      sparse_[side].clear();
      sparse_[side].reserve(static_cast<std::size_t>(n));
      bits_[side].Resize(static_cast<std::size_t>(n));
      degree_sum_[side] = 0;
    }
    current_ = 0;
  }

  VertexIndex universe() const { return n_; }

  // --- current side: the frontier consumed this superstep ---------------

  bool empty() const { return sparse_[current_].empty(); }
  std::int64_t active_count() const {
    return static_cast<std::int64_t>(sparse_[current_].size());
  }
  /// Sum of the degrees passed to Activate for the current side — the
  /// frontier's out-edge volume when callers pass out-degrees.
  std::int64_t active_degree_sum() const { return degree_sum_[current_]; }
  /// The slot-ordered sparse queue (activation order == the order a
  /// serial commit would have produced).
  std::span<const VertexIndex> active() const { return sparse_[current_]; }
  /// Dense membership test (word-indexed, O(1)).
  bool Contains(VertexIndex v) const {
    return bits_[current_].Test(static_cast<std::size_t>(v));
  }
  const Bitset& bits() const { return bits_[current_]; }

  /// Calls fn(v) for every active vertex in [begin, end) in ASCENDING id
  /// order via a word scan of the dense bitset (the sparse queue is in
  /// activation order, which ruins CSR locality when used as a loop
  /// order). Pair with exec::parallel_for over the vertex range: each
  /// slice scans its own sub-range, so the slot decomposition — and the
  /// order charges merge in — matches a classic full-vertex sweep.
  template <typename Fn>
  void ForEachActiveInRange(VertexIndex begin, VertexIndex end,
                            Fn&& fn) const {
    bits_[current_].ForEachSetInRange(
        static_cast<std::size_t>(begin), static_cast<std::size_t>(end),
        [&](std::size_t v) { fn(static_cast<VertexIndex>(v)); });
  }

  /// Deterministic push/pull choice for a graph with `total_adjacency`
  /// directed adjacency entries: pull when the frontier's edge volume
  /// clears the 1/alpha threshold (kPullAlpha for early-exit pulls,
  /// kPullAlphaSweep for full-fold pulls). Depends only on frontier
  /// stats, which are populated in slot order — so the decision (and
  /// therefore the superstep structure) is identical at any `--jobs`
  /// value.
  TraversalDirection Decide(std::int64_t total_adjacency,
                            std::int64_t alpha = kPullAlpha) const {
    return active_degree_sum() * alpha >= total_adjacency
               ? TraversalDirection::kPull
               : TraversalDirection::kPush;
  }

  // --- population: seeding and the next side ----------------------------

  /// Activates `v` on the *current* side (rooted-algorithm seeding).
  void Seed(VertexIndex v, EdgeIndex degree) {
    if (bits_[current_].TestAndSet(static_cast<std::size_t>(v))) {
      sparse_[current_].push_back(v);
      degree_sum_[current_] += degree;
    }
  }

  /// Activates every vertex on the current side, ascending, with
  /// `total_degree` as the degree sum (self-starting algorithms: WCC,
  /// PageRank, CDLP). Word-parallel bit fill + iota — O(n), once.
  void SeedAll(std::int64_t total_degree) {
    sparse_[current_].resize(static_cast<std::size_t>(n_));
    std::iota(sparse_[current_].begin(), sparse_[current_].end(),
              VertexIndex{0});
    bits_[current_].SetAll();
    degree_sum_[current_] = total_degree;
  }

  /// Commit-side activation for the next superstep. Deduplicates through
  /// the dense bitset; returns true iff `v` was newly activated. Call in
  /// slot order (e.g. while draining SlotBuffers) for determinism.
  bool Activate(VertexIndex v, EdgeIndex degree) {
    if (!bits_[1 - current_].TestAndSet(static_cast<std::size_t>(v))) {
      return false;
    }
    sparse_[1 - current_].push_back(v);
    degree_sum_[1 - current_] += degree;
    return true;
  }

  /// Swaps sides: the collected next frontier becomes current and the
  /// consumed one is wiped — sparsely (per-bit, O(consumed)) when light,
  /// by whole-word fill (O(n/64)) when dense. No allocation either way.
  void Advance() {
    Bitset& consumed_bits = bits_[current_];
    if (static_cast<std::size_t>(sparse_[current_].size()) * 16 >=
        static_cast<std::size_t>(n_)) {
      consumed_bits.Clear();
    } else {
      for (VertexIndex v : sparse_[current_]) {
        consumed_bits.Reset(static_cast<std::size_t>(v));
      }
    }
    sparse_[current_].clear();
    degree_sum_[current_] = 0;
    current_ = 1 - current_;
  }

  // --- checkpoint/restart (ga::resilience) ------------------------------

  /// Which double-buffer side is current — checkpointed so a restored
  /// frontier continues the same swap phase as the uninterrupted run.
  int current_side() const { return current_; }

  /// Restores the CURRENT side wholesale at a superstep boundary (where
  /// the next side and the stage are empty — Advance just ran, so the
  /// consumed side was wiped, which matches the post-Init state). Call
  /// Init(n) first; `bit_words` must hold (n+63)/64 entries.
  void RestoreCurrent(int side, std::span<const VertexIndex> sparse,
                      std::span<const std::uint64_t> bit_words,
                      std::int64_t degree_sum) {
    current_ = side;
    sparse_[side].assign(sparse.begin(), sparse.end());
    bits_[side].RestoreWords(static_cast<std::size_t>(n_), bit_words);
    degree_sum_[side] = degree_sum;
    // Re-establish the superstep-boundary invariant on the OTHER side
    // too: engines seed their initial frontier before Run() notices a
    // resume, and when the checkpointed side differs from the seeded one
    // that seed would survive the restore, go live at the next Advance
    // and re-run vertices the uninterrupted run never revisited.
    sparse_[1 - side].clear();
    bits_[1 - side].Clear();
    degree_sum_[1 - side] = 0;
  }

  // --- slot-staged population from parallel regions ---------------------

  /// Prepares `num_slots` stage buffers for one parallel producer loop.
  void PrepareStage(int num_slots) { stage_.Reset(num_slots); }
  /// The staging buffer owned by `slot`; bodies append candidate vertices
  /// (duplicates allowed — CommitStage deduplicates).
  std::vector<VertexIndex>& stage(int slot) { return stage_.buf(slot); }
  /// Replays the staged candidates in slot order (== serial emission
  /// order). Each vertex activates on the next side at most once (the
  /// dense bitset swallows duplicates); `on_activate(v)` runs exactly for
  /// the newly activated ones — in activation order — and returns the
  /// degree to accumulate into the next side's stats.
  template <typename OnActivate>
  void CommitStage(OnActivate&& on_activate) {
    stage_.Drain([&](VertexIndex v) {
      if (!bits_[1 - current_].TestAndSet(static_cast<std::size_t>(v))) {
        return;
      }
      sparse_[1 - current_].push_back(v);
      degree_sum_[1 - current_] += on_activate(v);
    });
  }

 private:
  VertexIndex n_ = 0;
  int current_ = 0;
  std::vector<VertexIndex> sparse_[2];
  Bitset bits_[2];
  std::int64_t degree_sum_[2] = {0, 0};
  SlotBuffers<VertexIndex> stage_;
};

}  // namespace ga::exec

#endif  // GRAPHALYTICS_CORE_EXEC_FRONTIER_H_
