// MessageArena — CSR-shaped, double-buffered flat message storage for
// vertex-centric engines.
//
// A Pregel-style superstep delivers at most capacity(v) messages to each
// vertex v (its in-degree, both degrees for bidirectional algorithms, or 1
// under a combiner). The arena turns the per-vertex inbox vectors that
// naive engines allocate every superstep into two flat value arrays
// segmented by a prefix-sum offset table: segment v of the *current*
// buffer is v's inbox this superstep, segment v of the *next* buffer
// collects deliveries for the following one. AdvanceSuperstep() swaps the
// roles and resets the new collection counts — no allocation, no
// per-vertex clear loops over ragged heap blocks.
//
// Determinism: the arena stores messages exactly in delivery-call order
// within each vertex segment, so an engine that delivers in slot order
// (exec::SlotBuffers::Drain) observes byte-identical inboxes at any host
// thread count. Pushes are not synchronised — deliver from one thread.
#ifndef GRAPHALYTICS_CORE_EXEC_MESSAGE_ARENA_H_
#define GRAPHALYTICS_CORE_EXEC_MESSAGE_ARENA_H_

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "core/exec/alloc_stats.h"

namespace ga::exec {

template <typename T>
class MessageArena {
 public:
  /// Lays out per-vertex segments from `capacities` (typically in-degree
  /// prefix sums; a combiner caps every entry at 1). Reuses the backing
  /// arrays of a previous layout when they are large enough; both buffers
  /// start empty.
  void Reset(std::span<const std::int64_t> capacities) {
    const std::size_t n = capacities.size();
    offsets_.resize(n + 1);
    offsets_[0] = 0;
    for (std::size_t v = 0; v < n; ++v) {
      offsets_[v + 1] = offsets_[v] + capacities[v];
    }
    ResetBuffers(n);
  }

  /// Uniform per-vertex capacity (the combiner layouts).
  void ResetUniform(std::int64_t num_vertices, std::int64_t capacity) {
    const std::size_t n = static_cast<std::size_t>(num_vertices);
    offsets_.resize(n + 1);
    for (std::size_t v = 0; v <= n; ++v) {
      offsets_[v] = static_cast<std::int64_t>(v) * capacity;
    }
    ResetBuffers(n);
  }

  std::int64_t num_vertices() const {
    return static_cast<std::int64_t>(counts_[0].size());
  }
  std::int64_t capacity(std::int64_t v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  // --- current buffer: the inboxes consumed this superstep -------------

  std::span<const T> Inbox(std::int64_t v) const {
    // Pointer arithmetic, not operator[]: a trailing zero-capacity vertex
    // has offsets_[v] == values_.size(), a valid one-past-the-end pointer
    // but an out-of-range index.
    return {values_[current_].data() + offsets_[v],
            static_cast<std::size_t>(counts_[current_][v])};
  }
  std::int64_t InboxSize(std::int64_t v) const {
    return counts_[current_][v];
  }
  bool InboxEmpty(std::int64_t v) const {
    return counts_[current_][v] == 0;
  }
  /// Messages waiting across all inboxes (the quiescence test).
  std::uint64_t TotalMessages() const { return totals_[current_]; }

  /// Injects a message into the *current* buffer, to be consumed in the
  /// first superstep (Giraph-style rooted-algorithm seeding).
  void SeedCurrent(std::int64_t v, T value) { Append(current_, v, value); }

  // --- next buffer: deliveries for the following superstep -------------

  /// Returns true iff this made v's next inbox non-empty (the first
  /// delivery this superstep) — the signal frontier engines use to make
  /// the target runnable exactly once instead of once per message.
  bool Push(std::int64_t v, T value) {
    const bool first = counts_[1 - current_][v] == 0;
    Append(1 - current_, v, value);
    return first;
  }

  /// Combiner delivery: the segment holds at most one entry, folded with
  /// `combine` (min for BFS/WCC/SSSP, sum for PageRank). Returns true on
  /// the first delivery, as Push does.
  template <typename Combine>
  bool PushCombined(std::int64_t v, T value, Combine&& combine) {
    const int next = 1 - current_;
    if (counts_[next][v] == 0) {
      Append(next, v, value);
      return true;
    }
    T& slot = values_[next][static_cast<std::size_t>(offsets_[v])];
    slot = combine(slot, value);
    return false;
  }

  /// Ends the superstep: the collected buffer becomes current and the
  /// consumed one is recycled (counts zeroed; values stay — segments are
  /// length-delimited, stale data is never observable).
  void AdvanceSuperstep() {
    std::fill(counts_[current_].begin(), counts_[current_].end(),
              std::int64_t{0});
    totals_[current_] = 0;
    current_ = 1 - current_;
  }

  /// Zeroes one consumed inbox. Parallel-safe for distinct vertices
  /// (plain disjoint writes); lets frontier engines recycle only the
  /// inboxes that actually held mail, in O(active) instead of the O(n)
  /// count sweep of AdvanceSuperstep.
  void RecycleInbox(std::int64_t v) { counts_[current_][v] = 0; }

  /// Ends the superstep when every non-empty inbox has already been
  /// RecycleInbox'd (the frontier-driven engines guarantee this: mail
  /// only exists at vertices the superstep executed).
  void AdvanceSuperstepRecycled() {
    totals_[current_] = 0;
    current_ = 1 - current_;
  }

  // --- checkpoint/restart (ga::resilience) ------------------------------

  /// Which double-buffer side is current (checkpointed with the values).
  int current_side() const { return current_; }
  /// The current side's full value array (per-vertex segments are
  /// length-delimited by counts; unfilled tails are never observable).
  std::span<const T> current_values() const { return values_[current_]; }
  std::span<const std::int64_t> current_counts() const {
    return counts_[current_];
  }

  /// Restores the CURRENT side wholesale at a superstep boundary, where
  /// the other side's counts are all zero (AdvanceSuperstep* just zeroed
  /// them) — which matches the post-Reset state, so only one side needs
  /// checkpointing. Call Reset/ResetUniform with the same layout first.
  void RestoreCurrent(int side, std::span<const T> values,
                      std::span<const std::int64_t> counts,
                      std::uint64_t total) {
    current_ = side;
    values_[side].assign(values.begin(), values.end());
    counts_[side].assign(counts.begin(), counts.end());
    totals_[side] = total;
    // Scrub the other side back to its post-Reset state: pre-Run seeding
    // (SeedCurrent) may have landed there, and a surviving seed would be
    // delivered again after the next buffer flip. Values can stay —
    // segments are length-delimited by the zeroed counts.
    std::fill(counts_[1 - side].begin(), counts_[1 - side].end(),
              std::int64_t{0});
    totals_[1 - side] = 0;
  }

 private:
  void ResetBuffers(std::size_t n) {
    const auto total = static_cast<std::size_t>(offsets_[n]);
    for (int b = 0; b < 2; ++b) {
      if (values_[b].capacity() < total || counts_[b].capacity() < n) {
        NoteDataPathAlloc(AllocSite::kMessageArena,
                          total * sizeof(T) + n * sizeof(std::int64_t));
      }
      values_[b].resize(total);
      counts_[b].assign(n, 0);
      totals_[b] = 0;
    }
    current_ = 0;
  }

  void Append(int buffer, std::int64_t v, T value) {
    assert(counts_[buffer][v] < capacity(v) && "message arena overflow");
    values_[buffer][static_cast<std::size_t>(offsets_[v] +
                                             counts_[buffer][v])] = value;
    ++counts_[buffer][v];
    ++totals_[buffer];
  }

  std::vector<std::int64_t> offsets_;  // n+1 prefix sums, shared by buffers
  std::vector<T> values_[2];
  std::vector<std::int64_t> counts_[2];
  std::uint64_t totals_[2] = {0, 0};
  int current_ = 0;
};

}  // namespace ga::exec

#endif  // GRAPHALYTICS_CORE_EXEC_MESSAGE_ARENA_H_
