// ScratchPool — slot-local reusable scratch for host-parallel engine loops.
//
// Engine bodies need small working sets per exec slot: a label counter for
// CDLP's mode aggregation, a flag array + index list for neighbourhood
// intersection (LCC). Allocating them inside the loop body costs a heap
// round-trip per superstep per slot; the pool hands out per-slot instances
// that live for the whole job and are *reset, not reallocated*.
//
// Concurrency rule: Prepare(num_slots) must run outside a parallel region;
// inside one, a body may only touch the objects of its own slot (the same
// ownership discipline as JobContext::slot_charges). Lifetimes follow the
// owning JobContext, so steady-state supersteps perform zero heap
// allocations in the scratch path (DESIGN.md §8).
#ifndef GRAPHALYTICS_CORE_EXEC_SCRATCH_POOL_H_
#define GRAPHALYTICS_CORE_EXEC_SCRATCH_POOL_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/exec/alloc_stats.h"

namespace ga::exec {

/// Reusable mode-of-labels accumulator (the CDLP inner kernel): an
/// epoch-stamped open-addressing hash table. Clear() bumps the epoch —
/// O(1), nothing is zeroed or freed; stale slots are recognised by their
/// old stamp and lazily reclaimed by the next insertion. Mode() scans the
/// distinct labels and breaks count ties toward the smallest label, the
/// exact semantics of the node-based hash-histogram it replaces — but
/// with flat storage, no per-vertex allocations, and O(votes) adds (a
/// sorted-label scan was measured 2.8x slower on pre-convergence CDLP
/// supersteps, where every neighbour still carries a distinct label).
class LabelCounter {
 public:
  void Clear() {
    total_votes_ = 0;
    used_.clear();
    if (++epoch_ == 0) {
      // Stamp wrap-around: one full reset every 2^64 clears.
      std::fill(stamps_.begin(), stamps_.end(), std::uint64_t{0});
      epoch_ = 1;
    }
  }

  void Add(std::int64_t label) {
    if ((used_.size() + 1) * 2 > slots_.size()) Grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t h = Hash(label) & mask;
    while (true) {
      if (stamps_[h] != epoch_) {
        stamps_[h] = epoch_;
        slots_[h] = Entry{label, 1};
        used_.push_back(h);
        break;
      }
      if (slots_[h].label == label) {
        ++slots_[h].count;
        break;
      }
      h = (h + 1) & mask;
    }
    ++total_votes_;
  }

  bool empty() const { return total_votes_ == 0; }
  /// Number of votes added since Clear().
  std::size_t size() const { return total_votes_; }

  /// Most frequent label, smallest label on ties. Requires !empty().
  /// The scan order is the (deterministic) insertion order, but the
  /// comparison makes the result order-independent anyway.
  std::int64_t Mode() const {
    std::int64_t best_label = 0;
    std::int64_t best_count = -1;
    for (std::size_t h : used_) {
      const Entry& entry = slots_[h];
      if (entry.count > best_count ||
          (entry.count == best_count && entry.label < best_label)) {
        best_label = entry.label;
        best_count = entry.count;
      }
    }
    return best_label;
  }

  /// Bytes of backing storage currently held (capacity, not size) — the
  /// counter never shrinks, so this is its high-water footprint.
  std::size_t ApproxBytes() const {
    return slots_.capacity() * sizeof(Entry) +
           stamps_.capacity() * sizeof(std::uint64_t) +
           used_.capacity() * sizeof(std::size_t);
  }

 private:
  struct Entry {
    std::int64_t label;
    std::int64_t count;
  };

  static std::size_t Hash(std::int64_t label) {
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(label) * 0x9E3779B97F4A7C15ULL) >> 32);
  }

  void Grow() {
    const std::size_t want = slots_.empty() ? 16 : slots_.size() * 2;
    NoteDataPathAlloc(AllocSite::kLabelCounter,
                      want * (sizeof(Entry) + sizeof(std::uint64_t)));
    std::vector<Entry> old_slots = std::move(slots_);
    std::vector<std::size_t> old_used = std::move(used_);
    slots_.assign(want, Entry{0, 0});
    stamps_.assign(want, 0);
    used_.clear();
    used_.reserve(want / 2 + 1);
    const std::size_t mask = want - 1;
    for (std::size_t h_old : old_used) {
      const Entry entry = old_slots[h_old];
      std::size_t h = Hash(entry.label) & mask;
      while (stamps_[h] == epoch_) h = (h + 1) & mask;
      stamps_[h] = epoch_;
      slots_[h] = entry;
      used_.push_back(h);
    }
  }

  std::vector<Entry> slots_;
  std::vector<std::uint64_t> stamps_;
  std::vector<std::size_t> used_;  // occupied slots, insertion order
  std::uint64_t epoch_ = 1;
  std::size_t total_votes_ = 0;
};

class ScratchPool {
 public:
  /// Ensures at least `num_slots` slot entries exist. Never shrinks, so a
  /// job alternating between wide and narrow loops keeps every slot's
  /// high-water storage.
  void Prepare(int num_slots) {
    if (static_cast<int>(slots_.size()) < num_slots) {
      NoteDataPathAlloc(AllocSite::kScratchPool,
                        static_cast<std::uint64_t>(num_slots) * sizeof(Slot));
      slots_.resize(static_cast<std::size_t>(num_slots));
    }
  }

  /// The slot's label counter, cleared.
  LabelCounter& labels(int slot) {
    LabelCounter& counter = slots_[static_cast<std::size_t>(slot)].labels;
    counter.Clear();
    return counter;
  }

  /// The slot's flag array, sized to `size` and all-zero. Callers that
  /// set flags must unset them again before the next acquisition (the
  /// cheap sparse reset) — the pool only pays the O(size) zeroing when
  /// the array has to grow.
  std::vector<char>& flags(int slot, std::size_t size) {
    std::vector<char>& flags = slots_[static_cast<std::size_t>(slot)].flags;
    if (flags.size() < size) {
      NoteDataPathAlloc(AllocSite::kScratchFlags, size);
      flags.assign(size, 0);
    }
    return flags;
  }

  /// The slot's index scratch list, cleared.
  std::vector<std::int64_t>& indices(int slot) {
    std::vector<std::int64_t>& indices =
        slots_[static_cast<std::size_t>(slot)].indices;
    indices.clear();
    return indices;
  }

  /// High-water footprint of every slot's scratch storage in bytes. The
  /// pool never shrinks, so this only grows over a job — sampled per
  /// superstep by the tracer's counter flush.
  std::size_t HighWaterBytes() const {
    std::size_t bytes = slots_.capacity() * sizeof(Slot);
    for (const Slot& slot : slots_) {
      bytes += slot.labels.ApproxBytes() + slot.flags.capacity() +
               slot.indices.capacity() * sizeof(std::int64_t);
    }
    return bytes;
  }

 private:
  struct Slot {
    LabelCounter labels;
    std::vector<char> flags;
    std::vector<std::int64_t> indices;
  };
  std::vector<Slot> slots_;
};

}  // namespace ga::exec

#endif  // GRAPHALYTICS_CORE_EXEC_SCRATCH_POOL_H_
