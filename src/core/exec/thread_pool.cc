#include "core/exec/thread_pool.h"

#include <algorithm>
#include <string>
#include <utility>

namespace ga::exec {

namespace {
std::atomic<ParallelLoopHook> g_loop_hook{nullptr};
std::atomic<ParallelChunkHook> g_chunk_hook{nullptr};
}  // namespace

void SetParallelFaultHooks(ParallelLoopHook loop_hook,
                           ParallelChunkHook chunk_hook) {
  g_loop_hook.store(loop_hook, std::memory_order_relaxed);
  g_chunk_hook.store(chunk_hook, std::memory_order_relaxed);
}

ParallelLoopHook GetParallelLoopHook() {
  return g_loop_hook.load(std::memory_order_relaxed);
}

ParallelChunkHook GetParallelChunkHook() {
  return g_chunk_hook.load(std::memory_order_relaxed);
}

int ThreadPool::HardwareConcurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads <= 0 ? HardwareConcurrency() : num_threads) {
  bands_.reserve(num_threads_);
  for (int i = 0; i < num_threads_; ++i) {
    bands_.push_back(std::make_unique<Band>());
  }
  steals_.resize(num_threads_);
  workers_.reserve(num_threads_ - 1);
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

Result<std::unique_ptr<ThreadPool>> ThreadPool::Create(int num_threads) {
  if (num_threads <= 0) {
    return Status::InvalidArgument(
        "thread pool needs at least 1 thread, got " +
        std::to_string(num_threads) +
        " (size from ThreadPool::HardwareConcurrency() instead)");
  }
  return std::make_unique<ThreadPool>(num_threads);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Execute(std::int64_t num_chunks,
                         const std::function<void(std::int64_t)>& body) {
  if (num_chunks <= 0) return;
  if (num_threads_ == 1) {
    // Same contract as the pooled path: every chunk runs even if one
    // throws, and the lowest throwing chunk's exception surfaces after
    // the job drains (ascending order makes the first catch the lowest).
    std::exception_ptr inline_error;
    for (std::int64_t chunk = 0; chunk < num_chunks; ++chunk) {
      try {
        body(chunk);
      } catch (...) {
        if (!inline_error) inline_error = std::current_exception();
      }
    }
    if (inline_error) std::rethrow_exception(inline_error);
    return;
  }

  // Partition [0, num_chunks) into one contiguous band per participant.
  const std::int64_t per_band = num_chunks / num_threads_;
  const std::int64_t remainder = num_chunks % num_threads_;
  std::int64_t begin = 0;
  for (int i = 0; i < num_threads_; ++i) {
    const std::int64_t size = per_band + (i < remainder ? 1 : 0);
    bands_[i]->next.store(begin, std::memory_order_relaxed);
    bands_[i]->end = begin + size;
    begin += size;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &body;
    unfinished_ = num_threads_;
    ++epoch_;
  }
  work_cv_.notify_all();

  RunShare(0, body);

  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (--unfinished_ > 0) {
      done_cv_.wait(lock, [this] { return unfinished_ == 0; });
    } else {
      done_cv_.notify_all();
    }
    job_ = nullptr;
  }

  // Surface the lowest-chunk exception (if any) on the submitting thread,
  // after every participant finished — never from a worker, which would
  // std::terminate.
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    error = std::exchange(error_, nullptr);
    error_chunk_ = -1;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::WorkerLoop(int self) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(std::int64_t)>* job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    RunShare(self, *job);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --unfinished_;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::RunShare(int self,
                          const std::function<void(std::int64_t)>& body) {
  // Remaining chunks still run after a throw (the completed-chunk set
  // must not depend on host timing); Execute rethrows the lowest-index
  // capture once the job has drained.
  const auto run_chunk = [&](std::int64_t chunk) {
    try {
      body(chunk);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex_);
      if (error_chunk_ < 0 || chunk < error_chunk_) {
        error_chunk_ = chunk;
        error_ = std::current_exception();
      }
    }
  };
  // Own band first.
  Band& own = *bands_[self];
  for (;;) {
    const std::int64_t chunk = own.next.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= own.end) break;
    run_chunk(chunk);
  }
  // Then steal round-robin from everyone else.
  for (int offset = 1; offset < num_threads_; ++offset) {
    Band& victim = *bands_[(self + offset) % num_threads_];
    for (;;) {
      const std::int64_t chunk =
          victim.next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= victim.end) break;
      ++steals_[self].count;
      run_chunk(chunk);
    }
  }
}

}  // namespace ga::exec
