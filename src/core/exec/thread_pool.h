// ThreadPool: persistent host worker threads with work-stealing chunk
// scheduling.
//
// The pool executes a *chunked job*: body(chunk) for every chunk index in
// [0, num_chunks). Chunks are pre-partitioned into contiguous bands, one
// per participant (the calling thread participates); a participant drains
// its own band first and then steals remaining chunks from other bands.
// WHICH thread runs a chunk is unspecified — callers that need
// determinism must key all side effects by chunk index, never by thread
// (see exec.h, which layers a fixed slot decomposition on top).
//
// This is the real host-parallelism substrate of the reproduction; it is
// unrelated to the *simulated* workers of ga::sysmodel, which remain a
// pure cost model.
#ifndef GRAPHALYTICS_CORE_EXEC_THREAD_POOL_H_
#define GRAPHALYTICS_CORE_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/status.h"

namespace ga::exec {

/// Process-wide fault/test hooks for the exec-layer parallel constructs
/// (ga::faults installs them; null — the default — costs one relaxed
/// atomic load per call site). The loop hook runs once per parallel_for/
/// parallel_reduce dispatch, on the submitting thread, BEFORE any chunk;
/// the chunk hook runs before each chunk body, on whichever thread claimed
/// it, and may throw (the pool propagates the exception to the submitting
/// thread — see ThreadPool::Execute). Both fire on the inline (no-pool)
/// path too, so an installed fault plan reproduces the same failure
/// sequence at any --jobs value.
using ParallelLoopHook = void (*)();
using ParallelChunkHook = void (*)(int slot);
void SetParallelFaultHooks(ParallelLoopHook loop_hook,
                           ParallelChunkHook chunk_hook);
ParallelLoopHook GetParallelLoopHook();
ParallelChunkHook GetParallelChunkHook();

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` total participants (including the
  /// caller of Execute). num_threads <= 0 selects the hardware
  /// concurrency. A pool of 1 runs every job inline.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  /// Validating factory: rejects a non-positive thread count with
  /// kInvalidArgument instead of the constructor's silent fall-back to
  /// the hardware concurrency. Entry point for explicitly user-supplied
  /// counts (a `--jobs 0` typo should be an error, not a 64-thread pool).
  static Result<std::unique_ptr<ThreadPool>> Create(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs body(chunk) for every chunk in [0, num_chunks), blocking until
  /// all chunks completed. The calling thread participates. Bodies must
  /// not call Execute on the same pool (jobs do not nest).
  ///
  /// A body that throws no longer terminates the process: every chunk
  /// still runs (no early abort — the completed-chunk set must not depend
  /// on host timing), and after the job the exception of the LOWEST
  /// throwing chunk index is rethrown on the submitting thread. Combined
  /// with the ascending inline path this makes the surfaced exception
  /// identical at any thread count whenever throwing is a deterministic
  /// property of a chunk. The platform layer converts it to a Status at
  /// the job boundary (StatusException carries one verbatim).
  void Execute(std::int64_t num_chunks,
               const std::function<void(std::int64_t)>& body);

  /// Chunks executed by a participant from some other participant's band,
  /// summed over the pool's lifetime. Each participant counts its own
  /// steals in a padded slot (no contention; steals are rare by design),
  /// so call this only between Execute calls, where the count is exact.
  /// Steal totals depend on host timing — observability only, never an
  /// input to anything deterministic.
  std::uint64_t TotalSteals() const {
    std::uint64_t total = 0;
    for (const StealCounter& counter : steals_) total += counter.count;
    return total;
  }

  static int HardwareConcurrency();

 private:
  // One contiguous band of chunks. Owned by one participant, but any
  // participant may steal from it: claiming is a fetch_add on `next`,
  // valid while the claimed index is below `end`.
  struct Band {
    std::atomic<std::int64_t> next{0};
    std::int64_t end = 0;
  };

  // Self-written only (participant i touches steals_[i] alone), padded so
  // the slots never share a cache line.
  struct alignas(64) StealCounter {
    std::uint64_t count = 0;
  };

  void WorkerLoop(int self);
  /// Drains band `self`, then steals from the other bands round-robin.
  void RunShare(int self, const std::function<void(std::int64_t)>& body);

  int num_threads_;
  std::vector<std::unique_ptr<Band>> bands_;
  std::vector<StealCounter> steals_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::int64_t)>* job_ = nullptr;
  std::uint64_t epoch_ = 0;  // bumped per job; workers wait on it
  int unfinished_ = 0;
  bool shutdown_ = false;

  // First-by-chunk-index exception capture for the current job. Guarded
  // by error_mutex_ (taken only on the throw path — errors are rare).
  std::mutex error_mutex_;
  std::exception_ptr error_;
  std::int64_t error_chunk_ = -1;
};

}  // namespace ga::exec

#endif  // GRAPHALYTICS_CORE_EXEC_THREAD_POOL_H_
