#include "core/graph.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace ga {

namespace {

// Builds a CSR structure from (source-sorted) index pairs.
// entries must be sorted by `key` ascending.
struct AdjacencyEntry {
  VertexIndex key;    // vertex owning the adjacency list
  VertexIndex other;  // neighbour
  Weight weight;
};

void BuildCsr(const std::vector<AdjacencyEntry>& entries, VertexIndex n,
              bool weighted, std::vector<EdgeIndex>* offsets,
              std::vector<VertexIndex>* neighbors,
              std::vector<Weight>* weights) {
  offsets->assign(static_cast<std::size_t>(n) + 1, 0);
  neighbors->resize(entries.size());
  if (weighted) weights->resize(entries.size());
  for (const AdjacencyEntry& entry : entries) {
    ++(*offsets)[static_cast<std::size_t>(entry.key) + 1];
  }
  for (VertexIndex v = 0; v < n; ++v) {
    (*offsets)[static_cast<std::size_t>(v) + 1] +=
        (*offsets)[static_cast<std::size_t>(v)];
  }
  std::vector<EdgeIndex> cursor(offsets->begin(), offsets->end() - 1);
  for (const AdjacencyEntry& entry : entries) {
    EdgeIndex slot = cursor[static_cast<std::size_t>(entry.key)]++;
    (*neighbors)[static_cast<std::size_t>(slot)] = entry.other;
    if (weighted) (*weights)[static_cast<std::size_t>(slot)] = entry.weight;
  }
}

EdgeIndex MaxDegree(const std::vector<EdgeIndex>& offsets) {
  EdgeIndex max_degree = 0;
  for (std::size_t v = 0; v + 1 < offsets.size(); ++v) {
    max_degree = std::max(max_degree, offsets[v + 1] - offsets[v]);
  }
  return max_degree;
}

}  // namespace

Result<Graph> GraphBuilder::Build() && {
  Graph graph;
  graph.directedness_ = directedness_;
  graph.weighted_ = weighted_;

  // 1. Collect and densify vertex ids.
  std::vector<VertexId> ids = std::move(vertices_);
  ids.reserve(ids.size() + raw_edges_.size() * 2);
  for (const RawEdge& edge : raw_edges_) {
    ids.push_back(edge.source);
    ids.push_back(edge.target);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  graph.external_ids_ = std::move(ids);
  graph.index_of_.reserve(graph.external_ids_.size() * 2);
  for (std::size_t i = 0; i < graph.external_ids_.size(); ++i) {
    graph.index_of_.emplace(graph.external_ids_[i],
                            static_cast<VertexIndex>(i));
  }
  const VertexIndex n = graph.num_vertices();

  // 2. Canonicalise edges: remap ids, orient undirected edges low->high,
  //    drop or reject self-loops, sort, dedupe.
  const bool undirected = directedness_ == Directedness::kUndirected;
  std::vector<Edge> edges;
  edges.reserve(raw_edges_.size());
  for (const RawEdge& raw : raw_edges_) {
    VertexIndex s = graph.index_of_.at(raw.source);
    VertexIndex t = graph.index_of_.at(raw.target);
    if (s == t) {
      if (policy_ == AnomalyPolicy::kReject) {
        return Status::InvalidArgument(
            "self-loop on vertex " + std::to_string(raw.source) +
            " violates the Graphalytics data model");
      }
      continue;
    }
    if (undirected && s > t) std::swap(s, t);
    edges.push_back(Edge{s, t, raw.weight});
  }
  raw_edges_.clear();
  raw_edges_.shrink_to_fit();

  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.source != b.source ? a.source < b.source : a.target < b.target;
  });
  auto duplicate = [](const Edge& a, const Edge& b) {
    return a.source == b.source && a.target == b.target;
  };
  auto first_dup = std::adjacent_find(edges.begin(), edges.end(), duplicate);
  if (first_dup != edges.end()) {
    if (policy_ == AnomalyPolicy::kReject) {
      return Status::InvalidArgument(
          "duplicate edge violates the Graphalytics data model");
    }
    edges.erase(std::unique(edges.begin(), edges.end(), duplicate),
                edges.end());
  }
  graph.edges_ = std::move(edges);

  // 3. Materialise adjacency.
  std::vector<AdjacencyEntry> out_entries;
  out_entries.reserve(graph.edges_.size() * (undirected ? 2 : 1));
  for (const Edge& edge : graph.edges_) {
    out_entries.push_back({edge.source, edge.target, edge.weight});
    if (undirected) out_entries.push_back({edge.target, edge.source, edge.weight});
  }
  std::sort(out_entries.begin(), out_entries.end(),
            [](const AdjacencyEntry& a, const AdjacencyEntry& b) {
              return a.key != b.key ? a.key < b.key : a.other < b.other;
            });
  BuildCsr(out_entries, n, weighted_, &graph.out_offsets_,
           &graph.out_targets_, &graph.out_weights_);
  graph.max_out_degree_ = MaxDegree(graph.out_offsets_);

  if (!undirected) {
    std::vector<AdjacencyEntry> in_entries;
    in_entries.reserve(graph.edges_.size());
    for (const Edge& edge : graph.edges_) {
      in_entries.push_back({edge.target, edge.source, edge.weight});
    }
    std::sort(in_entries.begin(), in_entries.end(),
              [](const AdjacencyEntry& a, const AdjacencyEntry& b) {
                return a.key != b.key ? a.key < b.key : a.other < b.other;
              });
    BuildCsr(in_entries, n, weighted_, &graph.in_offsets_, &graph.in_sources_,
             &graph.in_weights_);
    graph.max_in_degree_ = MaxDegree(graph.in_offsets_);
  } else {
    graph.max_in_degree_ = graph.max_out_degree_;
  }

  return graph;
}

double GraphScale(std::int64_t num_vertices, std::int64_t num_edges) {
  double scale = std::log10(static_cast<double>(num_vertices + num_edges));
  return std::round(scale * 10.0) / 10.0;
}

}  // namespace ga
