#include "core/graph.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

namespace ga {

namespace {

// Builds a CSR structure from (fully sorted) index pairs.
// entries must be sorted by (key, other) ascending, so entry j lands at
// slot j — the scatter is a straight copy and parallelises per slice.
struct AdjacencyEntry {
  VertexIndex key;    // vertex owning the adjacency list
  VertexIndex other;  // neighbour
  Weight weight;
};

void BuildCsr(exec::ExecContext& ctx,
              const std::vector<AdjacencyEntry>& entries, VertexIndex n,
              bool weighted, std::vector<EdgeIndex>* offsets,
              std::vector<VertexIndex>* neighbors,
              std::vector<Weight>* weights) {
  offsets->assign(static_cast<std::size_t>(n) + 1, 0);
  neighbors->resize(entries.size());
  if (weighted) weights->resize(entries.size());
  for (const AdjacencyEntry& entry : entries) {
    ++(*offsets)[static_cast<std::size_t>(entry.key) + 1];
  }
  for (VertexIndex v = 0; v < n; ++v) {
    (*offsets)[static_cast<std::size_t>(v) + 1] +=
        (*offsets)[static_cast<std::size_t>(v)];
  }
  exec::parallel_for(
      ctx, 0, static_cast<std::int64_t>(entries.size()),
      [&](const exec::Slice& slice) {
        for (std::int64_t i = slice.begin; i < slice.end; ++i) {
          (*neighbors)[static_cast<std::size_t>(i)] = entries[i].other;
          if (weighted) {
            (*weights)[static_cast<std::size_t>(i)] = entries[i].weight;
          }
        }
      });
}

EdgeIndex MaxDegree(const std::vector<EdgeIndex>& offsets) {
  EdgeIndex max_degree = 0;
  for (std::size_t v = 0; v + 1 < offsets.size(); ++v) {
    max_degree = std::max(max_degree, offsets[v + 1] - offsets[v]);
  }
  return max_degree;
}

constexpr auto kByKeyThenOther = [](const AdjacencyEntry& a,
                                    const AdjacencyEntry& b) {
  return a.key != b.key ? a.key < b.key : a.other < b.other;
};

}  // namespace

void Graph::BindOwnedViews() {
  external_ids_view_ = external_ids_;
  edges_view_ = edges_;
  out_offsets_view_ = out_offsets_;
  out_targets_view_ = out_targets_;
  out_weights_view_ = out_weights_;
  const bool directed = is_directed();
  in_offsets_view_ = directed ? std::span<const EdgeIndex>(in_offsets_)
                              : out_offsets_view_;
  in_sources_view_ = directed ? std::span<const VertexIndex>(in_sources_)
                              : out_targets_view_;
  in_weights_view_ = directed ? std::span<const Weight>(in_weights_)
                              : out_weights_view_;
}

void Graph::MaterialiseAdjacency(exec::ExecContext& ctx) {
  const bool undirected = !is_directed();
  const VertexIndex n = static_cast<VertexIndex>(external_ids_.size());
  const std::int64_t num_edges = static_cast<std::int64_t>(edges_.size());
  std::vector<AdjacencyEntry> out_entries(
      static_cast<std::size_t>(num_edges) * (undirected ? 2 : 1));
  exec::parallel_for(ctx, 0, num_edges, [&](const exec::Slice& slice) {
    for (std::int64_t e = slice.begin; e < slice.end; ++e) {
      const Edge& edge = edges_[e];
      if (undirected) {
        out_entries[2 * e] = {edge.source, edge.target, edge.weight};
        out_entries[2 * e + 1] = {edge.target, edge.source, edge.weight};
      } else {
        out_entries[e] = {edge.source, edge.target, edge.weight};
      }
    }
  });
  exec::parallel_sort(ctx, &out_entries, kByKeyThenOther);
  BuildCsr(ctx, out_entries, n, weighted_, &out_offsets_, &out_targets_,
           &out_weights_);
  max_out_degree_ = MaxDegree(out_offsets_);

  if (!undirected) {
    std::vector<AdjacencyEntry> in_entries(
        static_cast<std::size_t>(num_edges));
    exec::parallel_for(ctx, 0, num_edges, [&](const exec::Slice& slice) {
      for (std::int64_t e = slice.begin; e < slice.end; ++e) {
        const Edge& edge = edges_[e];
        in_entries[e] = {edge.target, edge.source, edge.weight};
      }
    });
    exec::parallel_sort(ctx, &in_entries, kByKeyThenOther);
    BuildCsr(ctx, in_entries, n, weighted_, &in_offsets_, &in_sources_,
             &in_weights_);
    max_in_degree_ = MaxDegree(in_offsets_);
  } else {
    max_in_degree_ = max_out_degree_;
  }

  BindOwnedViews();
}

Result<Graph> Graph::FromCanonical(std::vector<VertexId> external_ids,
                                   std::vector<Edge> edges,
                                   Directedness directedness, bool weighted,
                                   exec::ThreadPool* pool) {
  const VertexIndex n = static_cast<VertexIndex>(external_ids.size());
  for (VertexIndex v = 0; v + 1 < n; ++v) {
    if (external_ids[v] >= external_ids[v + 1]) {
      return Status::InvalidArgument(
          "FromCanonical: external ids not strictly ascending");
    }
  }
  const bool undirected = directedness == Directedness::kUndirected;
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const Edge& edge = edges[e];
    if (edge.source < 0 || edge.source >= n || edge.target < 0 ||
        edge.target >= n) {
      return Status::InvalidArgument(
          "FromCanonical: edge endpoint out of range");
    }
    if (edge.source == edge.target) {
      return Status::InvalidArgument("FromCanonical: self-loop");
    }
    if (undirected && edge.source > edge.target) {
      return Status::InvalidArgument(
          "FromCanonical: undirected edge not oriented low->high");
    }
    if (e > 0 && !(edges[e - 1].source < edge.source ||
                   (edges[e - 1].source == edge.source &&
                    edges[e - 1].target < edge.target))) {
      return Status::InvalidArgument(
          "FromCanonical: edge array not strictly sorted");
    }
  }
  exec::ExecContext ctx(pool);
  Graph graph;
  graph.directedness_ = directedness;
  graph.weighted_ = weighted;
  graph.external_ids_ = std::move(external_ids);
  graph.edges_ = std::move(edges);
  graph.MaterialiseAdjacency(ctx);
  return graph;
}

Graph Graph::FromParts(const GraphParts& parts,
                       std::shared_ptr<const void> backing) {
  Graph graph;
  graph.directedness_ = parts.directedness;
  graph.weighted_ = parts.weighted;
  graph.external_ids_view_ = parts.external_ids;
  graph.edges_view_ = parts.edges;
  graph.out_offsets_view_ = parts.out_offsets;
  graph.out_targets_view_ = parts.out_targets;
  graph.out_weights_view_ = parts.out_weights;
  const bool directed = parts.directedness == Directedness::kDirected;
  graph.in_offsets_view_ = directed ? parts.in_offsets : parts.out_offsets;
  graph.in_sources_view_ = directed ? parts.in_sources : parts.out_targets;
  graph.in_weights_view_ = directed ? parts.in_weights : parts.out_weights;
  graph.max_out_degree_ = parts.max_out_degree;
  graph.max_in_degree_ = parts.max_in_degree;
  graph.backing_ = std::move(backing);
  return graph;
}

Result<Graph> GraphBuilder::Build(exec::ThreadPool* pool) && {
  exec::ExecContext ctx(pool);
  Graph graph;
  graph.directedness_ = directedness_;
  graph.weighted_ = weighted_;

  // 1. Collect and densify vertex ids.
  std::vector<VertexId> ids = std::move(vertices_);
  ids.reserve(ids.size() + raw_edges_.size() * 2);
  for (const RawEdge& edge : raw_edges_) {
    ids.push_back(edge.source);
    ids.push_back(edge.target);
  }
  exec::parallel_sort(ctx, &ids, std::less<VertexId>{});
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  graph.external_ids_ = std::move(ids);
  // IndexOf below reads through the view; bind it now (the remaining
  // views are bound once every array is final).
  graph.external_ids_view_ = graph.external_ids_;

  // 2. Canonicalise edges: remap ids, orient undirected edges low->high,
  //    drop or reject self-loops, sort, dedupe. The remap runs
  //    host-parallel over raw-edge slices (the sorted id array is
  //    read-only by now); slot-ordered concatenation preserves input
  //    order, so the duplicate-survivor choice is thread-count
  //    independent.
  const bool undirected = directedness_ == Directedness::kUndirected;
  const std::int64_t num_raw =
      static_cast<std::int64_t>(raw_edges_.size());
  exec::SlotBuffers<Edge> remapped;
  remapped.Reset(exec::ExecContext::NumSlots(num_raw));
  std::vector<VertexId> slot_self_loop(
      std::max(remapped.num_slots(), 1), -1);
  exec::parallel_for(ctx, 0, num_raw, [&](const exec::Slice& slice) {
    std::vector<Edge>& out = remapped.buf(slice.slot);
    // At most one survivor per raw edge: size the slot buffer once so
    // the scatter below never grow-reallocs mid-slice.
    out.reserve(static_cast<std::size_t>(slice.end - slice.begin));
    for (std::int64_t i = slice.begin; i < slice.end; ++i) {
      const RawEdge& raw = raw_edges_[i];
      // Endpoints were folded into external_ids_ above, so IndexOf (a
      // binary search over the sorted id array) cannot miss here.
      VertexIndex s = graph.IndexOf(raw.source);
      VertexIndex t = graph.IndexOf(raw.target);
      if (s == t) {
        if (slot_self_loop[slice.slot] == -1) {
          slot_self_loop[slice.slot] = raw.source;
        }
        continue;
      }
      if (undirected && s > t) std::swap(s, t);
      out.push_back(Edge{s, t, raw.weight});
    }
  });
  if (policy_ == AnomalyPolicy::kReject) {
    for (VertexId offender : slot_self_loop) {
      if (offender != -1) {
        return Status::InvalidArgument(
            "self-loop on vertex " + std::to_string(offender) +
            " violates the Graphalytics data model");
      }
    }
  }
  std::vector<Edge> edges;
  remapped.MergeInto(&edges);
  raw_edges_.clear();
  raw_edges_.shrink_to_fit();

  exec::parallel_sort(ctx, &edges, [](const Edge& a, const Edge& b) {
    return a.source != b.source ? a.source < b.source : a.target < b.target;
  });
  auto duplicate = [](const Edge& a, const Edge& b) {
    return a.source == b.source && a.target == b.target;
  };
  auto first_dup = std::adjacent_find(edges.begin(), edges.end(), duplicate);
  if (first_dup != edges.end()) {
    if (policy_ == AnomalyPolicy::kReject) {
      return Status::InvalidArgument(
          "duplicate edge violates the Graphalytics data model");
    }
    edges.erase(std::unique(edges.begin(), edges.end(), duplicate),
                edges.end());
  }
  graph.edges_ = std::move(edges);

  // 3. Materialise adjacency: indexed parallel writes into a presized
  //    entry array, parallel sort, parallel CSR scatter (shared with
  //    FromCanonical).
  graph.MaterialiseAdjacency(ctx);
  return graph;
}

namespace {

template <typename T>
bool SpanBytesEqual(std::span<const T> a, std::span<const T> b) {
  if (a.size() != b.size()) return false;
  if (a.empty()) return true;
  return std::memcmp(a.data(), b.data(), a.size_bytes()) == 0;
}

}  // namespace

bool GraphsBitIdentical(const Graph& a, const Graph& b) {
  return a.directedness() == b.directedness() &&
         a.is_weighted() == b.is_weighted() &&
         a.max_out_degree() == b.max_out_degree() &&
         a.max_in_degree() == b.max_in_degree() &&
         SpanBytesEqual(a.external_ids(), b.external_ids()) &&
         SpanBytesEqual(a.edges(), b.edges()) &&
         SpanBytesEqual(a.out_offsets(), b.out_offsets()) &&
         SpanBytesEqual(a.out_targets(), b.out_targets()) &&
         SpanBytesEqual(a.out_weights(), b.out_weights()) &&
         SpanBytesEqual(a.in_offsets(), b.in_offsets()) &&
         SpanBytesEqual(a.in_sources(), b.in_sources()) &&
         SpanBytesEqual(a.in_weights(), b.in_weights());
}

double GraphScale(std::int64_t num_vertices, std::int64_t num_edges) {
  double scale = std::log10(static_cast<double>(num_vertices + num_edges));
  return std::round(scale * 10.0) / 10.0;
}

}  // namespace ga
