// Immutable in-memory property graph with CSR/CSC adjacency.
//
// Data model per the Graphalytics specification (Section 2.2.1): a graph is
// a set of vertices identified by unique integers plus a set of unique edges
// between distinct vertices; directed or undirected; optionally carrying
// double-precision edge weights (required by SSSP).
//
// Graphs are constructed through GraphBuilder, which remaps the sparse
// external vertex identifiers to dense internal indices [0, n), sorts and
// deduplicates edges, and materialises:
//   * a canonical edge array (each logical edge once),
//   * out-adjacency in CSR form (undirected graphs include both directions),
//   * in-adjacency in CSC form (directed graphs only; undirected aliases out).
//
// Storage backing: every accessor reads through std::span views. A built
// graph binds the views to its owned vectors; a snapshot-backed graph
// (ga::store) binds them straight into a read-only file mapping via
// Graph::FromParts, with a shared keep-alive handle for the mapping — the
// two paths are indistinguishable to algorithms and engines.
#ifndef GRAPHALYTICS_CORE_GRAPH_H_
#define GRAPHALYTICS_CORE_GRAPH_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/exec/exec.h"
#include "core/status.h"
#include "core/types.h"

namespace ga {

/// One logical edge in canonical form (for undirected graphs,
/// source <= target after canonicalisation).
struct Edge {
  VertexIndex source;
  VertexIndex target;
  Weight weight;
};

/// Borrowed views over a graph's materialised arrays, used to construct a
/// Graph over externally owned storage (a snapshot mapping). For
/// undirected graphs the in_* spans must be empty (in-adjacency aliases
/// out-adjacency); unweighted graphs leave the weight spans empty.
struct GraphParts {
  Directedness directedness = Directedness::kDirected;
  bool weighted = false;
  std::span<const VertexId> external_ids;
  std::span<const Edge> edges;
  std::span<const EdgeIndex> out_offsets;  // size n+1
  std::span<const VertexIndex> out_targets;
  std::span<const Weight> out_weights;
  std::span<const EdgeIndex> in_offsets;  // directed only
  std::span<const VertexIndex> in_sources;
  std::span<const Weight> in_weights;
  EdgeIndex max_out_degree = 0;
  EdgeIndex max_in_degree = 0;
};

class Graph {
 public:
  Graph() = default;

  // Movable but not copyable: graphs can be large. Moving the owned
  // vectors keeps their heap buffers in place, so the span views stay
  // valid across moves.
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  /// Constructs a graph whose arrays live in externally owned storage
  /// (e.g. an mmap-ed snapshot, see ga::store). `backing` keeps the
  /// storage alive for the graph's lifetime; `parts` must already satisfy
  /// the Graph invariants (sorted external ids, canonical sorted edges,
  /// consistent CSR) — ga::store validates before calling.
  static Graph FromParts(const GraphParts& parts,
                         std::shared_ptr<const void> backing);

  /// Builds a graph from inputs that are ALREADY canonical: `external_ids`
  /// strictly ascending, `edges` in internal-index space, strictly sorted
  /// by (source, target), self-loop free, and (for undirected graphs)
  /// oriented source <= target. Used by ga::mutate, whose epoch apply
  /// produces canonical arrays directly — the id collection, remap, sort
  /// and dedupe of GraphBuilder::Build would be wasted work there. The
  /// inputs are validated (O(n + m) scans) and the adjacency arrays are
  /// materialised through the same deterministic exec machinery as Build,
  /// so the result is bit-identical at any host thread count — and
  /// bit-identical to a GraphBuilder::Build over the same logical graph.
  static Result<Graph> FromCanonical(std::vector<VertexId> external_ids,
                                     std::vector<Edge> edges,
                                     Directedness directedness, bool weighted,
                                     exec::ThreadPool* pool = nullptr);

  /// Whether the arrays live in externally owned (snapshot) storage
  /// rather than owned vectors.
  bool is_storage_backed() const { return backing_ != nullptr; }

  VertexIndex num_vertices() const {
    return static_cast<VertexIndex>(external_ids_view_.size());
  }
  /// Number of logical edges (an undirected edge counts once).
  EdgeIndex num_edges() const {
    return static_cast<EdgeIndex>(edges_view_.size());
  }
  Directedness directedness() const { return directedness_; }
  bool is_directed() const {
    return directedness_ == Directedness::kDirected;
  }
  bool is_weighted() const { return weighted_; }

  /// The canonical edge array (each logical edge exactly once).
  std::span<const Edge> edges() const { return edges_view_; }

  /// Out-neighbours of v. For undirected graphs this is all neighbours.
  std::span<const VertexIndex> OutNeighbors(VertexIndex v) const {
    return {out_targets_view_.data() + out_offsets_view_[v],
            static_cast<std::size_t>(out_offsets_view_[v + 1] -
                                     out_offsets_view_[v])};
  }
  /// Weights parallel to OutNeighbors(v). Empty span if unweighted.
  std::span<const Weight> OutWeights(VertexIndex v) const {
    if (!weighted_) return {};
    return {out_weights_view_.data() + out_offsets_view_[v],
            static_cast<std::size_t>(out_offsets_view_[v + 1] -
                                     out_offsets_view_[v])};
  }
  EdgeIndex OutDegree(VertexIndex v) const {
    return out_offsets_view_[v + 1] - out_offsets_view_[v];
  }

  /// In-neighbours of v (== OutNeighbors for undirected graphs; the in_*
  /// views alias the out_* views then).
  std::span<const VertexIndex> InNeighbors(VertexIndex v) const {
    return {in_sources_view_.data() + in_offsets_view_[v],
            static_cast<std::size_t>(in_offsets_view_[v + 1] -
                                     in_offsets_view_[v])};
  }
  std::span<const Weight> InWeights(VertexIndex v) const {
    if (!weighted_) return {};
    return {in_weights_view_.data() + in_offsets_view_[v],
            static_cast<std::size_t>(in_offsets_view_[v + 1] -
                                     in_offsets_view_[v])};
  }
  EdgeIndex InDegree(VertexIndex v) const {
    return in_offsets_view_[v + 1] - in_offsets_view_[v];
  }

  /// Raw CSR arrays, for engines that operate on the matrix directly.
  std::span<const EdgeIndex> out_offsets() const { return out_offsets_view_; }
  std::span<const VertexIndex> out_targets() const {
    return out_targets_view_;
  }
  std::span<const Weight> out_weights() const { return out_weights_view_; }
  std::span<const EdgeIndex> in_offsets() const { return in_offsets_view_; }
  std::span<const VertexIndex> in_sources() const { return in_sources_view_; }
  std::span<const Weight> in_weights() const { return in_weights_view_; }

  /// External (dataset) id of an internal index.
  VertexId ExternalId(VertexIndex v) const { return external_ids_view_[v]; }
  std::span<const VertexId> external_ids() const {
    return external_ids_view_;
  }

  /// Internal index of an external id, or kInvalidVertex if absent.
  /// Build sorts external_ids_ ascending, so the id->index map IS a
  /// binary search over the id array — no separate hash index to build,
  /// fill or keep resident.
  VertexIndex IndexOf(VertexId id) const {
    auto it = std::lower_bound(external_ids_view_.begin(),
                               external_ids_view_.end(), id);
    if (it == external_ids_view_.end() || *it != id) return kInvalidVertex;
    return static_cast<VertexIndex>(it - external_ids_view_.begin());
  }

  /// Maximum out-degree (0 for an empty graph). Used by the memory model:
  /// skewed graphs stress per-vertex message buffers.
  EdgeIndex max_out_degree() const { return max_out_degree_; }
  EdgeIndex max_in_degree() const { return max_in_degree_; }

  /// Total directed adjacency entries: m for directed, 2m for undirected.
  EdgeIndex num_adjacency_entries() const {
    return static_cast<EdgeIndex>(out_targets_view_.size());
  }

 private:
  friend class GraphBuilder;

  /// Points the views at the owned vectors (in_* alias out_* for
  /// undirected graphs, mirroring the old accessor branches).
  void BindOwnedViews();

  /// Materialises out-CSR (and in-CSC for directed graphs) plus max
  /// degrees from the graph's canonical edge array, then binds the owned
  /// views. Shared by GraphBuilder::Build and FromCanonical; requires
  /// directedness_, weighted_, external_ids_ and edges_ to be final.
  void MaterialiseAdjacency(exec::ExecContext& ctx);

  Directedness directedness_ = Directedness::kDirected;
  bool weighted_ = false;

  // Owned storage; empty when the graph is storage-backed.
  std::vector<VertexId> external_ids_;  // index -> external id, sorted

  std::vector<Edge> edges_;  // canonical logical edges

  std::vector<EdgeIndex> out_offsets_;   // size n+1
  std::vector<VertexIndex> out_targets_;
  std::vector<Weight> out_weights_;

  // Directed graphs only (undirected aliases the out arrays).
  std::vector<EdgeIndex> in_offsets_;
  std::vector<VertexIndex> in_sources_;
  std::vector<Weight> in_weights_;

  // The views every accessor reads through: bound to the vectors above by
  // Build, or to a snapshot mapping by FromParts.
  std::span<const VertexId> external_ids_view_;
  std::span<const Edge> edges_view_;
  std::span<const EdgeIndex> out_offsets_view_;
  std::span<const VertexIndex> out_targets_view_;
  std::span<const Weight> out_weights_view_;
  std::span<const EdgeIndex> in_offsets_view_;
  std::span<const VertexIndex> in_sources_view_;
  std::span<const Weight> in_weights_view_;

  // Keep-alive for externally owned storage (null for owned graphs).
  std::shared_ptr<const void> backing_;

  EdgeIndex max_out_degree_ = 0;
  EdgeIndex max_in_degree_ = 0;
};

/// Accumulates vertices and edges, then Build()s an immutable Graph.
class GraphBuilder {
 public:
  /// Policy for duplicate edges and self-loops encountered during Build.
  /// The Graphalytics data model forbids both; generators commonly produce
  /// them and expect silent dropping (kDrop), file loaders reject (kReject).
  enum class AnomalyPolicy { kDrop, kReject };

  explicit GraphBuilder(Directedness directedness, bool weighted = false,
                        AnomalyPolicy policy = AnomalyPolicy::kDrop)
      : directedness_(directedness), weighted_(weighted), policy_(policy) {}

  /// Registers a vertex (needed for isolated vertices; edge endpoints are
  /// registered automatically).
  void AddVertex(VertexId id) { vertices_.push_back(id); }

  void AddEdge(VertexId source, VertexId target, Weight weight = 1.0) {
    raw_edges_.push_back(RawEdge{source, target, weight});
  }

  /// Pre-size the pending buffers. Generators know their vertex/edge
  /// budget up front; reserving once avoids growing-reallocating through
  /// the whole edge array during generation (an estimate is fine — any
  /// slack is released when Build() consumes the buffers).
  void ReserveVertices(std::size_t count) { vertices_.reserve(count); }
  void ReserveEdges(std::size_t count) { raw_edges_.reserve(count); }

  std::size_t num_pending_edges() const { return raw_edges_.size(); }

  /// Builds the immutable graph. Consumes the builder's buffers. With a
  /// pool, the id/edge sorts, canonicalisation and CSR scatter run
  /// host-parallel; the resulting graph is byte-identical at any thread
  /// count (fixed slot decomposition + stable merges, see core/exec).
  Result<Graph> Build(exec::ThreadPool* pool = nullptr) &&;

 private:
  struct RawEdge {
    VertexId source;
    VertexId target;
    Weight weight;
  };

  Directedness directedness_;
  bool weighted_;
  AnomalyPolicy policy_;
  std::vector<VertexId> vertices_;
  std::vector<RawEdge> raw_edges_;
};

/// Graphalytics graph scale: log10(|V| + |E|) rounded to one decimal
/// (Section 2.2.4).
double GraphScale(std::int64_t num_vertices, std::int64_t num_edges);

/// Whether two graphs are byte-identical: same flags and the same bytes in
/// every materialised array (ids, canonical edges, CSR/CSC, weights).
/// This is the equality the determinism and snapshot-chain contracts are
/// stated in — stronger than isomorphism or output equivalence.
bool GraphsBitIdentical(const Graph& a, const Graph& b);

}  // namespace ga

#endif  // GRAPHALYTICS_CORE_GRAPH_H_
