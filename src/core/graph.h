// Immutable in-memory property graph with CSR/CSC adjacency.
//
// Data model per the Graphalytics specification (Section 2.2.1): a graph is
// a set of vertices identified by unique integers plus a set of unique edges
// between distinct vertices; directed or undirected; optionally carrying
// double-precision edge weights (required by SSSP).
//
// Graphs are constructed through GraphBuilder, which remaps the sparse
// external vertex identifiers to dense internal indices [0, n), sorts and
// deduplicates edges, and materialises:
//   * a canonical edge array (each logical edge once),
//   * out-adjacency in CSR form (undirected graphs include both directions),
//   * in-adjacency in CSC form (directed graphs only; undirected aliases out).
#ifndef GRAPHALYTICS_CORE_GRAPH_H_
#define GRAPHALYTICS_CORE_GRAPH_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/exec/exec.h"
#include "core/status.h"
#include "core/types.h"

namespace ga {

/// One logical edge in canonical form (for undirected graphs,
/// source <= target after canonicalisation).
struct Edge {
  VertexIndex source;
  VertexIndex target;
  Weight weight;
};

class Graph {
 public:
  Graph() = default;

  // Movable but not copyable: graphs can be large.
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  VertexIndex num_vertices() const {
    return static_cast<VertexIndex>(external_ids_.size());
  }
  /// Number of logical edges (an undirected edge counts once).
  EdgeIndex num_edges() const {
    return static_cast<EdgeIndex>(edges_.size());
  }
  Directedness directedness() const { return directedness_; }
  bool is_directed() const {
    return directedness_ == Directedness::kDirected;
  }
  bool is_weighted() const { return weighted_; }

  /// The canonical edge array (each logical edge exactly once).
  std::span<const Edge> edges() const { return edges_; }

  /// Out-neighbours of v. For undirected graphs this is all neighbours.
  std::span<const VertexIndex> OutNeighbors(VertexIndex v) const {
    return {&out_targets_[out_offsets_[v]],
            static_cast<std::size_t>(out_offsets_[v + 1] - out_offsets_[v])};
  }
  /// Weights parallel to OutNeighbors(v). Empty span if unweighted.
  std::span<const Weight> OutWeights(VertexIndex v) const {
    if (!weighted_) return {};
    return {&out_weights_[out_offsets_[v]],
            static_cast<std::size_t>(out_offsets_[v + 1] - out_offsets_[v])};
  }
  EdgeIndex OutDegree(VertexIndex v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }

  /// In-neighbours of v (== OutNeighbors for undirected graphs).
  std::span<const VertexIndex> InNeighbors(VertexIndex v) const {
    const auto& offsets = is_directed() ? in_offsets_ : out_offsets_;
    const auto& sources = is_directed() ? in_sources_ : out_targets_;
    return {&sources[offsets[v]],
            static_cast<std::size_t>(offsets[v + 1] - offsets[v])};
  }
  std::span<const Weight> InWeights(VertexIndex v) const {
    if (!weighted_) return {};
    const auto& offsets = is_directed() ? in_offsets_ : out_offsets_;
    const auto& weights = is_directed() ? in_weights_ : out_weights_;
    return {&weights[offsets[v]],
            static_cast<std::size_t>(offsets[v + 1] - offsets[v])};
  }
  EdgeIndex InDegree(VertexIndex v) const {
    const auto& offsets = is_directed() ? in_offsets_ : out_offsets_;
    return offsets[v + 1] - offsets[v];
  }

  /// Raw CSR arrays, for engines that operate on the matrix directly.
  std::span<const EdgeIndex> out_offsets() const { return out_offsets_; }
  std::span<const VertexIndex> out_targets() const { return out_targets_; }
  std::span<const Weight> out_weights() const { return out_weights_; }
  std::span<const EdgeIndex> in_offsets() const {
    return is_directed() ? std::span<const EdgeIndex>(in_offsets_)
                         : std::span<const EdgeIndex>(out_offsets_);
  }
  std::span<const VertexIndex> in_sources() const {
    return is_directed() ? std::span<const VertexIndex>(in_sources_)
                         : std::span<const VertexIndex>(out_targets_);
  }

  /// External (dataset) id of an internal index.
  VertexId ExternalId(VertexIndex v) const { return external_ids_[v]; }
  std::span<const VertexId> external_ids() const { return external_ids_; }

  /// Internal index of an external id, or kInvalidVertex if absent.
  /// Build sorts external_ids_ ascending, so the id->index map IS a
  /// binary search over the id array — no separate hash index to build,
  /// fill or keep resident.
  VertexIndex IndexOf(VertexId id) const {
    auto it =
        std::lower_bound(external_ids_.begin(), external_ids_.end(), id);
    if (it == external_ids_.end() || *it != id) return kInvalidVertex;
    return static_cast<VertexIndex>(it - external_ids_.begin());
  }

  /// Maximum out-degree (0 for an empty graph). Used by the memory model:
  /// skewed graphs stress per-vertex message buffers.
  EdgeIndex max_out_degree() const { return max_out_degree_; }
  EdgeIndex max_in_degree() const { return max_in_degree_; }

  /// Total directed adjacency entries: m for directed, 2m for undirected.
  EdgeIndex num_adjacency_entries() const {
    return static_cast<EdgeIndex>(out_targets_.size());
  }

 private:
  friend class GraphBuilder;

  Directedness directedness_ = Directedness::kDirected;
  bool weighted_ = false;

  std::vector<VertexId> external_ids_;  // index -> external id, sorted

  std::vector<Edge> edges_;  // canonical logical edges

  std::vector<EdgeIndex> out_offsets_;   // size n+1
  std::vector<VertexIndex> out_targets_;
  std::vector<Weight> out_weights_;

  // Directed graphs only (undirected aliases the out arrays).
  std::vector<EdgeIndex> in_offsets_;
  std::vector<VertexIndex> in_sources_;
  std::vector<Weight> in_weights_;

  EdgeIndex max_out_degree_ = 0;
  EdgeIndex max_in_degree_ = 0;
};

/// Accumulates vertices and edges, then Build()s an immutable Graph.
class GraphBuilder {
 public:
  /// Policy for duplicate edges and self-loops encountered during Build.
  /// The Graphalytics data model forbids both; generators commonly produce
  /// them and expect silent dropping (kDrop), file loaders reject (kReject).
  enum class AnomalyPolicy { kDrop, kReject };

  explicit GraphBuilder(Directedness directedness, bool weighted = false,
                        AnomalyPolicy policy = AnomalyPolicy::kDrop)
      : directedness_(directedness), weighted_(weighted), policy_(policy) {}

  /// Registers a vertex (needed for isolated vertices; edge endpoints are
  /// registered automatically).
  void AddVertex(VertexId id) { vertices_.push_back(id); }

  void AddEdge(VertexId source, VertexId target, Weight weight = 1.0) {
    raw_edges_.push_back(RawEdge{source, target, weight});
  }

  /// Pre-size the pending buffers. Generators know their vertex/edge
  /// budget up front; reserving once avoids growing-reallocating through
  /// the whole edge array during generation (an estimate is fine — any
  /// slack is released when Build() consumes the buffers).
  void ReserveVertices(std::size_t count) { vertices_.reserve(count); }
  void ReserveEdges(std::size_t count) { raw_edges_.reserve(count); }

  std::size_t num_pending_edges() const { return raw_edges_.size(); }

  /// Builds the immutable graph. Consumes the builder's buffers. With a
  /// pool, the id/edge sorts, canonicalisation and CSR scatter run
  /// host-parallel; the resulting graph is byte-identical at any thread
  /// count (fixed slot decomposition + stable merges, see core/exec).
  Result<Graph> Build(exec::ThreadPool* pool = nullptr) &&;

 private:
  struct RawEdge {
    VertexId source;
    VertexId target;
    Weight weight;
  };

  Directedness directedness_;
  bool weighted_;
  AnomalyPolicy policy_;
  std::vector<VertexId> vertices_;
  std::vector<RawEdge> raw_edges_;
};

/// Graphalytics graph scale: log10(|V| + |E|) rounded to one decimal
/// (Section 2.2.4).
double GraphScale(std::int64_t num_vertices, std::int64_t num_edges);

}  // namespace ga

#endif  // GRAPHALYTICS_CORE_GRAPH_H_
