#include "core/json_reader.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace ga::json {

const Value* Value::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::string Value::GetString(std::string_view key,
                             const std::string& fallback) const {
  const Value* value = Find(key);
  return value != nullptr && value->is_string() ? value->string() : fallback;
}

double Value::GetNumber(std::string_view key, double fallback) const {
  const Value* value = Find(key);
  return value != nullptr && value->is_number() ? value->number() : fallback;
}

bool Value::GetBool(std::string_view key, bool fallback) const {
  const Value* value = Find(key);
  return value != nullptr && value->is_bool() ? value->bool_value()
                                              : fallback;
}

Value Value::MakeBool(bool b) {
  Value value;
  value.kind_ = Kind::kBool;
  value.bool_ = b;
  return value;
}

Value Value::MakeNumber(double n) {
  Value value;
  value.kind_ = Kind::kNumber;
  value.number_ = n;
  return value;
}

Value Value::MakeString(std::string s) {
  Value value;
  value.kind_ = Kind::kString;
  value.string_ = std::move(s);
  return value;
}

Value Value::MakeArray(std::vector<Value> items) {
  Value value;
  value.kind_ = Kind::kArray;
  value.array_ = std::move(items);
  return value;
}

Value Value::MakeObject(std::vector<std::pair<std::string, Value>> members) {
  Value value;
  value.kind_ = Kind::kObject;
  value.members_ = std::move(members);
  return value;
}

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> Run() {
    GA_ASSIGN_OR_RETURN(Value value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing content after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at byte " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<Value> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        GA_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Value::MakeString(std::move(s));
      }
      case 't':
        if (ConsumeWord("true")) return Value::MakeBool(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeWord("false")) return Value::MakeBool(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeWord("null")) return Value::MakeNull();
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<Value> ParseObject(int depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, Value>> members;
    SkipWhitespace();
    if (Consume('}')) return Value::MakeObject(std::move(members));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      GA_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      GA_ASSIGN_OR_RETURN(Value value, ParseValue(depth + 1));
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Value::MakeObject(std::move(members));
      return Error("expected ',' or '}' in object");
    }
  }

  Result<Value> ParseArray(int depth) {
    ++pos_;  // '['
    std::vector<Value> items;
    SkipWhitespace();
    if (Consume(']')) return Value::MakeArray(std::move(items));
    while (true) {
      GA_ASSIGN_OR_RETURN(Value value, ParseValue(depth + 1));
      items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Value::MakeArray(std::move(items));
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          GA_ASSIGN_OR_RETURN(unsigned code, ParseHex4());
          // UTF-8 encode the code point; surrogate pairs combine.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (!ConsumeWord("\\u")) return Error("unpaired surrogate");
            GA_ASSIGN_OR_RETURN(unsigned low, ParseHex4());
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired surrogate");
          }
          AppendUtf8(code, &out);
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
    return Error("unterminated string");
  }

  Result<unsigned> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    return code;
  }

  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Result<Value> ParseNumber() {
    const std::size_t start = pos_;
    if (Consume('-')) {
      // sign consumed; digits validated below
    }
    if (pos_ >= text_.size() ||
        !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
      pos_ = start;
      return Error("invalid number");
    }
    // Grammar check (no leading zeros before more digits, proper
    // fraction/exponent shape), then one strtod over the span.
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return Error("digits required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return Error("digits required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string span(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(span.c_str(), &end);
    if (end != span.c_str() + span.size() || !std::isfinite(value)) {
      return Error("number out of range");
    }
    return Value::MakeNumber(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view text) {
  return Parser(text).Run();
}

}  // namespace ga::json
