// Minimal JSON reader — the counterpart of core/json_writer.
//
// Parses one JSON document into a value tree. Built for the serve
// protocol (one flat request object per line) and for re-reading the
// artifacts this repo writes itself (results databases, bench JSON), so
// it implements the full grammar but keeps the representation simple:
// every number is a double, objects preserve insertion order (vector of
// pairs — the writer emits deterministic key order, and round-trip
// stability matters more than lookup speed at these sizes).
#ifndef GRAPHALYTICS_CORE_JSON_READER_H_
#define GRAPHALYTICS_CORE_JSON_READER_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/status.h"

namespace ga::json {

enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

class Value {
 public:
  Value() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number() const { return number_; }
  const std::string& string() const { return string_; }
  const std::vector<Value>& array() const { return array_; }
  const std::vector<std::pair<std::string, Value>>& members() const {
    return members_;
  }

  /// Object member lookup (first match); null when absent or not an
  /// object.
  const Value* Find(std::string_view key) const;

  // Typed member accessors with defaults, for flat request objects.
  std::string GetString(std::string_view key,
                        const std::string& fallback = "") const;
  double GetNumber(std::string_view key, double fallback = 0.0) const;
  bool GetBool(std::string_view key, bool fallback = false) const;
  bool Has(std::string_view key) const { return Find(key) != nullptr; }

  static Value MakeNull() { return Value(); }
  static Value MakeBool(bool b);
  static Value MakeNumber(double n);
  static Value MakeString(std::string s);
  static Value MakeArray(std::vector<Value> items);
  static Value MakeObject(std::vector<std::pair<std::string, Value>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// Parses exactly one JSON document (trailing whitespace allowed, any
/// other trailing content is an error). kInvalidArgument with a byte
/// offset on malformed input; inputs nested deeper than 64 levels are
/// rejected (a parser driven by untrusted socket bytes must not be
/// stack-depth-limited by its input).
Result<Value> Parse(std::string_view text);

}  // namespace ga::json

#endif  // GRAPHALYTICS_CORE_JSON_READER_H_
