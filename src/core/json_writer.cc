#include "core/json_writer.h"

#include <cstdio>

namespace ga {

void JsonWriter::MaybeComma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!scope_has_value_.empty()) {
    if (scope_has_value_.back()) out_ += ',';
    scope_has_value_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  scope_has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  scope_has_value_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
  scope_has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  scope_has_value_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  MaybeComma();
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view value) {
  MaybeComma();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Value(const char* value) {
  return Value(std::string_view(value));
}

JsonWriter& JsonWriter::Value(double value) {
  MaybeComma();
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out_ += buffer;
  return *this;
}

JsonWriter& JsonWriter::Value(std::int64_t value) {
  MaybeComma();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Value(std::uint64_t value) {
  MaybeComma();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Value(int value) {
  return Value(static_cast<std::int64_t>(value));
}

JsonWriter& JsonWriter::Value(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
  return *this;
}

std::string JsonWriter::Escape(std::string_view raw) {
  std::string escaped;
  escaped.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        escaped += "\\\"";
        break;
      case '\\':
        escaped += "\\\\";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\r':
        escaped += "\\r";
        break;
      case '\t':
        escaped += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          escaped += buffer;
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

}  // namespace ga
