// Minimal streaming JSON writer (no external dependencies).
//
// Used by the Granula archiver and harness reporters. Produces compact,
// valid JSON; the caller is responsible for matching Begin/End calls.
#ifndef GRAPHALYTICS_CORE_JSON_WRITER_H_
#define GRAPHALYTICS_CORE_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ga {

class JsonWriter {
 public:
  JsonWriter() = default;

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Writes an object key; must be followed by a value or Begin*.
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(std::string_view value);
  JsonWriter& Value(const char* value);
  JsonWriter& Value(double value);
  JsonWriter& Value(std::int64_t value);
  JsonWriter& Value(std::uint64_t value);
  JsonWriter& Value(int value);
  JsonWriter& Value(bool value);
  JsonWriter& Null();

  /// Shorthand for Key(key).Value(value).
  template <typename T>
  JsonWriter& Field(std::string_view key, T&& value) {
    Key(key);
    return Value(std::forward<T>(value));
  }

  /// The document built so far. Valid once all scopes are closed.
  const std::string& str() const { return out_; }

  static std::string Escape(std::string_view raw);

 private:
  void MaybeComma();

  std::string out_;
  // Tracks whether a value has been emitted in each open scope (for commas)
  // and whether we are immediately after a key.
  std::vector<bool> scope_has_value_;
  bool after_key_ = false;
};

}  // namespace ga

#endif  // GRAPHALYTICS_CORE_JSON_WRITER_H_
