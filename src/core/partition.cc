#include "core/partition.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "core/rng.h"

namespace ga {

std::vector<std::int64_t> VertexPartition::VertexCounts() const {
  std::vector<std::int64_t> counts(num_parts, 0);
  for (int part : part_of) ++counts[part];
  return counts;
}

std::vector<std::int64_t> VertexPartition::EdgeCounts(
    const Graph& graph) const {
  std::vector<std::int64_t> counts(num_parts, 0);
  for (VertexIndex v = 0; v < graph.num_vertices(); ++v) {
    counts[part_of[v]] += graph.OutDegree(v);
  }
  return counts;
}

std::int64_t VertexPartition::CountCutEdges(const Graph& graph) const {
  std::int64_t cut = 0;
  for (VertexIndex v = 0; v < graph.num_vertices(); ++v) {
    for (VertexIndex u : graph.OutNeighbors(v)) {
      if (part_of[v] != part_of[u]) ++cut;
    }
  }
  return cut;
}

VertexPartition HashPartition(const Graph& graph, int num_parts) {
  VertexPartition partition;
  partition.num_parts = num_parts;
  partition.part_of.resize(graph.num_vertices());
  for (VertexIndex v = 0; v < graph.num_vertices(); ++v) {
    partition.part_of[v] = static_cast<int>(
        Mix64(static_cast<std::uint64_t>(graph.ExternalId(v))) %
        static_cast<std::uint64_t>(num_parts));
  }
  return partition;
}

VertexPartition BalancedRangePartition(const Graph& graph, int num_parts) {
  VertexPartition partition;
  partition.num_parts = num_parts;
  partition.part_of.resize(graph.num_vertices());
  const EdgeIndex total = graph.num_adjacency_entries();
  const EdgeIndex per_part = (total + num_parts - 1) / std::max(num_parts, 1);
  int current_part = 0;
  EdgeIndex accumulated = 0;
  for (VertexIndex v = 0; v < graph.num_vertices(); ++v) {
    partition.part_of[v] = current_part;
    accumulated += graph.OutDegree(v);
    if (accumulated >= per_part && current_part + 1 < num_parts) {
      ++current_part;
      accumulated = 0;
    }
  }
  return partition;
}

std::int64_t EdgePartition::NumMirrors(const Graph& graph) const {
  // replication_factor * n = masters + mirrors; masters = n.
  return static_cast<std::int64_t>(replication_factor *
                                   static_cast<double>(graph.num_vertices())) -
         graph.num_vertices();
}

EdgePartition GreedyVertexCut(const Graph& graph, int num_parts) {
  EdgePartition partition;
  partition.num_parts = num_parts;
  partition.edge_counts.assign(num_parts, 0);
  const VertexIndex n = graph.num_vertices();
  partition.part_of_edge.resize(graph.edges().size());
  partition.master_of.assign(n, -1);

  // hosts[v] = bitmask of machines hosting v (supports up to 64 machines;
  // the benchmark uses at most 16).
  std::vector<std::uint64_t> hosts(n, 0);

  // Balance constraint (PowerGraph's greedy heuristic includes a balance
  // term): no machine may exceed 110% of the average edge load. Without it,
  // adversarial edge orders (e.g. a clique enumerated lexicographically)
  // funnel every edge onto one machine.
  const std::int64_t total_edges =
      static_cast<std::int64_t>(graph.edges().size());
  const std::int64_t load_cap = std::max<std::int64_t>(
      1, (total_edges * 11 + 10 * num_parts - 1) / (10 * num_parts));

  auto least_loaded = [&](std::uint64_t candidate_mask) {
    int best = -1;
    std::int64_t best_load = std::numeric_limits<std::int64_t>::max();
    for (int p = 0; p < num_parts; ++p) {
      if ((candidate_mask >> p) & 1ULL) {
        if (partition.edge_counts[p] >= load_cap) continue;
        if (partition.edge_counts[p] < best_load) {
          best_load = partition.edge_counts[p];
          best = p;
        }
      }
    }
    return best;
  };

  const std::uint64_t all_mask =
      num_parts >= 64 ? ~0ULL : ((1ULL << num_parts) - 1);
  std::span<const Edge> edges = graph.edges();
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const VertexIndex s = edges[e].source;
    const VertexIndex t = edges[e].target;
    const std::uint64_t intersection = hosts[s] & hosts[t];
    const std::uint64_t either = hosts[s] | hosts[t];
    int chosen = -1;
    if (intersection != 0) chosen = least_loaded(intersection);
    if (chosen == -1 && either != 0) chosen = least_loaded(either);
    // Sum of caps exceeds the edge count, so a below-cap machine exists.
    if (chosen == -1) chosen = least_loaded(all_mask);
    partition.part_of_edge[e] = chosen;
    ++partition.edge_counts[chosen];
    hosts[s] |= 1ULL << chosen;
    hosts[t] |= 1ULL << chosen;
  }

  std::int64_t total_hosts = 0;
  for (VertexIndex v = 0; v < n; ++v) {
    if (hosts[v] == 0) {
      // Isolated vertex: assign a master by hash.
      partition.master_of[v] = static_cast<int>(
          Mix64(static_cast<std::uint64_t>(v)) %
          static_cast<std::uint64_t>(num_parts));
      total_hosts += 1;
      continue;
    }
    // Master = lowest-indexed hosting machine (deterministic).
    for (int p = 0; p < num_parts; ++p) {
      if ((hosts[v] >> p) & 1ULL) {
        partition.master_of[v] = p;
        break;
      }
    }
    total_hosts += std::popcount(hosts[v]);
  }
  partition.replication_factor =
      n == 0 ? 1.0
             : static_cast<double>(total_hosts) / static_cast<double>(n);
  return partition;
}

}  // namespace ga
