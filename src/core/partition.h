// Graph partitioners used by the distributed platform analogues.
//
// Three strategies, matching the systems the paper evaluates:
//   * hash edge-cut   : vertices hashed to machines (Pregel/Giraph, GraphX,
//                       GraphMat-D, PGX.D default);
//   * balanced range  : contiguous vertex ranges with ~equal edge counts;
//   * greedy vertex-cut: edges assigned to machines, vertices replicated as
//                       master + mirrors (PowerGraph).
#ifndef GRAPHALYTICS_CORE_PARTITION_H_
#define GRAPHALYTICS_CORE_PARTITION_H_

#include <cstdint>
#include <vector>

#include "core/graph.h"
#include "core/types.h"

namespace ga {

/// Assignment of vertices to `num_parts` machines (edge-cut family).
struct VertexPartition {
  int num_parts = 1;
  std::vector<int> part_of;  // vertex index -> machine

  /// Per-part vertex counts.
  std::vector<std::int64_t> VertexCounts() const;
  /// Per-part out-adjacency entry counts (work proxy).
  std::vector<std::int64_t> EdgeCounts(const Graph& graph) const;
  /// Number of cut adjacency entries (endpoints on different machines).
  std::int64_t CountCutEdges(const Graph& graph) const;
};

/// Hash partition: part(v) = Mix64(external_id) % p. Deterministic and
/// oblivious to structure, like Giraph's default.
VertexPartition HashPartition(const Graph& graph, int num_parts);

/// Contiguous ranges chosen so each part holds ~equal out-adjacency entries.
VertexPartition BalancedRangePartition(const Graph& graph, int num_parts);

/// Vertex-cut: each *edge* lives on exactly one machine; a vertex has one
/// master and mirrors on every other machine that holds one of its edges.
struct EdgePartition {
  int num_parts = 1;
  std::vector<int> part_of_edge;  // canonical edge index -> machine
  std::vector<int> master_of;     // vertex -> master machine
  // replication_factor = (sum over vertices of #machines hosting it) / n.
  double replication_factor = 1.0;
  std::vector<std::int64_t> edge_counts;  // per machine

  std::int64_t NumMirrors(const Graph& graph) const;
};

/// Greedy vertex-cut in the spirit of PowerGraph's "greedy" heuristic:
/// place each edge on a machine already hosting one of its endpoints,
/// preferring the least-loaded candidate.
EdgePartition GreedyVertexCut(const Graph& graph, int num_parts);

}  // namespace ga

#endif  // GRAPHALYTICS_CORE_PARTITION_H_
