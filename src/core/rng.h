// Deterministic, splittable pseudo-random number generation.
//
// All randomness in graphalytics-cpp flows through SplitMix64 / Xoroshiro128
// seeded explicitly, so every dataset, workload and simulated execution is
// reproducible bit-for-bit from a single 64-bit seed.
#ifndef GRAPHALYTICS_CORE_RNG_H_
#define GRAPHALYTICS_CORE_RNG_H_

#include <cstdint>

namespace ga {

/// SplitMix64: tiny, high-quality 64-bit mixer. Used both as a stream
/// generator and to derive independent child seeds ("splitting").
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound) {
    // Modulo bias is negligible for bound << 2^64 and irrelevant for
    // benchmark data generation.
    return Next() % bound;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Derives an independent generator; `stream` distinguishes children of
  /// the same parent seed.
  SplitMix64 Split(std::uint64_t stream) const {
    SplitMix64 mixer(state_ ^ (0xA3EC647659359ACDULL * (stream + 1)));
    return SplitMix64(mixer.Next());
  }

 private:
  std::uint64_t state_;
};

/// Deterministic hash usable for partitioning and id permutation.
inline std::uint64_t Mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace ga

#endif  // GRAPHALYTICS_CORE_RNG_H_
