#include "core/status.h"

namespace ga {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfMemory:
      return "OUT_OF_MEMORY";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kUnsupported:
      return "UNSUPPORTED";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kCancelled:
      return "CANCELLED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeName(code_));
  result += ": ";
  result += message_;
  return result;
}

}  // namespace ga
