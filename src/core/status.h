// Minimal Status / Result<T> error model (RocksDB / Arrow idiom).
//
// The library reports recoverable failures through values rather than
// exceptions. `Status` carries an error code plus a human-readable message;
// `Result<T>` is a Status-or-value union.
#ifndef GRAPHALYTICS_CORE_STATUS_H_
#define GRAPHALYTICS_CORE_STATUS_H_

#include <cassert>
#include <exception>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace ga {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfMemory,      // Simulated-machine memory budget exceeded (job crash).
  kDeadlineExceeded, // SLA / makespan limit breach.
  kUnsupported,      // Platform does not implement the requested algorithm.
  kIoError,
  kInternal,
  kFailedPrecondition,
  kAborted,          // Execution aborted mid-flight (worker exception,
                     // injected fault); retryable by the hardened runner.
  kResourceExhausted, // Transient saturation: admission queue full, memory
                      // budget contended (ga::serve load shedding). Unlike
                      // kOutOfMemory this is retryable — back off and retry
                      // after the hint the shedder returns.
  kCancelled,        // Cooperative cancellation: the client disconnected,
                     // explicitly cancelled, or the server is draining.
};

std::string_view StatusCodeName(StatusCode code);

/// Value-semantic status. Cheap to copy in the OK case.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  static Status OutOfMemory(std::string message) {
    return Status(StatusCode::kOutOfMemory, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status Unsupported(std::string message) {
    return Status(StatusCode::kUnsupported, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Aborted(std::string message) {
    return Status(StatusCode::kAborted, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Status-or-value. Accessing value() on an error aborts in debug builds.
template <typename T>
class Result {
 public:
  // Intentionally implicit: allows `return SomeStatus;` and `return value;`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK Result must carry a value");
  }
  Result(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Exception wrapper for a Status, for the few places where an error must
/// cross a non-Status boundary (a worker-chunk body inside
/// ThreadPool::Execute, whose signature returns void). The pool rethrows
/// it on the submitting thread; the platform layer catches it at the job
/// boundary and converts it back into the Status it carries.
class StatusException : public std::exception {
 public:
  explicit StatusException(Status status)
      : status_(std::move(status)), what_(status_.ToString()) {}

  const Status& status() const { return status_; }
  const char* what() const noexcept override { return what_.c_str(); }

 private:
  Status status_;
  std::string what_;
};

}  // namespace ga

// Propagates a non-OK Status from an expression.
#define GA_RETURN_IF_ERROR(expr)          \
  do {                                    \
    ::ga::Status ga_status_ = (expr);     \
    if (!ga_status_.ok()) return ga_status_; \
  } while (false)

#define GA_CONCAT_IMPL(a, b) a##b
#define GA_CONCAT(a, b) GA_CONCAT_IMPL(a, b)

// Assigns the value of a Result<T> expression to `lhs`, or propagates the
// error. Usage: GA_ASSIGN_OR_RETURN(auto graph, LoadGraph(path));
#define GA_ASSIGN_OR_RETURN(lhs, expr)                             \
  auto GA_CONCAT(ga_result_, __LINE__) = (expr);                   \
  if (!GA_CONCAT(ga_result_, __LINE__).ok())                       \
    return GA_CONCAT(ga_result_, __LINE__).status();               \
  lhs = std::move(GA_CONCAT(ga_result_, __LINE__)).value()

#endif  // GRAPHALYTICS_CORE_STATUS_H_
