// Small shared string helpers: whitespace trimming and CSV splitting.
//
// One definition for every surface that accepts comma-separated ids
// (the CLI's --platforms/--datasets/--algorithms and the experiment
// plan-file parser), so the two cannot drift apart: pieces are trimmed
// and empty segments dropped everywhere.
#ifndef GRAPHALYTICS_CORE_STRINGS_H_
#define GRAPHALYTICS_CORE_STRINGS_H_

#include <cctype>
#include <string>
#include <string_view>
#include <vector>

namespace ga {

/// Copy of `text` without leading/trailing ASCII whitespace.
inline std::string TrimWhitespace(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

/// Splits on commas, trims each piece, and drops empty segments.
inline std::vector<std::string> SplitCsv(std::string_view text) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string_view::npos) comma = text.size();
    std::string part = TrimWhitespace(text.substr(start, comma - start));
    if (!part.empty()) parts.push_back(std::move(part));
    start = comma + 1;
  }
  return parts;
}

}  // namespace ga

#endif  // GRAPHALYTICS_CORE_STRINGS_H_
