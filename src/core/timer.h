// Wall-clock timer for measuring real (host) execution time.
//
// Note: paper-shaped metrics use the *simulated* clock from ga::sysmodel;
// WallTimer measures actual host time for engineering/reporting purposes.
#ifndef GRAPHALYTICS_CORE_TIMER_H_
#define GRAPHALYTICS_CORE_TIMER_H_

#include <chrono>

namespace ga {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ga

#endif  // GRAPHALYTICS_CORE_TIMER_H_
