#include "core/types.h"

namespace ga {

std::string_view AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kBfs:
      return "bfs";
    case Algorithm::kPageRank:
      return "pr";
    case Algorithm::kWcc:
      return "wcc";
    case Algorithm::kCdlp:
      return "cdlp";
    case Algorithm::kLcc:
      return "lcc";
    case Algorithm::kSssp:
      return "sssp";
  }
  return "unknown";
}

bool ParseAlgorithm(std::string_view name, Algorithm* out) {
  for (Algorithm algorithm : kAllAlgorithms) {
    if (AlgorithmName(algorithm) == name) {
      *out = algorithm;
      return true;
    }
  }
  return false;
}

std::string_view DirectednessName(Directedness directedness) {
  return directedness == Directedness::kDirected ? "directed" : "undirected";
}

}  // namespace ga
