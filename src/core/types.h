// Core identifier and enum types shared across all graphalytics-cpp modules.
#ifndef GRAPHALYTICS_CORE_TYPES_H_
#define GRAPHALYTICS_CORE_TYPES_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace ga {

/// External vertex identifier as it appears in datasets (sparse, arbitrary).
using VertexId = std::int64_t;

/// Dense internal vertex index in [0, num_vertices).
using VertexIndex = std::int64_t;

/// Dense edge index in [0, num_edges).
using EdgeIndex = std::int64_t;

/// Edge weight type mandated by the Graphalytics specification (SSSP uses
/// double-precision floating-point weights).
using Weight = double;

/// Sentinel for "no vertex" (e.g., unreachable in BFS parent arrays).
inline constexpr VertexIndex kInvalidVertex = -1;

/// The six core algorithms of the Graphalytics benchmark (Section 2.2.3).
enum class Algorithm {
  kBfs,   // Breadth-first search: minimum hop count from a source.
  kPageRank,   // PageRank with fixed iteration count.
  kWcc,   // Weakly connected components.
  kCdlp,  // Community detection via deterministic label propagation.
  kLcc,   // Local clustering coefficient.
  kSssp,  // Single-source shortest paths (double weights).
};

/// All algorithms, in the order the paper lists them.
inline constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kBfs, Algorithm::kPageRank, Algorithm::kWcc,
    Algorithm::kCdlp, Algorithm::kLcc, Algorithm::kSssp};

/// Short lowercase name used in reports ("bfs", "pr", ...), mirroring the
/// labels in the paper's Figure 6.
std::string_view AlgorithmName(Algorithm algorithm);

/// Parses an algorithm name produced by AlgorithmName. Returns false if the
/// name is not recognised.
bool ParseAlgorithm(std::string_view name, Algorithm* out);

/// Whether a graph's edges are ordered pairs (directed) or not.
enum class Directedness {
  kDirected,
  kUndirected,
};

std::string_view DirectednessName(Directedness directedness);

}  // namespace ga

#endif  // GRAPHALYTICS_CORE_TYPES_H_
