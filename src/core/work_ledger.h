// WorkLedger: per-worker counters of real work performed by an engine.
//
// The platform analogues execute algorithms for real, and account every
// unit of work they perform into a ledger: edges relaxed, messages sent,
// bytes that would cross the network, rows joined, objects allocated.
// The simulated cluster (ga::sysmodel) converts ledgers into simulated
// time; see DESIGN.md §5 "Simulated time vs wall time".
#ifndef GRAPHALYTICS_CORE_WORK_LEDGER_H_
#define GRAPHALYTICS_CORE_WORK_LEDGER_H_

#include <cstdint>

namespace ga {

struct WorkLedger {
  // Computation (unit: abstract machine operations; engines charge their
  // cost-profile multiple of touched vertices/edges).
  std::uint64_t compute_ops = 0;
  // Messages handed to the communication layer (local or remote).
  std::uint64_t messages = 0;
  // Bytes crossing machine boundaries (0 on one machine).
  std::uint64_t remote_bytes = 0;
  // Heap allocations performed (managed-runtime engines box messages).
  std::uint64_t allocations = 0;
  // Rows materialised by dataflow joins/shuffles.
  std::uint64_t rows_materialized = 0;

  WorkLedger& operator+=(const WorkLedger& other) {
    compute_ops += other.compute_ops;
    messages += other.messages;
    remote_bytes += other.remote_bytes;
    allocations += other.allocations;
    rows_materialized += other.rows_materialized;
    return *this;
  }
};

}  // namespace ga

#endif  // GRAPHALYTICS_CORE_WORK_LEDGER_H_
