#include "datagen/graph500.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "core/rng.h"

namespace ga::datagen {

namespace {

// One R-MAT edge sample: descend `scale` levels of the recursive matrix.
// Noise (+-10% per level, renormalised) follows the Graph500 reference
// implementation's "noise" refinement to avoid exact self-similarity.
std::pair<std::uint64_t, std::uint64_t> SampleRmatEdge(
    int scale, double a, double b, double c, SplitMix64* rng) {
  std::uint64_t row = 0;
  std::uint64_t col = 0;
  for (int level = 0; level < scale; ++level) {
    const double noise = 0.9 + 0.2 * rng->NextDouble();  // in [0.9, 1.1)
    const double la = a * noise;
    const double lb = b * (2.0 - noise);
    const double lc = c * (2.0 - noise);
    const double ld = (1.0 - a - b - c) * noise;
    const double total = la + lb + lc + ld;
    const double pick = rng->NextDouble() * total;
    row <<= 1;
    col <<= 1;
    if (pick < la) {
      // top-left: nothing to add
    } else if (pick < la + lb) {
      col |= 1;
    } else if (pick < la + lb + lc) {
      row |= 1;
    } else {
      row |= 1;
      col |= 1;
    }
  }
  return {row, col};
}

}  // namespace

Result<Graph> GenerateGraph500(const Graph500Config& config) {
  // Scale is capped at 31 so the (lo << scale) | hi dedup key fits in 64
  // bits; benchmark-sized graphs use far smaller scales.
  if (config.scale < 1 || config.scale > 31) {
    return Status::InvalidArgument("graph500 scale out of range [1, 31]");
  }
  if (config.a <= 0 || config.b < 0 || config.c < 0 ||
      config.a + config.b + config.c >= 1.0) {
    return Status::InvalidArgument("invalid R-MAT probabilities");
  }
  const std::uint64_t n = 1ULL << config.scale;
  const std::int64_t target_edges =
      config.num_edges > 0
          ? config.num_edges
          : static_cast<std::int64_t>(config.edge_factor) *
                static_cast<std::int64_t>(n);
  // A scale-s id space holds at most n*(n-1)/2 undirected edges; leave
  // headroom so the dedup loop can terminate.
  const double max_unique = 0.25 * static_cast<double>(n) *
                            (static_cast<double>(n) - 1.0);
  if (static_cast<double>(target_edges) > max_unique) {
    return Status::InvalidArgument(
        "requested edge count too dense for scale");
  }

  SplitMix64 rng = SplitMix64(config.seed).Split(0x6500);
  SplitMix64 weight_rng = SplitMix64(config.seed).Split(0x6501);

  // Deterministic vertex-label permutation, as mandated by Graph500 (labels
  // must not encode the recursive structure).
  const std::uint64_t permute_salt = SplitMix64(config.seed).Split(2).Next();

  const bool undirected = config.directedness == Directedness::kUndirected;
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(target_edges) * 2);
  GraphBuilder builder(config.directedness, config.weighted);
  builder.ReserveEdges(static_cast<std::size_t>(target_edges));
  const std::int64_t max_attempts = target_edges * 64 + 4096;
  std::int64_t generated = 0;
  for (std::int64_t attempt = 0;
       attempt < max_attempts && generated < target_edges; ++attempt) {
    auto [row, col] = SampleRmatEdge(config.scale, config.a, config.b,
                                     config.c, &rng);
    if (row == col) continue;
    std::uint64_t u = Mix64(row ^ permute_salt) & (n - 1);
    std::uint64_t v = Mix64(col ^ permute_salt) & (n - 1);
    if (u == v) continue;
    std::uint64_t lo = undirected ? std::min(u, v) : u;
    std::uint64_t hi = undirected ? std::max(u, v) : v;
    const std::uint64_t key = (lo << config.scale) | hi;
    if (!seen.insert(key).second) continue;
    const Weight weight =
        config.weighted ? weight_rng.NextDouble() + 1e-3 : 1.0;
    builder.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v),
                    weight);
    ++generated;
  }
  if (generated < target_edges) {
    return Status::Internal(
        "graph500 generator exhausted attempts before reaching " +
        std::to_string(target_edges) + " edges");
  }
  return std::move(builder).Build(config.build_pool);
}

}  // namespace ga::datagen
