// Graph500-style Kronecker (R-MAT) graph generator.
//
// Implements the Graph500 specification's recursive-matrix edge sampler:
// scale s gives 2^s candidate vertices, edge factor f gives f * 2^s edges;
// each edge picks a quadrant per level with probabilities (A, B, C, D) =
// (0.57, 0.19, 0.19, 0.05), with multiplicative noise per level, and vertex
// labels are deterministically permuted. Duplicate edges and self-loops are
// discarded and regenerated so the requested edge count is exact (the
// Graphalytics data model requires unique edges between distinct vertices).
//
// Only vertices incident to at least one edge are part of the final graph,
// matching the vertex counts Graphalytics reports for Graph500 datasets
// (e.g. graph500-22 has 2.40M vertices < 2^22).
#ifndef GRAPHALYTICS_DATAGEN_GRAPH500_H_
#define GRAPHALYTICS_DATAGEN_GRAPH500_H_

#include <cstdint>

#include "core/graph.h"
#include "core/status.h"

namespace ga::datagen {

struct Graph500Config {
  /// log2 of the candidate vertex-id space.
  int scale = 16;
  /// Requested number of unique edges. If 0, edge_factor * 2^scale is used.
  std::int64_t num_edges = 0;
  /// Edges per vertex when num_edges == 0 (Graph500 default 16).
  int edge_factor = 16;
  /// R-MAT quadrant probabilities; D = 1 - a - b - c.
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  /// Attach uniform random weights in (0, 1] (for SSSP workloads).
  bool weighted = false;
  /// Graph500 proper is undirected; the directed variant is used by the
  /// real-graph proxies (wiki-talk, cit-patents, twitter are directed).
  Directedness directedness = Directedness::kUndirected;
  std::uint64_t seed = 1;
  /// Optional host pool for the final GraphBuilder::Build (sorts + CSR).
  /// The generated graph is identical at any thread count.
  exec::ThreadPool* build_pool = nullptr;
};

Result<Graph> GenerateGraph500(const Graph500Config& config);

}  // namespace ga::datagen

#endif  // GRAPHALYTICS_DATAGEN_GRAPH500_H_
