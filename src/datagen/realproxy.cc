#include "datagen/realproxy.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "datagen/graph500.h"

namespace ga::datagen {

namespace {

// Table 3 of the paper, with domain-tuned R-MAT parameters:
//   * social networks (friendster, twitter): strong skew (a = 0.57);
//   * knowledge graphs: wiki-talk is extremely skewed (few prolific
//     talkers), cit-patents is comparatively flat (citation counts);
//   * gaming: moderate skew from matchmaking.
const std::array<RealGraphSpec, 6> kCatalog = {{
    {"R1", "wiki-talk", 2'390'000, 5'020'000, Directedness::kDirected,
     false, "Knowledge", 0.65, 0.15, 0.15},
    {"R2", "kgs", 830'000, 17'900'000, Directedness::kUndirected, false,
     "Gaming", 0.50, 0.20, 0.20},
    {"R3", "cit-patents", 3'770'000, 16'500'000, Directedness::kDirected,
     false, "Knowledge", 0.45, 0.22, 0.22},
    {"R4", "dota-league", 610'000, 50'900'000, Directedness::kUndirected,
     true, "Gaming", 0.50, 0.19, 0.19},
    {"R5", "com-friendster", 65'600'000, 1'810'000'000,
     Directedness::kUndirected, false, "Social", 0.57, 0.19, 0.19},
    {"R6", "twitter_mpi", 52'600'000, 1'970'000'000,
     Directedness::kDirected, false, "Social", 0.57, 0.19, 0.19},
}};

}  // namespace

std::span<const RealGraphSpec> RealGraphCatalog() { return kCatalog; }

Result<RealGraphSpec> FindRealGraphSpec(const std::string& id) {
  for (const RealGraphSpec& spec : kCatalog) {
    if (spec.id == id) return spec;
  }
  return Status::NotFound("no real dataset with id " + id);
}

Result<Graph> GenerateRealProxy(const RealGraphSpec& spec,
                                std::int64_t scale_divisor,
                                std::uint64_t seed,
                                exec::ThreadPool* build_pool) {
  if (scale_divisor < 1) {
    return Status::InvalidArgument("scale_divisor must be >= 1");
  }
  const std::int64_t target_vertices =
      std::max<std::int64_t>(spec.paper_vertices / scale_divisor, 64);
  const std::int64_t target_edges =
      std::max<std::int64_t>(spec.paper_edges / scale_divisor, 256);

  Graph500Config config;
  // Id space sized to the vertex target; R-MAT skew leaves a fraction of
  // ids unused, approximating the paper's |V| at proxy scale. The id
  // space must also be large enough to host the requested unique edges
  // (dense graphs at extreme divisors would not fit otherwise).
  const int density_floor = static_cast<int>(std::ceil(
      0.5 * std::log2(8.0 * static_cast<double>(target_edges) + 2.0)));
  config.scale = std::max({6,
      static_cast<int>(std::ceil(std::log2(
          static_cast<double>(target_vertices)))),
      density_floor});
  config.num_edges = target_edges;
  config.a = spec.rmat_a;
  config.b = spec.rmat_b;
  config.c = spec.rmat_c;
  config.weighted = spec.weighted;
  config.directedness = spec.directedness;
  // Salt the seed with the dataset id so different proxies are independent.
  config.seed = seed ^ (0x9E3779B97F4A7C15ULL * (spec.id.back() - '0'));
  config.build_pool = build_pool;
  return GenerateGraph500(config);
}

}  // namespace ga::datagen
