// Synthetic proxies for the six real-world Graphalytics datasets (Table 3).
//
// The paper's real graphs (SNAP/KONECT downloads, up to 1.97 B edges) are
// unavailable offline; each is replaced by a deterministic R-MAT proxy that
// matches its directedness, |E|/|V| density and domain-typical degree skew,
// scaled down by a configurable divisor. The registry keeps the *paper*
// sizes so scale labels in reports match the paper (see DESIGN.md §1).
#ifndef GRAPHALYTICS_DATAGEN_REALPROXY_H_
#define GRAPHALYTICS_DATAGEN_REALPROXY_H_

#include <cstdint>
#include <span>
#include <string>

#include "core/graph.h"
#include "core/status.h"

namespace ga::datagen {

struct RealGraphSpec {
  std::string id;      // "R1" .. "R6"
  std::string name;    // dataset name from Table 3
  std::int64_t paper_vertices;
  std::int64_t paper_edges;
  Directedness directedness;
  bool weighted;
  std::string domain;  // Knowledge / Gaming / Social
  // Domain-tuned R-MAT skew (a = top-left quadrant mass; larger = more
  // skewed degree distribution).
  double rmat_a;
  double rmat_b;
  double rmat_c;
};

/// The six real-world datasets of Table 3, R1(2XS) .. R6(XL).
std::span<const RealGraphSpec> RealGraphCatalog();

/// Looks up a spec by id ("R1".."R6").
Result<RealGraphSpec> FindRealGraphSpec(const std::string& id);

/// Generates the proxy graph for `spec` at paper size / `scale_divisor`.
/// `build_pool` optionally host-parallelises the final graph build; the
/// generated graph is identical at any thread count.
Result<Graph> GenerateRealProxy(const RealGraphSpec& spec,
                                std::int64_t scale_divisor,
                                std::uint64_t seed,
                                exec::ThreadPool* build_pool = nullptr);

}  // namespace ga::datagen

#endif  // GRAPHALYTICS_DATAGEN_REALPROXY_H_
