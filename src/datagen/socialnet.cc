#include "datagen/socialnet.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>
#include <vector>

#include "core/rng.h"

namespace ga::datagen {

namespace {

// Degree fraction contributed by the community (core) step; the remainder
// comes from the correlated sliding-window steps. Kept high so the
// clustering knob has authority over the output coefficient (see the
// derivation in socialnet.h / DESIGN.md).
constexpr double kCommunityDegreeFraction = 0.85;

// Community edge density for a clustering target: cc_total ~ q * f^2 with
// f = kCommunityDegreeFraction, so q = target / f^2, clamped to a sane
// Erdos-Renyi density.
double CommunityDensity(double target_clustering) {
  const double f2 = kCommunityDegreeFraction * kCommunityDegreeFraction;
  return std::clamp(target_clustering / f2, 0.01, 0.9);
}

// Mean community size that yields the community-degree budget at density q.
double MeanCommunitySize(const SocialNetConfig& config, double q) {
  const double community_degree =
      kCommunityDegreeFraction * config.avg_degree;
  return std::clamp(1.0 + community_degree / q, 3.0,
                    static_cast<double>(config.num_persons));
}

// Expected per-person degree contributed by each window step.
double WindowStepDegree(const SocialNetConfig& config) {
  const double window_degree =
      (1.0 - kCommunityDegreeFraction) * config.avg_degree;
  return window_degree / std::max(config.correlation_steps, 1);
}

// Geometric decay of the connection probability with window distance
// ("consecutive persons in a block must have a larger probability to
// connect", Section 2.5.1).
constexpr double kWindowDecay = 0.9;

int EffectiveWindowSize(const SocialNetConfig& config) {
  if (config.window_size > 0) return config.window_size;
  // Wide enough that the geometric tail is negligible.
  return std::max(
      64, static_cast<int>(std::ceil(WindowStepDegree(config) * 4.0)));
}

struct PersonOrder {
  std::uint64_t key;
  std::int64_t person;
};

}  // namespace

std::int64_t GenerationCost::TotalSorted() const {
  std::int64_t total = 0;
  for (const StepCost& step : steps) total += step.records_sorted;
  return total;
}

std::int64_t GenerationCost::TotalIo() const {
  std::int64_t total = 0;
  for (const StepCost& step : steps) {
    total += step.records_in + step.records_out;
  }
  return total;
}

Result<SocialNetwork> GenerateSocialNetwork(const SocialNetConfig& config) {
  if (config.num_persons < 2) {
    return Status::InvalidArgument("need at least 2 persons");
  }
  if (config.avg_degree <= 0 ||
      config.avg_degree >= static_cast<double>(config.num_persons)) {
    return Status::InvalidArgument("avg_degree out of range");
  }
  if (config.target_clustering < 0 || config.target_clustering > 0.6) {
    return Status::InvalidArgument("target_clustering out of range [0, 0.6]");
  }
  if (config.correlation_steps < 1 || config.correlation_steps > 8) {
    return Status::InvalidArgument("correlation_steps out of range [1, 8]");
  }

  const std::int64_t n = config.num_persons;
  SplitMix64 root(config.seed);
  SplitMix64 community_rng = root.Split(1);
  SplitMix64 weight_rng = root.Split(2);

  SocialNetwork result{Graph(), GenerationCost{}, {}};
  result.cost.flow = config.flow;
  GraphBuilder builder(Directedness::kUndirected, config.weighted);
  builder.ReserveVertices(static_cast<std::size_t>(n));
  // Expected edge budget: avg_degree/2 undirected edges per person (the
  // community and interest phases split it); reserving the estimate keeps
  // generation from growth-reallocating through the edge array.
  builder.ReserveEdges(static_cast<std::size_t>(
      n * std::max<std::int64_t>(config.avg_degree, 1) / 2 + 16));
  for (std::int64_t p = 0; p < n; ++p) builder.AddVertex(p);

  auto edge_weight = [&]() -> Weight {
    return config.weighted ? weight_rng.NextDouble() + 1e-3 : 1.0;
  };

  // Per-person sociability: heavy-tailed (Pareto-like) multiplier giving
  // the skewed, Facebook-like degree distribution of Datagen.
  SplitMix64 sociability_rng = root.Split(3);
  std::vector<double> sociability(n);
  double sociability_sum = 0.0;
  for (std::int64_t p = 0; p < n; ++p) {
    const double u = sociability_rng.NextDouble();
    sociability[p] = std::min(1.0 / std::sqrt(1.0 - u), 8.0);
    sociability_sum += sociability[p];
  }
  const double mean_sociability = sociability_sum / static_cast<double>(n);

  // --- Step 1: core-periphery community construction (tunable CC). -------
  const double q = CommunityDensity(config.target_clustering);
  const double mean_size = MeanCommunitySize(config, q);
  result.community_of.assign(n, -1);
  std::int64_t community_edges = 0;
  std::int64_t community_id = 0;
  std::int64_t next_person = 0;
  while (next_person < n) {
    // Log-uniform size in [mean/2, 2*mean]: a power-law-ish size mix.
    const double size_factor =
        std::exp2(2.0 * community_rng.NextDouble() - 1.0);
    const std::int64_t size = std::min<std::int64_t>(
        n - next_person,
        std::max<std::int64_t>(2, std::llround(mean_size * size_factor)));
    const std::int64_t begin = next_person;
    const std::int64_t end = next_person + size;
    for (std::int64_t p = begin; p < end; ++p) {
      result.community_of[p] = community_id;
    }
    // Core-periphery density: the base Erdos-Renyi density q is modulated
    // by the endpoints' sociability, so community hubs emerge and the
    // degree distribution stays Facebook-like even though most edges are
    // intra-community. E[s_a * s_b] = 1 for independent normalised
    // sociabilities, preserving the expected edge budget.
    for (std::int64_t a = begin; a < end; ++a) {
      const double sa = sociability[a] / mean_sociability;
      for (std::int64_t b = a + 1; b < end; ++b) {
        const double sb = sociability[b] / mean_sociability;
        if (community_rng.NextDouble() < std::min(q * sa * sb, 0.95)) {
          builder.AddEdge(a, b, edge_weight());
          ++community_edges;
        }
      }
    }
    ++community_id;
    next_person = end;
  }

  // --- Steps 2..k+1: correlated sliding-window friendship generation. ----
  const int window = EffectiveWindowSize(config);
  const double step_degree = WindowStepDegree(config);
  // Forward-edge budget per person per step; the geometric series over the
  // window normalises the base probability.
  double geometric_mass = 0.0;
  for (int d = 1; d <= window; ++d) geometric_mass += std::pow(kWindowDecay, d);
  const double base_probability = (step_degree / 2.0) / geometric_mass;

  std::vector<std::int64_t> window_edges_per_step;
  std::vector<PersonOrder> order(n);
  for (int step = 0; step < config.correlation_steps; ++step) {
    SplitMix64 attr_rng = root.Split(100 + step);
    // Correlation dimension: a skewed attribute (few large institutions,
    // many small ones) plus a deterministic tie-breaker. Sorting groups
    // persons with equal attributes into blocks.
    for (std::int64_t p = 0; p < n; ++p) {
      const double u = attr_rng.NextDouble();
      const std::uint64_t attribute =
          static_cast<std::uint64_t>(u * u * u * 1024.0);
      order[p] = PersonOrder{
          (attribute << 40) ^ (Mix64(static_cast<std::uint64_t>(p) * 31 +
                                     static_cast<std::uint64_t>(step)) &
                               0xFFFFFFFFFFULL),
          p};
    }
    std::sort(order.begin(), order.end(),
              [](const PersonOrder& a, const PersonOrder& b) {
                return a.key < b.key;
              });

    SplitMix64 edge_rng = root.Split(200 + step);
    std::int64_t step_edges = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      const std::int64_t limit = std::min<std::int64_t>(n - i - 1, window);
      const double si = sociability[order[i].person] / mean_sociability;
      double probability = base_probability * si;
      for (std::int64_t d = 1; d <= limit; ++d) {
        probability *= kWindowDecay;
        const double sj =
            sociability[order[i + d].person] / mean_sociability;
        if (edge_rng.NextDouble() < std::min(probability * sj, 1.0)) {
          builder.AddEdge(order[i].person, order[i + d].person,
                          edge_weight());
          ++step_edges;
        }
      }
    }
    window_edges_per_step.push_back(step_edges);
  }

  // --- Cost ledger (Figure 3 execution flows). ---------------------------
  GenerationCost& cost = result.cost;
  const std::int64_t raw_community = community_edges;
  if (config.flow == DatagenFlow::kNewIndependent) {
    cost.steps.push_back({"persons", n, n, n});
    cost.steps.push_back({"communities", n, n, raw_community});
    for (int step = 0; step < config.correlation_steps; ++step) {
      cost.steps.push_back(
          {"window_step_" + std::to_string(step), n, n,
           window_edges_per_step[step]});
    }
    std::int64_t all_edges = raw_community;
    for (std::int64_t e : window_edges_per_step) all_edges += e;
    cost.steps.push_back({"merge", all_edges, all_edges,
                          static_cast<std::int64_t>(
                              builder.num_pending_edges())});
  } else {
    // Old flow: step i re-reads and re-sorts persons plus every edge
    // produced so far (Figure 3, top), so per-step cost grows.
    cost.steps.push_back({"persons", n, n, n});
    std::int64_t accumulated = raw_community;
    cost.steps.push_back({"communities", n, n, n + accumulated});
    for (int step = 0; step < config.correlation_steps; ++step) {
      const std::int64_t records_in = n + accumulated;
      accumulated += window_edges_per_step[step];
      cost.steps.push_back({"window_step_" + std::to_string(step),
                            records_in, records_in, n + accumulated});
    }
  }

  GA_ASSIGN_OR_RETURN(result.graph,
                      std::move(builder).Build(config.build_pool));
  return result;
}

GenerationCost EstimateGenerationCost(const SocialNetConfig& config) {
  const std::int64_t n = config.num_persons;
  const double q = CommunityDensity(config.target_clustering);
  const double mean_size = MeanCommunitySize(config, q);
  // E[edges] of the community step: n/mean_size communities, each an
  // Erdos-Renyi core of ~mean_size vertices with density q. The log-uniform
  // size mix inflates E[size^2] by E[f^2]/E[f]^2 with f = 2^U(-1,1):
  // E[f] = 3/(4 ln 2), E[f^2] = 15/(16 ln 2).
  const double size_second_moment_factor = 1.2;
  const double communities = static_cast<double>(n) / mean_size;
  const std::int64_t community_edges = std::llround(
      communities * q * 0.5 * mean_size * (mean_size - 1.0) *
      size_second_moment_factor);
  const std::int64_t step_edges =
      std::llround(static_cast<double>(n) * WindowStepDegree(config) / 2.0);

  GenerationCost cost;
  cost.flow = config.flow;
  if (config.flow == DatagenFlow::kNewIndependent) {
    cost.steps.push_back({"persons", n, n, n});
    cost.steps.push_back({"communities", n, n, community_edges});
    std::int64_t all_edges = community_edges;
    for (int step = 0; step < config.correlation_steps; ++step) {
      cost.steps.push_back(
          {"window_step_" + std::to_string(step), n, n, step_edges});
      all_edges += step_edges;
    }
    cost.steps.push_back({"merge", all_edges, all_edges, all_edges});
  } else {
    cost.steps.push_back({"persons", n, n, n});
    std::int64_t accumulated = community_edges;
    cost.steps.push_back({"communities", n, n, n + accumulated});
    for (int step = 0; step < config.correlation_steps; ++step) {
      const std::int64_t records_in = n + accumulated;
      accumulated += step_edges;
      cost.steps.push_back({"window_step_" + std::to_string(step),
                            records_in, records_in, n + accumulated});
    }
  }
  return cost;
}

}  // namespace ga::datagen
