// SocialNetGen: an analogue of the LDBC SNB Datagen (Section 2.5.1).
//
// Reproduces the generator properties the paper relies on:
//   * correlated attachment — persons are sorted along several correlation
//     dimensions (university, interest, location); friendships are created
//     inside a sliding window over each sorted order, so similar persons
//     are more likely to connect;
//   * skewed, Facebook-like degree distribution — per-person sociability
//     weights drawn from a heavy-tailed distribution;
//   * tunable average clustering coefficient (the paper's new Datagen
//     feature) — a core–periphery community step creates dense intra-
//     community edges whose density is steered by `target_clustering`;
//   * two execution flows (Figure 3): the old flow where every step sorts
//     all previously generated data, and the new flow where steps are
//     independent and a final merge deduplicates. Both flows produce the
//     *same graph*; they differ in the recorded generation cost, which is
//     what the paper's Figure 10 measures.
#ifndef GRAPHALYTICS_DATAGEN_SOCIALNET_H_
#define GRAPHALYTICS_DATAGEN_SOCIALNET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/graph.h"
#include "core/status.h"

namespace ga::datagen {

/// Datagen execution flow (paper Figure 3). v0.2.1 = old, v0.2.6 = new.
enum class DatagenFlow {
  kOldSequential,
  kNewIndependent,
};

struct SocialNetConfig {
  std::int64_t num_persons = 10000;
  /// Mean number of (undirected) friendships per person.
  double avg_degree = 20.0;
  /// Knob for the average local clustering coefficient of the output.
  /// Larger values produce denser intra-community cores (paper Figure 2
  /// contrasts 0.05 vs 0.3).
  double target_clustering = 0.15;
  /// Number of correlation dimensions (Datagen uses 3: university,
  /// interest, location).
  int correlation_steps = 3;
  /// Sliding-window width for correlated edge generation; 0 = automatic.
  int window_size = 0;
  /// Attach uniform random weights in (0, 1] to edges.
  bool weighted = true;
  DatagenFlow flow = DatagenFlow::kNewIndependent;
  std::uint64_t seed = 1;
  /// Optional host pool for the final GraphBuilder::Build (sorts + CSR).
  /// The generated graph is identical at any thread count.
  exec::ThreadPool* build_pool = nullptr;
};

/// Record counts of one generation step (one MapReduce job in Datagen).
struct StepCost {
  std::string name;
  std::int64_t records_in = 0;      // records read by the job
  std::int64_t records_sorted = 0;  // records passing through the sorter
  std::int64_t records_out = 0;     // records written
};

/// Cost ledger of a full generation run; input to the simulated-Hadoop
/// time model used by the Figure 10 benchmark.
struct GenerationCost {
  DatagenFlow flow = DatagenFlow::kNewIndependent;
  std::vector<StepCost> steps;

  std::int64_t TotalSorted() const;
  std::int64_t TotalIo() const;
};

struct SocialNetwork {
  Graph graph;
  GenerationCost cost;
  /// Ground-truth community assignment (person -> community id), useful
  /// for inspecting the community structure (paper Figure 2).
  std::vector<std::int64_t> community_of;
};

Result<SocialNetwork> GenerateSocialNetwork(const SocialNetConfig& config);

/// Computes the cost ledger for `config` analytically, without
/// materialising the graph. Used to model paper-sized scale factors
/// (up to 10^10 edges) that cannot be materialised. For configs small
/// enough to generate, the estimate tracks the actual ledger closely
/// (validated in tests).
GenerationCost EstimateGenerationCost(const SocialNetConfig& config);

}  // namespace ga::datagen

#endif  // GRAPHALYTICS_DATAGEN_SOCIALNET_H_
