#include "datagen/stats.h"

#include <algorithm>
#include <numeric>

#include "algo/reference.h"

namespace ga::datagen {

DegreeStats ComputeDegreeStats(const Graph& graph) {
  DegreeStats stats;
  const VertexIndex n = graph.num_vertices();
  if (n == 0) return stats;
  std::vector<std::int64_t> degrees(n);
  for (VertexIndex v = 0; v < n; ++v) degrees[v] = graph.OutDegree(v);
  stats.max = *std::max_element(degrees.begin(), degrees.end());
  const double total = static_cast<double>(
      std::accumulate(degrees.begin(), degrees.end(), std::int64_t{0}));
  stats.mean = total / static_cast<double>(n);

  // Gini = (2 * sum_i i*d_(i)) / (n * sum d) - (n+1)/n, with d sorted
  // ascending and i being 1-based rank.
  std::sort(degrees.begin(), degrees.end());
  double weighted_sum = 0.0;
  for (VertexIndex i = 0; i < n; ++i) {
    weighted_sum += static_cast<double>(i + 1) *
                    static_cast<double>(degrees[i]);
  }
  if (total > 0) {
    stats.gini = 2.0 * weighted_sum / (static_cast<double>(n) * total) -
                 (static_cast<double>(n) + 1.0) / static_cast<double>(n);
  }
  return stats;
}

Result<double> AverageClusteringCoefficient(const Graph& graph) {
  GA_ASSIGN_OR_RETURN(AlgorithmOutput lcc, reference::Lcc(graph));
  if (lcc.double_values.empty()) return 0.0;
  const double sum = std::accumulate(lcc.double_values.begin(),
                                     lcc.double_values.end(), 0.0);
  return sum / static_cast<double>(lcc.double_values.size());
}

}  // namespace ga::datagen
