// Structural statistics of generated graphs, used to verify generator
// properties (degree skew, clustering-coefficient tuning) in tests and
// examples.
#ifndef GRAPHALYTICS_DATAGEN_STATS_H_
#define GRAPHALYTICS_DATAGEN_STATS_H_

#include <cstdint>
#include <vector>

#include "core/graph.h"
#include "core/status.h"

namespace ga::datagen {

struct DegreeStats {
  double mean = 0.0;
  std::int64_t max = 0;
  /// Gini coefficient of the degree distribution in [0, 1];
  /// 0 = perfectly uniform, ~1 = extremely skewed.
  double gini = 0.0;
};

/// Statistics over out-degrees (total degree for undirected graphs).
DegreeStats ComputeDegreeStats(const Graph& graph);

/// Exact average local clustering coefficient (mean of per-vertex LCC).
Result<double> AverageClusteringCoefficient(const Graph& graph);

}  // namespace ga::datagen

#endif  // GRAPHALYTICS_DATAGEN_STATS_H_
