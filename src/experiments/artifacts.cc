// Artifact rendering for the experiment suite: the paper-style text
// report (textual Figures 5–9 / Tables 9, 11 and the class-L verdict)
// and the machine-readable experiments.json.
//
// Both renderers walk the schedule in its canonical order and format
// values with fixed precision, so given the deterministic SuiteResult
// they are bit-identical at any host parallelism (DESIGN.md §6–§7).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "core/json_writer.h"
#include "experiments/suite.h"
#include "harness/metrics.h"
#include "harness/report.h"

namespace ga::experiments {

namespace {

using harness::JobOutcome;
using harness::JobReport;

// Cell markers follow the paper's figures: "F" for crashes and SLA
// breaches, "NA" for unimplemented workloads, "ERR" for harness errors.
std::string TprocCell(const JobReport& report) {
  switch (report.outcome) {
    case JobOutcome::kCompleted:
      return harness::FormatSeconds(report.tproc_seconds);
    case JobOutcome::kCrashed:
    case JobOutcome::kTimedOut:
      return "F";
    case JobOutcome::kUnsupported:
      return "NA";
    case JobOutcome::kFailed:
      return "ERR";
  }
  return "?";
}

std::string Percent(double fraction) {
  char text[32];
  std::snprintf(text, sizeof(text), "%.1f%%", 100.0 * fraction);
  return text;
}

std::string Times(double speedup) {
  char text[32];
  std::snprintf(text, sizeof(text), "%.1fx", speedup);
  return text;
}

// Joins the suite's per-job reports back to their cells.
class CellIndex {
 public:
  explicit CellIndex(const SuiteResult& result) {
    for (std::size_t i = 0; i < result.schedule.jobs.size(); ++i) {
      by_cell_[result.schedule.jobs[i].cell_id] = &result.reports[i];
    }
  }

  /// nullptr when the cell was not scheduled (e.g. a single-machine
  /// platform in a distributed experiment — rendered as "-").
  const JobReport* Find(const std::string& cell_id) const {
    auto it = by_cell_.find(cell_id);
    return it == by_cell_.end() ? nullptr : it->second;
  }

 private:
  std::map<std::string, const JobReport*> by_cell_;
};

std::string DatasetLabel(const ExperimentSchedule& schedule,
                         const std::string& dataset_id) {
  for (const harness::DatasetSpec& spec : schedule.dataset_specs) {
    if (spec.id == dataset_id) {
      return dataset_id + " (" + spec.scale_label + ")";
    }
  }
  return dataset_id;
}

void RenderBaseline(const SuiteResult& result, const CellIndex& cells,
                    std::ostringstream& out) {
  const ExperimentPlan& plan = result.schedule.plan;
  for (Algorithm algorithm : plan.algorithms) {
    const std::string algo(AlgorithmName(algorithm));
    std::vector<std::string> headers = {"dataset", "metric"};
    for (const std::string& id : result.schedule.platforms) {
      headers.push_back(id);
    }
    harness::TextTable table(
        "Baseline — " + algo + ": T_proc / EPS / EVPS (paper Figs. 5-6)",
        headers);
    for (const std::string& dataset : plan.datasets) {
      std::vector<std::string> tproc_row = {
          DatasetLabel(result.schedule, dataset), "T_proc"};
      std::vector<std::string> eps_row = {"", "EPS"};
      std::vector<std::string> evps_row = {"", "EVPS"};
      for (const std::string& platform_id : result.schedule.platforms) {
        const JobReport* report = cells.Find("baseline/" + dataset + "/" +
                                             algo + "/" + platform_id);
        if (report == nullptr) {
          tproc_row.push_back("-");
          eps_row.push_back("-");
          evps_row.push_back("-");
          continue;
        }
        tproc_row.push_back(TprocCell(*report));
        eps_row.push_back(report->completed()
                              ? harness::FormatThroughput(report->eps)
                              : "-");
        evps_row.push_back(report->completed()
                               ? harness::FormatThroughput(report->evps)
                               : "-");
      }
      table.AddRow(std::move(tproc_row));
      table.AddRow(std::move(eps_row));
      table.AddRow(std::move(evps_row));
    }
    out << table.Render() << "\n";
  }
}

void RenderStrongVertical(const SuiteResult& result, const CellIndex& cells,
                          std::ostringstream& out) {
  const ExperimentPlan& plan = result.schedule.plan;
  for (Algorithm algorithm : plan.scaling_algorithms) {
    const std::string algo(AlgorithmName(algorithm));
    std::vector<std::string> headers = {"threads"};
    for (const std::string& id : result.schedule.platforms) {
      headers.push_back(id);
    }
    harness::TextTable table(
        "Strong vertical scaling — " + algo + " on " +
            DatasetLabel(result.schedule, plan.vertical_dataset) +
            ", 1 machine (paper Fig. 7)",
        headers);
    std::vector<double> baseline(result.schedule.platforms.size(), 0.0);
    std::vector<double> best(result.schedule.platforms.size(), 0.0);
    for (int threads : plan.thread_counts) {
      std::vector<std::string> row = {std::to_string(threads)};
      for (std::size_t p = 0; p < result.schedule.platforms.size(); ++p) {
        const JobReport* report = cells.Find(
            "strong-vertical/" + plan.vertical_dataset + "/" + algo + "/" +
            result.schedule.platforms[p] + "/t" + std::to_string(threads));
        if (report == nullptr || !report->completed()) {
          row.push_back(report == nullptr ? "-" : TprocCell(*report));
          continue;
        }
        if (baseline[p] == 0.0) baseline[p] = report->tproc_seconds;
        best[p] = std::max(
            best[p],
            harness::Speedup(baseline[p], report->tproc_seconds));
        row.push_back(harness::FormatSeconds(report->tproc_seconds));
      }
      table.AddRow(std::move(row));
    }
    // The Table 9 digest: best speedup over the thread ladder, relative
    // to each platform's fewest-threads run.
    std::vector<std::string> speedup_row = {"max speedup"};
    for (double s : best) {
      speedup_row.push_back(s > 0.0 ? Times(s) : "-");
    }
    table.AddRow(std::move(speedup_row));
    out << table.Render() << "\n";
  }
}

void RenderStrongHorizontal(const SuiteResult& result, const CellIndex& cells,
                            std::ostringstream& out) {
  const ExperimentPlan& plan = result.schedule.plan;
  const std::vector<std::string>& platforms =
      result.schedule.distributed_platforms;
  for (Algorithm algorithm : plan.scaling_algorithms) {
    const std::string algo(AlgorithmName(algorithm));
    std::vector<std::string> headers = {"machines"};
    for (const std::string& id : platforms) headers.push_back(id);
    harness::TextTable tproc_table(
        "Strong horizontal scaling — " + algo + " on " +
            DatasetLabel(result.schedule, plan.horizontal_dataset) +
            ": T_proc (paper Fig. 8)",
        headers);
    harness::TextTable speedup_table(
        "Strong horizontal scaling — " + algo +
            ": speedup vs fewest machines",
        headers);
    std::vector<double> baseline(platforms.size(), 0.0);
    for (int machines : plan.machine_counts) {
      std::vector<std::string> tproc_row = {std::to_string(machines)};
      std::vector<std::string> speedup_row = {std::to_string(machines)};
      for (std::size_t p = 0; p < platforms.size(); ++p) {
        const JobReport* report = cells.Find(
            "strong-horizontal/" + plan.horizontal_dataset + "/" + algo +
            "/" + platforms[p] + "/m" + std::to_string(machines));
        if (report == nullptr || !report->completed()) {
          tproc_row.push_back(report == nullptr ? "-" : TprocCell(*report));
          speedup_row.push_back("-");
          continue;
        }
        // Speedup is relative to the platform's smallest completed
        // deployment (PGX.D cannot run D1000 on one machine, §4.4).
        if (baseline[p] == 0.0) baseline[p] = report->tproc_seconds;
        tproc_row.push_back(harness::FormatSeconds(report->tproc_seconds));
        speedup_row.push_back(
            Times(harness::Speedup(baseline[p], report->tproc_seconds)));
      }
      tproc_table.AddRow(std::move(tproc_row));
      speedup_table.AddRow(std::move(speedup_row));
    }
    out << tproc_table.Render() << "\n";
    out << speedup_table.Render() << "\n";
  }
}

void RenderWeakScaling(const SuiteResult& result, const CellIndex& cells,
                       std::ostringstream& out) {
  const ExperimentPlan& plan = result.schedule.plan;
  const std::vector<std::string>& platforms =
      result.schedule.distributed_platforms;
  for (Algorithm algorithm : plan.scaling_algorithms) {
    const std::string algo(AlgorithmName(algorithm));
    std::vector<std::string> headers = {"dataset@machines"};
    for (const std::string& id : platforms) headers.push_back(id);
    harness::TextTable table(
        "Weak horizontal scaling — " + algo +
            ": T_proc, work per machine ~constant (paper Fig. 9)",
        headers);
    for (const WorkloadPoint& point : plan.weak_series) {
      std::vector<std::string> row = {point.dataset_id + "@" +
                                      std::to_string(point.machines)};
      for (const std::string& platform_id : platforms) {
        const JobReport* report =
            cells.Find("weak-scaling/" + point.dataset_id + "@" +
                       std::to_string(point.machines) + "/" + algo + "/" +
                       platform_id);
        row.push_back(report == nullptr ? "-" : TprocCell(*report));
      }
      table.AddRow(std::move(row));
    }
    out << table.Render() << "\n";
  }
}

void RenderVariability(const SuiteResult& result, const CellIndex& cells,
                       std::ostringstream& out) {
  const ExperimentPlan& plan = result.schedule.plan;
  for (const WorkloadPoint& point : plan.variability_setups) {
    std::vector<std::string> headers = {"metric"};
    for (const std::string& id : result.schedule.platforms) {
      headers.push_back(id);
    }
    harness::TextTable table(
        "Variability — BFS on " +
            DatasetLabel(result.schedule, point.dataset_id) + ", " +
            std::to_string(point.machines) + " machine(s), n=" +
            std::to_string(plan.repetitions) + " (paper Table 11)",
        headers);
    std::vector<std::string> mean_row = {"mean T_proc"};
    std::vector<std::string> cv_row = {"CV"};
    for (const std::string& platform_id : result.schedule.platforms) {
      const JobReport* report =
          cells.Find("variability/" + point.dataset_id + "@" +
                     std::to_string(point.machines) + "/bfs/" + platform_id);
      if (report == nullptr || !report->completed()) {
        mean_row.push_back(report == nullptr ? "-" : TprocCell(*report));
        cv_row.push_back("-");
        continue;
      }
      mean_row.push_back(harness::FormatSeconds(report->tproc_seconds));
      cv_row.push_back(Percent(report->tproc_cv));
    }
    table.AddRow(std::move(mean_row));
    table.AddRow(std::move(cv_row));
    out << table.Render() << "\n";
  }
}

void RenderRenewal(const SuiteResult& result, std::ostringstream& out) {
  if (!result.renewal_failure.empty()) {
    out << "renewal: sweep failed — " << result.renewal_failure << "\n";
    return;
  }
  if (!result.renewal.has_value()) return;
  const harness::RenewalResult& renewal = *result.renewal;
  harness::TextTable table(
      "Renewal — per-dataset BFS capacity evidence (paper §2.4)",
      {"dataset", "class", "best platform", "best T_proc"});
  for (const harness::DatasetEvidence& evidence : renewal.evidence) {
    table.AddRow({evidence.dataset_id, evidence.scale_label,
                  evidence.best_platform.empty() ? "(none — unprocessable)"
                                                 : evidence.best_platform,
                  evidence.best_platform.empty()
                      ? "-"
                      : harness::FormatSeconds(
                            evidence.best_tproc_seconds)});
  }
  out << table.Render() << "\n";
  out << "recommended reference class L: " << renewal.recommended_class_l
      << "\n";
  out << "fully processable classes:";
  for (const std::string& label : renewal.passing_classes) {
    out << " " << label;
  }
  out << "\nclasses with unprocessable graphs:";
  for (const std::string& label : renewal.failing_classes) {
    out << " " << label;
  }
  out << "\n";
}

}  // namespace

std::string RenderSuiteReport(const SuiteResult& result) {
  const ExperimentPlan& plan = result.schedule.plan;
  CellIndex cells(result);

  std::ostringstream out;
  out << "================================================================\n";
  out << "LDBC Graphalytics reproduction — experiment suite \"" << plan.name
      << "\"\n";
  out << "experiments:";
  for (ExperimentKind kind : kAllExperimentKinds) {
    if (plan.Includes(kind)) out << " " << ExperimentKindName(kind);
  }
  out << "\nplatforms:";
  for (const std::string& id : result.schedule.platforms) out << " " << id;
  out << "\nscale divisor: 1/"
      << static_cast<long long>(result.config.scale_divisor)
      << " of paper-scale datasets; times projected back to paper scale; "
         "SLA "
      << harness::FormatSeconds(result.config.sla_projected_seconds) << "\n";
  int completed = 0;
  for (const JobReport& report : result.reports) {
    if (report.completed()) ++completed;
  }
  out << "jobs: " << result.reports.size() << " scheduled, " << completed
      << " completed\n";
  out << "================================================================\n\n";

  for (ExperimentKind kind : kAllExperimentKinds) {
    if (!plan.Includes(kind)) continue;
    switch (kind) {
      case ExperimentKind::kBaseline:
        RenderBaseline(result, cells, out);
        break;
      case ExperimentKind::kStrongVertical:
        RenderStrongVertical(result, cells, out);
        break;
      case ExperimentKind::kStrongHorizontal:
        RenderStrongHorizontal(result, cells, out);
        break;
      case ExperimentKind::kWeakScaling:
        RenderWeakScaling(result, cells, out);
        break;
      case ExperimentKind::kVariability:
        RenderVariability(result, cells, out);
        break;
      case ExperimentKind::kRenewal:
        RenderRenewal(result, out);
        break;
    }
  }
  return out.str();
}

std::string SuiteToJson(const SuiteResult& result) {
  const ExperimentPlan& plan = result.schedule.plan;
  JsonWriter json;
  json.BeginObject();
  json.Field("format", "graphalytics-cpp experiments v1");

  json.Key("plan").BeginObject();
  json.Field("name", std::string_view(plan.name));
  json.Key("experiments").BeginArray();
  for (ExperimentKind kind : kAllExperimentKinds) {
    if (plan.Includes(kind)) json.Value(ExperimentKindName(kind));
  }
  json.EndArray();
  json.Key("platforms").BeginArray();
  for (const std::string& id : result.schedule.platforms) {
    json.Value(std::string_view(id));
  }
  json.EndArray();
  json.Key("datasets").BeginArray();
  for (const std::string& id : plan.datasets) {
    json.Value(std::string_view(id));
  }
  json.EndArray();
  json.Key("algorithms").BeginArray();
  for (Algorithm algorithm : plan.algorithms) {
    json.Value(AlgorithmName(algorithm));
  }
  json.EndArray();
  json.Field("repetitions", plan.repetitions);
  json.Field("validate", plan.validate);
  json.EndObject();

  json.Key("configuration").BeginObject();
  json.Field("scale_divisor", result.config.scale_divisor);
  json.Field("seed", static_cast<std::uint64_t>(result.config.seed));
  json.Field("sla_projected_seconds", result.config.sla_projected_seconds);
  json.EndObject();

  json.Key("jobs").BeginArray();
  for (std::size_t i = 0; i < result.schedule.jobs.size(); ++i) {
    const ScheduledJob& job = result.schedule.jobs[i];
    const JobReport& report = result.reports[i];
    json.BeginObject();
    json.Field("cell", std::string_view(job.cell_id));
    json.Field("experiment", ExperimentKindName(job.experiment));
    json.Field("platform", std::string_view(report.spec.platform_id));
    json.Field("dataset", std::string_view(report.spec.dataset_id));
    json.Field("algorithm", AlgorithmName(report.spec.algorithm));
    json.Field("machines", report.spec.num_machines);
    json.Field("threads", report.spec.threads_per_machine);
    json.Field("repetitions", report.spec.repetitions);
    json.Field("outcome", harness::JobOutcomeName(report.outcome));
    if (report.completed()) {
      json.Field("tproc_seconds", report.tproc_seconds);
      json.Field("makespan_seconds", report.makespan_seconds);
      json.Field("upload_seconds", report.upload_seconds);
      json.Field("eps", report.eps);
      json.Field("evps", report.evps);
      json.Field("supersteps", report.supersteps);
      json.Field("validated", report.output_validated);
      if (report.tproc_samples.size() > 1) {
        json.Field("tproc_cv", report.tproc_cv);
      }
      if (report.trace.enabled) {
        // Deterministic exec-layer counters only: these are functions of
        // the slot decomposition and the algorithm's frontier evolution,
        // so traced experiments.json stays reproducible at any --jobs.
        // Host-timing counters (chunk wall time, steal counts) stay in
        // the archive / Chrome trace.
        json.Key("trace").BeginObject();
        json.Field("parallel_loops", report.trace.parallel_loops);
        json.Field("parallel_chunks", report.trace.parallel_chunks);
        json.Field("datapath_growth_events",
                   report.trace.datapath_growth_events);
        json.Field("frontier_peak_active", report.trace.frontier_peak_active);
        json.Field("scratch_high_water_bytes",
                   report.trace.scratch_high_water_bytes);
        json.EndObject();
      }
    } else {
      json.Field("failure", std::string_view(report.failure));
      json.Field("failure_cause",
                 report.failure_cause.empty()
                     ? harness::FailureCauseName(report.failure_code)
                     : std::string_view(report.failure_cause));
    }
    if (report.attempts > 1) json.Field("attempts", report.attempts);
    json.EndObject();
  }
  json.EndArray();

  if (!result.renewal_failure.empty()) {
    json.Field("renewal_error", std::string_view(result.renewal_failure));
  }
  if (result.renewal.has_value()) {
    const harness::RenewalResult& renewal = *result.renewal;
    json.Key("renewal").BeginObject();
    json.Field("recommended_class_l",
               std::string_view(renewal.recommended_class_l));
    json.Key("passing_classes").BeginArray();
    for (const std::string& label : renewal.passing_classes) {
      json.Value(std::string_view(label));
    }
    json.EndArray();
    json.Key("failing_classes").BeginArray();
    for (const std::string& label : renewal.failing_classes) {
      json.Value(std::string_view(label));
    }
    json.EndArray();
    json.Key("evidence").BeginArray();
    for (const harness::DatasetEvidence& evidence : renewal.evidence) {
      json.BeginObject();
      json.Field("dataset", std::string_view(evidence.dataset_id));
      json.Field("class", std::string_view(evidence.scale_label));
      json.Field("paper_scale", evidence.paper_scale);
      json.Field("best_platform", std::string_view(evidence.best_platform));
      if (!evidence.best_platform.empty()) {
        json.Field("best_tproc_seconds", evidence.best_tproc_seconds);
      }
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }

  json.EndObject();
  return json.str();
}

namespace {

Status WriteTextFile(const std::string& content, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot write " + path);
  out << content;
  return out ? Status::Ok() : Status::IoError("write failed for " + path);
}

}  // namespace

Status WriteSuiteJson(const SuiteResult& result, const std::string& path) {
  return WriteTextFile(SuiteToJson(result), path);
}

Status WriteSuiteReport(const SuiteResult& result, const std::string& path) {
  return WriteTextFile(RenderSuiteReport(result), path);
}

}  // namespace ga::experiments
