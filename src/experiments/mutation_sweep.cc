#include "experiments/mutation_sweep.h"

#include <chrono>
#include <cstdio>
#include <cstring>

#include "algo/reference.h"
#include "core/graph.h"
#include "core/json_writer.h"
#include "core/rng.h"

namespace ga::experiments {

namespace {

double Seconds(std::chrono::steady_clock::time_point begin,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

bool DoublesBitEqual(const std::vector<double>& a,
                     const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

bool IntsBitEqual(const std::vector<std::int64_t>& a,
                  const std::vector<std::int64_t>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(),
                                   a.size() * sizeof(std::int64_t)) == 0);
}

// "rings:<count>x<size>" — `count` disjoint cycles of `size` vertices
// each, unweighted and undirected. Mutations stay inside the cycle (or
// pair of cycles) they touch: PageRank's dirty wave advances two hops
// per iteration instead of engulfing the graph, and a delete's affected
// component is one ring, not a scale-free giant. This is the locality
// regime streaming systems are built for; the registry's power-law
// datasets are the adversarial one (both appear in BENCH_PR7.json).
Result<Graph> BuildRingLattice(const std::string& id,
                               exec::ThreadPool* pool) {
  long long count = 0;
  long long size = 0;
  if (std::sscanf(id.c_str(), "rings:%lldx%lld", &count, &size) != 2 ||
      count < 1 || size < 3) {
    return Status::InvalidArgument(
        "synthetic dataset id must be rings:<count>x<size> with count >= 1 "
        "and size >= 3, got '" + id + "'");
  }
  GraphBuilder builder(Directedness::kUndirected, /*weighted=*/false);
  for (long long ring = 0; ring < count; ++ring) {
    const long long base = ring * size;
    for (long long i = 0; i < size; ++i) {
      builder.AddEdge(static_cast<VertexId>(base + i),
                      static_cast<VertexId>(base + (i + 1) % size));
      // Second-neighbour chord: doubles |E| without shrinking the
      // diameter below size/4, so full recomputes pay O(n + 2n) per
      // sweep while the incremental engines stay O(n + dirty).
      if (size >= 5) {
        builder.AddEdge(static_cast<VertexId>(base + i),
                        static_cast<VertexId>(base + (i + 2) % size));
      }
    }
  }
  return std::move(builder).Build(pool);
}

}  // namespace

Result<MutationSweepResult> RunMutationSweep(
    const MutationSweepConfig& config, harness::DatasetRegistry& registry,
    exec::ThreadPool* pool) {
  if (config.epochs <= 0) {
    return Status::InvalidArgument("mutation sweep needs epochs > 0");
  }
  if (config.insert_fraction < 0.0 || config.insert_fraction > 1.0) {
    return Status::InvalidArgument("insert_fraction must be in [0, 1]");
  }
  MutationSweepResult result;
  result.config = config;
  Graph synthetic;
  const Graph* start = nullptr;
  if (config.dataset_id.rfind("rings:", 0) == 0) {
    GA_ASSIGN_OR_RETURN(synthetic, BuildRingLattice(config.dataset_id, pool));
    start = &synthetic;
    result.dataset_name = "synthetic disjoint ring lattice";
  } else {
    GA_ASSIGN_OR_RETURN(harness::DatasetSpec spec,
                        registry.Find(config.dataset_id));
    GA_ASSIGN_OR_RETURN(start, registry.Load(config.dataset_id));
    result.dataset_name = spec.name;
  }
  result.start_vertices = start->num_vertices();
  result.start_edges = start->num_edges();

  using Clock = std::chrono::steady_clock;
  for (std::size_t rate_index = 0; rate_index < config.update_rates.size();
       ++rate_index) {
    const double rate = config.update_rates[rate_index];
    // Each rate evolves its own chain from the pristine dataset, with its
    // own deterministic delta stream.
    SplitMix64 rng(config.seed ^ Mix64(rate_index + 1));

    mutate::IncrementalPageRank inc_pagerank(config.pagerank_iterations,
                                             config.damping_factor);
    mutate::IncrementalWcc inc_wcc;
    GA_RETURN_IF_ERROR(inc_pagerank.Initialize(*start, pool));
    GA_RETURN_IF_ERROR(inc_wcc.Initialize(*start, pool));

    const std::int64_t batch_size = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               rate * static_cast<double>(start->num_edges()) + 0.5));
    mutate::RandomBatchSpec batch_spec;
    batch_spec.inserts = static_cast<std::int64_t>(
        static_cast<double>(batch_size) * config.insert_fraction + 0.5);
    batch_spec.deletes = batch_size - batch_spec.inserts;

    const Graph* current = start;
    mutate::MutationResult chain_head;  // keeps the latest child alive
    mutate::EpochStats last_pr_stats;
    mutate::EpochStats last_wcc_stats;
    for (int epoch = 1; epoch <= config.epochs; ++epoch) {
      const mutate::DeltaBatch batch =
          mutate::RandomDeltaBatch(*current, batch_spec, rng);

      MutationEpochRow row;
      row.update_rate = rate;
      row.epoch = epoch;
      row.batch_ops = static_cast<std::int64_t>(batch.ops.size());

      auto t0 = Clock::now();
      auto applied = mutate::ApplyDeltas(*current, batch, pool);
      auto t1 = Clock::now();
      if (!applied.ok()) return applied.status();
      row.apply_seconds = Seconds(t0, t1);
      row.applied_inserts =
          static_cast<std::int64_t>(applied->applied_inserts.size());
      row.applied_deletes =
          static_cast<std::int64_t>(applied->applied_deletes.size());

      t0 = Clock::now();
      GA_RETURN_IF_ERROR(inc_pagerank.Update(*applied, pool));
      t1 = Clock::now();
      row.inc_pagerank_seconds = Seconds(t0, t1);
      row.pagerank_dirty_recomputes =
          inc_pagerank.stats().dirty_recomputes -
          last_pr_stats.dirty_recomputes;
      row.pagerank_full_sweeps =
          inc_pagerank.stats().full_sweep_iterations -
          last_pr_stats.full_sweep_iterations;
      last_pr_stats = inc_pagerank.stats();

      t0 = Clock::now();
      GA_RETURN_IF_ERROR(inc_wcc.Update(*applied, pool));
      t1 = Clock::now();
      row.inc_wcc_seconds = Seconds(t0, t1);
      row.wcc_affected_vertices = inc_wcc.stats().affected_vertices -
                                  last_wcc_stats.affected_vertices;
      last_wcc_stats = inc_wcc.stats();

      t0 = Clock::now();
      auto full_pagerank = reference::PageRank(
          applied->graph, config.pagerank_iterations,
          config.damping_factor, pool);
      t1 = Clock::now();
      if (!full_pagerank.ok()) return full_pagerank.status();
      row.full_pagerank_seconds = Seconds(t0, t1);

      t0 = Clock::now();
      auto full_wcc = reference::Wcc(applied->graph, pool);
      t1 = Clock::now();
      if (!full_wcc.ok()) return full_wcc.status();
      row.full_wcc_seconds = Seconds(t0, t1);

      if (config.verify) {
        row.pagerank_verified =
            DoublesBitEqual(inc_pagerank.output().double_values,
                            full_pagerank->double_values);
        row.wcc_verified =
            IntsBitEqual(inc_wcc.output().int_values,
                         full_wcc->int_values);
        if (!row.pagerank_verified || !row.wcc_verified) {
          result.all_verified = false;
          result.rows.push_back(row);
          return Status::FailedPrecondition(
              "incremental/" +
              std::string(!row.pagerank_verified ? "PageRank" : "WCC") +
              " diverged from the recompute oracle at rate " +
              std::to_string(rate) + ", epoch " + std::to_string(epoch));
        }
      }
      result.rows.push_back(row);

      chain_head = std::move(*applied);
      current = &chain_head.graph;
    }
  }
  return result;
}

std::string RenderMutationReport(const MutationSweepResult& result) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "Mutation sweep: %s (%s), start |V|=%lld |E|=%lld\n",
                result.config.dataset_id.c_str(),
                result.dataset_name.c_str(),
                static_cast<long long>(result.start_vertices),
                static_cast<long long>(result.start_edges));
  out += line;
  double prev_rate = -1.0;
  for (const MutationEpochRow& row : result.rows) {
    if (row.update_rate != prev_rate) {
      prev_rate = row.update_rate;
      std::snprintf(line, sizeof(line),
                    "\nupdate rate %.4f (%lld ops/epoch)\n"
                    "%-6s %9s %9s %11s %11s %9s %9s %8s %6s\n",
                    row.update_rate,
                    static_cast<long long>(row.batch_ops), "epoch",
                    "apply_ms", "incPR_ms", "fullPR_ms", "incWCC_ms",
                    "fullWCC_ms", "dirtyPR", "affWCC", "ok");
      out += line;
    }
    std::snprintf(
        line, sizeof(line),
        "%-6d %9.2f %9.2f %11.2f %11.2f %9.2f %9lld %8lld %6s\n",
        row.epoch, row.apply_seconds * 1e3, row.inc_pagerank_seconds * 1e3,
        row.full_pagerank_seconds * 1e3, row.inc_wcc_seconds * 1e3,
        row.full_wcc_seconds * 1e3,
        static_cast<long long>(row.pagerank_dirty_recomputes),
        static_cast<long long>(row.wcc_affected_vertices),
        result.config.verify
            ? (row.pagerank_verified && row.wcc_verified ? "yes" : "NO")
            : "-");
    out += line;
  }
  double inc_pr = 0, full_pr = 0, inc_wcc = 0, full_wcc = 0;
  for (const MutationEpochRow& row : result.rows) {
    inc_pr += row.inc_pagerank_seconds;
    full_pr += row.full_pagerank_seconds;
    inc_wcc += row.inc_wcc_seconds;
    full_wcc += row.full_wcc_seconds;
  }
  std::snprintf(line, sizeof(line),
                "\naggregate speedup: PageRank %.2fx, WCC %.2fx\n",
                inc_pr > 0 ? full_pr / inc_pr : 0.0,
                inc_wcc > 0 ? full_wcc / inc_wcc : 0.0);
  out += line;
  return out;
}

std::string MutationSweepToJson(const MutationSweepResult& result) {
  JsonWriter json;
  json.BeginObject();
  json.Key("config").BeginObject();
  json.Field("dataset", result.config.dataset_id);
  json.Field("epochs", result.config.epochs);
  json.Field("insert_fraction", result.config.insert_fraction);
  json.Field("pagerank_iterations", result.config.pagerank_iterations);
  json.Field("damping_factor", result.config.damping_factor);
  json.Field("seed", static_cast<std::uint64_t>(result.config.seed));
  json.Field("verify", result.config.verify);
  json.Key("update_rates").BeginArray();
  for (double rate : result.config.update_rates) json.Value(rate);
  json.EndArray();
  json.EndObject();
  json.Field("dataset_name", result.dataset_name);
  json.Field("start_vertices",
             static_cast<std::int64_t>(result.start_vertices));
  json.Field("start_edges", static_cast<std::int64_t>(result.start_edges));
  json.Field("all_verified", result.all_verified);

  double inc_pr = 0, full_pr = 0, inc_wcc = 0, full_wcc = 0;
  json.Key("rows").BeginArray();
  for (const MutationEpochRow& row : result.rows) {
    inc_pr += row.inc_pagerank_seconds;
    full_pr += row.full_pagerank_seconds;
    inc_wcc += row.inc_wcc_seconds;
    full_wcc += row.full_wcc_seconds;
    json.BeginObject();
    json.Field("update_rate", row.update_rate);
    json.Field("epoch", row.epoch);
    json.Field("batch_ops", row.batch_ops);
    json.Field("applied_inserts", row.applied_inserts);
    json.Field("applied_deletes", row.applied_deletes);
    json.Field("apply_seconds", row.apply_seconds);
    json.Field("inc_pagerank_seconds", row.inc_pagerank_seconds);
    json.Field("full_pagerank_seconds", row.full_pagerank_seconds);
    json.Field("inc_wcc_seconds", row.inc_wcc_seconds);
    json.Field("full_wcc_seconds", row.full_wcc_seconds);
    json.Field("pagerank_dirty_recomputes", row.pagerank_dirty_recomputes);
    json.Field("pagerank_full_sweeps", row.pagerank_full_sweeps);
    json.Field("wcc_affected_vertices", row.wcc_affected_vertices);
    json.Field("pagerank_verified", row.pagerank_verified);
    json.Field("wcc_verified", row.wcc_verified);
    json.EndObject();
  }
  json.EndArray();
  json.Key("aggregate").BeginObject();
  json.Field("pagerank_speedup", inc_pr > 0 ? full_pr / inc_pr : 0.0);
  json.Field("wcc_speedup", inc_wcc > 0 ? full_wcc / inc_wcc : 0.0);
  json.EndObject();
  json.EndObject();
  return json.str();
}

}  // namespace ga::experiments
