// Update-rate sweep over streaming mutation epochs (the ga::mutate
// experiment preset): for each update rate, evolve a dataset through a
// chain of random delta epochs and race the incremental PageRank/WCC
// engines against full recomputes, verifying byte-identity at every
// epoch. Emits one row per (rate, epoch) — the per-epoch latencies the
// streaming-graphalytics follow-up literature reports — as a text table
// and a JSON artifact (BENCH_PR7-style).
//
// Determinism: batches come from SplitMix64 streams derived from the
// config seed, application and both engines are bit-identical at any
// --jobs value, so everything here except the wall-clock columns is
// reproducible byte-for-byte.
#ifndef GRAPHALYTICS_EXPERIMENTS_MUTATION_SWEEP_H_
#define GRAPHALYTICS_EXPERIMENTS_MUTATION_SWEEP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "harness/dataset_registry.h"
#include "mutate/incremental.h"

namespace ga::experiments {

struct MutationSweepConfig {
  /// Dataset to evolve: a registry id, or the synthetic high-locality
  /// form "rings:<count>x<size>" — `count` disjoint cycles of `size`
  /// vertices each. Default G22 (undirected): its dangling set is
  /// rank-stable under edge churn so the engines never fall back, but
  /// its tiny diameter lets the dirty wave engulf the graph — the
  /// regime where byte-identical incrementality cannot beat recompute.
  /// The rings form is the opposite regime: perturbations stay inside
  /// one cycle, so incremental epochs win outright (BENCH_PR7.json
  /// records both).
  std::string dataset_id = "G22";
  /// Batch size per epoch = rate * |E|, split between inserts/deletes.
  std::vector<double> update_rates = {0.001, 0.01, 0.05};
  int epochs = 6;
  /// Fraction of each batch that is inserts (rest are deletes).
  double insert_fraction = 0.5;
  int pagerank_iterations = 20;
  double damping_factor = 0.85;
  std::uint64_t seed = 42;
  /// Byte-compare each incremental output against the full recompute
  /// (the oracle). Off only for pure timing runs.
  bool verify = true;
};

/// One (update rate, epoch) cell.
struct MutationEpochRow {
  double update_rate = 0.0;
  int epoch = 0;  // 1-based
  std::int64_t batch_ops = 0;
  std::int64_t applied_inserts = 0;
  std::int64_t applied_deletes = 0;
  double apply_seconds = 0.0;
  double inc_pagerank_seconds = 0.0;
  double full_pagerank_seconds = 0.0;
  double inc_wcc_seconds = 0.0;
  double full_wcc_seconds = 0.0;
  std::int64_t pagerank_dirty_recomputes = 0;
  std::int64_t pagerank_full_sweeps = 0;  // fallback iterations this epoch
  std::int64_t wcc_affected_vertices = 0;
  bool pagerank_verified = false;
  bool wcc_verified = false;
};

struct MutationSweepResult {
  MutationSweepConfig config;
  std::string dataset_name;
  VertexIndex start_vertices = 0;
  EdgeIndex start_edges = 0;
  std::vector<MutationEpochRow> rows;
  /// True iff every verified row byte-matched its oracle.
  bool all_verified = true;
};

/// Runs the sweep. FailedPrecondition when verification is on and any
/// epoch's incremental output diverges from the recompute oracle.
Result<MutationSweepResult> RunMutationSweep(
    const MutationSweepConfig& config, harness::DatasetRegistry& registry,
    exec::ThreadPool* pool = nullptr);

/// Text table, one section per update rate.
std::string RenderMutationReport(const MutationSweepResult& result);

/// JSON artifact (config + rows + aggregate speedups).
std::string MutationSweepToJson(const MutationSweepResult& result);

}  // namespace ga::experiments

#endif  // GRAPHALYTICS_EXPERIMENTS_MUTATION_SWEEP_H_
