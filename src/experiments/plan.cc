#include "experiments/plan.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "core/strings.h"

namespace ga::experiments {

namespace {

Result<int> ParsePositiveInt(const std::string& text,
                             const std::string& what) {
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (text.empty() || end == nullptr || *end != '\0' || errno == ERANGE ||
      value <= 0 || value > std::numeric_limits<int>::max()) {
    return Status::InvalidArgument(what + " must be a positive int, got \"" +
                                   text + "\"");
  }
  return static_cast<int>(value);
}

Result<std::vector<int>> ParseIntList(const std::string& text,
                                      const std::string& what) {
  std::vector<int> values;
  for (const std::string& part : SplitCsv(text)) {
    GA_ASSIGN_OR_RETURN(int value, ParsePositiveInt(part, what));
    values.push_back(value);
  }
  return values;
}

Result<std::vector<Algorithm>> ParseAlgorithmList(const std::string& text) {
  std::vector<Algorithm> algorithms;
  for (const std::string& part : SplitCsv(text)) {
    Algorithm algorithm;
    if (!ParseAlgorithm(part, &algorithm)) {
      return Status::InvalidArgument("unknown algorithm \"" + part + "\"");
    }
    algorithms.push_back(algorithm);
  }
  return algorithms;
}

// "D300@1" -> {D300, 1}; a bare dataset id means one machine.
Result<WorkloadPoint> ParseWorkloadPoint(const std::string& text) {
  WorkloadPoint point;
  const std::size_t at = text.find('@');
  if (at == std::string::npos) {
    point.dataset_id = text;
    return point;
  }
  point.dataset_id = TrimWhitespace(std::string_view(text).substr(0, at));
  GA_ASSIGN_OR_RETURN(
      point.machines,
      ParsePositiveInt(TrimWhitespace(std::string_view(text).substr(at + 1)),
                       "machine count in \"" + text + "\""));
  if (point.dataset_id.empty()) {
    return Status::InvalidArgument("missing dataset id in \"" + text + "\"");
  }
  return point;
}

Result<std::vector<WorkloadPoint>> ParseWorkloadPoints(
    const std::string& text) {
  std::vector<WorkloadPoint> points;
  for (const std::string& part : SplitCsv(text)) {
    GA_ASSIGN_OR_RETURN(WorkloadPoint point, ParseWorkloadPoint(part));
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace

std::string_view ExperimentKindName(ExperimentKind kind) {
  switch (kind) {
    case ExperimentKind::kBaseline:
      return "baseline";
    case ExperimentKind::kStrongVertical:
      return "strong-vertical";
    case ExperimentKind::kStrongHorizontal:
      return "strong-horizontal";
    case ExperimentKind::kWeakScaling:
      return "weak-scaling";
    case ExperimentKind::kVariability:
      return "variability";
    case ExperimentKind::kRenewal:
      return "renewal";
  }
  return "unknown";
}

bool ParseExperimentKind(std::string_view name, ExperimentKind* out) {
  for (ExperimentKind kind : kAllExperimentKinds) {
    if (name == ExperimentKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

bool ExperimentPlan::Includes(ExperimentKind kind) const {
  return std::find(experiments.begin(), experiments.end(), kind) !=
         experiments.end();
}

ExperimentPlan SmokePlan() {
  ExperimentPlan plan;
  plan.name = "smoke";
  plan.experiments = {ExperimentKind::kBaseline, ExperimentKind::kVariability,
                      ExperimentKind::kRenewal};
  plan.platforms = {"gaslite", "spmat", "pushpull"};
  plan.datasets = {"R1", "R2"};
  plan.algorithms = {Algorithm::kBfs, Algorithm::kPageRank};
  plan.variability_setups = {{"R2", 1}};
  plan.repetitions = 5;
  plan.renewal_datasets = {"R1", "R2"};
  return plan;
}

ExperimentPlan PaperPlan() {
  ExperimentPlan plan;
  plan.name = "paper";
  plan.experiments.assign(std::begin(kAllExperimentKinds),
                          std::end(kAllExperimentKinds));
  // All platforms (empty list).
  plan.datasets = {"R1", "R2", "R3", "R4", "R5", "R6", "D100",
                   "D300", "D1000", "G22", "G23", "G24", "G25", "G26"};
  plan.algorithms.assign(std::begin(kAllAlgorithms), std::end(kAllAlgorithms));
  plan.scaling_algorithms = {Algorithm::kBfs, Algorithm::kPageRank};
  plan.vertical_dataset = "D300";
  plan.thread_counts = {1, 2, 4, 8, 16, 32};
  plan.horizontal_dataset = "D1000";
  plan.machine_counts = {1, 2, 4, 8, 16};
  plan.weak_series = {{"G22", 1}, {"G23", 2}, {"G24", 4}, {"G25", 8},
                      {"G26", 16}};
  plan.variability_setups = {{"D300", 1}, {"D1000", 16}};
  plan.repetitions = 10;
  // Renewal sweeps the full catalogue (renewal_datasets stays empty).
  return plan;
}

Result<ExperimentPlan> FindPreset(const std::string& name) {
  if (name == "smoke") return SmokePlan();
  if (name == "paper") return PaperPlan();
  return Status::NotFound("no experiment-plan preset named \"" + name + "\"");
}

std::vector<std::string> PresetNames() { return {"smoke", "paper"}; }

Result<ExperimentPlan> ParsePlanText(const std::string& text) {
  ExperimentPlan plan;
  plan.name = "custom";
  // Scaling algorithms default to the paper's BFS+PR unless overridden.
  plan.scaling_algorithms = {Algorithm::kBfs, Algorithm::kPageRank};

  std::istringstream lines(text);
  std::string raw_line;
  int line_number = 0;
  bool any_key = false;
  while (std::getline(lines, raw_line)) {
    ++line_number;
    const std::size_t hash = raw_line.find('#');
    if (hash != std::string::npos) raw_line.resize(hash);
    const std::string line = TrimWhitespace(raw_line);
    if (line.empty()) continue;

    const std::size_t equals = line.find('=');
    if (equals == std::string::npos) {
      return Status::InvalidArgument(
          "plan line " + std::to_string(line_number) +
          ": expected \"key = value\", got \"" + line + "\"");
    }
    const std::string key =
        TrimWhitespace(std::string_view(line).substr(0, equals));
    const std::string value =
        TrimWhitespace(std::string_view(line).substr(equals + 1));
    any_key = true;

    if (key == "name") {
      plan.name = value;
    } else if (key == "experiments") {
      plan.experiments.clear();
      for (const std::string& part : SplitCsv(value)) {
        ExperimentKind kind;
        if (!ParseExperimentKind(part, &kind)) {
          return Status::InvalidArgument(
              "plan line " + std::to_string(line_number) +
              ": unknown experiment \"" + part +
              "\" (valid: baseline, strong-vertical, strong-horizontal, "
              "weak-scaling, variability, renewal)");
        }
        plan.experiments.push_back(kind);
      }
    } else if (key == "platforms") {
      plan.platforms = SplitCsv(value);
    } else if (key == "datasets") {
      plan.datasets = SplitCsv(value);
    } else if (key == "algorithms") {
      GA_ASSIGN_OR_RETURN(plan.algorithms, ParseAlgorithmList(value));
    } else if (key == "scaling_algorithms") {
      GA_ASSIGN_OR_RETURN(plan.scaling_algorithms, ParseAlgorithmList(value));
    } else if (key == "vertical_dataset") {
      plan.vertical_dataset = value;
    } else if (key == "threads") {
      GA_ASSIGN_OR_RETURN(plan.thread_counts,
                          ParseIntList(value, "thread count"));
    } else if (key == "horizontal_dataset") {
      plan.horizontal_dataset = value;
    } else if (key == "machines") {
      GA_ASSIGN_OR_RETURN(plan.machine_counts,
                          ParseIntList(value, "machine count"));
    } else if (key == "weak") {
      GA_ASSIGN_OR_RETURN(plan.weak_series, ParseWorkloadPoints(value));
    } else if (key == "variability") {
      GA_ASSIGN_OR_RETURN(plan.variability_setups,
                          ParseWorkloadPoints(value));
    } else if (key == "repetitions") {
      GA_ASSIGN_OR_RETURN(plan.repetitions,
                          ParsePositiveInt(value, "repetitions"));
    } else if (key == "renewal_datasets") {
      plan.renewal_datasets = SplitCsv(value);
    } else if (key == "validate") {
      if (value == "true") {
        plan.validate = true;
      } else if (value == "false") {
        plan.validate = false;
      } else {
        return Status::InvalidArgument(
            "plan line " + std::to_string(line_number) +
            ": validate must be true or false, got \"" + value + "\"");
      }
    } else {
      return Status::InvalidArgument("plan line " +
                                     std::to_string(line_number) +
                                     ": unknown key \"" + key + "\"");
    }
  }
  if (!any_key) return Status::InvalidArgument("plan file is empty");
  GA_RETURN_IF_ERROR(ValidatePlan(plan));
  return plan;
}

Result<ExperimentPlan> LoadPlanFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot read plan file " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParsePlanText(buffer.str());
}

Result<ExperimentPlan> ResolvePlan(const std::string& name_or_path) {
  auto preset = FindPreset(name_or_path);
  if (preset.ok()) return preset;
  auto from_file = LoadPlanFile(name_or_path);
  if (from_file.ok()) return from_file;
  if (from_file.status().code() == StatusCode::kIoError) {
    return Status::InvalidArgument(
        "\"" + name_or_path + "\" is neither a preset (" +
        [] {
          std::string names;
          for (const std::string& name : PresetNames()) {
            if (!names.empty()) names += ", ";
            names += name;
          }
          return names;
        }() +
        ") nor a readable plan file");
  }
  return from_file;
}

Status ValidatePlan(const ExperimentPlan& plan) {
  if (plan.experiments.empty()) {
    return Status::InvalidArgument("plan selects no experiments");
  }
  if (plan.Includes(ExperimentKind::kBaseline)) {
    if (plan.datasets.empty()) {
      return Status::InvalidArgument("baseline needs at least one dataset");
    }
    if (plan.algorithms.empty()) {
      return Status::InvalidArgument("baseline needs at least one algorithm");
    }
  }
  if (plan.Includes(ExperimentKind::kStrongVertical) &&
      (plan.thread_counts.empty() || plan.vertical_dataset.empty())) {
    return Status::InvalidArgument(
        "strong-vertical needs vertical_dataset and a threads ladder");
  }
  if (plan.Includes(ExperimentKind::kStrongHorizontal) &&
      (plan.machine_counts.empty() || plan.horizontal_dataset.empty())) {
    return Status::InvalidArgument(
        "strong-horizontal needs horizontal_dataset and a machines ladder");
  }
  if (plan.Includes(ExperimentKind::kWeakScaling) && plan.weak_series.empty()) {
    return Status::InvalidArgument("weak-scaling needs a weak series");
  }
  if (plan.Includes(ExperimentKind::kVariability)) {
    if (plan.variability_setups.empty()) {
      return Status::InvalidArgument("variability needs at least one setup");
    }
    if (plan.repetitions < 2) {
      return Status::InvalidArgument(
          "variability needs repetitions >= 2 to compute a CV");
    }
  }
  const bool needs_scaling_algorithms =
      plan.Includes(ExperimentKind::kStrongVertical) ||
      plan.Includes(ExperimentKind::kStrongHorizontal) ||
      plan.Includes(ExperimentKind::kWeakScaling);
  if (needs_scaling_algorithms && plan.scaling_algorithms.empty()) {
    return Status::InvalidArgument(
        "scalability experiments need scaling_algorithms");
  }
  return Status::Ok();
}

}  // namespace ga::experiments
