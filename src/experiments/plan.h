// Declarative experiment plans for the ga::experiments suite driver.
//
// An ExperimentPlan names which of the paper's Section 4 experiments to
// run (baseline, vertical/horizontal strong scaling, weak scaling,
// variability, the class-L renewal) and over which slice of the workload
// matrix (platforms, datasets, algorithms, machine/thread counts,
// repetitions). Plans come from a preset ("smoke", "paper") or a plan
// file; the suite compiles them into a deterministic JobSpec schedule
// (see suite.h and DESIGN.md §7).
#ifndef GRAPHALYTICS_EXPERIMENTS_PLAN_H_
#define GRAPHALYTICS_EXPERIMENTS_PLAN_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "core/types.h"

namespace ga::experiments {

/// The experiment families of the paper's evaluation (Section 4), in the
/// canonical order the suite schedules them. Renewal runs last: it sweeps
/// (and evicts) many datasets, so it must not disturb the cached
/// instances the other experiments share.
enum class ExperimentKind {
  kBaseline,           // §4.2 — EPS/EVPS across platform×dataset×algorithm
  kStrongVertical,     // §4.3 — T_proc vs threads, dataset fixed
  kStrongHorizontal,   // §4.4 — T_proc vs machines, dataset fixed
  kWeakScaling,        // §4.5 — dataset grows with the cluster
  kVariability,        // §4.7 — CV of T_proc over repeated runs
  kRenewal,            // §2.4 — class-L re-evaluation
};

/// All kinds in canonical scheduling order.
inline constexpr ExperimentKind kAllExperimentKinds[] = {
    ExperimentKind::kBaseline,        ExperimentKind::kStrongVertical,
    ExperimentKind::kStrongHorizontal, ExperimentKind::kWeakScaling,
    ExperimentKind::kVariability,     ExperimentKind::kRenewal,
};

/// Plan-file / report name of a kind: "baseline", "strong-vertical",
/// "strong-horizontal", "weak-scaling", "variability", "renewal".
std::string_view ExperimentKindName(ExperimentKind kind);

/// Parses a name produced by ExperimentKindName. Returns false if the
/// name is not recognised.
bool ParseExperimentKind(std::string_view name, ExperimentKind* out);

/// One (dataset, simulated machine count) point of a weak-scaling series
/// or a variability setup. Plan-file syntax: "G22@1" (machines default 1).
struct WorkloadPoint {
  std::string dataset_id;
  int machines = 1;

  bool operator==(const WorkloadPoint&) const = default;
};

struct ExperimentPlan {
  std::string name = "custom";
  /// Which experiment families to run; duplicates are ignored and the
  /// suite always schedules them in canonical kAllExperimentKinds order.
  std::vector<ExperimentKind> experiments;
  /// Platform ids; empty selects all registered platforms.
  std::vector<std::string> platforms;
  /// Baseline datasets (also the default variability/renewal slice).
  std::vector<std::string> datasets;
  /// Baseline algorithms.
  std::vector<Algorithm> algorithms;
  /// Algorithms for the scalability experiments (the paper uses BFS and
  /// PageRank throughout §4.3–4.5).
  std::vector<Algorithm> scaling_algorithms;
  /// §4.3 vertical scaling: one dataset, varying threads on one machine.
  std::string vertical_dataset = "D300";
  std::vector<int> thread_counts;
  /// §4.4 strong horizontal scaling: one dataset, varying machines.
  std::string horizontal_dataset = "D1000";
  std::vector<int> machine_counts;
  /// §4.5 weak scaling: dataset and cluster grow together.
  std::vector<WorkloadPoint> weak_series;
  /// §4.7 variability setups, each repeated `repetitions` times (BFS).
  std::vector<WorkloadPoint> variability_setups;
  int repetitions = 10;
  /// Datasets swept by the class-L renewal; empty = the full catalogue.
  std::vector<std::string> renewal_datasets;
  /// Validate outputs against the reference implementations.
  bool validate = true;

  bool Includes(ExperimentKind kind) const;
};

/// Built-in presets.
///
/// "smoke": baseline + variability + renewal over three platforms and two
/// small real-graph proxies — finishes in seconds at any scale divisor
/// and is the configuration CI runs on every push.
ExperimentPlan SmokePlan();

/// "paper": the full §4 matrix — all six experiment families, all
/// platforms, the Table 3/4 datasets, all six algorithms, the paper's
/// thread/machine ladders and the Table 11 variability setups.
ExperimentPlan PaperPlan();

/// Preset by name, or kNotFound. PresetNames() lists valid names.
Result<ExperimentPlan> FindPreset(const std::string& name);
std::vector<std::string> PresetNames();

/// Parses a plan file (see docs/BENCHMARK_GUIDE.md for the format):
/// one "key = value" per line, '#' comments, CSV lists. Keys:
///   name, experiments, platforms, datasets, algorithms,
///   scaling_algorithms, vertical_dataset, threads, horizontal_dataset,
///   machines, weak, variability, repetitions, renewal_datasets, validate
/// Unknown keys and malformed values are errors (kInvalidArgument).
Result<ExperimentPlan> ParsePlanText(const std::string& text);

/// Reads and parses a plan file from disk.
Result<ExperimentPlan> LoadPlanFile(const std::string& path);

/// Resolves `name_or_path` as a preset first, then as a plan file.
Result<ExperimentPlan> ResolvePlan(const std::string& name_or_path);

/// Structural sanity checks that need no registry: at least one
/// experiment, ladders non-empty for the kinds that use them, positive
/// counts. Id existence is checked by CompileSchedule.
Status ValidatePlan(const ExperimentPlan& plan);

}  // namespace ga::experiments

#endif  // GRAPHALYTICS_EXPERIMENTS_PLAN_H_
