#include "experiments/suite.h"

#include <algorithm>
#include <set>

#include "platforms/platform.h"

namespace ga::experiments {

namespace {

// Tracks which datasets the schedule references, preserving first-use
// order for the report's row labels.
class DatasetCollector {
 public:
  explicit DatasetCollector(const harness::DatasetRegistry& registry)
      : registry_(registry) {}

  Status Note(const std::string& id) {
    if (seen_.count(id) > 0) return Status::Ok();
    GA_ASSIGN_OR_RETURN(harness::DatasetSpec spec, registry_.Find(id));
    seen_.insert(id);
    specs_.push_back(std::move(spec));
    return Status::Ok();
  }

  std::vector<harness::DatasetSpec> Take() { return std::move(specs_); }

 private:
  const harness::DatasetRegistry& registry_;
  std::set<std::string> seen_;
  std::vector<harness::DatasetSpec> specs_;
};

std::string PointLabel(const WorkloadPoint& point) {
  return point.dataset_id + "@" + std::to_string(point.machines);
}

}  // namespace

Result<ExperimentSchedule> CompileSchedule(
    const ExperimentPlan& plan, const harness::DatasetRegistry& registry) {
  GA_RETURN_IF_ERROR(ValidatePlan(plan));

  ExperimentSchedule schedule;
  schedule.plan = plan;

  // Resolve the platform slice (empty = all) and split off the subset
  // that can deploy on more than one machine.
  schedule.platforms =
      plan.platforms.empty() ? platform::AllPlatformIds() : plan.platforms;
  for (const std::string& id : schedule.platforms) {
    GA_ASSIGN_OR_RETURN(platform::PlatformInfo info,
                        platform::PlatformInfoFor(id));
    if (info.distributed) schedule.distributed_platforms.push_back(id);
  }

  DatasetCollector datasets(registry);

  auto make_spec = [&plan](const std::string& platform_id,
                           const std::string& dataset_id,
                           Algorithm algorithm) {
    harness::JobSpec spec;
    spec.platform_id = platform_id;
    spec.dataset_id = dataset_id;
    spec.algorithm = algorithm;
    spec.validate = plan.validate;
    return spec;
  };

  // The experiment families run in canonical order regardless of how the
  // plan lists them; renewal goes last because it evicts cached datasets.
  for (ExperimentKind kind : kAllExperimentKinds) {
    if (!plan.Includes(kind)) continue;
    switch (kind) {
      case ExperimentKind::kBaseline: {
        for (const std::string& dataset : plan.datasets) {
          GA_RETURN_IF_ERROR(datasets.Note(dataset));
          for (Algorithm algorithm : plan.algorithms) {
            for (const std::string& platform_id : schedule.platforms) {
              ScheduledJob job;
              job.experiment = kind;
              job.cell_id = "baseline/" + dataset + "/" +
                            std::string(AlgorithmName(algorithm)) + "/" +
                            platform_id;
              job.spec = make_spec(platform_id, dataset, algorithm);
              schedule.jobs.push_back(std::move(job));
            }
          }
        }
        break;
      }
      case ExperimentKind::kStrongVertical: {
        GA_RETURN_IF_ERROR(datasets.Note(plan.vertical_dataset));
        for (Algorithm algorithm : plan.scaling_algorithms) {
          for (int threads : plan.thread_counts) {
            for (const std::string& platform_id : schedule.platforms) {
              ScheduledJob job;
              job.experiment = kind;
              job.cell_id = "strong-vertical/" + plan.vertical_dataset +
                            "/" + std::string(AlgorithmName(algorithm)) +
                            "/" + platform_id + "/t" +
                            std::to_string(threads);
              job.spec =
                  make_spec(platform_id, plan.vertical_dataset, algorithm);
              job.spec.threads_per_machine = threads;
              schedule.jobs.push_back(std::move(job));
            }
          }
        }
        break;
      }
      case ExperimentKind::kStrongHorizontal: {
        GA_RETURN_IF_ERROR(datasets.Note(plan.horizontal_dataset));
        for (Algorithm algorithm : plan.scaling_algorithms) {
          for (int machines : plan.machine_counts) {
            for (const std::string& platform_id :
                 schedule.distributed_platforms) {
              ScheduledJob job;
              job.experiment = kind;
              job.cell_id = "strong-horizontal/" + plan.horizontal_dataset +
                            "/" + std::string(AlgorithmName(algorithm)) +
                            "/" + platform_id + "/m" +
                            std::to_string(machines);
              job.spec =
                  make_spec(platform_id, plan.horizontal_dataset, algorithm);
              job.spec.num_machines = machines;
              // The paper runs manually-selected distributed backends in
              // every horizontal experiment, even on one machine (§4.4).
              job.spec.prefer_distributed_backend = true;
              schedule.jobs.push_back(std::move(job));
            }
          }
        }
        break;
      }
      case ExperimentKind::kWeakScaling: {
        for (Algorithm algorithm : plan.scaling_algorithms) {
          for (const WorkloadPoint& point : plan.weak_series) {
            GA_RETURN_IF_ERROR(datasets.Note(point.dataset_id));
            for (const std::string& platform_id :
                 schedule.distributed_platforms) {
              ScheduledJob job;
              job.experiment = kind;
              job.cell_id = "weak-scaling/" + PointLabel(point) + "/" +
                            std::string(AlgorithmName(algorithm)) + "/" +
                            platform_id;
              job.spec =
                  make_spec(platform_id, point.dataset_id, algorithm);
              job.spec.num_machines = point.machines;
              job.spec.prefer_distributed_backend = true;
              schedule.jobs.push_back(std::move(job));
            }
          }
        }
        break;
      }
      case ExperimentKind::kVariability: {
        for (const WorkloadPoint& point : plan.variability_setups) {
          GA_RETURN_IF_ERROR(datasets.Note(point.dataset_id));
          const std::vector<std::string>& eligible =
              point.machines > 1 ? schedule.distributed_platforms
                                 : schedule.platforms;
          for (const std::string& platform_id : eligible) {
            ScheduledJob job;
            job.experiment = kind;
            job.cell_id = "variability/" + PointLabel(point) + "/bfs/" +
                          platform_id;
            // The paper measures variability over repeated BFS runs
            // (Table 11).
            job.spec = make_spec(platform_id, point.dataset_id,
                                 Algorithm::kBfs);
            job.spec.num_machines = point.machines;
            job.spec.repetitions = plan.repetitions;
            schedule.jobs.push_back(std::move(job));
          }
        }
        break;
      }
      case ExperimentKind::kRenewal: {
        schedule.run_renewal = true;
        schedule.renewal_datasets = plan.renewal_datasets;
        if (schedule.renewal_datasets.empty()) {
          for (const harness::DatasetSpec& spec : registry.specs()) {
            schedule.renewal_datasets.push_back(spec.id);
          }
        }
        for (const std::string& dataset : schedule.renewal_datasets) {
          GA_RETURN_IF_ERROR(datasets.Note(dataset));
        }
        break;
      }
    }
  }

  // Enforce the "every cell exactly once" contract: duplicate ids or
  // ladder steps in the plan would silently break the cell_id join key
  // of the report and experiments.json.
  std::set<std::string> cell_ids;
  for (const ScheduledJob& job : schedule.jobs) {
    if (!cell_ids.insert(job.cell_id).second) {
      return Status::InvalidArgument(
          "duplicate matrix cell " + job.cell_id +
          " (the plan lists an id or ladder step twice)");
    }
  }

  schedule.dataset_specs = datasets.Take();
  return schedule;
}

Result<SuiteResult> RunSuite(harness::BenchmarkRunner& runner,
                             const ExperimentPlan& plan) {
  SuiteResult result;
  result.config = runner.config();
  GA_ASSIGN_OR_RETURN(result.schedule,
                      CompileSchedule(plan, runner.registry()));

  result.reports.reserve(result.schedule.jobs.size());
  for (const ScheduledJob& job : result.schedule.jobs) {
    // Hardened execution (docs/ROBUSTNESS.md): fault injection, wall
    // timeout and bounded retry per the config; any cell that still
    // fails is quarantined as a kFailed/kCrashed/kTimedOut record with
    // its cause, so the matrix stays complete and the artifacts are
    // emitted either way.
    result.reports.push_back(runner.RunWithPolicy(job.spec));
  }

  if (result.schedule.run_renewal) {
    auto renewal =
        harness::EvaluateClassL(runner, result.schedule.platforms,
                                result.schedule.renewal_datasets);
    if (renewal.ok()) {
      result.renewal = std::move(*renewal);
    } else {
      // Like per-job infrastructure errors, a failed renewal sweep must
      // not discard the completed jobs — record it and emit artifacts.
      result.renewal_failure = renewal.status().ToString();
    }
  }
  return result;
}

}  // namespace ga::experiments
