// Experiment-suite driver: compiles a declarative ExperimentPlan into a
// deterministic JobSpec schedule, executes it through BenchmarkRunner,
// and emits the paper-style artifacts (text report + experiments.json).
//
// Dataflow (DESIGN.md §7): plan → CompileSchedule → RunSuite →
// RenderSuiteReport / SuiteToJson. Every stage is deterministic: the
// schedule depends only on the plan and the catalogue, job execution is
// host-thread invariant by the exec contract (DESIGN.md §6), and the
// renderers format fixed-precision values in schedule order — so the full
// suite's report and JSON are bit-identical at any --jobs value.
#ifndef GRAPHALYTICS_EXPERIMENTS_SUITE_H_
#define GRAPHALYTICS_EXPERIMENTS_SUITE_H_

#include <optional>
#include <string>
#include <vector>

#include "experiments/plan.h"
#include "harness/dataset_registry.h"
#include "harness/renewal.h"
#include "harness/runner.h"

namespace ga::experiments {

/// One compiled cell of the experiment matrix: the experiment family it
/// belongs to, a unique human-readable cell id (stable across runs, used
/// as the join key in reports and JSON), and the ready-to-run JobSpec.
struct ScheduledJob {
  ExperimentKind experiment;
  std::string cell_id;  // e.g. "baseline/R1/bfs/spmat"
  harness::JobSpec spec;
};

struct ExperimentSchedule {
  ExperimentPlan plan;
  /// Platform ids after resolving an empty plan list to the registry.
  std::vector<std::string> platforms;
  /// Subset of `platforms` that supports multi-machine deployment; the
  /// horizontal/weak/distributed-variability cells are restricted to it,
  /// as in the paper's §4.4–4.5 (single-machine platforms are marked "-").
  std::vector<std::string> distributed_platforms;
  /// Specs of every dataset the schedule touches, in first-use order
  /// (report row labels show the paper-scale class, e.g. "R1 (2XS)").
  std::vector<harness::DatasetSpec> dataset_specs;
  /// All jobs in canonical execution order.
  std::vector<ScheduledJob> jobs;
  /// Datasets the renewal sweeps (resolved; empty when renewal is off).
  std::vector<std::string> renewal_datasets;
  bool run_renewal = false;
};

/// Compiles a plan into its schedule. Deterministic and complete: the
/// same plan and catalogue always produce the same job sequence, and
/// every selected matrix cell appears exactly once. Unknown platform or
/// dataset ids are kNotFound errors.
Result<ExperimentSchedule> CompileSchedule(
    const ExperimentPlan& plan, const harness::DatasetRegistry& registry);

struct SuiteResult {
  ExperimentSchedule schedule;
  harness::BenchmarkConfig config;
  /// One report per schedule.jobs entry, in the same order.
  /// Infrastructure errors surface as JobOutcome::kFailed reports so the
  /// matrix stays complete.
  std::vector<harness::JobReport> reports;
  std::optional<harness::RenewalResult> renewal;
  /// Non-empty when the renewal sweep hit an infrastructure error; the
  /// job results and artifacts are still emitted (renewal stays unset).
  std::string renewal_failure;
};

/// Runs the full suite through `runner` in schedule order.
Result<SuiteResult> RunSuite(harness::BenchmarkRunner& runner,
                             const ExperimentPlan& plan);

/// Paper-style text report: one section per experiment family (the
/// textual Table 6 / Figures 5–9 / Table 9/11 equivalents, including
/// speedup-vs-machines and CV columns, and the class-L recommendation).
std::string RenderSuiteReport(const SuiteResult& result);

/// Machine-readable experiments.json: plan + configuration + one record
/// per cell + the renewal verdict.
std::string SuiteToJson(const SuiteResult& result);

/// Writes SuiteToJson(result) to `path`.
Status WriteSuiteJson(const SuiteResult& result, const std::string& path);

/// Writes RenderSuiteReport(result) to `path`.
Status WriteSuiteReport(const SuiteResult& result, const std::string& path);

}  // namespace ga::experiments

#endif  // GRAPHALYTICS_EXPERIMENTS_SUITE_H_
