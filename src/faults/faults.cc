#include "faults/faults.h"

#include <chrono>
#include <csignal>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/exec/thread_pool.h"
#include "core/rng.h"

namespace ga::faults {

namespace {

std::atomic<FaultInjector*> g_injector{nullptr};

void LoopHookThunk() {
  if (FaultInjector* injector = g_injector.load(std::memory_order_relaxed)) {
    injector->OnParallelLoop();
  }
}

void ChunkHookThunk(int slot) {
  if (FaultInjector* injector = g_injector.load(std::memory_order_relaxed)) {
    injector->OnParallelChunk(slot);
  }
}

Result<std::int64_t> ParseInt(const std::string& key,
                              const std::string& value) {
  try {
    std::size_t used = 0;
    const long long parsed = std::stoll(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return static_cast<std::int64_t>(parsed);
  } catch (const std::exception&) {
    return Status::InvalidArgument("fault plan: bad value for " + key +
                                   ": '" + value + "'");
  }
}

}  // namespace

Result<FaultPlan> FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string field = spec.substr(begin, end - begin);
    begin = end + 1;
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault plan: expected key=value, got '" +
                                     field + "'");
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    GA_ASSIGN_OR_RETURN(const std::int64_t parsed, ParseInt(key, value));
    if (key == "seed") {
      plan.seed = static_cast<std::uint64_t>(parsed);
    } else if (key == "crash_at_superstep") {
      plan.crash_at_superstep = static_cast<int>(parsed);
    } else if (key == "kill_at_superstep") {
      plan.kill_at_superstep = static_cast<int>(parsed);
    } else if (key == "alloc_fail_at_charge") {
      plan.alloc_fail_at_charge = parsed;
    } else if (key == "abort_at_loop") {
      plan.abort_at_loop = parsed;
    } else if (key == "stall_at_loop") {
      plan.stall_at_loop = parsed;
    } else if (key == "stall_ms") {
      plan.stall_ms = static_cast<int>(parsed);
    } else if (key == "corrupt_read") {
      plan.corrupt_read = parsed != 0;
    } else {
      return Status::InvalidArgument("fault plan: unknown key '" + key + "'");
    }
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::vector<std::string> fields;
  if (seed != 0) fields.push_back("seed=" + std::to_string(seed));
  if (crash_at_superstep >= 0) {
    fields.push_back("crash_at_superstep=" +
                     std::to_string(crash_at_superstep));
  }
  if (kill_at_superstep >= 0) {
    fields.push_back("kill_at_superstep=" + std::to_string(kill_at_superstep));
  }
  if (alloc_fail_at_charge >= 0) {
    fields.push_back("alloc_fail_at_charge=" +
                     std::to_string(alloc_fail_at_charge));
  }
  if (abort_at_loop >= 0) {
    fields.push_back("abort_at_loop=" + std::to_string(abort_at_loop));
  }
  if (stall_at_loop >= 0) {
    fields.push_back("stall_at_loop=" + std::to_string(stall_at_loop));
    fields.push_back("stall_ms=" + std::to_string(stall_ms));
  }
  if (corrupt_read) fields.push_back("corrupt_read=1");
  std::string result;
  for (const std::string& field : fields) {
    if (!result.empty()) result += ',';
    result += field;
  }
  return result;
}

FaultInjector::FaultInjector(const FaultPlan& plan) : plan_(plan) {
  // The seed picks WHICH chunk of the targeted dispatch misbehaves. The
  // range [0, kScratchSlots) keeps the pick inside even the narrowest
  // slot decompositions engines use, so a targeted fault cannot silently
  // miss a loop that capped its slots.
  SplitMix64 rng(plan.seed ^ 0x5D5D1356E0AFB4A1ULL);
  abort_slot_ = static_cast<int>(rng.NextBounded(8));
  stall_slot_ = static_cast<int>(rng.NextBounded(8));
}

Status FaultInjector::OnSuperstep(int superstep) {
  if (superstep == plan_.kill_at_superstep) {
    // The CI crash/restart harness: genuinely die mid-job, exactly where
    // a checkpoint boundary was just crossed. No cleanup, no flush — the
    // restart path must cope with precisely this.
    std::raise(SIGKILL);
  }
  if (superstep == plan_.crash_at_superstep) {
    return Status::Aborted("injected machine crash at superstep " +
                           std::to_string(superstep));
  }
  return Status::Ok();
}

Status FaultInjector::OnMemoryCharge() {
  const std::int64_t ordinal =
      charge_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (ordinal == plan_.alloc_fail_at_charge) {
    return Status::OutOfMemory("injected allocation failure at charge " +
                               std::to_string(ordinal));
  }
  return Status::Ok();
}

void FaultInjector::OnParallelLoop() {
  const std::int64_t ordinal =
      loop_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (ordinal == plan_.abort_at_loop) {
    abort_armed_.store(true, std::memory_order_relaxed);
  }
  if (ordinal == plan_.stall_at_loop) {
    stall_armed_.store(true, std::memory_order_relaxed);
  }
}

void FaultInjector::OnParallelChunk(int slot) {
  if (stall_armed_.load(std::memory_order_relaxed) && slot == stall_slot_ &&
      stall_armed_.exchange(false, std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(plan_.stall_ms));
  }
  if (abort_armed_.load(std::memory_order_relaxed) && slot == abort_slot_ &&
      abort_armed_.exchange(false, std::memory_order_relaxed)) {
    throw StatusException(Status::Aborted(
        "injected worker-chunk abort (dispatch " +
        std::to_string(loops_dispatched()) + ", slot " +
        std::to_string(slot) + ")"));
  }
}

Status FaultInjector::OnStoreRead(const std::string& path) {
  if (plan_.corrupt_read) {
    return Status::IoError("injected corruption reading " + path);
  }
  return Status::Ok();
}

FaultInjector* GlobalInjector() {
  return g_injector.load(std::memory_order_relaxed);
}

ScopedGlobalInjector::ScopedGlobalInjector(FaultInjector* injector)
    : previous_(g_injector.load(std::memory_order_relaxed)) {
  g_injector.store(injector, std::memory_order_relaxed);
  if (injector != nullptr) {
    exec::SetParallelFaultHooks(&LoopHookThunk, &ChunkHookThunk);
  } else {
    exec::SetParallelFaultHooks(nullptr, nullptr);
  }
}

ScopedGlobalInjector::~ScopedGlobalInjector() {
  g_injector.store(previous_, std::memory_order_relaxed);
  if (previous_ != nullptr) {
    exec::SetParallelFaultHooks(&LoopHookThunk, &ChunkHookThunk);
  } else {
    exec::SetParallelFaultHooks(nullptr, nullptr);
  }
}

}  // namespace ga::faults
