// ga::faults — seed-deterministic fault injection (DESIGN.md §13).
//
// A FaultPlan names the failures to inject into one job; a FaultInjector
// fires them at deterministic points keyed by counters that are
// themselves host-thread invariant (superstep index, parallel-loop
// dispatch ordinal, memory-charge ordinal) plus a SplitMix64 stream
// seeded by the plan — so the same plan reproduces the same failure
// sequence at any `--jobs` value, which is what makes chaos runs
// debuggable and the CI smoke assertable.
//
// Failure classes (docs/ROBUSTNESS.md has the full taxonomy):
//   crash_at_superstep=K    simulated machine crash at the end of
//                           superstep K (kAborted from EndSuperstep)
//   kill_at_superstep=K     REAL process death (SIGKILL) at the end of
//                           superstep K — the CI crash/restart harness
//   alloc_fail_at_charge=N  the Nth JobContext::ChargeMemory fails with
//                           kOutOfMemory (injected allocation failure)
//   abort_at_loop=N         one chunk of the Nth parallel dispatch throws
//                           (exercises ThreadPool exception propagation)
//   stall_at_loop=N         one chunk of the Nth parallel dispatch sleeps
//                           stall_ms (wall-clock only; outputs unchanged)
//   corrupt_read=1          every store checkpoint/snapshot read reports
//                           a checksum mismatch (kIoError)
//
// The exec and store layers cannot see a JobContext, so an injector is
// installed process-globally for the duration of one job
// (ScopedGlobalInjector); the harness serialises jobs, so there is no
// cross-job aliasing.
#ifndef GRAPHALYTICS_FAULTS_FAULTS_H_
#define GRAPHALYTICS_FAULTS_FAULTS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "core/status.h"

namespace ga::faults {

struct FaultPlan {
  /// Seeds the stream that picks WHICH chunk of a targeted dispatch
  /// aborts/stalls; two plans with equal triggers but different seeds are
  /// different (reproducible) failure sequences.
  std::uint64_t seed = 0;
  int crash_at_superstep = -1;
  int kill_at_superstep = -1;
  std::int64_t alloc_fail_at_charge = -1;
  std::int64_t abort_at_loop = -1;
  std::int64_t stall_at_loop = -1;
  int stall_ms = 25;
  bool corrupt_read = false;

  bool empty() const {
    return crash_at_superstep < 0 && kill_at_superstep < 0 &&
           alloc_fail_at_charge < 0 && abort_at_loop < 0 &&
           stall_at_loop < 0 && !corrupt_read;
  }

  /// Parses "key=value[,key=value...]" with the keys named above, e.g.
  /// "crash_at_superstep=3,seed=7". Unknown keys are kInvalidArgument.
  static Result<FaultPlan> Parse(const std::string& spec);
  /// Canonical spec string (Parse(ToString()) round-trips).
  std::string ToString() const;
};

/// Fires a plan's faults at the injection points threaded through
/// exec/store/platform. Counter state is cumulative over the injector's
/// lifetime: a hardened-runner retry that reuses the injector does NOT
/// re-fire one-shot ordinal faults (abort_at_loop), which is exactly the
/// transient-failure shape bounded retry exists for. Superstep-keyed
/// faults (crash/kill) re-fire every attempt: they model deterministic
/// failures that retry cannot fix.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  const FaultPlan& plan() const { return plan_; }

  /// End of superstep `superstep` (1-based, the value after increment).
  /// kAborted on an injected machine crash; raises SIGKILL for kill
  /// plans.
  Status OnSuperstep(int superstep);

  /// Before one JobContext::ChargeMemory. kOutOfMemory on the plan's
  /// charge ordinal (1-based).
  Status OnMemoryCharge();

  /// One parallel_for/parallel_reduce dispatch (submitting thread).
  void OnParallelLoop();

  /// Before one chunk body. Throws StatusException(kAborted) on the
  /// targeted (dispatch, chunk); sleeps for stall plans.
  void OnParallelChunk(int slot);

  /// Before serving bytes from a store read path (checkpoints). kIoError
  /// when the plan corrupts reads.
  Status OnStoreRead(const std::string& path);

  /// Deterministic ordinal counters, exposed so tests can assert that a
  /// replayed plan fires at identical points.
  std::int64_t loops_dispatched() const {
    return loop_count_.load(std::memory_order_relaxed);
  }
  std::int64_t charges_seen() const {
    return charge_count_.load(std::memory_order_relaxed);
  }

 private:
  FaultPlan plan_;
  std::atomic<std::int64_t> loop_count_{0};
  std::atomic<std::int64_t> charge_count_{0};
  std::atomic<bool> abort_armed_{false};
  std::atomic<bool> stall_armed_{false};
  int abort_slot_ = 0;
  int stall_slot_ = 0;
};

/// The injector the exec/store hooks consult (null when no plan is
/// armed). Install with ScopedGlobalInjector; never set concurrently
/// with a running job.
FaultInjector* GlobalInjector();

/// RAII installation of `injector` as the process-global injector plus
/// the exec-layer hooks; restores the previous state on destruction.
/// Pass null to run a scope with injection explicitly disabled.
class ScopedGlobalInjector {
 public:
  explicit ScopedGlobalInjector(FaultInjector* injector);
  ~ScopedGlobalInjector();

  ScopedGlobalInjector(const ScopedGlobalInjector&) = delete;
  ScopedGlobalInjector& operator=(const ScopedGlobalInjector&) = delete;

 private:
  FaultInjector* previous_;
};

}  // namespace ga::faults

#endif  // GRAPHALYTICS_FAULTS_FAULTS_H_
