#include "granula/archive.h"

#include <cstdio>

#include "core/json_writer.h"

namespace ga::granula {

namespace {

void WriteOperation(const Operation& op, JsonWriter* json) {
  json->BeginObject();
  json->Field("actor", op.actor());
  json->Field("mission", op.mission());
  json->Field("sim_begin_s", op.sim_begin());
  json->Field("sim_end_s", op.sim_end());
  json->Field("sim_duration_s", op.SimDuration());
  json->Field("wall_duration_s", op.WallDuration());
  if (!op.info().empty()) {
    json->Key("info").BeginObject();
    for (const auto& [key, value] : op.info()) {
      json->Field(key, value);
    }
    json->EndObject();
  }
  if (!op.children().empty()) {
    json->Key("operations").BeginArray();
    for (const auto& child : op.children()) {
      WriteOperation(*child, json);
    }
    json->EndArray();
  }
  json->EndObject();
}

void RenderNode(const Operation& op, int depth, double parent_duration,
                std::string* out) {
  char line[256];
  const double duration = op.SimDuration();
  // Shares are of the PARENT phase, so every level of the drill-down
  // reads as a local breakdown (children of ProcessGraph sum to ~100%
  // of ProcessGraph, not of the whole job).
  const double share =
      parent_duration > 0 ? 100.0 * duration / parent_duration : 100.0;
  std::snprintf(line, sizeof(line), "%*s%s/%s: %.6fs (%.1f%%) [wall %.6fs]\n",
                depth * 2, "", op.actor().c_str(), op.mission().c_str(),
                duration, share, op.WallDuration());
  *out += line;
  for (const auto& [key, value] : op.info()) {
    std::snprintf(line, sizeof(line), "%*s- %s: %s\n", depth * 2 + 2, "",
                  key.c_str(), value.c_str());
    *out += line;
  }
  for (const auto& child : op.children()) {
    RenderNode(*child, depth + 1, duration, out);
  }
}

}  // namespace

std::string Archive::ToJson() const {
  JsonWriter json;
  json.BeginObject();
  json.Field("format", "graphalytics-cpp granula archive v1");
  json.Key("job");
  WriteOperation(*root_, &json);
  json.EndObject();
  return json.str();
}

std::string RenderText(const Operation& root) {
  std::string out;
  RenderNode(root, 0, root.SimDuration(), &out);
  return out;
}

}  // namespace ga::granula
