// Granula archiver: serialises a performance model into a JSON
// "performance archive" — complete (all observed and derived results),
// descriptive (human-readable keys), and examinable (nested provenance),
// per Section 2.5.2 of the paper.
#ifndef GRAPHALYTICS_GRANULA_ARCHIVE_H_
#define GRAPHALYTICS_GRANULA_ARCHIVE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/exec/counter_sheet.h"
#include "granula/model.h"

namespace ga::granula {

class Archive {
 public:
  /// Takes ownership of a completed operation tree.
  explicit Archive(std::unique_ptr<Operation> root)
      : root_(std::move(root)) {}

  Archive(Archive&&) = default;
  Archive& operator=(Archive&&) = default;

  const Operation& root() const { return *root_; }
  bool valid() const { return root_ != nullptr; }

  /// Host-side parallel_for chunk timeline collected by the tracer's
  /// CounterSheet (empty on untraced runs). Rendered as one track per
  /// exec slot in the Chrome-trace export.
  void set_host_spans(std::vector<exec::ChunkSpan> spans) {
    host_spans_ = std::move(spans);
  }
  const std::vector<exec::ChunkSpan>& host_spans() const {
    return host_spans_;
  }

  /// The complete archive as a JSON document.
  std::string ToJson() const;

  /// The archive as a chrome://tracing / Perfetto trace-event document
  /// (see chrome_trace.h). `name` labels the trace's process track.
  std::string ToChromeTrace(const std::string& name = "job") const;

 private:
  std::unique_ptr<Operation> root_;
  std::vector<exec::ChunkSpan> host_spans_;
};

/// Renders the archive as an indented text tree with simulated durations
/// and per-phase percentages — the text-mode equivalent of the Granula
/// visualizer's drill-down view.
std::string RenderText(const Operation& root);

}  // namespace ga::granula

#endif  // GRAPHALYTICS_GRANULA_ARCHIVE_H_
