#include "granula/chrome_trace.h"

#include <algorithm>
#include <cstdlib>
#include <set>

namespace ga::granula {

namespace {

// Per-superstep info keys that also make sense as counter tracks. The
// values are numeric strings written by the tracer.
constexpr std::string_view kCounterKeys[] = {
    "active", "frontier_degree_sum", "messages", "residual"};

void EmitMetadata(int pid, int tid, std::string_view kind,
                  const std::string& name, JsonWriter* json) {
  json->BeginObject();
  json->Field("name", kind);
  json->Field("ph", "M");
  json->Field("pid", pid);
  json->Field("tid", tid);
  json->Key("args").BeginObject();
  json->Field("name", name);
  json->EndObject();
  json->EndObject();
}

/// DFS over the operation tree emitting B (with args) ... children ... E.
/// Parent B precedes child B and child E precedes parent E in stream
/// order, and timestamps nest by construction, which is exactly the
/// nesting discipline the trace viewer requires of duration events.
void EmitOperation(const Operation& op, int pid, bool use_wall,
                   JsonWriter* json) {
  const double begin_us =
      1e6 * (use_wall ? op.wall_begin() : op.sim_begin());
  const double end_us =
      std::max(begin_us, 1e6 * (use_wall ? op.wall_end() : op.sim_end()));
  const std::string name = op.actor() + "/" + op.mission();

  json->BeginObject();
  json->Field("name", name);
  json->Field("cat", op.mission());
  json->Field("ph", "B");
  json->Field("ts", begin_us);
  json->Field("pid", pid);
  json->Field("tid", 0);
  if (!op.info().empty()) {
    json->Key("args").BeginObject();
    for (const auto& [key, value] : op.info()) {
      json->Field(key, value);
    }
    json->EndObject();
  }
  json->EndObject();

  if (op.mission() == kMissionSuperstep) {
    for (std::string_view key : kCounterKeys) {
      const auto it = op.info().find(std::string(key));
      if (it == op.info().end()) continue;
      json->BeginObject();
      json->Field("name", key);
      json->Field("ph", "C");
      json->Field("ts", begin_us);
      json->Field("pid", pid);
      json->Field("tid", 0);
      json->Key("args").BeginObject();
      json->Field(key, std::strtod(it->second.c_str(), nullptr));
      json->EndObject();
      json->EndObject();
    }
  }

  for (const auto& child : op.children()) {
    EmitOperation(*child, pid, use_wall, json);
  }

  json->BeginObject();
  json->Field("name", name);
  json->Field("cat", op.mission());
  json->Field("ph", "E");
  json->Field("ts", end_us);
  json->Field("pid", pid);
  json->Field("tid", 0);
  json->EndObject();
}

}  // namespace

ChromeTraceBuilder::ChromeTraceBuilder() {
  json_.BeginObject();
  json_.Key("traceEvents").BeginArray();
}

void ChromeTraceBuilder::AddJob(const Archive& archive,
                                const std::string& name) {
  if (!archive.valid()) return;
  const Operation& root = archive.root();
  // Reference-algorithm archives carry no simulated clock; render their
  // tree on the wall timeline instead of collapsing to a zero-width job.
  const bool use_wall = root.SimDuration() <= 0.0;

  const int sim_pid = next_pid_++;
  EmitMetadata(sim_pid, 0, "process_name",
               name + (use_wall ? " [wall clock]" : " [simulated clock]"),
               &json_);
  EmitMetadata(sim_pid, 0, "thread_name", "operations", &json_);
  EmitOperation(root, sim_pid, use_wall, &json_);

  if (archive.host_spans().empty()) return;
  const int host_pid = next_pid_++;
  EmitMetadata(host_pid, 0, "process_name", name + " [host chunks]",
               &json_);
  std::set<int> slots;
  for (const exec::ChunkSpan& span : archive.host_spans()) {
    slots.insert(span.slot);
  }
  for (int slot : slots) {
    EmitMetadata(host_pid, slot, "thread_name",
                 "slot " + std::to_string(slot), &json_);
  }
  for (const exec::ChunkSpan& span : archive.host_spans()) {
    json_.BeginObject();
    json_.Field("name", "chunk");
    json_.Field("cat", "parallel_for");
    json_.Field("ph", "X");
    json_.Field("ts", static_cast<double>(span.begin_ns) / 1e3);
    json_.Field("dur",
                static_cast<double>(span.end_ns - span.begin_ns) / 1e3);
    json_.Field("pid", host_pid);
    json_.Field("tid", span.slot);
    json_.Key("args").BeginObject();
    json_.Field("step", span.step);
    json_.EndObject();
    json_.EndObject();
  }
}

std::string ChromeTraceBuilder::Finish() {
  json_.EndArray();
  json_.Field("displayTimeUnit", "ms");
  json_.EndObject();
  return json_.str();
}

std::string ToChromeTrace(const Archive& archive, const std::string& name) {
  ChromeTraceBuilder builder;
  builder.AddJob(archive, name);
  return builder.Finish();
}

std::string Archive::ToChromeTrace(const std::string& name) const {
  return granula::ToChromeTrace(*this, name);
}

}  // namespace ga::granula
