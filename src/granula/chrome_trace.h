// Chrome trace-event export of Granula archives.
//
// Converts Operation trees (and the host chunk timeline the tracer's
// CounterSheet collects) into the Trace Event Format consumed by
// chrome://tracing and Perfetto (ui.perfetto.dev → "Open trace file").
// Layout per job:
//
//   * one process (pid) for the operation tree on the SIMULATED clock:
//     tid 0 carries nested B/E duration events per Operation (args = the
//     node's info map), plus "C" counter tracks for per-superstep series
//     (active vertices, frontier degree sum, messages, rank residual).
//     Archives whose root has no simulated extent (reference-algorithm
//     runs) fall back to the wall clock for this track;
//   * one process for the HOST chunk timeline, when present: one thread
//     (tid) per exec slot, "X" complete events per parallel_for chunk,
//     each tagged with the superstep it was flushed under.
//
// Timestamps are microseconds, as the format requires; the simulated and
// host tracks use different clocks and are deliberately kept in separate
// processes so the viewer never implies alignment between them.
#ifndef GRAPHALYTICS_GRANULA_CHROME_TRACE_H_
#define GRAPHALYTICS_GRANULA_CHROME_TRACE_H_

#include <string>

#include "core/json_writer.h"
#include "granula/archive.h"

namespace ga::granula {

class ChromeTraceBuilder {
 public:
  ChromeTraceBuilder();

  /// Appends one job's tracks. `name` labels the process(es) in the
  /// viewer — e.g. "spmat/example-directed/bfs".
  void AddJob(const Archive& archive, const std::string& name);

  /// Closes the document and returns it. Call once.
  std::string Finish();

 private:
  JsonWriter json_;
  int next_pid_ = 1;
};

/// One-job convenience used by Archive::ToChromeTrace.
std::string ToChromeTrace(const Archive& archive, const std::string& name);

}  // namespace ga::granula

#endif  // GRAPHALYTICS_GRANULA_CHROME_TRACE_H_
