#include "granula/model.h"

namespace ga::granula {

Operation* Operation::AddChild(std::string actor, std::string mission) {
  children_.push_back(
      std::make_unique<Operation>(std::move(actor), std::move(mission)));
  return children_.back().get();
}

const Operation* Operation::Find(std::string_view mission) const {
  if (mission_ == mission) return this;
  for (const auto& child : children_) {
    if (const Operation* found = child->Find(mission)) return found;
  }
  return nullptr;
}

double Operation::TotalSimDuration(std::string_view mission) const {
  double total = mission_ == mission ? SimDuration() : 0.0;
  for (const auto& child : children_) {
    total += child->TotalSimDuration(mission);
  }
  return total;
}

}  // namespace ga::granula
