// Granula performance model (paper Section 2.5.2).
//
// Granula's modeler lets experts "define phases in the execution of a job
// (e.g., graph loading), and recursively define phases as a collection of
// smaller, lower-level phases". This module implements that model: an
// Operation is a node (actor + mission) in a tree of nested phases, with
// begin/end timestamps in both the simulated cluster clock and the host
// wall clock, plus free-form recorded info (e.g., vertices processed).
//
// The paper's T_proc metric is *defined* through this model: the duration
// of the "ProcessGraph" operation, excluding platform overhead such as
// resource allocation or graph loading (Section 2.3).
#ifndef GRAPHALYTICS_GRANULA_MODEL_H_
#define GRAPHALYTICS_GRANULA_MODEL_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ga::granula {

/// Canonical mission names used by all platform drivers, so the archiver
/// can extract the paper's metrics uniformly.
inline constexpr std::string_view kMissionJob = "Job";
inline constexpr std::string_view kMissionStartup = "Startup";
inline constexpr std::string_view kMissionUploadGraph = "UploadGraph";
inline constexpr std::string_view kMissionProcessGraph = "ProcessGraph";
inline constexpr std::string_view kMissionOffloadGraph = "OffloadGraph";
inline constexpr std::string_view kMissionCleanup = "Cleanup";
inline constexpr std::string_view kMissionSuperstep = "Superstep";

class Operation {
 public:
  Operation(std::string actor, std::string mission)
      : actor_(std::move(actor)), mission_(std::move(mission)) {}

  // Tree nodes are identity objects owned by their parent.
  Operation(const Operation&) = delete;
  Operation& operator=(const Operation&) = delete;

  const std::string& actor() const { return actor_; }
  const std::string& mission() const { return mission_; }

  /// Adds a nested phase; the returned pointer remains owned by this node.
  Operation* AddChild(std::string actor, std::string mission);

  void Begin(double sim_seconds, double wall_seconds) {
    sim_begin_ = sim_seconds;
    wall_begin_ = wall_seconds;
  }
  void End(double sim_seconds, double wall_seconds) {
    sim_end_ = sim_seconds;
    wall_end_ = wall_seconds;
  }

  double sim_begin() const { return sim_begin_; }
  double sim_end() const { return sim_end_; }
  double wall_begin() const { return wall_begin_; }
  double wall_end() const { return wall_end_; }
  double SimDuration() const { return sim_end_ - sim_begin_; }
  double WallDuration() const { return wall_end_ - wall_begin_; }

  /// Records auxiliary information ("the number of vertices processed in
  /// a phase").
  void AddInfo(const std::string& key, std::string value) {
    info_[key] = std::move(value);
  }
  const std::map<std::string, std::string>& info() const { return info_; }

  const std::vector<std::unique_ptr<Operation>>& children() const {
    return children_;
  }

  /// Depth-first search for the first descendant (or this node) with the
  /// given mission. Returns nullptr if absent.
  const Operation* Find(std::string_view mission) const;

  /// Sum of SimDuration over all descendants with the given mission.
  double TotalSimDuration(std::string_view mission) const;

 private:
  std::string actor_;
  std::string mission_;
  double sim_begin_ = 0.0;
  double sim_end_ = 0.0;
  double wall_begin_ = 0.0;
  double wall_end_ = 0.0;
  std::map<std::string, std::string> info_;
  std::vector<std::unique_ptr<Operation>> children_;
};

}  // namespace ga::granula

#endif  // GRAPHALYTICS_GRANULA_MODEL_H_
