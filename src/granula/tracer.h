// ga::granula::Tracer — the engine-facing handle of the deep tracing
// layer (docs/OBSERVABILITY.md).
//
// Granula's modeler (paper §2.5.2) wants phases "recursively defined as a
// collection of smaller, lower-level phases". The coarse job phases
// (Startup/UploadGraph/ProcessGraph/...) are built by Platform::RunJob;
// the tracer supplies the next level down: it collects per-superstep
// annotations from inside engine loops (frontier occupancy, push-vs-pull
// decisions and the Decide() inputs that drove them, PageRank residuals)
// and drains them into the Superstep Operation that JobContext creates at
// superstep close, stamped with host wall-clock begin/end.
//
// Contract with the determinism rules (DESIGN.md §6):
//   * Disabled is the default and is (nearly) free: every entry point
//     starts with a branch on `enabled_`, takes no timestamps and stages
//     nothing. Engines call the annotation hooks unconditionally.
//   * Tracing observes, never steers. TracedDecide returns exactly what
//     Frontier::Decide returns; no annotation feeds back into any
//     algorithm or cost-model input. Outputs, WorkLedger and simulated
//     metrics are byte-identical with tracing on or off at any --jobs.
//   * Annotations are staged commit-side (serial) — engines call the
//     hooks outside parallel regions, like all frontier commit ops.
#ifndef GRAPHALYTICS_GRANULA_TRACER_H_
#define GRAPHALYTICS_GRANULA_TRACER_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/exec/frontier.h"
#include "granula/model.h"

namespace ga::granula {

class Tracer {
 public:
  /// Arms the tracer and starts its wall-clock epoch. Never called on the
  /// bench/steady-state paths, which rely on the disabled fast path.
  void Enable() {
    enabled_ = true;
    epoch_ = std::chrono::steady_clock::now();
    step_wall_begin_ = 0.0;
  }
  bool enabled() const { return enabled_; }

  /// Host seconds since Enable().
  double NowWallSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

  // --- staged annotations (engine side, during a superstep) -------------

  /// Stages a free-form key/value for the superstep being executed.
  void Annotate(const std::string& key, std::string value) {
    if (!enabled_) return;
    staged_.emplace_back(key, std::move(value));
  }

  /// Active-vertex count for engines without a Frontier (dense sweeps).
  void AnnotateActive(std::int64_t active) {
    if (!enabled_) return;
    NotePeak(active);
    staged_.emplace_back("active", std::to_string(active));
  }

  /// Frontier occupancy: active count plus the activated vertices'
  /// degree sum (the Beamer heuristic's numerator).
  void AnnotateFrontier(std::int64_t active, std::int64_t degree_sum) {
    if (!enabled_) return;
    NotePeak(active);
    staged_.emplace_back("active", std::to_string(active));
    staged_.emplace_back("frontier_degree_sum", std::to_string(degree_sum));
  }

  /// The push-vs-pull choice and the Decide(total, alpha) inputs behind
  /// it. Prefer TracedDecide below, which records and decides in one go.
  void AnnotateDecision(std::string_view direction,
                        std::int64_t total_adjacency, std::int64_t alpha) {
    if (!enabled_) return;
    staged_.emplace_back("direction", std::string(direction));
    staged_.emplace_back("decide_total_adjacency",
                         std::to_string(total_adjacency));
    staged_.emplace_back("decide_alpha", std::to_string(alpha));
  }

  /// Iterative-refinement residual (PageRank L1 rank movement).
  void AnnotateResidual(double residual) {
    if (!enabled_) return;
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.9g", residual);
    staged_.emplace_back("residual", std::string(buffer));
  }

  // --- superstep close (JobContext / reference-runner side) -------------

  /// Stamps `op` with [sim_begin, sim_end) on the simulated clock and
  /// [previous close, now) on the wall clock, then drains the staged
  /// annotations into its info map.
  void CloseStep(Operation* op, double sim_begin, double sim_end) {
    const double wall_end = NowWallSeconds();
    op->Begin(sim_begin, step_wall_begin_);
    op->End(sim_end, wall_end);
    step_wall_begin_ = wall_end;
    DrainInto(op);
  }

  /// Reference-algorithm variant: creates a wall-only Superstep child of
  /// `parent` (reference code runs outside the simulated clock, so sim
  /// begin == end == 0). Returns the new node.
  Operation* CloseStepUnder(Operation* parent, const std::string& actor,
                            const std::string& label) {
    Operation* step = parent->AddChild(actor, std::string(kMissionSuperstep));
    step->AddInfo("label", label);
    step->AddInfo("step", std::to_string(reference_steps_++));
    CloseStep(step, 0.0, 0.0);
    return step;
  }

  /// Largest active-vertex count seen by any annotation — deterministic
  /// (a function of the algorithm's frontier evolution alone), so it may
  /// surface in experiments.json.
  std::int64_t peak_active() const { return peak_active_; }

 private:
  void NotePeak(std::int64_t active) {
    if (active > peak_active_) peak_active_ = active;
  }

  void DrainInto(Operation* op) {
    for (auto& [key, value] : staged_) {
      op->AddInfo(key, std::move(value));
    }
    staged_.clear();
  }

  bool enabled_ = false;
  std::chrono::steady_clock::time_point epoch_{};
  double step_wall_begin_ = 0.0;
  std::vector<std::pair<std::string, std::string>> staged_;
  std::int64_t peak_active_ = 0;
  std::int64_t reference_steps_ = 0;
};

/// Decides push-vs-pull exactly as frontier.Decide(total_adjacency, alpha)
/// would, and — when tracing — records the decision and its inputs for
/// the current superstep. The return value is untouched by tracing, so
/// swapping this in for a bare Decide call cannot change control flow.
inline exec::TraversalDirection TracedDecide(
    Tracer& tracer, const exec::Frontier& frontier,
    std::int64_t total_adjacency,
    std::int64_t alpha = exec::Frontier::kPullAlpha) {
  const exec::TraversalDirection direction =
      frontier.Decide(total_adjacency, alpha);
  if (tracer.enabled()) {
    tracer.AnnotateFrontier(frontier.active_count(),
                            frontier.active_degree_sum());
    tracer.AnnotateDecision(
        direction == exec::TraversalDirection::kPull ? "pull" : "push",
        total_adjacency, alpha);
  }
  return direction;
}

}  // namespace ga::granula

#endif  // GRAPHALYTICS_GRANULA_TRACER_H_
