#include "harness/config.h"

#include <cstdlib>
#include <string>

namespace ga::harness {

BenchmarkConfig BenchmarkConfig::FromEnv() {
  BenchmarkConfig config;
  if (const char* divisor = std::getenv("GA_SCALE_DIVISOR")) {
    const long long value = std::atoll(divisor);
    if (value >= 1) config.scale_divisor = value;
  }
  if (const char* seed = std::getenv("GA_SEED")) {
    config.seed = static_cast<std::uint64_t>(std::atoll(seed));
  }
  if (const char* jobs = std::getenv("GA_JOBS")) {
    const int value = std::atoi(jobs);
    if (value >= 0) config.host_jobs = value;
  }
  if (const char* data_dir = std::getenv("GA_DATA_DIR")) {
    config.data_dir = data_dir;
  }
  if (const char* faults = std::getenv("GA_FAULTS")) {
    config.fault_spec = faults;
  }
  if (const char* dir = std::getenv("GA_CHECKPOINT_DIR")) {
    config.checkpoint_dir = dir;
  }
  return config;
}

}  // namespace ga::harness
