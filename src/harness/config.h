// Benchmark configuration (paper Figure 1, component 2).
//
// All paper-scale quantities are divided by `scale_divisor` (graphs,
// per-machine memory, the SLA window); simulated durations are projected
// back by the same factor when reported, so tables read in paper-scale
// seconds. See DESIGN.md §1 for the substitution rationale.
#ifndef GRAPHALYTICS_HARNESS_CONFIG_H_
#define GRAPHALYTICS_HARNESS_CONFIG_H_

#include <cstdint>
#include <string>

namespace ga::harness {

struct BenchmarkConfig {
  /// Divisor applied to the paper's dataset sizes (Tables 3 and 4).
  std::int64_t scale_divisor = 1024;
  /// Root seed; every dataset and jitter stream derives from it.
  std::uint64_t seed = 42;
  /// The Graphalytics SLA: makespan of up to one hour (Section 2.3),
  /// expressed in projected (paper-scale) seconds.
  double sla_projected_seconds = 3600.0;
  /// Per-machine memory of the paper's testbed (Table 7), scaled by
  /// scale_divisor when deployed.
  std::int64_t machine_memory_bytes = 64LL * 1024 * 1024 * 1024;
  /// Host threads the engines execute their real work on (the CLI's
  /// --jobs). 0 selects the hardware concurrency. Purely a wall-time
  /// knob: simulated metrics and outputs are identical at any value.
  int host_jobs = 0;
  /// Root of the persistent dataset cache (the CLI's --data-dir /
  /// GA_DATA_DIR). Empty disables it: every run regenerates in RAM.
  /// When set, DatasetRegistry::Load serves content-addressed `.gab`
  /// snapshots (ga::store) and populates the cache on miss; cached
  /// graphs are byte-identical to generated ones, so outputs and
  /// simulated metrics do not depend on cache warmth.
  std::string data_dir;
  /// Deep tracing (the CLI's --trace, docs/OBSERVABILITY.md): arm the
  /// per-superstep span tree and exec-layer counters and retain each
  /// job's Granula archive on its JobReport. Purely observational —
  /// outputs, WorkLedger and simulated metrics are byte-identical with
  /// tracing on or off at any host_jobs value.
  bool trace_enabled = false;

  // --- resilience knobs (docs/ROBUSTNESS.md) ---------------------------

  /// Per-attempt wall-clock timeout in HOST seconds, enforced at
  /// superstep boundaries (the CLI's --timeout). 0 disables. Distinct
  /// from the SLA: the SLA judges the *simulated* makespan, the timeout
  /// protects the harness from a hung or stalled engine.
  double job_timeout_seconds = 0.0;
  /// Bounded retry for retryable failures (worker aborts, I/O errors,
  /// wall timeouts): a job is attempted up to 1 + max_retries times
  /// before being quarantined (the CLI's --retries).
  int max_retries = 0;
  /// Host-seconds slept before retry attempt k, scaled by 2^(k-1)
  /// (the CLI's --backoff).
  double retry_backoff_seconds = 0.05;
  /// Fault-injection plan for chaos runs, in faults::FaultPlan::Parse
  /// spec syntax (the CLI's --faults). Empty runs without injection.
  std::string fault_spec;
  /// Directory for superstep checkpoints (the CLI's --checkpoint-dir).
  /// Empty disables checkpointing. Each job checkpoints to its own file
  /// named from platform/dataset/algorithm/deployment.
  std::string checkpoint_dir;
  /// Checkpoint every N supersteps (the CLI's --checkpoint-cadence).
  int checkpoint_cadence = 1;
  /// Resume jobs from their checkpoint file when one exists (the CLI's
  /// --resume). Restarted jobs produce byte-identical outputs, ledgers
  /// and simulated metrics (DESIGN.md §13).
  bool resume = false;

  /// Memory budget handed to a simulated machine.
  std::int64_t ScaledMemoryBudget() const {
    return machine_memory_bytes / scale_divisor;
  }
  /// Projects a simulated duration to paper scale for reporting.
  double Project(double sim_seconds) const {
    return sim_seconds * static_cast<double>(scale_divisor);
  }

  /// Reads GA_SCALE_DIVISOR / GA_SEED / GA_JOBS / GA_DATA_DIR from the
  /// environment if set.
  static BenchmarkConfig FromEnv();
};

}  // namespace ga::harness

#endif  // GRAPHALYTICS_HARNESS_CONFIG_H_
