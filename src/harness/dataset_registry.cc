#include "harness/dataset_registry.h"

#include <algorithm>
#include <cmath>

#include "datagen/graph500.h"
#include "datagen/realproxy.h"
#include "datagen/socialnet.h"
#include "harness/scale.h"
#include "telemetry/registry.h"

namespace ga::harness {

namespace {

DatasetSpec MakeSpec(std::string id, std::string name,
                     std::int64_t vertices, std::int64_t edges,
                     DatasetSource source, Directedness directedness,
                     bool weighted, double clustering = 0.10) {
  DatasetSpec spec;
  spec.id = std::move(id);
  spec.name = std::move(name);
  spec.paper_vertices = vertices;
  spec.paper_edges = edges;
  spec.paper_scale = ComputeScale(vertices, edges);
  spec.scale_label = ScaleClassLabel(spec.paper_scale);
  spec.source = source;
  spec.directedness = directedness;
  spec.weighted = weighted;
  spec.target_clustering = clustering;
  return spec;
}

std::string_view GeneratorName(DatasetSource source) {
  switch (source) {
    case DatasetSource::kRealProxy: return "realproxy";
    case DatasetSource::kDatagen: return "datagen";
    case DatasetSource::kGraph500: return "graph500";
  }
  return "unknown";
}

// Folded into every snapshot-cache key. BUMP THIS whenever any generator
// in src/datagen/ changes the graph it produces for identical parameters
// (recalibration, distribution tweaks, seeding changes) — the cache can
// only detect staleness through the key, and serving a pre-change
// snapshot would silently diverge warm runs from cold ones.
constexpr int kGeneratorRevision = 1;

/// Process-global snapshot-cache counters (ga::telemetry). Cumulative
/// bytes-mapped is a counter, not a gauge: residency/eviction already
/// reports the live level, this tracks mmap traffic.
struct StoreCounters {
  telemetry::Counter* hits;
  telemetry::Counter* misses;
  telemetry::Counter* bytes_mapped;
};

const StoreCounters& StoreCacheCounters() {
  static const StoreCounters counters = [] {
    auto& registry = telemetry::Registry::Global();
    StoreCounters c;
    c.hits = registry.GetCounter(
        "ga_store_snapshot_hits_total", {},
        "Disk snapshot cache loads served by checksum-verified mmap.");
    c.misses = registry.GetCounter(
        "ga_store_snapshot_misses_total", {},
        "Disk snapshot cache loads that fell through to generation.");
    c.bytes_mapped = registry.GetCounter(
        "ga_store_snapshot_bytes_mapped_total", {},
        "Cumulative bytes of snapshot payload mapped on cache hits.");
    return c;
  }();
  return counters;
}

/// Resident payload of a graph's array views (the undirected in-view
/// aliases are not double-counted).
std::int64_t GraphArrayBytes(const Graph& graph) {
  std::int64_t bytes = 0;
  bytes += static_cast<std::int64_t>(graph.external_ids().size_bytes());
  bytes += static_cast<std::int64_t>(graph.edges().size_bytes());
  bytes += static_cast<std::int64_t>(graph.out_offsets().size_bytes());
  bytes += static_cast<std::int64_t>(graph.out_targets().size_bytes());
  bytes += static_cast<std::int64_t>(graph.out_weights().size_bytes());
  if (graph.is_directed()) {
    bytes += static_cast<std::int64_t>(graph.in_offsets().size_bytes());
    bytes += static_cast<std::int64_t>(graph.in_sources().size_bytes());
    bytes += static_cast<std::int64_t>(graph.in_weights().size_bytes());
  }
  return bytes;
}

}  // namespace

DatasetRegistry::DatasetRegistry(const BenchmarkConfig& config)
    : config_(config) {
  if (!config_.data_dir.empty()) {
    disk_cache_.emplace(config_.data_dir);
  }
  using enum DatasetSource;
  const auto kD = Directedness::kDirected;
  const auto kU = Directedness::kUndirected;
  // Table 3: real-world datasets (proxied).
  specs_.push_back(MakeSpec("R1", "wiki-talk", 2'390'000, 5'020'000,
                            kRealProxy, kD, false));
  specs_.push_back(
      MakeSpec("R2", "kgs", 830'000, 17'900'000, kRealProxy, kU, false));
  specs_.push_back(MakeSpec("R3", "cit-patents", 3'770'000, 16'500'000,
                            kRealProxy, kD, false));
  specs_.push_back(MakeSpec("R4", "dota-league", 610'000, 50'900'000,
                            kRealProxy, kU, true));
  specs_.push_back(MakeSpec("R5", "com-friendster", 65'600'000,
                            1'810'000'000, kRealProxy, kU, false));
  specs_.push_back(MakeSpec("R6", "twitter_mpi", 52'600'000, 1'970'000'000,
                            kRealProxy, kD, false));
  // Table 4: synthetic datasets. Datagen graphs carry weights (the paper
  // runs SSSP on D300).
  specs_.push_back(MakeSpec("D100", "datagen-100", 1'670'000, 102'000'000,
                            kDatagen, kU, true, 0.10));
  specs_.push_back(MakeSpec("D100cc005", "datagen-100-cc0.05", 1'670'000,
                            103'000'000, kDatagen, kU, true, 0.05));
  specs_.push_back(MakeSpec("D100cc015", "datagen-100-cc0.15", 1'670'000,
                            103'000'000, kDatagen, kU, true, 0.15));
  specs_.push_back(MakeSpec("D300", "datagen-300", 4'350'000, 304'000'000,
                            kDatagen, kU, true, 0.10));
  specs_.push_back(MakeSpec("D1000", "datagen-1000", 12'800'000,
                            1'010'000'000, kDatagen, kU, true, 0.10));
  for (int g = 22; g <= 26; ++g) {
    // Graph500 sizes from Table 4.
    static constexpr std::int64_t kVertices[] = {
        2'400'000, 4'610'000, 8'870'000, 17'100'000, 32'800'000};
    static constexpr std::int64_t kEdges[] = {
        64'200'000, 129'000'000, 260'000'000, 524'000'000, 1'050'000'000};
    specs_.push_back(MakeSpec("G" + std::to_string(g),
                              "graph500-" + std::to_string(g),
                              kVertices[g - 22], kEdges[g - 22], kGraph500,
                              kU, false));
  }
}

Result<DatasetSpec> DatasetRegistry::Find(const std::string& id) const {
  for (const DatasetSpec& spec : specs_) {
    if (spec.id == id) return spec;
  }
  return Status::NotFound("no dataset with id " + id);
}

store::CacheKey DatasetRegistry::CacheKeyFor(const DatasetSpec& spec) const {
  store::CacheKey key;
  key.generator = GeneratorName(spec.source);
  key.dataset_id = spec.id;
  // Everything generation derives from goes into the key — including the
  // catalogue sizes, so editing a spec (or a generator recalibration that
  // shifts them) can never be served a stale snapshot.
  key.params = "gen=" + std::to_string(kGeneratorRevision) +
               ";seed=" + std::to_string(config_.seed) +
               ";pv=" + std::to_string(spec.paper_vertices) +
               ";pe=" + std::to_string(spec.paper_edges) +
               ";dir=" + std::string(DirectednessName(spec.directedness)) +
               ";weighted=" + (spec.weighted ? "1" : "0") +
               ";cc=" + std::to_string(spec.target_clustering);
  key.scale_divisor = config_.scale_divisor;
  return key;
}

Result<std::string> DatasetRegistry::SnapshotPathFor(
    const std::string& id) const {
  if (!disk_cache_.has_value()) {
    return Status::FailedPrecondition(
        "no dataset cache configured (set --data-dir / GA_DATA_DIR)");
  }
  GA_ASSIGN_OR_RETURN(DatasetSpec spec, Find(id));
  return disk_cache_->PathFor(CacheKeyFor(spec));
}

Status DatasetRegistry::Purge(const std::string& id) {
  GA_ASSIGN_OR_RETURN(DatasetSpec spec, Find(id));
  Evict(id);
  if (disk_cache_.has_value()) {
    return disk_cache_->Remove(CacheKeyFor(spec));
  }
  return Status::Ok();
}

Result<const Graph*> DatasetRegistry::Load(const std::string& id) {
  auto cached = cache_.find(id);
  if (cached != cache_.end()) return cached->second.get();
  GA_ASSIGN_OR_RETURN(DatasetSpec spec, Find(id));

  if (disk_cache_.has_value()) {
    // A hit is a checksum-verified zero-copy mmap of the stored CSR — no
    // regeneration, no rebuild. A miss (or a corrupt/stale file) falls
    // through to generation, which then rewrites the snapshot.
    auto snapshot = disk_cache_->Load(CacheKeyFor(spec));
    if (snapshot.ok()) {
      auto owned = std::make_unique<Graph>(std::move(snapshot).value());
      const Graph* pointer = owned.get();
      StoreCacheCounters().hits->Add(1);
      StoreCacheCounters().bytes_mapped->Add(GraphArrayBytes(*pointer));
      cache_[id] = std::move(owned);
      return pointer;
    }
    StoreCacheCounters().misses->Add(1);
  }

  const std::int64_t divisor = config_.scale_divisor;
  Graph graph;
  switch (spec.source) {
    case DatasetSource::kRealProxy: {
      GA_ASSIGN_OR_RETURN(datagen::RealGraphSpec real,
                          datagen::FindRealGraphSpec(spec.id));
      GA_ASSIGN_OR_RETURN(graph,
                          datagen::GenerateRealProxy(
                              real, divisor, config_.seed, host_pool_));
      break;
    }
    case DatasetSource::kDatagen: {
      datagen::SocialNetConfig dg;
      dg.num_persons =
          std::max<std::int64_t>(spec.paper_vertices / divisor, 64);
      // Degree is scale-invariant: 2|E|/|V| from the paper sizes.
      dg.avg_degree = 2.0 * static_cast<double>(spec.paper_edges) /
                      static_cast<double>(spec.paper_vertices);
      dg.target_clustering = spec.target_clustering;
      dg.weighted = spec.weighted;
      dg.seed = config_.seed ^ (0x5D1F * (spec.paper_vertices % 9973));
      dg.build_pool = host_pool_;
      GA_ASSIGN_OR_RETURN(datagen::SocialNetwork network,
                          datagen::GenerateSocialNetwork(dg));
      graph = std::move(network.graph);
      break;
    }
    case DatasetSource::kGraph500: {
      datagen::Graph500Config g5;
      const std::int64_t target_vertices =
          std::max<std::int64_t>(spec.paper_vertices / divisor, 64);
      g5.num_edges =
          std::max<std::int64_t>(spec.paper_edges / divisor, 256);
      const int density_floor = static_cast<int>(std::ceil(
          0.5 * std::log2(8.0 * static_cast<double>(g5.num_edges) + 2.0)));
      g5.scale = std::max({6,
          static_cast<int>(std::ceil(
              std::log2(static_cast<double>(target_vertices)))),
          density_floor});
      g5.weighted = spec.weighted;
      g5.seed = config_.seed ^ (0xC0FFEE + spec.paper_vertices);
      g5.build_pool = host_pool_;
      GA_ASSIGN_OR_RETURN(graph, datagen::GenerateGraph500(g5));
      break;
    }
  }
  auto owned = std::make_unique<Graph>(std::move(graph));
  const Graph* pointer = owned.get();
  if (disk_cache_.has_value()) {
    // Best-effort: a full cache disk or read-only directory must not
    // fail the benchmark run — the next run simply regenerates.
    Status stored = disk_cache_->Store(*pointer, CacheKeyFor(spec));
    (void)stored;
  }
  cache_[id] = std::move(owned);
  return pointer;
}

Result<AlgorithmParams> DatasetRegistry::ParamsFor(const std::string& id) {
  GA_ASSIGN_OR_RETURN(const Graph* graph, Load(id));
  AlgorithmParams params;
  VertexIndex best = 0;
  EdgeIndex best_degree = -1;
  for (VertexIndex v = 0; v < graph->num_vertices(); ++v) {
    if (graph->OutDegree(v) > best_degree) {
      best_degree = graph->OutDegree(v);
      best = v;
    }
  }
  params.source_vertex = graph->ExternalId(best);
  params.pagerank_iterations = 20;
  params.cdlp_iterations = 10;
  return params;
}

}  // namespace ga::harness
