// The Graphalytics dataset catalogue (paper Tables 3 and 4) plus lazy,
// cached generation of the scaled-down instances.
//
// Every dataset keeps its *paper* vertex/edge counts and the derived scale
// label (so reports read like the paper); the generated instance is
// paper-size / scale_divisor. Real-world graphs are deterministic R-MAT
// proxies (DESIGN.md §1); Datagen graphs come from ga::datagen's social
// generator; Graph500 graphs from the Kronecker generator.
#ifndef GRAPHALYTICS_HARNESS_DATASET_REGISTRY_H_
#define GRAPHALYTICS_HARNESS_DATASET_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algo/params.h"
#include "core/graph.h"
#include "core/status.h"
#include "harness/config.h"

namespace ga::harness {

enum class DatasetSource { kRealProxy, kDatagen, kGraph500 };

struct DatasetSpec {
  std::string id;    // "R1".."R6", "D100", "D100cc005", ..., "G22".."G26"
  std::string name;  // Table 3/4 name
  std::int64_t paper_vertices;
  std::int64_t paper_edges;
  double paper_scale;       // Table 3/4 "Scale" column
  std::string scale_label;  // T-shirt class of the paper scale
  DatasetSource source;
  Directedness directedness;
  bool weighted;
  double target_clustering;  // Datagen only
};

class DatasetRegistry {
 public:
  explicit DatasetRegistry(const BenchmarkConfig& config);

  /// All datasets in catalogue order (R1..R6, D100.., D300, D1000,
  /// G22..G26).
  const std::vector<DatasetSpec>& specs() const { return specs_; }

  Result<DatasetSpec> Find(const std::string& id) const;

  /// Generates (once) and returns the scaled instance.
  Result<const Graph*> Load(const std::string& id);

  /// Host pool used to build generated graphs (not owned; may be null).
  /// Generation stays deterministic at any thread count.
  void set_host_pool(exec::ThreadPool* pool) { host_pool_ = pool; }

  /// Releases a cached instance (bench sweeps over many datasets).
  void Evict(const std::string& id) { cache_.erase(id); }

  /// Benchmark parameters for a dataset (the benchmark description fixes
  /// the BFS/SSSP root per graph): the root is the first vertex with
  /// maximum out-degree — deterministic and reachable-rich.
  Result<AlgorithmParams> ParamsFor(const std::string& id);

  const BenchmarkConfig& config() const { return config_; }

 private:
  BenchmarkConfig config_;
  exec::ThreadPool* host_pool_ = nullptr;
  std::vector<DatasetSpec> specs_;
  std::map<std::string, std::unique_ptr<Graph>> cache_;
};

}  // namespace ga::harness

#endif  // GRAPHALYTICS_HARNESS_DATASET_REGISTRY_H_
