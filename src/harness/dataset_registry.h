// The Graphalytics dataset catalogue (paper Tables 3 and 4) plus lazy,
// cached generation of the scaled-down instances.
//
// Every dataset keeps its *paper* vertex/edge counts and the derived scale
// label (so reports read like the paper); the generated instance is
// paper-size / scale_divisor. Real-world graphs are deterministic R-MAT
// proxies (DESIGN.md §1); Datagen graphs come from ga::datagen's social
// generator; Graph500 graphs from the Kronecker generator.
#ifndef GRAPHALYTICS_HARNESS_DATASET_REGISTRY_H_
#define GRAPHALYTICS_HARNESS_DATASET_REGISTRY_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algo/params.h"
#include "core/graph.h"
#include "core/status.h"
#include "harness/config.h"
#include "store/dataset_cache.h"

namespace ga::harness {

enum class DatasetSource { kRealProxy, kDatagen, kGraph500 };

struct DatasetSpec {
  std::string id;    // "R1".."R6", "D100", "D100cc005", ..., "G22".."G26"
  std::string name;  // Table 3/4 name
  std::int64_t paper_vertices;
  std::int64_t paper_edges;
  double paper_scale;       // Table 3/4 "Scale" column
  std::string scale_label;  // T-shirt class of the paper scale
  DatasetSource source;
  Directedness directedness;
  bool weighted;
  double target_clustering;  // Datagen only
};

class DatasetRegistry {
 public:
  explicit DatasetRegistry(const BenchmarkConfig& config);

  /// All datasets in catalogue order (R1..R6, D100.., D300, D1000,
  /// G22..G26).
  const std::vector<DatasetSpec>& specs() const { return specs_; }

  Result<DatasetSpec> Find(const std::string& id) const;

  /// Returns the scaled instance, resolving through two cache layers:
  /// the in-RAM instance map, then (when config.data_dir is set) the
  /// persistent snapshot cache — a zero-copy mmap load. Only on a full
  /// miss is the dataset generated, and the snapshot cache is populated
  /// for the next run. Cache-served graphs are byte-identical to
  /// generated ones (same CSR, ids, flags), so every downstream output
  /// and simulated metric is independent of cache warmth.
  Result<const Graph*> Load(const std::string& id);

  /// Host pool used to build generated graphs (not owned; may be null).
  /// Generation stays deterministic at any thread count.
  void set_host_pool(exec::ThreadPool* pool) { host_pool_ = pool; }

  /// Releases the in-RAM instance only (bench sweeps over many
  /// datasets); a persistent snapshot, if any, survives and the next
  /// Load serves it without regenerating.
  void Evict(const std::string& id) { cache_.erase(id); }

  /// Evict(id) plus removal of the dataset's on-disk snapshot, so the
  /// next Load regenerates from scratch. Ok when nothing is cached;
  /// NotFound for an unknown id.
  Status Purge(const std::string& id);

  /// The persistent snapshot cache (nullopt when config.data_dir is
  /// empty).
  const std::optional<store::DatasetCache>& disk_cache() const {
    return disk_cache_;
  }

  /// Where the dataset's snapshot lives in the disk cache
  /// (FailedPrecondition without a data_dir; NotFound for an unknown
  /// id). The file exists only once a Load has populated it — callers
  /// that need the write to have succeeded (e.g. `data gen`) check this
  /// path, since Load treats cache stores as best-effort.
  Result<std::string> SnapshotPathFor(const std::string& id) const;

  /// Benchmark parameters for a dataset (the benchmark description fixes
  /// the BFS/SSSP root per graph): the root is the first vertex with
  /// maximum out-degree — deterministic and reachable-rich.
  Result<AlgorithmParams> ParamsFor(const std::string& id);

  const BenchmarkConfig& config() const { return config_; }

 private:
  /// The snapshot-cache key for a dataset: generator id, dataset id,
  /// canonical generation parameters and the scale divisor (the format
  /// version is folded in by CacheKeyString).
  store::CacheKey CacheKeyFor(const DatasetSpec& spec) const;

  BenchmarkConfig config_;
  exec::ThreadPool* host_pool_ = nullptr;
  std::vector<DatasetSpec> specs_;
  std::map<std::string, std::unique_ptr<Graph>> cache_;
  std::optional<store::DatasetCache> disk_cache_;
};

}  // namespace ga::harness

#endif  // GRAPHALYTICS_HARNESS_DATASET_REGISTRY_H_
