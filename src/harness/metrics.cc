#include "harness/metrics.h"

#include <cmath>

namespace ga::harness {

double Eps(std::int64_t num_edges, double tproc_seconds) {
  if (tproc_seconds <= 0) return 0.0;
  return static_cast<double>(num_edges) / tproc_seconds;
}

double Evps(std::int64_t num_vertices, std::int64_t num_edges,
            double tproc_seconds) {
  if (tproc_seconds <= 0) return 0.0;
  return static_cast<double>(num_vertices + num_edges) / tproc_seconds;
}

double Speedup(double baseline_tproc, double scaled_tproc) {
  if (scaled_tproc <= 0) return 0.0;
  return baseline_tproc / scaled_tproc;
}

double Mean(std::span<const double> samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (double x : samples) sum += x;
  return sum / static_cast<double>(samples.size());
}

double StandardDeviation(std::span<const double> samples) {
  if (samples.size() < 2) return 0.0;
  const double mean = Mean(samples);
  double sq = 0.0;
  for (double x : samples) sq += (x - mean) * (x - mean);
  return std::sqrt(sq / static_cast<double>(samples.size() - 1));
}

double CoefficientOfVariation(std::span<const double> samples) {
  const double mean = Mean(samples);
  if (mean == 0.0) return 0.0;
  return StandardDeviation(samples) / mean;
}

}  // namespace ga::harness
