// Benchmark metrics (paper Section 2.3; see docs/METRICS.md): user-level
// throughput (EPS, EVPS), speedup, and performance variability (CV).
//
// The run-time components they summarise come from the platforms'
// Granula archives via the runner: T_proc is the ProcessGraph phase,
// makespan the full job including startup and upload (§2.3's "makespan
// of up to 1 hour" SLA is enforced on the latter).
//
// Consumers: BenchmarkRunner derives every JobReport's eps/evps/tproc_cv
// here; the experiment suite (src/experiments/) reports EPS/EVPS in its
// baseline section, Speedup in the vertical/horizontal scalability
// sections (Table 9 / Figure 8), and CoefficientOfVariation in the
// variability section (Table 11).
#ifndef GRAPHALYTICS_HARNESS_METRICS_H_
#define GRAPHALYTICS_HARNESS_METRICS_H_

#include <cstdint>
#include <span>

namespace ga::harness {

/// Edges per second: |E| / T_proc (also used by Graph500).
double Eps(std::int64_t num_edges, double tproc_seconds);

/// Edges and vertices per second: (|V| + |E|) / T_proc — "closely related
/// to the scale of a graph".
double Evps(std::int64_t num_vertices, std::int64_t num_edges,
            double tproc_seconds);

/// Ratio between baseline and scaled processing time (>1 = faster).
double Speedup(double baseline_tproc, double scaled_tproc);

double Mean(std::span<const double> samples);
double StandardDeviation(std::span<const double> samples);

/// Coefficient of variation: stddev / mean ("independent of the scale of
/// the results").
double CoefficientOfVariation(std::span<const double> samples);

}  // namespace ga::harness

#endif  // GRAPHALYTICS_HARNESS_METRICS_H_
