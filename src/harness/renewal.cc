#include "harness/renewal.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace ga::harness {

Result<RenewalResult> EvaluateClassL(BenchmarkRunner& runner) {
  std::vector<std::string> platform_ids = platform::AllPlatformIds();
  std::vector<std::string> dataset_ids;
  for (const DatasetSpec& spec : runner.registry().specs()) {
    dataset_ids.push_back(spec.id);
  }
  return EvaluateClassL(runner, platform_ids, dataset_ids);
}

Result<RenewalResult> EvaluateClassL(
    BenchmarkRunner& runner, std::span<const std::string> platform_ids,
    std::span<const std::string> dataset_ids) {
  RenewalResult result;

  // Per-class dataset pass/fail bookkeeping, keyed by the class's lower
  // scale bound so classes order correctly (labels alone do not sort).
  std::map<double, std::pair<std::string, bool>> class_passes;

  for (const std::string& dataset_id : dataset_ids) {
    GA_ASSIGN_OR_RETURN(DatasetSpec spec, runner.registry().Find(dataset_id));
    DatasetEvidence evidence;
    evidence.dataset_id = spec.id;
    evidence.scale_label = spec.scale_label;
    evidence.paper_scale = spec.paper_scale;

    for (const std::string& platform_id : platform_ids) {
      JobSpec job;
      job.platform_id = platform_id;
      job.dataset_id = spec.id;
      job.algorithm = Algorithm::kBfs;
      job.validate = false;
      GA_ASSIGN_OR_RETURN(JobReport report, runner.Run(job));
      if (!report.completed()) continue;
      if (evidence.best_platform.empty() ||
          report.tproc_seconds < evidence.best_tproc_seconds) {
        evidence.best_platform = platform_id;
        evidence.best_tproc_seconds = report.tproc_seconds;
      }
    }
    // Free the instance before moving to the next (XL graphs are large).
    runner.registry().Evict(spec.id);

    const double class_floor = std::floor(spec.paper_scale * 2.0) / 2.0;
    auto [it, inserted] = class_passes.emplace(
        class_floor, std::make_pair(spec.scale_label, true));
    if (evidence.best_platform.empty()) it->second.second = false;
    result.evidence.push_back(std::move(evidence));
  }

  for (const auto& [floor, label_passes] : class_passes) {
    const auto& [label, passes] = label_passes;
    (passes ? result.passing_classes : result.failing_classes)
        .push_back(label);
  }
  // The recommended L is the largest class with no unprocessable graph
  // ("the largest class such that a platform can complete BFS ... on all
  // graphs in that class").
  for (auto it = class_passes.rbegin(); it != class_passes.rend(); ++it) {
    if (it->second.second) {
      result.recommended_class_l = it->second.first;
      break;
    }
  }
  return result;
}

}  // namespace ga::harness
