#include "harness/renewal.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace ga::harness {

Result<RenewalResult> EvaluateClassL(BenchmarkRunner& runner) {
  RenewalResult result;

  // Per-class dataset pass/fail bookkeeping, keyed by the class's lower
  // scale bound so classes order correctly (labels alone do not sort).
  std::map<double, std::pair<std::string, bool>> class_passes;

  for (const DatasetSpec& spec : runner.registry().specs()) {
    DatasetEvidence evidence;
    evidence.dataset_id = spec.id;
    evidence.scale_label = spec.scale_label;
    evidence.paper_scale = spec.paper_scale;

    for (const std::string& platform_id : platform::AllPlatformIds()) {
      JobSpec job;
      job.platform_id = platform_id;
      job.dataset_id = spec.id;
      job.algorithm = Algorithm::kBfs;
      job.validate = false;
      GA_ASSIGN_OR_RETURN(JobReport report, runner.Run(job));
      if (!report.completed()) continue;
      if (evidence.best_platform.empty() ||
          report.tproc_seconds < evidence.best_tproc_seconds) {
        evidence.best_platform = platform_id;
        evidence.best_tproc_seconds = report.tproc_seconds;
      }
    }
    // Free the instance before moving to the next (XL graphs are large).
    runner.registry().Evict(spec.id);

    const double class_floor = std::floor(spec.paper_scale * 2.0) / 2.0;
    auto [it, inserted] = class_passes.emplace(
        class_floor, std::make_pair(spec.scale_label, true));
    if (evidence.best_platform.empty()) it->second.second = false;
    result.evidence.push_back(std::move(evidence));
  }

  // The recommended L is the largest class with no unprocessable graph.
  for (const auto& [floor, label_passes] : class_passes) {
    const auto& [label, passes] = label_passes;
    if (passes) {
      result.passing_classes.push_back(label);
      result.recommended_class_l = label;
    } else {
      result.failing_classes.push_back(label);
    }
  }
  // "Largest class such that ALL graphs complete": walk down from the
  // top until an uninterrupted run of passing classes begins.
  for (auto it = class_passes.rbegin(); it != class_passes.rend(); ++it) {
    if (it->second.second) {
      result.recommended_class_l = it->second.first;
      break;
    }
  }
  return result;
}

}  // namespace ga::harness
