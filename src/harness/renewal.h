// Renewal process (paper Section 2.4; see docs/METRICS.md).
//
// Every Graphalytics version re-evaluates the definition of the reference
// class L: "the largest class of graphs such that a state-of-the-art
// platform can complete the BFS algorithm within one hour on all graphs
// in [that] class using a single common-off-the-shelf machine. The
// selection of platforms ... is limited to platforms implementing
// Graphalytics that are available to the Graphalytics team."
//
// EvaluateClassL runs exactly that procedure: for every dataset, BFS is
// attempted on one machine by every selected platform; a dataset
// "passes" if at least one platform meets the SLA; a class passes if all
// of its datasets pass; the recommended class L is the largest passing
// class. The scale classes come from scale.h (§2.2.4); the SLA check is
// the runner's makespan gate (§2.3).
//
// Consumers: bench/renewal_class_l.cc reproduces the paper's own
// calibration over the full catalogue; the experiment suite
// (src/experiments/, ExperimentKind::kRenewal) runs the subset overload
// over the plan's platform/dataset slice and folds the verdict into its
// report and experiments.json.
#ifndef GRAPHALYTICS_HARNESS_RENEWAL_H_
#define GRAPHALYTICS_HARNESS_RENEWAL_H_

#include <span>
#include <string>
#include <vector>

#include "core/status.h"
#include "harness/runner.h"

namespace ga::harness {

struct DatasetEvidence {
  std::string dataset_id;
  std::string scale_label;
  double paper_scale = 0.0;
  /// Fastest platform that completed BFS within the SLA ("" if none).
  std::string best_platform;
  double best_tproc_seconds = 0.0;
};

struct RenewalResult {
  /// Largest class whose datasets are all processable (the new class L).
  std::string recommended_class_l;
  /// Classes (by label) that fully pass / have at least one failure.
  std::vector<std::string> passing_classes;
  std::vector<std::string> failing_classes;
  std::vector<DatasetEvidence> evidence;
};

/// Runs the class-L re-evaluation over all datasets in the runner's
/// registry with every registered platform. Skips validation for speed
/// (correctness is a separate concern from the renewal's capacity
/// question).
Result<RenewalResult> EvaluateClassL(BenchmarkRunner& runner);

/// Same procedure restricted to a platform and dataset slice — the
/// experiment suite's renewal runs over its plan's selection. Evidence
/// is reported in the given dataset order; unknown ids are kNotFound.
Result<RenewalResult> EvaluateClassL(BenchmarkRunner& runner,
                                     std::span<const std::string> platform_ids,
                                     std::span<const std::string> dataset_ids);

}  // namespace ga::harness

#endif  // GRAPHALYTICS_HARNESS_RENEWAL_H_
