// Renewal process (paper Section 2.4).
//
// Every Graphalytics version re-evaluates the definition of the reference
// class L: "the largest class of graphs such that a state-of-the-art
// platform can complete the BFS algorithm within one hour on all graphs
// in [that] class using a single common-off-the-shelf machine. The
// selection of platforms ... is limited to platforms implementing
// Graphalytics that are available to the Graphalytics team."
//
// EvaluateClassL runs exactly that procedure over the registry's
// catalogue: for every dataset, BFS is attempted on one machine by every
// registered platform; a dataset "passes" if at least one platform meets
// the SLA; a class passes if all of its datasets pass; the recommended
// class L is the largest passing class.
#ifndef GRAPHALYTICS_HARNESS_RENEWAL_H_
#define GRAPHALYTICS_HARNESS_RENEWAL_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "harness/runner.h"

namespace ga::harness {

struct DatasetEvidence {
  std::string dataset_id;
  std::string scale_label;
  double paper_scale = 0.0;
  /// Fastest platform that completed BFS within the SLA ("" if none).
  std::string best_platform;
  double best_tproc_seconds = 0.0;
};

struct RenewalResult {
  /// Largest class whose datasets are all processable (the new class L).
  std::string recommended_class_l;
  /// Classes (by label) that fully pass / have at least one failure.
  std::vector<std::string> passing_classes;
  std::vector<std::string> failing_classes;
  std::vector<DatasetEvidence> evidence;
};

/// Runs the class-L re-evaluation over all datasets in the runner's
/// registry. Skips validation for speed (correctness is a separate
/// concern from the renewal's capacity question).
Result<RenewalResult> EvaluateClassL(BenchmarkRunner& runner);

}  // namespace ga::harness

#endif  // GRAPHALYTICS_HARNESS_RENEWAL_H_
