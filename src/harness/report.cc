#include "harness/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ga::harness {

std::string TextTable::Render() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::string out;
  out += "== " + title_ + " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      out += cell;
      out.append(widths[c] - cell.size() + 2, ' ');
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t width : widths) total += width + 2;
  out.append(total - 2, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string TextTable::RenderCsv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char c : cell) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += ',';
    out += escape(headers_[c]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += escape(row[c]);
    }
    out += '\n';
  }
  return out;
}

std::string FormatSeconds(double seconds) {
  char buffer[64];
  if (seconds < 0) return "n/a";
  if (seconds < 1e-3) {
    std::snprintf(buffer, sizeof(buffer), "%.0fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buffer, sizeof(buffer), "%.0fms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2fs", seconds);
  } else if (seconds < 7200.0) {
    std::snprintf(buffer, sizeof(buffer), "%.0fm %.0fs", std::floor(seconds / 60.0),
                  std::fmod(seconds, 60.0));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.1fh", seconds / 3600.0);
  }
  return buffer;
}

std::string FormatThroughput(double per_second) {
  char buffer[64];
  if (per_second >= 1e9) {
    std::snprintf(buffer, sizeof(buffer), "%.2fG", per_second / 1e9);
  } else if (per_second >= 1e6) {
    std::snprintf(buffer, sizeof(buffer), "%.2fM", per_second / 1e6);
  } else if (per_second >= 1e3) {
    std::snprintf(buffer, sizeof(buffer), "%.1fk", per_second / 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.1f", per_second);
  }
  return buffer;
}

std::string FormatCount(std::int64_t value) {
  char buffer[64];
  const double v = static_cast<double>(value);
  if (value >= 1'000'000'000) {
    std::snprintf(buffer, sizeof(buffer), "%.2fB", v / 1e9);
  } else if (value >= 1'000'000) {
    std::snprintf(buffer, sizeof(buffer), "%.2fM", v / 1e6);
  } else if (value >= 1'000) {
    std::snprintf(buffer, sizeof(buffer), "%.1fk", v / 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
  }
  return buffer;
}

}  // namespace ga::harness
