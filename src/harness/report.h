// Plain-text table/CSV rendering for benchmark reports — the textual
// equivalent of the paper's figures and tables.
#ifndef GRAPHALYTICS_HARNESS_REPORT_H_
#define GRAPHALYTICS_HARNESS_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ga::harness {

/// Fixed-width text table with a title, column headers and string cells.
class TextTable {
 public:
  TextTable(std::string title, std::vector<std::string> headers)
      : title_(std::move(title)), headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  std::string Render() const;
  std::string RenderCsv() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Human formatting helpers used across the bench binaries.
std::string FormatSeconds(double seconds);       // "1.23s", "45ms", "2m 5s"
std::string FormatThroughput(double per_second); // "1.2M", "350k"
std::string FormatCount(std::int64_t value);     // "1.81B", "5.02M"

}  // namespace ga::harness

#endif  // GRAPHALYTICS_HARNESS_REPORT_H_
