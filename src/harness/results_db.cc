#include "harness/results_db.h"

#include <fcntl.h>
#include <unistd.h>

#include <fstream>
#include <sstream>

#include "core/json_reader.h"
#include "core/json_writer.h"

namespace ga::harness {

namespace {

void WriteRecordFields(JsonWriter& json, const JobReport& report) {
  json.Field("platform", report.spec.platform_id);
  json.Field("dataset", report.spec.dataset_id);
  json.Field("algorithm", AlgorithmName(report.spec.algorithm));
  json.Field("machines", report.spec.num_machines);
  json.Field("threads", report.spec.threads_per_machine);
  json.Field("outcome", JobOutcomeName(report.outcome));
  if (report.completed()) {
    json.Field("tproc_seconds", report.tproc_seconds);
    json.Field("makespan_seconds", report.makespan_seconds);
    json.Field("upload_seconds", report.upload_seconds);
    json.Field("eps", report.eps);
    json.Field("evps", report.evps);
    json.Field("supersteps", report.supersteps);
    json.Field("validated", report.output_validated);
    if (report.tproc_samples.size() > 1) {
      json.Field("tproc_cv", report.tproc_cv);
    }
  } else {
    json.Field("failure", report.failure);
    json.Field("failure_cause", report.failure_cause.empty()
                                    ? std::string(FailureCauseName(
                                          report.failure_code))
                                    : report.failure_cause);
  }
  if (report.attempts > 1) json.Field("attempts", report.attempts);
}

}  // namespace

std::string RecordJson(const JobReport& report) {
  JsonWriter json;
  json.BeginObject();
  WriteRecordFields(json, report);
  json.EndObject();
  return json.str();
}

Status AppendRecord(const std::string& path, const JobReport& report) {
  const std::string line = RecordJson(report) + "\n";
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return Status::IoError("cannot open " + path + " for append");
  // One write() for the whole line: O_APPEND makes the offset update and
  // the write atomic against other appenders, so lines never tear.
  std::size_t written = 0;
  Status status = Status::Ok();
  while (written < line.size()) {
    const ssize_t n =
        ::write(fd, line.data() + written, line.size() - written);
    if (n < 0) {
      status = Status::IoError("append failed for " + path);
      break;
    }
    written += static_cast<std::size_t>(n);
    if (written < line.size()) {
      // A short write on a regular file means the device is full or the
      // record is pathological; a second write() could tear the line, so
      // give up rather than interleave with other appenders.
      status = Status::IoError("short append for " + path +
                               " (record may be torn)");
      break;
    }
  }
  ::close(fd);
  return status;
}

Result<std::vector<std::string>> ReadJsonlRecords(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot read " + path);
  std::vector<std::string> records;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    auto parsed = json::Parse(line);
    if (!parsed.ok() || !parsed->is_object()) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_number) +
          ": not a JSON object (torn or corrupt record)");
    }
    records.push_back(line);
  }
  return records;
}

Result<std::string> MergeJsonl(const std::string& jsonl_path,
                               const BenchmarkConfig& config) {
  GA_ASSIGN_OR_RETURN(std::vector<std::string> records,
                      ReadJsonlRecords(jsonl_path));
  JsonWriter json;
  json.BeginObject();
  json.Field("format", "graphalytics-cpp results v1");
  json.Key("configuration").BeginObject();
  json.Field("scale_divisor", config.scale_divisor);
  json.Field("seed", static_cast<std::uint64_t>(config.seed));
  json.Field("sla_projected_seconds", config.sla_projected_seconds);
  json.EndObject();
  json.EndObject();
  // The record lines are already rendered JSON; splice them into the
  // results array verbatim rather than re-encoding through the writer.
  std::string head = json.str();
  const std::string::size_type close = head.rfind('}');
  std::ostringstream out;
  out << head.substr(0, close) << ",\"results\":[";
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (i != 0) out << ",";
    out << records[i];
  }
  out << "]}";
  return out.str();
}

std::vector<const JobReport*> ResultsDatabase::Completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const JobReport*> completed;
  for (const JobReport& report : reports_) {
    if (report.completed()) completed.push_back(&report);
  }
  return completed;
}

const JobReport* ResultsDatabase::BestFor(const std::string& dataset_id,
                                          Algorithm algorithm) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const JobReport* best = nullptr;
  for (const JobReport& report : reports_) {
    if (!report.completed() || report.spec.dataset_id != dataset_id ||
        report.spec.algorithm != algorithm) {
      continue;
    }
    if (best == nullptr || report.tproc_seconds < best->tproc_seconds) {
      best = &report;
    }
  }
  return best;
}

std::string ResultsDatabase::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonWriter json;
  json.BeginObject();
  json.Field("format", "graphalytics-cpp results v1");
  json.Key("configuration").BeginObject();
  json.Field("scale_divisor", config_.scale_divisor);
  json.Field("seed", static_cast<std::uint64_t>(config_.seed));
  json.Field("sla_projected_seconds", config_.sla_projected_seconds);
  json.EndObject();
  json.Key("results").BeginArray();
  for (const JobReport& report : reports_) {
    json.BeginObject();
    WriteRecordFields(json, report);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

Status ResultsDatabase::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot write " + path);
  out << ToJson();
  return out ? Status::Ok() : Status::IoError("write failed for " + path);
}

}  // namespace ga::harness
