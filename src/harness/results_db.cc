#include "harness/results_db.h"

#include <fstream>

#include "core/json_writer.h"

namespace ga::harness {

std::vector<const JobReport*> ResultsDatabase::Completed() const {
  std::vector<const JobReport*> completed;
  for (const JobReport& report : reports_) {
    if (report.completed()) completed.push_back(&report);
  }
  return completed;
}

const JobReport* ResultsDatabase::BestFor(const std::string& dataset_id,
                                          Algorithm algorithm) const {
  const JobReport* best = nullptr;
  for (const JobReport& report : reports_) {
    if (!report.completed() || report.spec.dataset_id != dataset_id ||
        report.spec.algorithm != algorithm) {
      continue;
    }
    if (best == nullptr || report.tproc_seconds < best->tproc_seconds) {
      best = &report;
    }
  }
  return best;
}

std::string ResultsDatabase::ToJson() const {
  JsonWriter json;
  json.BeginObject();
  json.Field("format", "graphalytics-cpp results v1");
  json.Key("configuration").BeginObject();
  json.Field("scale_divisor", config_.scale_divisor);
  json.Field("seed", static_cast<std::uint64_t>(config_.seed));
  json.Field("sla_projected_seconds", config_.sla_projected_seconds);
  json.EndObject();
  json.Key("results").BeginArray();
  for (const JobReport& report : reports_) {
    json.BeginObject();
    json.Field("platform", report.spec.platform_id);
    json.Field("dataset", report.spec.dataset_id);
    json.Field("algorithm", AlgorithmName(report.spec.algorithm));
    json.Field("machines", report.spec.num_machines);
    json.Field("threads", report.spec.threads_per_machine);
    json.Field("outcome", JobOutcomeName(report.outcome));
    if (report.completed()) {
      json.Field("tproc_seconds", report.tproc_seconds);
      json.Field("makespan_seconds", report.makespan_seconds);
      json.Field("upload_seconds", report.upload_seconds);
      json.Field("eps", report.eps);
      json.Field("evps", report.evps);
      json.Field("supersteps", report.supersteps);
      json.Field("validated", report.output_validated);
      if (report.tproc_samples.size() > 1) {
        json.Field("tproc_cv", report.tproc_cv);
      }
    } else {
      json.Field("failure", report.failure);
      json.Field("failure_cause", report.failure_cause.empty()
                                      ? std::string(FailureCauseName(
                                            report.failure_code))
                                      : report.failure_cause);
    }
    if (report.attempts > 1) json.Field("attempts", report.attempts);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

Status ResultsDatabase::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot write " + path);
  out << ToJson();
  return out ? Status::Ok() : Status::IoError("write failed for " + path);
}

}  // namespace ga::harness
