// Results database (paper Figure 1, components 9 and 11): accumulates
// validated job reports and renders them as a machine-readable JSON
// archive — the repository from which "validated results are stored in an
// online repository to track benchmark results across platforms".
#ifndef GRAPHALYTICS_HARNESS_RESULTS_DB_H_
#define GRAPHALYTICS_HARNESS_RESULTS_DB_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "harness/config.h"
#include "harness/runner.h"

namespace ga::harness {

class ResultsDatabase {
 public:
  explicit ResultsDatabase(const BenchmarkConfig& config)
      : config_(config) {}

  void Record(const JobReport& report) { reports_.push_back(report); }

  std::size_t size() const { return reports_.size(); }
  const std::vector<JobReport>& reports() const { return reports_; }

  /// Completed jobs only.
  std::vector<const JobReport*> Completed() const;

  /// Best (lowest T_proc) completed report for a workload, or nullptr.
  const JobReport* BestFor(const std::string& dataset_id,
                           Algorithm algorithm) const;

  /// The full database as a JSON document (configuration + every record).
  std::string ToJson() const;

  /// Writes ToJson() to a file.
  Status WriteJsonFile(const std::string& path) const;

 private:
  BenchmarkConfig config_;
  std::vector<JobReport> reports_;
};

}  // namespace ga::harness

#endif  // GRAPHALYTICS_HARNESS_RESULTS_DB_H_
