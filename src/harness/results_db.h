// Results database (paper Figure 1, components 9 and 11): accumulates
// validated job reports and renders them as a machine-readable JSON
// archive — the repository from which "validated results are stored in an
// online repository to track benchmark results across platforms".
//
// Two write paths, both safe for concurrent writers:
//   - Record(): in-process accumulation behind a mutex (the serve daemon
//     records from several executor threads at once).
//   - AppendRecord(): cross-process durable log — one JSON object per
//     line, written with a single O_APPEND write() so concurrent daemons
//     (or a daemon plus a batch run) never interleave bytes within a
//     line. MergeJsonl() folds such a log back into the v1 document.
#ifndef GRAPHALYTICS_HARNESS_RESULTS_DB_H_
#define GRAPHALYTICS_HARNESS_RESULTS_DB_H_

#include <mutex>
#include <string>
#include <vector>

#include "core/status.h"
#include "harness/config.h"
#include "harness/runner.h"

namespace ga::harness {

/// One report as a single-line JSON object — the body shared by
/// ToJson()'s results array and the append-only .jsonl log.
std::string RecordJson(const JobReport& report);

/// Appends `report` as one line to a .jsonl log. The line is staged in
/// full and handed to the kernel as ONE write() on an O_APPEND
/// descriptor, which POSIX makes atomic with respect to other appenders:
/// concurrent writers (threads or processes) may interleave lines but
/// never bytes within a line. Creates the file if absent.
Status AppendRecord(const std::string& path, const JobReport& report);

/// Reads an AppendRecord() log and returns its parsed per-line objects
/// as verbatim JSON strings, skipping blank lines. Any line that is not
/// a valid JSON object fails the whole merge with kInvalidArgument
/// naming the line number — a torn line means a writer violated the
/// single-write contract and the log cannot be trusted.
Result<std::vector<std::string>> ReadJsonlRecords(const std::string& path);

/// Folds a .jsonl log into one results-v1 document (same shape as
/// ResultsDatabase::ToJson) so per-request logs from concurrent serve
/// workers merge into the artifact the rest of the tooling reads.
Result<std::string> MergeJsonl(const std::string& jsonl_path,
                               const BenchmarkConfig& config);

class ResultsDatabase {
 public:
  explicit ResultsDatabase(const BenchmarkConfig& config)
      : config_(config) {}

  /// Thread-safe: serve executors record concurrently.
  void Record(const JobReport& report) {
    std::lock_guard<std::mutex> lock(mutex_);
    reports_.push_back(report);
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return reports_.size();
  }

  /// Readers below take the lock once and copy/scan; they are safe to
  /// call while writers are active, and the returned pointers stay valid
  /// only while no further Record() happens (reports_ may reallocate) —
  /// callers drain writers first, as the CLI and daemon shutdown do.
  const std::vector<JobReport>& reports() const { return reports_; }

  /// Completed jobs only.
  std::vector<const JobReport*> Completed() const;

  /// Best (lowest T_proc) completed report for a workload, or nullptr.
  const JobReport* BestFor(const std::string& dataset_id,
                           Algorithm algorithm) const;

  /// The full database as a JSON document (configuration + every record).
  std::string ToJson() const;

  /// Writes ToJson() to a file.
  Status WriteJsonFile(const std::string& path) const;

 private:
  BenchmarkConfig config_;
  mutable std::mutex mutex_;
  std::vector<JobReport> reports_;
};

}  // namespace ga::harness

#endif  // GRAPHALYTICS_HARNESS_RESULTS_DB_H_
