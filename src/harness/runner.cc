#include "harness/runner.h"

#include <sys/stat.h>

#include <chrono>
#include <cmath>
#include <thread>

#include "algo/reference.h"
#include "core/rng.h"
#include "harness/metrics.h"
#include "telemetry/registry.h"

namespace ga::harness {

namespace {

// Deterministic standard-normal sample for the jitter stream
// (Box-Muller over SplitMix64).
double NormalSample(SplitMix64* rng) {
  const double u1 = std::max(rng->NextDouble(), 1e-12);
  const double u2 = rng->NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

/// Process-global retry/quarantine counters (ga::telemetry): every
/// BenchmarkRunner in the process folds into the same fleet view.
telemetry::Counter* RetryCounter() {
  static telemetry::Counter* counter = telemetry::Registry::Global().GetCounter(
      "ga_harness_retries_total", {},
      "Job attempts beyond the first (retry policy re-runs).");
  return counter;
}

telemetry::Counter* QuarantineCounter() {
  static telemetry::Counter* counter = telemetry::Registry::Global().GetCounter(
      "ga_harness_quarantined_total", {},
      "Jobs whose final verdict after the retry policy was not completed.");
  return counter;
}

}  // namespace

std::string_view JobOutcomeName(JobOutcome outcome) {
  switch (outcome) {
    case JobOutcome::kCompleted:
      return "completed";
    case JobOutcome::kCrashed:
      return "crashed";
    case JobOutcome::kTimedOut:
      return "timed-out";
    case JobOutcome::kUnsupported:
      return "unsupported";
    case JobOutcome::kFailed:
      return "failed";
  }
  return "unknown";
}

std::string_view FailureCauseName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "none";
    case StatusCode::kInvalidArgument:
      return "invalid-input";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kOutOfMemory:
      return "out-of-memory";
    case StatusCode::kDeadlineExceeded:
      return "wall-timeout";
    case StatusCode::kUnsupported:
      return "unsupported";
    case StatusCode::kIoError:
      return "io-error";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kAborted:
      return "worker-abort";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    case StatusCode::kCancelled:
      return "cancelled";
  }
  return "error";
}

bool IsRetryableFailure(StatusCode code) {
  switch (code) {
    case StatusCode::kAborted:           // worker crash / machine crash
    case StatusCode::kIoError:           // torn snapshot / checkpoint read
    case StatusCode::kDeadlineExceeded:  // wall-clock stall
    case StatusCode::kResourceExhausted: // shed under load; back off, retry
      return true;
    default:
      return false;
  }
}

BenchmarkRunner::BenchmarkRunner(const BenchmarkConfig& config)
    : config_(config),
      host_pool_(std::make_unique<exec::ThreadPool>(config.host_jobs)),
      registry_(config) {
  registry_.set_host_pool(host_pool_.get());
}

Result<const AlgorithmOutput*> BenchmarkRunner::ReferenceFor(
    const std::string& dataset_id, Algorithm algorithm) {
  const std::string key =
      dataset_id + "/" + std::string(AlgorithmName(algorithm));
  auto cached = reference_cache_.find(key);
  if (cached != reference_cache_.end()) return cached->second.get();
  GA_ASSIGN_OR_RETURN(const Graph* graph, registry_.Load(dataset_id));
  GA_ASSIGN_OR_RETURN(AlgorithmParams params,
                      registry_.ParamsFor(dataset_id));
  GA_ASSIGN_OR_RETURN(
      AlgorithmOutput output,
      reference::Run(*graph, algorithm, params, host_pool_.get()));
  auto owned = std::make_unique<AlgorithmOutput>(std::move(output));
  const AlgorithmOutput* pointer = owned.get();
  reference_cache_[key] = std::move(owned);
  return pointer;
}

Result<JobReport> BenchmarkRunner::Run(const JobSpec& spec,
                                       faults::FaultInjector* injector) {
  GA_ASSIGN_OR_RETURN(auto platform,
                      platform::CreatePlatform(spec.platform_id));
  GA_ASSIGN_OR_RETURN(const Graph* graph, registry_.Load(spec.dataset_id));
  GA_ASSIGN_OR_RETURN(AlgorithmParams params,
                      registry_.ParamsFor(spec.dataset_id));

  platform::ExecutionEnvironment env;
  env.num_machines = spec.num_machines;
  env.threads_per_machine = spec.threads_per_machine;
  env.memory_budget_bytes = config_.ScaledMemoryBudget();
  env.prefer_distributed_backend = spec.prefer_distributed_backend;
  env.overhead_scale = 1.0 / static_cast<double>(config_.scale_divisor);
  env.host_pool = host_pool_.get();
  env.trace_enabled = config_.trace_enabled;
  env.wall_timeout_seconds = spec.wall_timeout_seconds >= 0.0
                                 ? spec.wall_timeout_seconds
                                 : config_.job_timeout_seconds;
  env.cancel = spec.cancel;
  if (!config_.checkpoint_dir.empty()) {
    // A missing directory must not quarantine every cell with an io
    // error; the runner owns the directory the same way it owns the
    // dataset cache. EEXIST is fine, anything else surfaces on the
    // first checkpoint write.
    ::mkdir(config_.checkpoint_dir.c_str(), 0755);
    // One file per matrix cell: the deployment is part of the name (and
    // of the checkpoint's job key), so suite cells never collide.
    env.checkpoint.path =
        config_.checkpoint_dir + "/" + spec.platform_id + "." +
        spec.dataset_id + "." + std::string(AlgorithmName(spec.algorithm)) +
        ".m" + std::to_string(spec.num_machines) + ".t" +
        std::to_string(spec.threads_per_machine) + ".ckpt";
    env.checkpoint.cadence = std::max(config_.checkpoint_cadence, 1);
    env.checkpoint.resume = config_.resume;
  }

  JobReport report;
  report.spec = spec;

  // The injector scope covers the platform execution ONLY: loading,
  // validation and the reference implementation run clean.
  auto run = [&] {
    faults::ScopedGlobalInjector scoped(injector);
    return platform->RunJob(*graph, spec.algorithm, params, env);
  }();
  if (!run.ok()) {
    report.failure = run.status().ToString();
    report.failure_code = run.status().code();
    report.failure_cause = std::string(FailureCauseName(report.failure_code));
    switch (run.status().code()) {
      case StatusCode::kOutOfMemory:
      case StatusCode::kAborted:  // worker exception / injected crash
        report.outcome = JobOutcome::kCrashed;
        break;
      case StatusCode::kDeadlineExceeded:  // wall-clock timeout
        report.outcome = JobOutcome::kTimedOut;
        break;
      case StatusCode::kUnsupported:
        report.outcome = JobOutcome::kUnsupported;
        break;
      default:
        report.outcome = JobOutcome::kFailed;
        break;
    }
    return report;
  }

  report.trace = run->metrics.trace;
  if (config_.trace_enabled) {
    report.archive =
        std::make_shared<granula::Archive>(std::move(run->archive));
  }

  report.upload_seconds = config_.Project(run->metrics.upload_sim_seconds);
  report.makespan_seconds =
      config_.Project(run->metrics.makespan_sim_seconds);
  const double tproc =
      config_.Project(run->metrics.processing_sim_seconds);
  report.supersteps = run->metrics.supersteps;

  // Repetition jitter: the engines are deterministic, so run-to-run noise
  // (JIT, GC, OS scheduling, network contention) is reintroduced by a
  // seeded stream with the platform's Table-11 coefficient of variation.
  SplitMix64 jitter(config_.seed ^ Mix64(std::hash<std::string>{}(
                        spec.platform_id + spec.dataset_id)));
  const double cv = platform->profile().variability_cv;
  report.tproc_samples.reserve(spec.repetitions);
  for (int r = 0; r < std::max(spec.repetitions, 1); ++r) {
    const double factor =
        spec.repetitions > 1
            ? std::max(0.05, 1.0 + cv * NormalSample(&jitter))
            : 1.0;
    report.tproc_samples.push_back(tproc * factor);
  }
  report.tproc_seconds = Mean(report.tproc_samples);
  report.tproc_cv = CoefficientOfVariation(report.tproc_samples);

  GA_ASSIGN_OR_RETURN(DatasetSpec dataset,
                      registry_.Find(spec.dataset_id));
  report.eps = Eps(graph->num_edges(), run->metrics.processing_sim_seconds);
  report.evps = Evps(graph->num_vertices(), graph->num_edges(),
                     run->metrics.processing_sim_seconds);

  // SLA: "generate the output ... with a makespan of up to 1 hour"
  // (Section 2.3); crashes were handled above.
  if (report.makespan_seconds > config_.sla_projected_seconds) {
    report.outcome = JobOutcome::kTimedOut;
    report.failure = "SLA breach: makespan " +
                     std::to_string(report.makespan_seconds) + "s > " +
                     std::to_string(config_.sla_projected_seconds) + "s";
    // A deterministic benchmark verdict, not an execution error: the
    // failure_code stays kOk so the hardened runner never retries it.
    report.failure_cause = "sla-breach";
    return report;
  }

  if (spec.validate) {
    GA_ASSIGN_OR_RETURN(const AlgorithmOutput* reference,
                        ReferenceFor(spec.dataset_id, spec.algorithm));
    Status valid = ValidateOutput(*graph, *reference, run->output);
    if (!valid.ok()) {
      report.outcome = JobOutcome::kFailed;
      report.failure = "output validation: " + valid.ToString();
      report.failure_cause = "validation-mismatch";  // deterministic too
      return report;
    }
    report.output_validated = true;
  }

  report.outcome = JobOutcome::kCompleted;
  return report;
}

faults::FaultInjector* BenchmarkRunner::fault_injector() {
  if (!injector_parsed_) {
    injector_parsed_ = true;
    if (!config_.fault_spec.empty()) {
      auto plan = faults::FaultPlan::Parse(config_.fault_spec);
      if (plan.ok()) {
        injector_ = std::make_unique<faults::FaultInjector>(*plan);
      } else {
        injector_status_ = plan.status();
      }
    }
  }
  return injector_.get();
}

JobReport BenchmarkRunner::RunWithPolicy(const JobSpec& spec) {
  faults::FaultInjector* injector = fault_injector();
  if (!injector_status_.ok()) {
    JobReport report;
    report.spec = spec;
    report.outcome = JobOutcome::kFailed;
    report.failure = "fault plan: " + injector_status_.ToString();
    report.failure_code = injector_status_.code();
    report.failure_cause = "infrastructure";
    return report;
  }

  const int attempts_allowed = 1 + std::max(config_.max_retries, 0);
  JobReport last;
  for (int attempt = 1; attempt <= attempts_allowed; ++attempt) {
    if (attempt > 1) RetryCounter()->Add(1);
    if (attempt > 1 && config_.retry_backoff_seconds > 0.0) {
      const double backoff = config_.retry_backoff_seconds *
                             static_cast<double>(1LL << (attempt - 2));
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }
    auto run = Run(spec, injector);
    if (run.ok()) {
      last = std::move(*run);
    } else {
      // Infrastructure errors are quarantined like any other failure so
      // a suite loop keeps going; they are not retryable.
      last = JobReport{};
      last.spec = spec;
      last.outcome = JobOutcome::kFailed;
      last.failure = run.status().ToString();
      last.failure_code = run.status().code();
      last.failure_cause = "infrastructure";
      last.attempts = attempt;
      QuarantineCounter()->Add(1);
      return last;
    }
    last.attempts = attempt;
    if (last.completed() || !IsRetryableFailure(last.failure_code)) {
      if (!last.completed()) QuarantineCounter()->Add(1);
      return last;
    }
  }
  QuarantineCounter()->Add(1);
  return last;  // retries exhausted: quarantined with the final verdict
}

}  // namespace ga::harness
