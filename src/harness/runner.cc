#include "harness/runner.h"

#include <cmath>

#include "algo/reference.h"
#include "core/rng.h"
#include "harness/metrics.h"

namespace ga::harness {

namespace {

// Deterministic standard-normal sample for the jitter stream
// (Box-Muller over SplitMix64).
double NormalSample(SplitMix64* rng) {
  const double u1 = std::max(rng->NextDouble(), 1e-12);
  const double u2 = rng->NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

}  // namespace

std::string_view JobOutcomeName(JobOutcome outcome) {
  switch (outcome) {
    case JobOutcome::kCompleted:
      return "completed";
    case JobOutcome::kCrashed:
      return "crashed";
    case JobOutcome::kTimedOut:
      return "timed-out";
    case JobOutcome::kUnsupported:
      return "unsupported";
    case JobOutcome::kFailed:
      return "failed";
  }
  return "unknown";
}

BenchmarkRunner::BenchmarkRunner(const BenchmarkConfig& config)
    : config_(config),
      host_pool_(std::make_unique<exec::ThreadPool>(config.host_jobs)),
      registry_(config) {
  registry_.set_host_pool(host_pool_.get());
}

Result<const AlgorithmOutput*> BenchmarkRunner::ReferenceFor(
    const std::string& dataset_id, Algorithm algorithm) {
  const std::string key =
      dataset_id + "/" + std::string(AlgorithmName(algorithm));
  auto cached = reference_cache_.find(key);
  if (cached != reference_cache_.end()) return cached->second.get();
  GA_ASSIGN_OR_RETURN(const Graph* graph, registry_.Load(dataset_id));
  GA_ASSIGN_OR_RETURN(AlgorithmParams params,
                      registry_.ParamsFor(dataset_id));
  GA_ASSIGN_OR_RETURN(
      AlgorithmOutput output,
      reference::Run(*graph, algorithm, params, host_pool_.get()));
  auto owned = std::make_unique<AlgorithmOutput>(std::move(output));
  const AlgorithmOutput* pointer = owned.get();
  reference_cache_[key] = std::move(owned);
  return pointer;
}

Result<JobReport> BenchmarkRunner::Run(const JobSpec& spec) {
  GA_ASSIGN_OR_RETURN(auto platform,
                      platform::CreatePlatform(spec.platform_id));
  GA_ASSIGN_OR_RETURN(const Graph* graph, registry_.Load(spec.dataset_id));
  GA_ASSIGN_OR_RETURN(AlgorithmParams params,
                      registry_.ParamsFor(spec.dataset_id));

  platform::ExecutionEnvironment env;
  env.num_machines = spec.num_machines;
  env.threads_per_machine = spec.threads_per_machine;
  env.memory_budget_bytes = config_.ScaledMemoryBudget();
  env.prefer_distributed_backend = spec.prefer_distributed_backend;
  env.overhead_scale = 1.0 / static_cast<double>(config_.scale_divisor);
  env.host_pool = host_pool_.get();
  env.trace_enabled = config_.trace_enabled;

  JobReport report;
  report.spec = spec;

  auto run = platform->RunJob(*graph, spec.algorithm, params, env);
  if (!run.ok()) {
    report.failure = run.status().ToString();
    switch (run.status().code()) {
      case StatusCode::kOutOfMemory:
        report.outcome = JobOutcome::kCrashed;
        break;
      case StatusCode::kUnsupported:
        report.outcome = JobOutcome::kUnsupported;
        break;
      default:
        report.outcome = JobOutcome::kFailed;
        break;
    }
    return report;
  }

  report.trace = run->metrics.trace;
  if (config_.trace_enabled) {
    report.archive =
        std::make_shared<granula::Archive>(std::move(run->archive));
  }

  report.upload_seconds = config_.Project(run->metrics.upload_sim_seconds);
  report.makespan_seconds =
      config_.Project(run->metrics.makespan_sim_seconds);
  const double tproc =
      config_.Project(run->metrics.processing_sim_seconds);
  report.supersteps = run->metrics.supersteps;

  // Repetition jitter: the engines are deterministic, so run-to-run noise
  // (JIT, GC, OS scheduling, network contention) is reintroduced by a
  // seeded stream with the platform's Table-11 coefficient of variation.
  SplitMix64 jitter(config_.seed ^ Mix64(std::hash<std::string>{}(
                        spec.platform_id + spec.dataset_id)));
  const double cv = platform->profile().variability_cv;
  report.tproc_samples.reserve(spec.repetitions);
  for (int r = 0; r < std::max(spec.repetitions, 1); ++r) {
    const double factor =
        spec.repetitions > 1
            ? std::max(0.05, 1.0 + cv * NormalSample(&jitter))
            : 1.0;
    report.tproc_samples.push_back(tproc * factor);
  }
  report.tproc_seconds = Mean(report.tproc_samples);
  report.tproc_cv = CoefficientOfVariation(report.tproc_samples);

  GA_ASSIGN_OR_RETURN(DatasetSpec dataset,
                      registry_.Find(spec.dataset_id));
  report.eps = Eps(graph->num_edges(), run->metrics.processing_sim_seconds);
  report.evps = Evps(graph->num_vertices(), graph->num_edges(),
                     run->metrics.processing_sim_seconds);

  // SLA: "generate the output ... with a makespan of up to 1 hour"
  // (Section 2.3); crashes were handled above.
  if (report.makespan_seconds > config_.sla_projected_seconds) {
    report.outcome = JobOutcome::kTimedOut;
    report.failure = "SLA breach: makespan " +
                     std::to_string(report.makespan_seconds) + "s > " +
                     std::to_string(config_.sla_projected_seconds) + "s";
    return report;
  }

  if (spec.validate) {
    GA_ASSIGN_OR_RETURN(const AlgorithmOutput* reference,
                        ReferenceFor(spec.dataset_id, spec.algorithm));
    Status valid = ValidateOutput(*graph, *reference, run->output);
    if (!valid.ok()) {
      report.outcome = JobOutcome::kFailed;
      report.failure = "output validation: " + valid.ToString();
      return report;
    }
    report.output_validated = true;
  }

  report.outcome = JobOutcome::kCompleted;
  return report;
}

}  // namespace ga::harness
