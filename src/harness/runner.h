// BenchmarkRunner: the Graphalytics harness core (paper Figure 1,
// component 5). Orchestrates one benchmark job: load the dataset, deploy
// the platform on a simulated environment, execute, validate the output
// against the reference implementation, enforce the SLA, and extract the
// paper's metrics from the Granula archive.
#ifndef GRAPHALYTICS_HARNESS_RUNNER_H_
#define GRAPHALYTICS_HARNESS_RUNNER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algo/output.h"
#include "faults/faults.h"
#include "harness/config.h"
#include "harness/dataset_registry.h"
#include "platforms/platform.h"

namespace ga::harness {

struct JobSpec {
  std::string platform_id;
  std::string dataset_id;
  Algorithm algorithm = Algorithm::kBfs;
  int num_machines = 1;
  int threads_per_machine = 32;
  /// Repetitions for variability measurements (Section 4.7).
  int repetitions = 1;
  /// Validate output against the reference implementation (R3: "the
  /// process must include the possibility to validate").
  bool validate = true;
  /// Run manually-selected distributed backends even on one machine
  /// (paper §4.4-4.5 use GraphMat's D backend throughout).
  bool prefer_distributed_backend = false;
  /// Cooperative cancellation token threaded into the job's execution
  /// environment (not owned; must outlive the job). Null — the batch
  /// default — runs uncancellable. The serve daemon arms one per request
  /// with the client's deadline and disconnect signal.
  const exec::CancelToken* cancel = nullptr;
  /// Per-job wall-clock timeout override in host seconds; < 0 (default)
  /// keeps the config's job_timeout_seconds, 0 disables, > 0 overrides.
  double wall_timeout_seconds = -1.0;
};

enum class JobOutcome {
  kCompleted,    // finished within the SLA, output validated
  kCrashed,      // out of memory (SLA breach, paper §2.3)
  kTimedOut,     // makespan exceeded the SLA window
  kUnsupported,  // platform does not implement this workload
  kFailed,       // any other error (bad input, validation mismatch)
};

std::string_view JobOutcomeName(JobOutcome outcome);

/// Failure-cause taxonomy (docs/ROBUSTNESS.md): a stable slug per
/// StatusCode, recorded on quarantined reports and in the JSON artifacts
/// so chaos runs can be asserted on. kOk maps to "none".
std::string_view FailureCauseName(StatusCode code);

/// Whether a failure with this code is worth a bounded retry: transient
/// shapes (worker aborts, I/O errors, wall-clock timeouts) are; memory
/// exhaustion, unsupported workloads and validation mismatches are
/// deterministic and retry cannot fix them.
bool IsRetryableFailure(StatusCode code);

struct JobReport {
  JobSpec spec;
  JobOutcome outcome = JobOutcome::kFailed;
  std::string failure;  // status message for non-completed jobs
  /// Attempts consumed (1 = first try succeeded or was not retryable;
  /// > 1 means the hardened runner retried).
  int attempts = 1;
  /// Status code of the final failed attempt (kOk for completed jobs and
  /// for benchmark-visible verdicts like an SLA breach, which is a
  /// *result*, not an execution error).
  StatusCode failure_code = StatusCode::kOk;
  /// FailureCauseName(failure_code), or a harness-level cause like
  /// "sla-breach" / "validation-mismatch" / "infrastructure".
  std::string failure_cause;

  // Projected (paper-scale) seconds; see BenchmarkConfig::Project.
  double upload_seconds = 0.0;
  double makespan_seconds = 0.0;
  double tproc_seconds = 0.0;  // mean over repetitions

  double eps = 0.0;   // edges per second
  double evps = 0.0;  // edges+vertices per second
  double tproc_cv = 0.0;  // coefficient of variation over repetitions
  std::vector<double> tproc_samples;

  int supersteps = 0;
  bool output_validated = false;

  /// Exec-layer counter totals for the traced run (trace.enabled is false
  /// when the harness ran untraced). See platform::TraceCounters for the
  /// deterministic/host-timing split.
  platform::TraceCounters trace;
  /// The job's full Granula archive (span tree + host chunk spans),
  /// retained only when BenchmarkConfig::trace_enabled — feed it to
  /// granula::ChromeTraceBuilder or Archive::ToChromeTrace.
  std::shared_ptr<const granula::Archive> archive;

  bool completed() const { return outcome == JobOutcome::kCompleted; }
};

class BenchmarkRunner {
 public:
  explicit BenchmarkRunner(const BenchmarkConfig& config);

  DatasetRegistry& registry() { return registry_; }
  const BenchmarkConfig& config() const { return config_; }

  /// Host thread pool (config.host_jobs threads) shared by every job's
  /// engine execution and the reference implementations.
  exec::ThreadPool* host_pool() { return host_pool_.get(); }

  /// Runs one job. Infrastructure errors (unknown dataset/platform)
  /// surface as a non-OK status; *benchmark-visible* failures (crash,
  /// SLA breach, unsupported workload) come back as a JobReport with the
  /// corresponding outcome, as the paper's harness records them.
  ///
  /// `injector` (optional) is installed as the process-global fault
  /// injector for the platform execution only — dataset loading,
  /// validation and the reference run are never fault-injected.
  Result<JobReport> Run(const JobSpec& spec,
                        faults::FaultInjector* injector = nullptr);

  /// Hardened entry point (docs/ROBUSTNESS.md): runs `spec` under the
  /// config's fault plan, wall-clock timeout and bounded-retry policy.
  /// Retryable failures are re-attempted up to config.max_retries times
  /// with exponential backoff; anything still failing is QUARANTINED —
  /// returned as a kFailed/kCrashed/kTimedOut report (never a thrown
  /// error), so a suite loop records the cell and moves on. Always
  /// returns a report; infrastructure errors become kFailed reports with
  /// failure_cause "infrastructure".
  JobReport RunWithPolicy(const JobSpec& spec);

  /// The injector RunWithPolicy installs, parsed lazily from
  /// config.fault_spec (null when the spec is empty or invalid). Shared
  /// across a suite's jobs and retries, so one-shot ordinal faults
  /// (abort_at_loop) fire exactly once process-wide while superstep-keyed
  /// faults re-fire every attempt — see faults::FaultInjector.
  faults::FaultInjector* fault_injector();

 private:
  Result<const AlgorithmOutput*> ReferenceFor(const std::string& dataset_id,
                                              Algorithm algorithm);

  BenchmarkConfig config_;
  std::unique_ptr<exec::ThreadPool> host_pool_;
  DatasetRegistry registry_;
  std::map<std::string, std::unique_ptr<AlgorithmOutput>> reference_cache_;
  bool injector_parsed_ = false;
  Status injector_status_;
  std::unique_ptr<faults::FaultInjector> injector_;
};

}  // namespace ga::harness

#endif  // GRAPHALYTICS_HARNESS_RUNNER_H_
