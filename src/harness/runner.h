// BenchmarkRunner: the Graphalytics harness core (paper Figure 1,
// component 5). Orchestrates one benchmark job: load the dataset, deploy
// the platform on a simulated environment, execute, validate the output
// against the reference implementation, enforce the SLA, and extract the
// paper's metrics from the Granula archive.
#ifndef GRAPHALYTICS_HARNESS_RUNNER_H_
#define GRAPHALYTICS_HARNESS_RUNNER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algo/output.h"
#include "harness/config.h"
#include "harness/dataset_registry.h"
#include "platforms/platform.h"

namespace ga::harness {

struct JobSpec {
  std::string platform_id;
  std::string dataset_id;
  Algorithm algorithm = Algorithm::kBfs;
  int num_machines = 1;
  int threads_per_machine = 32;
  /// Repetitions for variability measurements (Section 4.7).
  int repetitions = 1;
  /// Validate output against the reference implementation (R3: "the
  /// process must include the possibility to validate").
  bool validate = true;
  /// Run manually-selected distributed backends even on one machine
  /// (paper §4.4-4.5 use GraphMat's D backend throughout).
  bool prefer_distributed_backend = false;
};

enum class JobOutcome {
  kCompleted,    // finished within the SLA, output validated
  kCrashed,      // out of memory (SLA breach, paper §2.3)
  kTimedOut,     // makespan exceeded the SLA window
  kUnsupported,  // platform does not implement this workload
  kFailed,       // any other error (bad input, validation mismatch)
};

std::string_view JobOutcomeName(JobOutcome outcome);

struct JobReport {
  JobSpec spec;
  JobOutcome outcome = JobOutcome::kFailed;
  std::string failure;  // status message for non-completed jobs

  // Projected (paper-scale) seconds; see BenchmarkConfig::Project.
  double upload_seconds = 0.0;
  double makespan_seconds = 0.0;
  double tproc_seconds = 0.0;  // mean over repetitions

  double eps = 0.0;   // edges per second
  double evps = 0.0;  // edges+vertices per second
  double tproc_cv = 0.0;  // coefficient of variation over repetitions
  std::vector<double> tproc_samples;

  int supersteps = 0;
  bool output_validated = false;

  /// Exec-layer counter totals for the traced run (trace.enabled is false
  /// when the harness ran untraced). See platform::TraceCounters for the
  /// deterministic/host-timing split.
  platform::TraceCounters trace;
  /// The job's full Granula archive (span tree + host chunk spans),
  /// retained only when BenchmarkConfig::trace_enabled — feed it to
  /// granula::ChromeTraceBuilder or Archive::ToChromeTrace.
  std::shared_ptr<const granula::Archive> archive;

  bool completed() const { return outcome == JobOutcome::kCompleted; }
};

class BenchmarkRunner {
 public:
  explicit BenchmarkRunner(const BenchmarkConfig& config);

  DatasetRegistry& registry() { return registry_; }
  const BenchmarkConfig& config() const { return config_; }

  /// Host thread pool (config.host_jobs threads) shared by every job's
  /// engine execution and the reference implementations.
  exec::ThreadPool* host_pool() { return host_pool_.get(); }

  /// Runs one job. Infrastructure errors (unknown dataset/platform)
  /// surface as a non-OK status; *benchmark-visible* failures (crash,
  /// SLA breach, unsupported workload) come back as a JobReport with the
  /// corresponding outcome, as the paper's harness records them.
  Result<JobReport> Run(const JobSpec& spec);

 private:
  Result<const AlgorithmOutput*> ReferenceFor(const std::string& dataset_id,
                                              Algorithm algorithm);

  BenchmarkConfig config_;
  std::unique_ptr<exec::ThreadPool> host_pool_;
  DatasetRegistry registry_;
  std::map<std::string, std::unique_ptr<AlgorithmOutput>> reference_cache_;
};

}  // namespace ga::harness

#endif  // GRAPHALYTICS_HARNESS_RUNNER_H_
