#include "harness/scale.h"

#include <cmath>

namespace ga::harness {

double ComputeScale(std::int64_t num_vertices, std::int64_t num_edges) {
  const double raw =
      std::log10(static_cast<double>(num_vertices + num_edges));
  return std::round(raw * 10.0) / 10.0;
}

std::string ScaleClassLabel(double scale) {
  // Class index k covers [7 + 0.5k, 7.5 + 0.5k): k=0 -> XS, 1 -> S,
  // 2 -> M, 3 -> L, 4 -> XL; below XS and above XL the count of X's
  // grows (k=-1 -> 2XS, k=5 -> 2XL, k=6 -> 3XL, ...).
  const int k = static_cast<int>(std::floor((scale - 7.0) / 0.5 + 1e-9));
  switch (k) {
    case 0:
      return "XS";
    case 1:
      return "S";
    case 2:
      return "M";
    case 3:
      return "L";
    case 4:
      return "XL";
    default:
      break;
  }
  if (k < 0) {
    return std::to_string(1 - k) + "XS";
  }
  return std::to_string(k - 3) + "XL";
}

std::string ScaleClassLabel(std::int64_t num_vertices,
                            std::int64_t num_edges) {
  return ScaleClassLabel(ComputeScale(num_vertices, num_edges));
}

}  // namespace ga::harness
