// Graph scale and "T-shirt size" classes (paper Section 2.2.4, Table 2;
// see docs/METRICS.md).
//
// scale(V, E) = log10(|V| + |E|), rounded to one decimal. Classes span
// 0.5 scale units; the reference class L is [8.5, 9.0). Extra X's extend
// the scheme on both ends (2XS, 3XL, ...), making it open-ended as the
// renewal process re-centres it over time (Section 2.4, renewal.h).
//
// Consumers: the dataset registry labels every catalogue entry with its
// paper-scale class (reports read like Tables 3-4); the renewal groups
// its pass/fail evidence by these classes; the experiment suite
// (src/experiments/) shows them in its dataset row labels, e.g.
// "D300 (L)".
#ifndef GRAPHALYTICS_HARNESS_SCALE_H_
#define GRAPHALYTICS_HARNESS_SCALE_H_

#include <cstdint>
#include <string>

namespace ga::harness {

/// log10(V + E) rounded to one decimal place.
double ComputeScale(std::int64_t num_vertices, std::int64_t num_edges);

/// Table 2 label for a scale value: "2XS" (< 7), "XS" [7,7.5), "S" [7.5,8),
/// "M" [8,8.5), "L" [8.5,9), "XL" [9,9.5), "2XL" [9.5,10), and so on with
/// an extra X per additional 0.5 in either direction.
std::string ScaleClassLabel(double scale);

/// Convenience: label for a concrete graph size.
std::string ScaleClassLabel(std::int64_t num_vertices,
                            std::int64_t num_edges);

}  // namespace ga::harness

#endif  // GRAPHALYTICS_HARNESS_SCALE_H_
