#include "mutate/delta.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <unordered_map>
#include <utility>

namespace ga::mutate {

std::string_view DeltaOpName(DeltaOp op) {
  switch (op) {
    case DeltaOp::kInsertEdge: return "insert";
    case DeltaOp::kDeleteEdge: return "delete";
    case DeltaOp::kAddVertex: return "add-vertex";
  }
  return "unknown";
}

namespace {

/// One edge operation after id remapping and canonicalisation, tagged
/// with its batch position so the last-wins rule is a stable sort away.
struct NetOp {
  VertexIndex source;
  VertexIndex target;
  Weight weight;
  bool insert;
  std::int64_t seq;
};

bool PairLess(VertexIndex as, VertexIndex at, VertexIndex bs,
              VertexIndex bt) {
  return as != bs ? as < bs : at < bt;
}

}  // namespace

Result<MutationResult> ApplyDeltas(const Graph& parent,
                                   const DeltaBatch& batch,
                                   exec::ThreadPool* pool) {
  const bool undirected = !parent.is_directed();
  const VertexIndex parent_n = parent.num_vertices();

  // 1. Validate operations and collect external ids the batch mints.
  std::vector<VertexId> new_ids;
  for (const EdgeDelta& op : batch.ops) {
    switch (op.op) {
      case DeltaOp::kInsertEdge:
        if (op.source == op.target) {
          return Status::InvalidArgument(
              "delta inserts self-loop on vertex " +
              std::to_string(op.source) +
              " (forbidden by the Graphalytics data model)");
        }
        if (parent.IndexOf(op.source) == kInvalidVertex) {
          new_ids.push_back(op.source);
        }
        if (parent.IndexOf(op.target) == kInvalidVertex) {
          new_ids.push_back(op.target);
        }
        break;
      case DeltaOp::kDeleteEdge:
        if (op.source == op.target) {
          return Status::InvalidArgument(
              "delta deletes self-loop on vertex " +
              std::to_string(op.source) + " (self-loops cannot exist)");
        }
        break;
      case DeltaOp::kAddVertex:
        if (parent.IndexOf(op.source) == kInvalidVertex) {
          new_ids.push_back(op.source);
        }
        break;
      default:
        return Status::InvalidArgument(
            "unknown delta op " +
            std::to_string(static_cast<std::uint32_t>(op.op)));
    }
  }
  std::sort(new_ids.begin(), new_ids.end());
  new_ids.erase(std::unique(new_ids.begin(), new_ids.end()), new_ids.end());

  MutationResult result;
  result.stats.added_vertices = static_cast<std::int64_t>(new_ids.size());
  result.vertex_set_changed = !new_ids.empty();

  // 2. Child id array (sorted merge of parent ids + minted ids; the two
  //    are disjoint by construction) and the parent->child index remap.
  std::vector<VertexId> child_ids;
  child_ids.reserve(static_cast<std::size_t>(parent_n) + new_ids.size());
  std::merge(parent.external_ids().begin(), parent.external_ids().end(),
             new_ids.begin(), new_ids.end(),
             std::back_inserter(child_ids));
  result.old_to_new.resize(static_cast<std::size_t>(parent_n));
  {
    const auto parent_ids = parent.external_ids();
    VertexIndex j = 0;
    for (VertexIndex i = 0; i < parent_n; ++i) {
      while (child_ids[j] != parent_ids[i]) ++j;
      result.old_to_new[i] = j++;
    }
  }
  auto child_index = [&](VertexId id) -> VertexIndex {
    auto it = std::lower_bound(child_ids.begin(), child_ids.end(), id);
    if (it == child_ids.end() || *it != id) return kInvalidVertex;
    return static_cast<VertexIndex>(it - child_ids.begin());
  };

  // 3. Net edge operations: remap, canonicalise, keep the last op per
  //    logical edge. Serial and deterministic — the op stream orders it.
  std::vector<NetOp> ops;
  ops.reserve(batch.ops.size());
  std::int64_t seq = 0;
  for (const EdgeDelta& op : batch.ops) {
    if (op.op == DeltaOp::kAddVertex) continue;
    VertexIndex s = child_index(op.source);
    VertexIndex t = child_index(op.target);
    if (op.op == DeltaOp::kDeleteEdge &&
        (s == kInvalidVertex || t == kInvalidVertex)) {
      // Deletes never mint vertices; an unknown endpoint means the edge
      // cannot exist.
      ++result.stats.missing_deletes;
      continue;
    }
    if (undirected && s > t) std::swap(s, t);
    ops.push_back(NetOp{s, t, op.weight, op.op == DeltaOp::kInsertEdge,
                        seq++});
  }
  std::sort(ops.begin(), ops.end(), [](const NetOp& a, const NetOp& b) {
    if (a.source != b.source) return a.source < b.source;
    if (a.target != b.target) return a.target < b.target;
    return a.seq < b.seq;
  });
  // Compact to the last op per (source, target).
  std::size_t kept = 0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (i + 1 < ops.size() && ops[i + 1].source == ops[i].source &&
        ops[i + 1].target == ops[i].target) {
      continue;
    }
    ops[kept++] = ops[i];
  }
  ops.resize(kept);

  // 4. Remap the parent's canonical edges into child index space. The
  //    remap is strictly monotone, so sortedness is preserved; skip the
  //    copy entirely when no vertices were minted.
  exec::ExecContext ctx(pool);
  std::vector<Edge> remapped;
  std::span<const Edge> base = parent.edges();
  if (result.vertex_set_changed) {
    remapped.resize(base.size());
    exec::parallel_for(
        ctx, 0, static_cast<std::int64_t>(base.size()),
        [&](const exec::Slice& slice) {
          for (std::int64_t e = slice.begin; e < slice.end; ++e) {
            remapped[e] = Edge{result.old_to_new[base[e].source],
                               result.old_to_new[base[e].target],
                               base[e].weight};
          }
        });
    base = remapped;
  }

  // 5. Merge parent edges with the net ops into the child edge array.
  std::vector<Edge> child_edges;
  child_edges.reserve(base.size() + ops.size());
  std::size_t ei = 0;
  for (const NetOp& op : ops) {
    while (ei < base.size() &&
           PairLess(base[ei].source, base[ei].target, op.source,
                    op.target)) {
      child_edges.push_back(base[ei++]);
    }
    const bool present = ei < base.size() &&
                         base[ei].source == op.source &&
                         base[ei].target == op.target;
    if (op.insert) {
      if (present) {
        // Upsert: the op's weight wins (chunking invariance — see delta.h).
        child_edges.push_back(Edge{op.source, op.target, op.weight});
        ++ei;
        ++result.stats.redundant_inserts;
      } else {
        child_edges.push_back(Edge{op.source, op.target, op.weight});
        result.applied_inserts.push_back(child_edges.back());
        ++result.stats.inserted_edges;
      }
    } else {
      if (present) {
        result.applied_deletes.push_back(base[ei]);
        ++ei;
        ++result.stats.deleted_edges;
      } else {
        ++result.stats.missing_deletes;
      }
    }
  }
  child_edges.insert(child_edges.end(), base.begin() + ei, base.end());

  GA_ASSIGN_OR_RETURN(
      result.graph,
      Graph::FromCanonical(std::move(child_ids), std::move(child_edges),
                           parent.directedness(), parent.is_weighted(),
                           pool));
  return result;
}

// --- text codec --------------------------------------------------------

Result<DeltaBatch> ParseDeltaText(std::string_view text) {
  DeltaBatch batch;
  std::istringstream stream{std::string(text)};
  std::string line;
  std::int64_t line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    std::istringstream fields(line);
    std::string tag;
    if (!(fields >> tag) || tag[0] == '#') continue;
    EdgeDelta op;
    auto bad = [&](const std::string& what) {
      return Status::InvalidArgument("delta line " +
                                     std::to_string(line_number) + ": " +
                                     what + ": \"" + line + "\"");
    };
    if (tag == "+") {
      op.op = DeltaOp::kInsertEdge;
      if (!(fields >> op.source >> op.target)) {
        return bad("insert needs <source> <target> [weight]");
      }
      fields >> op.weight;  // optional; stays 1.0 when absent
    } else if (tag == "-") {
      op.op = DeltaOp::kDeleteEdge;
      if (!(fields >> op.source >> op.target)) {
        return bad("delete needs <source> <target>");
      }
    } else if (tag == "v") {
      op.op = DeltaOp::kAddVertex;
      if (!(fields >> op.source)) return bad("add-vertex needs <id>");
    } else {
      return bad("unknown tag \"" + tag + "\" (expected +, - or v)");
    }
    batch.ops.push_back(op);
  }
  return batch;
}

Result<DeltaBatch> LoadDeltaFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError(path + ": cannot open delta file");
  std::ostringstream content;
  content << file.rdbuf();
  auto batch = ParseDeltaText(content.str());
  if (!batch.ok()) {
    return Status::InvalidArgument(path + ": " +
                                   batch.status().message());
  }
  return batch;
}

std::string FormatDeltaText(const DeltaBatch& batch) {
  std::string out;
  char buffer[96];
  for (const EdgeDelta& op : batch.ops) {
    switch (op.op) {
      case DeltaOp::kInsertEdge:
        std::snprintf(buffer, sizeof(buffer), "+ %lld %lld %.17g\n",
                      static_cast<long long>(op.source),
                      static_cast<long long>(op.target), op.weight);
        break;
      case DeltaOp::kDeleteEdge:
        std::snprintf(buffer, sizeof(buffer), "- %lld %lld\n",
                      static_cast<long long>(op.source),
                      static_cast<long long>(op.target));
        break;
      case DeltaOp::kAddVertex:
        std::snprintf(buffer, sizeof(buffer), "v %lld\n",
                      static_cast<long long>(op.source));
        break;
    }
    out += buffer;
  }
  return out;
}

// --- deterministic random batches --------------------------------------

DeltaBatch RandomDeltaBatch(const Graph& parent, const RandomBatchSpec& spec,
                            SplitMix64& rng) {
  DeltaBatch batch;
  const VertexIndex n = parent.num_vertices();
  const EdgeIndex m = parent.num_edges();
  if (n == 0) return batch;
  const VertexId max_id = parent.ExternalId(n - 1);
  std::int64_t minted = 0;
  batch.ops.reserve(
      static_cast<std::size_t>(spec.inserts + spec.deletes));

  // Degree-weighted draw from the non-isolated part of the graph: a
  // uniformly random endpoint of a uniformly random edge. Falls back to
  // a uniform vertex draw on edgeless graphs.
  auto draw_active = [&]() {
    if (m == 0) {
      return static_cast<VertexIndex>(
          rng.NextBounded(static_cast<std::uint64_t>(n)));
    }
    const Edge& edge = parent.edges()[static_cast<EdgeIndex>(
        rng.NextBounded(static_cast<std::uint64_t>(m)))];
    return (rng.Next() & 1) ? edge.source : edge.target;
  };

  for (std::int64_t i = 0; i < spec.inserts; ++i) {
    EdgeDelta op;
    op.op = DeltaOp::kInsertEdge;
    if (spec.new_vertex_every > 0 &&
        (i + 1) % spec.new_vertex_every == 0) {
      op.source = parent.ExternalId(draw_active());
      op.target = max_id + (++minted);
    } else {
      const VertexIndex a = draw_active();
      VertexIndex b = draw_active();
      int guard = 0;
      while (b == a && ++guard < 64) {
        b = draw_active();
      }
      if (b == a) continue;  // degenerate graph: no non-loop pair found
      op.source = parent.ExternalId(a);
      op.target = parent.ExternalId(b);
    }
    op.weight = parent.is_weighted() ? rng.NextDouble() : 1.0;
    batch.ops.push_back(op);
  }

  if (m > 0 && spec.deletes > 0) {
    // Deletes draw uniform random existing edges but never isolate an
    // endpoint (nor, on directed graphs, strip a vertex's last
    // out-edge): `remaining` tracks each vertex's degree net of the
    // deletes already chosen this batch, counting each distinct edge
    // once (duplicate draws are kept — the last-wins rule dedups them —
    // but must not double-count the degree loss). Keeping the isolated
    // set invariant is what lets incremental PageRank reuse the
    // dangling-mass history bitwise (mutate/incremental.h) — isolation
    // itself is exercised by targeted tests, not random streams.
    std::unordered_map<VertexIndex, EdgeIndex> remaining;
    std::set<std::pair<VertexIndex, VertexIndex>> chosen;
    auto degree_left = [&](VertexIndex v) -> EdgeIndex& {
      auto [it, fresh] = remaining.try_emplace(v, 0);
      if (fresh) it->second = parent.OutDegree(v);
      return it->second;
    };
    std::int64_t emitted = 0;
    const std::int64_t budget = 8 * spec.deletes;
    for (std::int64_t attempt = 0;
         attempt < budget && emitted < spec.deletes; ++attempt) {
      const Edge& edge = parent.edges()[static_cast<EdgeIndex>(
          rng.NextBounded(static_cast<std::uint64_t>(m)))];
      const bool duplicate =
          chosen.contains({edge.source, edge.target});
      if (!duplicate) {
        if (parent.is_directed()) {
          if (degree_left(edge.source) <= 1) continue;
        } else {
          if (degree_left(edge.source) <= 1 ||
              degree_left(edge.target) <= 1) {
            continue;
          }
        }
        --degree_left(edge.source);
        if (!parent.is_directed()) --degree_left(edge.target);
        chosen.insert({edge.source, edge.target});
      }
      EdgeDelta op;
      op.op = DeltaOp::kDeleteEdge;
      op.source = parent.ExternalId(edge.source);
      op.target = parent.ExternalId(edge.target);
      batch.ops.push_back(op);
      ++emitted;
    }
  }
  return batch;
}

}  // namespace ga::mutate
