// ga::mutate — batched streaming mutation of immutable graphs.
//
// The paper benchmarks static snapshots; the follow-up literature (and
// ROADMAP) treats update streams as first-class. This layer keeps the
// repo's immutability and determinism contracts intact by making
// mutation EPOCHAL: a DeltaBatch of edge insert/delete (and vertex add)
// operations is applied in one step to a parent Graph, producing a brand
// new child Graph plus a MutationResult describing exactly what changed —
// in the child's index space, canonically ordered. Algorithms never see a
// half-applied graph, and the child is bit-identical at any --jobs value
// (the apply is a serial O(m + d log d) canonical merge; the CSR
// materialisation reuses Graph::FromCanonical's exec machinery).
//
// Batch semantics (DESIGN.md §12):
//   * operations apply in batch order; the LAST operation on a logical
//     edge wins (insert;delete == net no-op);
//   * inserting an edge that already exists updates its weight (an
//     upsert, counted in stats.redundant_inserts). Upsert — not
//     keep-existing — is what makes application CHUNKING-INVARIANT:
//     replaying one big batch or the same ops split across epochs ends
//     on the same weight (the stream's last), bit for bit;
//   * deleting an absent edge is a recorded no-op (stats.missing_deletes);
//   * undirected edges are canonicalised (low, high) before matching, so
//     delete b->a removes the undirected edge a-b;
//   * self-loops are rejected (InvalidArgument), mirroring the
//     Graphalytics data model;
//   * kAddVertex and insert endpoints may mint new vertices; deletes
//     never remove vertices — a vertex whose last edge is deleted stays,
//     isolated (so n is monotone along a chain and old_to_new is a
//     strictly increasing remap).
#ifndef GRAPHALYTICS_MUTATE_DELTA_H_
#define GRAPHALYTICS_MUTATE_DELTA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/graph.h"
#include "core/rng.h"
#include "core/status.h"
#include "core/types.h"

namespace ga::mutate {

enum class DeltaOp : std::uint32_t {
  kInsertEdge = 1,
  kDeleteEdge = 2,
  kAddVertex = 3,  // target/weight ignored
};

std::string_view DeltaOpName(DeltaOp op);

/// One mutation operation, in EXTERNAL id space (the ids datasets and
/// update streams speak). The layout is fixed — 32 trivially copyable
/// bytes — because ga::store serialises these records verbatim into the
/// kDeltaOps section of chained snapshots.
struct EdgeDelta {
  DeltaOp op = DeltaOp::kInsertEdge;
  std::uint32_t reserved = 0;  // zero on the wire
  VertexId source = 0;
  VertexId target = 0;
  Weight weight = 1.0;
};
static_assert(sizeof(EdgeDelta) == 32, "EdgeDelta is a wire format");

/// One epoch's worth of operations, applied atomically.
struct DeltaBatch {
  std::vector<EdgeDelta> ops;
};

struct MutationStats {
  std::int64_t inserted_edges = 0;    // net edges added
  std::int64_t deleted_edges = 0;     // net edges removed
  std::int64_t redundant_inserts = 0; // edge already present (weight upsert)
  std::int64_t missing_deletes = 0;   // edge (or an endpoint) absent
  std::int64_t added_vertices = 0;    // new external ids minted
};

/// The child graph plus the exact structural difference from the parent,
/// expressed in the CHILD's internal index space — which is what the
/// incremental algorithms consume.
struct MutationResult {
  Graph graph;
  MutationStats stats;
  /// True iff new vertices were minted (n grew). The remap below is the
  /// identity when false.
  bool vertex_set_changed = false;
  /// parent index -> child index; strictly increasing (external ids stay
  /// sorted and are never removed). Size = parent n.
  std::vector<VertexIndex> old_to_new;
  /// Net inserted/deleted edges in child-index space, canonical order.
  /// applied_deletes carries the PARENT's stored weight.
  std::vector<Edge> applied_inserts;
  std::vector<Edge> applied_deletes;
};

/// Applies `batch` to `parent`, producing the child graph and the applied
/// difference. O(m + d log d) for m parent edges and d batch operations;
/// the op canonicalisation/merge is serial (deterministic regardless of
/// --jobs), the child's CSR materialisation is host-parallel and
/// bit-identical at any thread count.
Result<MutationResult> ApplyDeltas(const Graph& parent,
                                   const DeltaBatch& batch,
                                   exec::ThreadPool* pool = nullptr);

// --- text codec --------------------------------------------------------
//
// Line format (the `data apply --deltas` file format):
//   + <source> <target> [weight]     insert edge
//   - <source> <target>              delete edge
//   v <id>                           add vertex
// Blank lines and lines starting with '#' are skipped.

Result<DeltaBatch> ParseDeltaText(std::string_view text);
Result<DeltaBatch> LoadDeltaFile(const std::string& path);
std::string FormatDeltaText(const DeltaBatch& batch);

// --- deterministic random batches --------------------------------------

/// Shape of a generated batch: inserts draw degree-weighted random
/// non-loop pairs from the non-isolated part of the graph (colliding
/// with existing edges is allowed — those become weight upserts, part
/// of the semantics under test); deletes draw uniform random existing
/// parent edges but never isolate an endpoint (duplicate draws are
/// allowed — the last-wins rule dedups). Keeping the isolated set
/// invariant keeps an undirected graph's dangling-mass history bitwise
/// stable across the epoch, which is what lets IncrementalPageRank
/// actually prune (mutate/incremental.h); isolation is exercised by
/// targeted tests instead. `new_vertex_every` > 0 mints a fresh
/// external id (max parent id + k) for every k-th insert's target,
/// exercising vertex growth.
struct RandomBatchSpec {
  std::int64_t inserts = 0;
  std::int64_t deletes = 0;
  std::int64_t new_vertex_every = 0;  // 0: never mint new vertices
};

/// Deterministic function of (parent, spec, rng state).
DeltaBatch RandomDeltaBatch(const Graph& parent, const RandomBatchSpec& spec,
                            SplitMix64& rng);

}  // namespace ga::mutate

#endif  // GRAPHALYTICS_MUTATE_DELTA_H_
