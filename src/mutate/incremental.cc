#include "mutate/incremental.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "core/exec/alloc_stats.h"

namespace ga::mutate {

// --- IncrementalPageRank -----------------------------------------------

Status IncrementalPageRank::Initialize(const Graph& graph,
                                       exec::ThreadPool* pool) {
  if (iterations_ < 0) {
    return Status::InvalidArgument("PageRank iterations must be >= 0");
  }
  if (damping_ < 0.0 || damping_ > 1.0) {
    return Status::InvalidArgument("damping factor must be in [0, 1]");
  }
  n_ = graph.num_vertices();
  const VertexIndex n = n_;

  const std::size_t levels = static_cast<std::size_t>(iterations_) + 1;
  const bool grew =
      history_.size() != levels ||
      history_[0].size() != static_cast<std::size_t>(n);
  if (grew) {
    exec::NoteDataPathAlloc(
        exec::AllocSite::kMutate,
        2 * levels * static_cast<std::uint64_t>(n) * sizeof(double));
  }
  history_.resize(levels);
  prev_history_.resize(levels);
  for (auto& level : history_) {
    level.resize(static_cast<std::size_t>(n));
  }
  history_[0].assign(static_cast<std::size_t>(n),
                     n > 0 ? 1.0 / static_cast<double>(n) : 0.0);
  dangling_.resize(static_cast<std::size_t>(iterations_));
  prev_dangling_.resize(static_cast<std::size_t>(iterations_));

  exec::ExecContext ctx(pool);
  reduce_scratch_.reserve(exec::ExecContext::kMaxSlots);
  FullSweeps(graph, ctx, 0);

  // Seed the parent-epoch copies so the FIRST Update's swap hands it a
  // fully populated history rather than stale (or empty) buffers.
  for (std::size_t k = 0; k < levels; ++k) {
    prev_history_[k].assign(history_[k].begin(), history_[k].end());
  }
  prev_dangling_.assign(dangling_.begin(), dangling_.end());

  output_.algorithm = Algorithm::kPageRank;
  output_.int_values.clear();
  output_.double_values.assign(history_[levels - 1].begin(),
                               history_[levels - 1].end());

  changed_.Init(n);
  structural_bits_.Resize(static_cast<std::size_t>(n));
  structural_.clear();
  structural_.reserve(static_cast<std::size_t>(n));

  // Fresh baseline, fresh counters — Initialize's own sweeps are the
  // baseline compute, not a dangling-divergence fallback. (The
  // vertex-set-change path in Update saves and restores stats_ around
  // this call, so chained full recomputes keep their running totals.)
  stats_ = EpochStats{};
  return Status::Ok();
}

void IncrementalPageRank::FullSweeps(const Graph& graph,
                                     exec::ExecContext& ctx,
                                     int first_iteration) {
  // Reference-identical power iteration (algo/pagerank.cc): same reduce
  // decomposition, same operand order, same expressions — any deviation
  // here would void the byte-identity contract.
  const VertexIndex n = n_;
  for (int iteration = first_iteration; iteration < iterations_;
       ++iteration) {
    const std::vector<double>& rank = history_[iteration];
    std::vector<double>& next = history_[iteration + 1];
    const double dangling_mass = exec::parallel_reduce(
        ctx, 0, n, 0.0,
        [&](const exec::Slice& slice, double& acc) {
          for (VertexIndex v = slice.begin; v < slice.end; ++v) {
            if (graph.OutDegree(v) == 0) acc += rank[v];
          }
        },
        [](double& into, double from) { into += from; }, &reduce_scratch_);
    dangling_[iteration] = dangling_mass;
    const double base = (1.0 - damping_) / static_cast<double>(n) +
                        damping_ * dangling_mass / static_cast<double>(n);
    exec::parallel_for(ctx, 0, n, [&](const exec::Slice& slice) {
      for (VertexIndex v = slice.begin; v < slice.end; ++v) {
        double incoming = 0.0;
        for (VertexIndex u : graph.InNeighbors(v)) {
          incoming += rank[u] / static_cast<double>(graph.OutDegree(u));
        }
        next[v] = base + damping_ * incoming;
      }
    });
    ++stats_.full_sweep_iterations;
  }
}

Status IncrementalPageRank::Update(const MutationResult& mutation,
                                   exec::ThreadPool* pool) {
  if (n_ < 0) {
    return Status::FailedPrecondition(
        "IncrementalPageRank::Update before Initialize");
  }
  const Graph& graph = mutation.graph;

  if (mutation.vertex_set_changed || graph.num_vertices() != n_) {
    // n changed, so every 1/n term — and therefore every rank — changes.
    // Nothing from the parent epoch is reusable; re-derive from scratch.
    const EpochStats saved = stats_;
    GA_RETURN_IF_ERROR(Initialize(graph, pool));
    stats_ = saved;
    ++stats_.epochs;
    ++stats_.full_recomputes;
    return Status::Ok();
  }

  ++stats_.epochs;
  const VertexIndex n = n_;
  if (n == 0 || iterations_ == 0) return Status::Ok();
  exec::ExecContext ctx(pool);

  // The parent epoch's trajectory becomes prev_*; this epoch's is rebuilt
  // in-place in history_/dangling_ (whose buffers hold the two-epochs-ago
  // trajectory, overwritten level by level below). history_[0] is all 1/n
  // in every epoch at constant n — already byte-correct, never touched.
  history_.swap(prev_history_);
  dangling_.swap(prev_dangling_);

  // Structural dirt S: vertices whose gather reads anything the batch
  // changed — an altered in-list, or an in-neighbour whose out-degree
  // (the divisor of its contribution) changed.
  structural_.clear();
  auto mark = [&](VertexIndex v) {
    if (structural_bits_.TestAndSet(static_cast<std::size_t>(v))) {
      structural_.push_back(v);
    }
  };
  auto mark_edge = [&](const Edge& edge) {
    if (graph.is_directed()) {
      mark(edge.target);
      for (VertexIndex w : graph.OutNeighbors(edge.source)) mark(w);
    } else {
      mark(edge.source);
      mark(edge.target);
      for (VertexIndex w : graph.OutNeighbors(edge.source)) mark(w);
      for (VertexIndex w : graph.OutNeighbors(edge.target)) mark(w);
    }
  };
  for (const Edge& edge : mutation.applied_inserts) mark_edge(edge);
  for (const Edge& edge : mutation.applied_deletes) mark_edge(edge);

  // changed_'s current side carries {v : history_[k][v] differs bitwise
  // from prev_history_[k][v]} — empty at k = 0 by the invariant above.
  for (int iteration = 0; iteration < iterations_; ++iteration) {
    // The dangling term couples every vertex to the global dangling set;
    // recompute it exactly (the reference's reduce) and reuse the parent
    // iteration only while it lands on the very same bits.
    const double dangling_mass = exec::parallel_reduce(
        ctx, 0, n, 0.0,
        [&](const exec::Slice& slice, double& acc) {
          const std::vector<double>& rank = history_[iteration];
          for (VertexIndex v = slice.begin; v < slice.end; ++v) {
            if (graph.OutDegree(v) == 0) acc += rank[v];
          }
        },
        [](double& into, double from) { into += from; }, &reduce_scratch_);
    if (std::memcmp(&dangling_mass, &prev_dangling_[iteration],
                    sizeof(double)) != 0) {
      // base differs, so no vertex's parent rank is provably reusable.
      // Finish the epoch with reference-identical full sweeps (levels
      // below `iteration` are already byte-correct).
      FullSweeps(graph, ctx, iteration);
      break;
    }
    dangling_[iteration] = dangling_mass;
    const double base = (1.0 - damping_) / static_cast<double>(n) +
                        damping_ * dangling_mass / static_cast<double>(n);

    // Candidates: S plus everyone downstream of a bitwise rank change.
    for (VertexIndex v : structural_) {
      changed_.Activate(v, 0);
    }
    for (VertexIndex v : changed_.active()) {
      for (VertexIndex w : graph.OutNeighbors(v)) {
        changed_.Activate(w, 0);
      }
    }
    changed_.Advance();  // current side: candidate set C_k

    // Start from the parent's iteration-(k+1) ranks; re-gather only the
    // candidates. Every non-candidate provably reproduces its parent
    // bits, so inheriting them IS the reference computation.
    std::memcpy(history_[iteration + 1].data(),
                prev_history_[iteration + 1].data(),
                static_cast<std::size_t>(n) * sizeof(double));
    const std::vector<double>& rank = history_[iteration];
    std::vector<double>& next = history_[iteration + 1];
    exec::parallel_for(ctx, 0, n, [&](const exec::Slice& slice) {
      changed_.ForEachActiveInRange(
          slice.begin, slice.end, [&](VertexIndex v) {
            double incoming = 0.0;
            for (VertexIndex u : graph.InNeighbors(v)) {
              incoming +=
                  rank[u] / static_cast<double>(graph.OutDegree(u));
            }
            next[v] = base + damping_ * incoming;
          });
    });
    stats_.dirty_recomputes += changed_.active_count();
    ++stats_.incremental_iterations;

    // Value pruning: only candidates whose recomputed rank landed on
    // DIFFERENT bits than the parent's propagate dirt to iteration k+2.
    for (VertexIndex v : changed_.active()) {
      if (std::memcmp(&next[v], &prev_history_[iteration + 1][v],
                      sizeof(double)) != 0) {
        changed_.Activate(v, 0);
      }
    }
    changed_.Advance();  // current side: changed_k
  }
  changed_.Advance();  // wipe the final changed set for the next epoch
  for (VertexIndex v : structural_) {
    structural_bits_.Reset(static_cast<std::size_t>(v));
  }
  structural_.clear();

  std::memcpy(output_.double_values.data(), history_[iterations_].data(),
              static_cast<std::size_t>(n) * sizeof(double));
  return Status::Ok();
}

// --- IncrementalWcc -----------------------------------------------------

VertexIndex IncrementalWcc::Find(VertexIndex v) {
  while (parent_[v] != v) {
    parent_[v] = parent_[parent_[v]];
    v = parent_[v];
  }
  return v;
}

void IncrementalWcc::Union(VertexIndex a, VertexIndex b) {
  VertexIndex ra = Find(a);
  VertexIndex rb = Find(b);
  if (ra == rb) return;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
}

void IncrementalWcc::Relabel(const Graph& graph, exec::ExecContext& ctx) {
  // The reference's canonical labelling sweep (algo/wcc.cc): external ids
  // ascend with vertex index, so the first member seen per root carries
  // the component's smallest external id. Equal partitions therefore
  // produce byte-equal outputs, whatever union order built them.
  const VertexIndex n = n_;
  std::fill(label_of_root_.begin(), label_of_root_.end(),
            std::int64_t{-1});
  std::fill(comp_size_.begin(), comp_size_.end(), VertexIndex{0});
  for (VertexIndex v = 0; v < n; ++v) {
    const VertexIndex root = Find(v);
    comp_[v] = root;
    ++comp_size_[root];
    if (label_of_root_[root] == -1) {
      label_of_root_[root] = graph.ExternalId(v);
    }
  }
  exec::parallel_for(ctx, 0, n, [&](const exec::Slice& slice) {
    for (VertexIndex v = slice.begin; v < slice.end; ++v) {
      output_.int_values[v] = label_of_root_[comp_[v]];
    }
  });
}

Status IncrementalWcc::Initialize(const Graph& graph,
                                  exec::ThreadPool* pool) {
  n_ = graph.num_vertices();
  const VertexIndex n = n_;
  stats_ = EpochStats{};  // fresh baseline, fresh counters
  const bool grew = parent_.size() != static_cast<std::size_t>(n);
  if (grew) {
    exec::NoteDataPathAlloc(
        exec::AllocSite::kMutate,
        5 * static_cast<std::uint64_t>(n) * sizeof(VertexIndex));
  }
  parent_.resize(static_cast<std::size_t>(n));
  size_.assign(static_cast<std::size_t>(n), VertexIndex{1});
  comp_.resize(static_cast<std::size_t>(n));
  comp_size_.resize(static_cast<std::size_t>(n));
  label_of_root_.resize(static_cast<std::size_t>(n));
  root_affected_.Resize(static_cast<std::size_t>(n));
  affected_.Resize(static_cast<std::size_t>(n));
  std::iota(parent_.begin(), parent_.end(), VertexIndex{0});

  for (const Edge& edge : graph.edges()) {
    Union(edge.source, edge.target);
  }
  output_.algorithm = Algorithm::kWcc;
  output_.double_values.clear();
  output_.int_values.assign(static_cast<std::size_t>(n), -1);
  exec::ExecContext ctx(pool);
  Relabel(graph, ctx);
  return Status::Ok();
}

Status IncrementalWcc::Update(const MutationResult& mutation,
                              exec::ThreadPool* pool) {
  if (n_ < 0) {
    return Status::FailedPrecondition(
        "IncrementalWcc::Update before Initialize");
  }
  const Graph& graph = mutation.graph;
  ++stats_.epochs;

  if (mutation.vertex_set_changed || graph.num_vertices() != n_) {
    // Growth is a structural event (allocation allowed), but NOT a
    // recompute: the old partition survives an index remap — old_to_new
    // is strictly increasing, minted vertices start as singletons.
    const VertexIndex old_n = n_;
    const VertexIndex new_n = graph.num_vertices();
    exec::NoteDataPathAlloc(
        exec::AllocSite::kMutate,
        2 * static_cast<std::uint64_t>(new_n) * sizeof(VertexIndex));
    std::vector<VertexIndex> remapped_comp(static_cast<std::size_t>(new_n));
    std::vector<VertexIndex> remapped_size(static_cast<std::size_t>(new_n),
                                           VertexIndex{1});
    std::iota(remapped_comp.begin(), remapped_comp.end(), VertexIndex{0});
    for (VertexIndex v = 0; v < old_n; ++v) {
      remapped_comp[mutation.old_to_new[v]] =
          mutation.old_to_new[comp_[v]];
      if (comp_[v] == v) {
        remapped_size[mutation.old_to_new[v]] = comp_size_[v];
      }
    }
    comp_ = std::move(remapped_comp);
    comp_size_ = std::move(remapped_size);
    n_ = new_n;
    parent_.resize(static_cast<std::size_t>(new_n));
    size_.resize(static_cast<std::size_t>(new_n));
    label_of_root_.resize(static_cast<std::size_t>(new_n));
    root_affected_.Resize(static_cast<std::size_t>(new_n));
    affected_.Resize(static_cast<std::size_t>(new_n));
    output_.int_values.resize(static_cast<std::size_t>(new_n));
  }

  const VertexIndex n = n_;
  exec::ExecContext ctx(pool);

  // Deletes can split a component, so every component that lost an edge
  // dissolves to singletons and is re-unioned from its members' surviving
  // adjacency. Inserts only ever union, so untouched components keep
  // their partition (seeded below as one preloaded union-find node per
  // component).
  const bool any_deletes = !mutation.applied_deletes.empty();
  if (any_deletes) {
    root_affected_.Clear();
    affected_.Clear();
    for (const Edge& edge : mutation.applied_deletes) {
      // Both endpoints shared a component in the parent (this very edge
      // connected them), so one Set would do; two are harmless.
      root_affected_.Set(static_cast<std::size_t>(comp_[edge.source]));
      root_affected_.Set(static_cast<std::size_t>(comp_[edge.target]));
    }
  }
  for (VertexIndex v = 0; v < n; ++v) {
    if (any_deletes &&
        root_affected_.Test(static_cast<std::size_t>(comp_[v]))) {
      parent_[v] = v;
      size_[v] = 1;
      affected_.Set(static_cast<std::size_t>(v));
      ++stats_.affected_vertices;
    } else {
      parent_[v] = comp_[v];
      size_[v] = comp_size_[v];  // only read where v is a root
    }
  }
  if (any_deletes) {
    // Old surviving edges never cross the affected/unaffected boundary
    // (their endpoints shared an old component), so out-list scans of the
    // affected vertices cover every edge that needs re-unioning —
    // in-lists included, because the in-edge (u, v) of an affected v has
    // an affected u and appears in u's out-list.
    affected_.ForEachSet([&](std::size_t v) {
      for (VertexIndex w :
           graph.OutNeighbors(static_cast<VertexIndex>(v))) {
        Union(static_cast<VertexIndex>(v), w);
      }
    });
  }
  for (const Edge& edge : mutation.applied_inserts) {
    Union(edge.source, edge.target);
  }
  Relabel(graph, ctx);
  return Status::Ok();
}

}  // namespace ga::mutate
