// Incremental PageRank and WCC over ga::mutate epochs, with a
// BYTE-IDENTITY contract: after every Update, output() is bit-for-bit
// the vector a full recompute (reference::PageRank / reference::Wcc)
// would produce on the epoch's graph — at any --jobs value. The
// recompute-equivalence oracle suite (tests/mutate/) holds them to it.
//
// Byte-identity is a much harder bar than epsilon closeness: an
// incremental engine may only skip work it can PROVE reproduces the
// reference's floating-point operations exactly, with the same operand
// order and the same rounding. The two algorithms meet it differently.
//
// IncrementalPageRank keeps the parent epoch's full per-iteration rank
// history (K+1 vectors) and per-iteration dangling masses. Each epoch it
// replays the reference's iteration structure, but per iteration it only
// re-executes the gather of a CANDIDATE set
//
//   C_k = S  ∪  out-neighbours(changed_{k-1})
//
// where S is the structural dirt (vertices whose in-list or whose
// in-neighbours' out-degrees the batch changed) and changed_{k-1} is the
// set of vertices whose iteration-(k-1) rank differs BITWISE from the
// parent epoch's. Every other vertex reuses the parent's iteration-k rank
// byte-for-byte — valid because its gather would read bitwise-identical
// operands in the identical order. Value pruning (a recomputed rank that
// lands on the parent's exact bits does not propagate) is what makes the
// dirty wave die out instead of growing like a BFS ball: rank
// perturbations attenuate by ~damping/out-degree per hop and vanish once
// they round below one ulp of the receiving sum.
//
// The global coupling is the dangling-mass term: base_k folds a sum over
// all zero-out-degree vertices into every rank. The term is recomputed
// exactly each iteration (same slot-decomposed reduce as the reference)
// and compared bitwise with the parent's; if it ever differs, clean-reuse
// is no longer sound and the epoch falls back to full reference sweeps
// from that iteration on — still byte-identical, just not cheap. In
// practice this makes incrementality effective on graphs whose dangling
// set is rank-stable (undirected graphs, where only isolated vertices
// dangle) and a graceful fallback on directed graphs with rank-carrying
// dangling vertices. Epochs that mint vertices change n (and the 1/n
// terms in every rank), so they trigger a full recompute too.
//
// IncrementalWcc maintains the component partition across epochs.
// Inserts only union; deletes can split, so every component touched by a
// delete is reset to singletons and re-unioned from the surviving
// adjacency of its (old) members — sound because an edge never crosses
// from an affected into an unaffected component (its endpoints shared a
// component before the delete). Labels (smallest external id per
// component) are recomputed by the same canonical relabelling sweep as
// the reference, so equal partitions give equal bytes.
//
// Both classes follow the steady-state zero-allocation contract
// (DESIGN.md §8): Initialize sizes every buffer; Update at constant n
// performs no data-path heap allocation (epochs that grow the vertex set
// are structural events and may reallocate). Update returns Status and
// results are read through output() — returning AlgorithmOutput by value
// would copy-allocate per epoch.
#ifndef GRAPHALYTICS_MUTATE_INCREMENTAL_H_
#define GRAPHALYTICS_MUTATE_INCREMENTAL_H_

#include <cstdint>
#include <vector>

#include "algo/output.h"
#include "core/bitset.h"
#include "core/exec/frontier.h"
#include "core/graph.h"
#include "core/status.h"
#include "mutate/delta.h"

namespace ga::mutate {

/// Counters describing how an incremental engine earned its epochs.
struct EpochStats {
  std::int64_t epochs = 0;            // Update calls since Initialize
  std::int64_t full_recomputes = 0;   // vertex-set-change fallbacks
  // PageRank:
  std::int64_t incremental_iterations = 0;  // candidate-set iterations
  std::int64_t full_sweep_iterations = 0;   // dangling-divergence fallback
  std::int64_t dirty_recomputes = 0;        // per-vertex gathers re-run
  // WCC:
  std::int64_t affected_vertices = 0;  // vertices reset by delete epochs
};

class IncrementalPageRank {
 public:
  IncrementalPageRank(int iterations, double damping)
      : iterations_(iterations), damping_(damping) {}

  /// Full compute on `graph` (the reference algorithm, plus history
  /// capture). Sizes every epoch buffer. Call once per chain root — and
  /// it is what Update falls back to when the vertex set changes.
  Status Initialize(const Graph& graph, exec::ThreadPool* pool = nullptr);

  /// Advances the state across one mutation epoch. `mutation` MUST have
  /// been produced by ApplyDeltas from the graph this state last saw
  /// (Initialize's graph or the previous Update's mutation.graph).
  /// Afterwards output() is byte-identical to a full recompute on
  /// mutation.graph. Allocation-free at constant n (after the first
  /// epoch warms the frontier).
  Status Update(const MutationResult& mutation,
                exec::ThreadPool* pool = nullptr);

  const AlgorithmOutput& output() const { return output_; }
  const EpochStats& stats() const { return stats_; }

 private:
  /// Reference-identical iteration sweeps from `first_iteration`,
  /// recording the dangling/rank histories as they go.
  void FullSweeps(const Graph& graph, exec::ExecContext& ctx,
                  int first_iteration);

  int iterations_;
  double damping_;
  VertexIndex n_ = -1;  // -1: not initialized

  // history_[k] = rank vector after k iterations on the current epoch's
  // graph; dangling_[k] = the dangling mass folded into iteration k+1.
  // prev_* hold the parent epoch's copies; Update swaps then rebuilds.
  std::vector<std::vector<double>> history_, prev_history_;
  std::vector<double> dangling_, prev_dangling_;

  exec::Frontier changed_;             // bitwise rank differences vs parent
  Bitset structural_bits_;             // structural dirt S (dense)
  std::vector<VertexIndex> structural_;  // structural dirt S (sparse)
  std::vector<double> reduce_scratch_;

  AlgorithmOutput output_;
  EpochStats stats_;
};

class IncrementalWcc {
 public:
  /// Full compute on `graph`; sizes every epoch buffer.
  Status Initialize(const Graph& graph, exec::ThreadPool* pool = nullptr);

  /// Advances across one mutation epoch (same parent contract as
  /// IncrementalPageRank::Update). Afterwards output() is byte-identical
  /// to reference::Wcc on mutation.graph. Allocation-free at constant n.
  Status Update(const MutationResult& mutation,
                exec::ThreadPool* pool = nullptr);

  const AlgorithmOutput& output() const { return output_; }
  const EpochStats& stats() const { return stats_; }

 private:
  VertexIndex Find(VertexIndex v);
  void Union(VertexIndex a, VertexIndex b);
  /// Canonical relabel: comp_/comp_size_ from the union-find state, then
  /// labels = smallest external id per component (ascending first-seen,
  /// exactly the reference's sweep) into output_.
  void Relabel(const Graph& graph, exec::ExecContext& ctx);

  VertexIndex n_ = -1;
  std::vector<VertexIndex> parent_, size_;  // union-find working state
  std::vector<VertexIndex> comp_;       // canonical root per vertex
  std::vector<VertexIndex> comp_size_;  // members per root (roots only)
  std::vector<std::int64_t> label_of_root_;
  Bitset root_affected_, affected_;

  AlgorithmOutput output_;
  EpochStats stats_;
};

}  // namespace ga::mutate

#endif  // GRAPHALYTICS_MUTATE_INCREMENTAL_H_
