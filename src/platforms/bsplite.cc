#include "platforms/bsplite.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "algo/lcc_kernel.h"
#include "core/exec/exec.h"
#include "core/exec/frontier.h"
#include "core/exec/message_arena.h"
#include "core/exec/scratch_pool.h"
#include "granula/tracer.h"
#include "platforms/worker_map.h"
#include "resilience/engine_state.h"

namespace ga::platform {

namespace {

// Per-message heap/serialisation footprint of a managed runtime (object
// header + boxed payload + queue entry), charged per inbox entry while a
// superstep is executing.
constexpr std::int64_t kMessageObjectBytes = 48;

// Pregel superstep executor with scalar (double) messages.
//
// Protocol: vertices start *halted*; initial work is injected with
// SeedMessage (as Giraph drivers do for rooted algorithms) or by
// ActivateAll for self-starting algorithms. A vertex program runs when the
// vertex is active or has mail; it may Send, AggregateNext and VoteToHalt
// through its Scope. Execution stops at quiescence (no active vertices,
// no mail) or after max_supersteps.
//
// The runnable set (active ∪ has-mail) is a hybrid exec::Frontier: each
// superstep iterates only the runnable worklist instead of sweeping all n
// vertices, still-active votes stage per slot and commit in slot order,
// and message delivery activates the target — so quiescence detection,
// the inbox-memory charge and the vertex-program loop all cost O(runnable)
// per superstep. This is the vote-to-halt payoff: the long sparse tails
// of BFS/SSSP/WCC stop paying per-superstep full-vertex sweeps.
//
// Each superstep runs the vertex programs host-parallel via
// exec::parallel_for over the worklist. A program's sends go to its
// slot's outbox and are delivered (with the combiner applied) in slot
// order after the loop, so inbox contents — and therefore results and the
// WorkLedger — are identical at any host thread count.
class PregelRuntime {
 public:
  /// Message combiner, as provided by Giraph drivers: kMin for BFS / WCC /
  /// SSSP, kSum for PageRank. Combining caps each inbox at one entry, so
  /// the engine survives graphs whose raw per-superstep message volume
  /// would not fit. CDLP's mode aggregation cannot be combined, and
  /// neither can LCC's neighbour lists — hence their different failure
  /// modes (§4.2 / §4.6).
  enum class Combine { kNone, kMin, kSum };

  struct Message {
    VertexIndex target;
    double value;
  };

  PregelRuntime(JobContext& ctx, const Graph& graph,
                Combine combiner = Combine::kNone)
      : ctx_(ctx),
        graph_(graph),
        combiner_(combiner),
        workers_(graph, ctx.num_machines(), ctx.threads_per_machine()) {
    runnable_.Init(graph.num_vertices());
    // Arena layout: a combiner caps every inbox at one entry; otherwise a
    // vertex can receive one message per in-edge, plus one per out-edge
    // when the algorithm also messages along reversed in-edges (CDLP on
    // directed graphs). Sized once, reused across every superstep.
    const VertexIndex n = graph.num_vertices();
    if (combiner_ != Combine::kNone) {
      inboxes_.ResetUniform(n, 1);
    } else {
      std::vector<std::int64_t> capacities(static_cast<std::size_t>(n));
      for (VertexIndex v = 0; v < n; ++v) {
        capacities[static_cast<std::size_t>(v)] =
            graph.InDegree(v) + (graph.is_directed() ? graph.OutDegree(v) : 0);
      }
      inboxes_.Reset(capacities);
    }
  }

  /// Marks every vertex runnable for the first superstep (self-starting
  /// algorithms). The worklist is ascending 0..n, the order the old
  /// full-vertex sweep executed.
  void ActivateAll() { runnable_.SeedAll(0); }

  /// Injects a message to be delivered in the first superstep; the
  /// target becomes runnable.
  void SeedMessage(VertexIndex target, double value) {
    inboxes_.SeedCurrent(target, value);
    runnable_.Seed(target, 0);
  }

  /// Slot-local view of the runtime handed to a vertex program. Sends and
  /// cost charges land in slot-keyed buffers; per-slot scratch (the CDLP
  /// label counter) comes from the job's ScratchPool so programs stay
  /// race-free without allocating.
  class Scope {
   public:
    Scope(PregelRuntime& runtime, int slot)
        : runtime_(runtime),
          slot_(slot),
          charges_(runtime.ctx_.slot_charges(slot)),
          send_ops_(static_cast<std::uint64_t>(
              runtime.ctx_.profile().ops_per_message +
              runtime.ctx_.profile().ops_per_edge)),
          remote_send_ops_(static_cast<std::uint64_t>(
              5.0 * runtime.ctx_.profile().ops_per_message)),
          single_machine_(runtime.ctx_.num_machines() == 1) {}

    /// Sends a message to `target` for delivery next superstep; charged
    /// to the current vertex's worker, plus wire bytes if it crosses
    /// machines (remote messages also pay (de)serialisation and
    /// Netty-stack CPU, Giraph's distributed-mode penalty). The worker
    /// and machine of the sending vertex are cached by BeginVertex, so a
    /// high-degree scatter pays the placement hash once, not per edge.
    void Send(VertexIndex target, double value) {
      runtime_.outboxes_.buf(slot_).push_back(Message{target, value});
      charges_.worker_ops[current_worker_] += send_ops_;
      if (!single_machine_) ChargeCrossMachine(target);
    }

    /// Bulk send of one value to every target (PageRank shares, label
    /// broadcasts): identical messages and charges to per-target Send
    /// calls, but the outbox append and the op charge are batched.
    void SendToAll(std::span<const VertexIndex> targets, double value) {
      std::vector<Message>& out = runtime_.outboxes_.buf(slot_);
      for (VertexIndex target : targets) {
        out.push_back(Message{target, value});
      }
      charges_.worker_ops[current_worker_] +=
          static_cast<std::uint64_t>(targets.size()) * send_ops_;
      if (!single_machine_) {
        for (VertexIndex target : targets) ChargeCrossMachine(target);
      }
    }

    void VoteToHalt() { halt_requested_ = true; }

    /// Global sum aggregator, visible one superstep later (Giraph-style).
    void AggregateNext(double value) {
      runtime_.aggregator_partials_[slot_] += value;
    }
    double aggregator() const { return runtime_.aggregator_; }

    /// The slot's pooled label counter, cleared (the CDLP mode scratch).
    exec::LabelCounter& labels() {
      return runtime_.ctx_.scratch().labels(slot_);
    }

   private:
    friend class PregelRuntime;

    void BeginVertex(VertexIndex v) {
      current_vertex_ = v;
      current_worker_ = runtime_.workers_.worker_of(v);
      current_machine_ = runtime_.workers_.machine_of(v);
      halt_requested_ = false;
    }

    void ChargeCrossMachine(VertexIndex target) {
      const int target_machine = runtime_.workers_.machine_of(target);
      if (current_machine_ != target_machine) {
        const auto bytes = static_cast<std::uint64_t>(
            runtime_.ctx_.profile().bytes_per_message);
        charges_.comm[current_machine_].bytes_sent += bytes;
        charges_.comm[target_machine].bytes_received += bytes;
        charges_.worker_ops[current_worker_] += remote_send_ops_;
      }
    }

    PregelRuntime& runtime_;
    int slot_;
    JobContext::SlotCharges& charges_;
    const std::uint64_t send_ops_;
    const std::uint64_t remote_send_ops_;
    const bool single_machine_;
    VertexIndex current_vertex_ = 0;
    int current_worker_ = 0;
    int current_machine_ = 0;
    bool halt_requested_ = false;
  };

  /// Runs the vertex program to quiescence (or max_supersteps). The
  /// optional save/load hooks make the algorithm checkpointable: the
  /// runtime checkpoints its OWN state (superstep index, runnable
  /// frontier, pending mail, aggregator) and delegates the algorithm's
  /// vertex values to the hooks. Algorithms that pass no hooks run
  /// exactly as before and never touch a checkpoint.
  template <typename VertexProgram>
  Status Run(VertexProgram&& program, int max_supersteps,
             const std::string& label,
             const std::function<void(resilience::StateWriter&)>&
                 save_algo = {},
             const std::function<Status(const resilience::StateReader&)>&
                 load_algo = {}) {
    int first_superstep = 0;
    if (load_algo) {
      GA_ASSIGN_OR_RETURN(const resilience::StateReader* resume,
                          ctx_.MaybeRestore());
      if (resume != nullptr) {
        std::int64_t step = 0;
        GA_RETURN_IF_ERROR(resume->ReadScalar("bsp/superstep", &step));
        GA_RETURN_IF_ERROR(
            resume->ReadScalar("bsp/aggregator", &aggregator_));
        GA_RETURN_IF_ERROR(
            resilience::LoadFrontier(*resume, "bsp/runnable", &runnable_));
        GA_RETURN_IF_ERROR(
            resilience::LoadArena(*resume, "bsp/inboxes", &inboxes_));
        GA_RETURN_IF_ERROR(load_algo(*resume));
        first_superstep = static_cast<int>(step);
      }
    }
    for (int superstep = first_superstep; superstep < max_supersteps;
         ++superstep) {
      if (runnable_.empty()) break;  // quiescence: no votes, no mail
      GA_RETURN_IF_ERROR(ChargeInboxBuffers(label));

      // Slot decomposition over the FULL vertex range (as the classic
      // sweep used). A *dense* superstep (every vertex runnable — the
      // PR/CDLP steady state) iterates the range directly and stages only
      // the HALTED vertices (usually none); a sparse superstep visits its
      // runnable vertices via an ascending word scan of the frontier's
      // dense bitset, so CSR reads stay in id order and per-slice cost is
      // O(range/64 + runnable).
      const VertexIndex n = graph_.num_vertices();
      const bool dense = runnable_.active_count() == n;
      if (ctx_.tracer().enabled()) {
        ctx_.tracer().AnnotateActive(
            static_cast<std::int64_t>(runnable_.active_count()));
        ctx_.tracer().Annotate("mode", dense ? "dense" : "sparse");
      }
      const int num_slots = exec::ExecContext::NumSlots(n);
      ctx_.PrepareSlotCharges(num_slots);
      ctx_.scratch().Prepare(num_slots);
      outboxes_.Reset(num_slots);
      aggregator_partials_.assign(num_slots, 0.0);

      // Shared by both loop shapes below; must inline — an outlined call
      // per vertex costs more than the frontier machinery it feeds.
      auto execute_vertex = [&](Scope& scope, VertexIndex v)
          __attribute__((always_inline)) {
        const CostProfile& profile = ctx_.profile();
        const std::int64_t mail_count = inboxes_.InboxSize(v);
        scope.charges_.worker_ops[workers_.worker_of(v)] +=
            static_cast<std::uint64_t>(
                profile.ops_per_vertex +
                profile.ops_per_message * static_cast<double>(mail_count));
        scope.charges_.ledger.messages +=
            static_cast<std::uint64_t>(mail_count);
        scope.charges_.ledger.allocations +=
            static_cast<std::uint64_t>(mail_count);
        scope.BeginVertex(v);
        program(v, inboxes_.Inbox(v), superstep, scope);
        inboxes_.RecycleInbox(v);
        return scope.halt_requested_;
      };
      if (dense) {
        halted_.Reset(num_slots);
        exec::parallel_for(
            ctx_.exec(), 0, n, [&](const exec::Slice& slice) {
              Scope scope(*this, slice.slot);
              std::vector<VertexIndex>& halted = halted_.buf(slice.slot);
              for (VertexIndex v = slice.begin; v < slice.end; ++v) {
                if (execute_vertex(scope, v)) halted.push_back(v);
              }
            });
      } else {
        runnable_.PrepareStage(num_slots);
        exec::parallel_for(
            ctx_.exec(), 0, n, [&](const exec::Slice& slice) {
              Scope scope(*this, slice.slot);
              std::vector<VertexIndex>& still_active =
                  runnable_.stage(slice.slot);
              runnable_.ForEachActiveInRange(
                  slice.begin, slice.end, [&](VertexIndex v) {
                    if (!execute_vertex(scope, v)) {
                      still_active.push_back(v);
                    }
                  });
            });
      }

      ctx_.MergeSlotCharges();
      double aggregated = 0.0;
      for (double partial : aggregator_partials_) aggregated += partial;
      aggregator_ = aggregated;
      // Vertices that did not vote to halt run again next superstep.
      // Dense supersteps where nobody halted keep the full frontier as
      // is — no per-vertex commit, no per-message activation, no swap;
      // otherwise the continuing set commits in slot order (ascending)
      // and message delivery activates each target once.
      bool advance = true;
      bool activate_on_delivery = true;
      if (dense) {
        const std::size_t halted_count = halted_.TotalSize();
        if (halted_count == 0) {
          advance = false;
          activate_on_delivery = false;
        } else if (halted_count < static_cast<std::size_t>(n)) {
          // Mixed dense superstep: continuing = everyone minus halted.
          halted_bits_.Resize(static_cast<std::size_t>(n));
          halted_.Drain([&](VertexIndex v) {
            halted_bits_.Set(static_cast<std::size_t>(v));
          });
          for (VertexIndex v = 0; v < n; ++v) {
            if (!halted_bits_.Test(static_cast<std::size_t>(v))) {
              runnable_.Activate(v, 0);
            }
          }
        }  // halted_count == n: nothing continues, mail decides.
      } else {
        runnable_.CommitStage([](VertexIndex) { return EdgeIndex{0}; });
      }
      // Slot-ordered delivery replays the sends in worklist order —
      // exactly the sequence a serial sweep over the worklist would
      // produce. The arena appends (or combines) into flat per-vertex
      // segments; no per-message heap traffic. Only the first delivery
      // to an inbox can change runnability, so activation is per target,
      // not per message — and supersteps that keep the full frontier
      // (dense, nobody halted) skip even that.
      auto deliver = [&](auto&& push_one) {
        if (activate_on_delivery) {
          outboxes_.Drain([&](const Message& message) {
            if (push_one(message)) runnable_.Activate(message.target, 0);
          });
        } else {
          outboxes_.Drain(
              [&](const Message& message) { push_one(message); });
        }
      };
      switch (combiner_) {
        case Combine::kNone:
          deliver([&](const Message& message) {
            return inboxes_.Push(message.target, message.value);
          });
          break;
        case Combine::kMin:
          deliver([&](const Message& message) {
            return inboxes_.PushCombined(
                message.target, message.value,
                [](double a, double b) { return std::min(a, b); });
          });
          break;
        case Combine::kSum:
          deliver([&](const Message& message) {
            return inboxes_.PushCombined(
                message.target, message.value,
                [](double a, double b) { return a + b; });
          });
          break;
      }

      ReleaseInboxBuffers();
      // Consumed inboxes were recycled per vertex inside the program
      // loop (mail only exists at runnable vertices), so the swap is
      // O(1) — no O(n) count sweep.
      inboxes_.AdvanceSuperstepRecycled();
      if (advance) runnable_.Advance();
      GA_RETURN_IF_ERROR(ctx_.EndSuperstep(label));
      // Superstep boundary: the frontier's next side and stage are empty
      // (Advance ran, or a dense no-halt step never staged) and the
      // arena's non-current counts are zero — the narrow state
      // engine_state.h serialises.
      // The writes_enabled() guard keeps the per-superstep cost at zero
      // for non-checkpointed jobs (no std::function construction — the
      // steady-state alloc discipline covers this loop).
      if (save_algo && ctx_.checkpoint_writes_enabled()) {
        GA_RETURN_IF_ERROR(
            ctx_.MaybeCheckpoint([&](resilience::StateWriter& writer) {
              writer.AddScalar("bsp/superstep",
                               static_cast<std::int64_t>(superstep + 1));
              writer.AddScalar("bsp/aggregator", aggregator_);
              resilience::SaveFrontier(writer, "bsp/runnable", runnable_);
              resilience::SaveArena(writer, "bsp/inboxes", inboxes_);
              save_algo(writer);
            }));
      }
    }
    return Status::Ok();
  }

  const WorkerMap& workers() const { return workers_; }

 private:
  Status ChargeInboxBuffers(const std::string& label) {
    charged_bytes_.assign(ctx_.num_machines(), 0);
    for (VertexIndex v : runnable_.active()) {
      if (!inboxes_.InboxEmpty(v)) {
        charged_bytes_[workers_.machine_of(v)] +=
            inboxes_.InboxSize(v) * kMessageObjectBytes;
      }
    }
    for (int m = 0; m < ctx_.num_machines(); ++m) {
      GA_RETURN_IF_ERROR(
          ctx_.ChargeMemory(m, charged_bytes_[m], label + " inboxes"));
    }
    return Status::Ok();
  }

  void ReleaseInboxBuffers() {
    for (int m = 0; m < ctx_.num_machines(); ++m) {
      ctx_.ReleaseMemory(m, charged_bytes_[m]);
    }
  }

  JobContext& ctx_;
  const Graph& graph_;
  Combine combiner_;
  WorkerMap workers_;
  exec::MessageArena<double> inboxes_;
  exec::Frontier runnable_;                // active ∪ has-mail
  exec::SlotBuffers<VertexIndex> halted_;  // dense-superstep halt votes
  Bitset halted_bits_;                     // mixed dense supersteps only
  std::vector<std::int64_t> charged_bytes_;
  exec::SlotBuffers<Message> outboxes_;
  std::vector<double> aggregator_partials_;
  double aggregator_ = 0.0;
};

Result<AlgorithmOutput> RunBfs(JobContext& ctx, const Graph& graph,
                               VertexIndex root) {
  AlgorithmOutput output;
  output.algorithm = Algorithm::kBfs;
  output.int_values.assign(graph.num_vertices(), kUnreachableHops);
  PregelRuntime runtime(ctx, graph, PregelRuntime::Combine::kMin);
  runtime.SeedMessage(root, 0.0);
  GA_RETURN_IF_ERROR(runtime.Run(
      [&](VertexIndex v, std::span<const double> mail, int /*superstep*/,
          PregelRuntime::Scope& rt) {
        std::int64_t best = kUnreachableHops;
        for (double m : mail) {
          best = std::min(best, static_cast<std::int64_t>(m));
        }
        if (best < output.int_values[v]) {
          output.int_values[v] = best;
          rt.SendToAll(graph.OutNeighbors(v),
                       static_cast<double>(best + 1));
        }
        rt.VoteToHalt();
      },
      static_cast<int>(graph.num_vertices()) + 2, "bfs",
      [&](resilience::StateWriter& writer) {
        writer.AddVector("bfs/depths", output.int_values);
      },
      [&](const resilience::StateReader& reader) {
        return reader.ReadVector("bfs/depths", &output.int_values);
      }));
  return output;
}

Result<AlgorithmOutput> RunSssp(JobContext& ctx, const Graph& graph,
                                VertexIndex root) {
  AlgorithmOutput output;
  output.algorithm = Algorithm::kSssp;
  output.double_values.assign(graph.num_vertices(), kUnreachableDistance);
  PregelRuntime runtime(ctx, graph, PregelRuntime::Combine::kMin);
  runtime.SeedMessage(root, 0.0);
  GA_RETURN_IF_ERROR(runtime.Run(
      [&](VertexIndex v, std::span<const double> mail, int /*superstep*/,
          PregelRuntime::Scope& rt) {
        double best = kUnreachableDistance;
        for (double m : mail) best = std::min(best, m);
        if (best < output.double_values[v]) {
          output.double_values[v] = best;
          const auto neighbors = graph.OutNeighbors(v);
          const auto weights = graph.OutWeights(v);
          for (std::size_t i = 0; i < neighbors.size(); ++i) {
            rt.Send(neighbors[i], best + weights[i]);
          }
        }
        rt.VoteToHalt();
      },
      static_cast<int>(graph.num_vertices()) + 2, "sssp"));
  return output;
}

Result<AlgorithmOutput> RunWcc(JobContext& ctx, const Graph& graph) {
  AlgorithmOutput output;
  output.algorithm = Algorithm::kWcc;
  output.int_values.resize(graph.num_vertices());
  for (VertexIndex v = 0; v < graph.num_vertices(); ++v) {
    output.int_values[v] = graph.ExternalId(v);
  }
  PregelRuntime runtime(ctx, graph, PregelRuntime::Combine::kMin);
  runtime.ActivateAll();
  GA_RETURN_IF_ERROR(runtime.Run(
      [&](VertexIndex v, std::span<const double> mail, int superstep,
          PregelRuntime::Scope& rt) {
        std::int64_t label = output.int_values[v];
        bool changed = superstep == 0;  // broadcast once at start
        for (double m : mail) {
          const auto candidate = static_cast<std::int64_t>(m);
          if (candidate < label) {
            label = candidate;
            changed = true;
          }
        }
        output.int_values[v] = label;
        if (changed) {
          // Weak connectivity: propagate along both edge directions.
          rt.SendToAll(graph.OutNeighbors(v), static_cast<double>(label));
          if (graph.is_directed()) {
            rt.SendToAll(graph.InNeighbors(v), static_cast<double>(label));
          }
        }
        rt.VoteToHalt();
      },
      static_cast<int>(graph.num_vertices()) + 2, "wcc",
      [&](resilience::StateWriter& writer) {
        writer.AddVector("wcc/labels", output.int_values);
      },
      [&](const resilience::StateReader& reader) {
        return reader.ReadVector("wcc/labels", &output.int_values);
      }));
  return output;
}

Result<AlgorithmOutput> RunPageRank(JobContext& ctx, const Graph& graph,
                                    int iterations, double damping) {
  const VertexIndex n = graph.num_vertices();
  AlgorithmOutput output;
  output.algorithm = Algorithm::kPageRank;
  output.double_values.assign(n, n > 0 ? 1.0 / static_cast<double>(n) : 0.0);
  if (n == 0 || iterations == 0) return output;

  PregelRuntime runtime(ctx, graph, PregelRuntime::Combine::kSum);
  runtime.ActivateAll();
  // Superstep 0: scatter initial rank; supersteps 1..iterations: gather,
  // update, scatter (except after the final update). The dangling mass is
  // summed with the Giraph-style aggregator and applied next superstep.
  GA_RETURN_IF_ERROR(runtime.Run(
      [&](VertexIndex v, std::span<const double> mail, int superstep,
          PregelRuntime::Scope& rt) {
        if (superstep > 0) {
          double incoming = 0.0;
          for (double m : mail) incoming += m;
          const double base =
              (1.0 - damping) / static_cast<double>(n) +
              damping * rt.aggregator() / static_cast<double>(n);
          output.double_values[v] = base + damping * incoming;
        }
        if (superstep < iterations) {
          const double rank = output.double_values[v];
          const EdgeIndex degree = graph.OutDegree(v);
          if (degree == 0) {
            rt.AggregateNext(rank);
          } else {
            const double share = rank / static_cast<double>(degree);
            rt.SendToAll(graph.OutNeighbors(v), share);
          }
        } else {
          rt.VoteToHalt();
        }
      },
      iterations + 1, "pr",
      [&](resilience::StateWriter& writer) {
        writer.AddVector("pr/ranks", output.double_values);
      },
      [&](const resilience::StateReader& reader) {
        return reader.ReadVector("pr/ranks", &output.double_values);
      }));
  return output;
}

Result<AlgorithmOutput> RunCdlp(JobContext& ctx, const Graph& graph,
                                int iterations) {
  const VertexIndex n = graph.num_vertices();
  AlgorithmOutput output;
  output.algorithm = Algorithm::kCdlp;
  output.int_values.resize(n);
  for (VertexIndex v = 0; v < n; ++v) {
    output.int_values[v] = graph.ExternalId(v);
  }
  if (iterations == 0) return output;

  PregelRuntime runtime(ctx, graph);
  runtime.ActivateAll();
  auto send_label = [&](VertexIndex v, PregelRuntime::Scope& rt) {
    const double label = static_cast<double>(output.int_values[v]);
    // A directed reciprocal pair contributes one vote per direction
    // (Graphalytics CDLP semantics): v's label travels along out-edges,
    // and along in-edges reversed.
    rt.SendToAll(graph.OutNeighbors(v), label);
    if (graph.is_directed()) {
      rt.SendToAll(graph.InNeighbors(v), label);
    }
  };
  GA_RETURN_IF_ERROR(runtime.Run(
      [&](VertexIndex v, std::span<const double> mail, int superstep,
          PregelRuntime::Scope& rt) {
        if (superstep > 0 && !mail.empty()) {
          exec::LabelCounter& labels = rt.labels();
          for (double m : mail) labels.Add(static_cast<std::int64_t>(m));
          output.int_values[v] = labels.Mode();
        }
        if (superstep < iterations) {
          send_label(v, rt);
        } else {
          rt.VoteToHalt();
        }
      },
      iterations + 1, "cdlp"));
  return output;
}

// LCC with neighbourhood-list messages (the Giraph driver's approach):
// superstep 1 conceptually ships each vertex's out-adjacency list to every
// neighbour; superstep 2 intersects. The list buffers are charged to the
// receiving machines — on dense or large graphs this exhausts memory,
// which is exactly the paper's observed failure mode for LCC (§4.2).
// Both phases run host-parallel over vertex slices; each slice owns its
// neighbourhood scratch, and memory/comm charges stage per slot.
Result<AlgorithmOutput> RunLcc(JobContext& ctx, const Graph& graph) {
  const VertexIndex n = graph.num_vertices();
  AlgorithmOutput output;
  output.algorithm = Algorithm::kLcc;
  output.double_values.assign(n, 0.0);
  WorkerMap workers(graph, ctx.num_machines(), ctx.threads_per_machine());
  lcc::NeighborhoodIndex index;
  index.Build(ctx.exec(), graph);

  // Phase 1: neighbourhood exchange. Charge the materialised message
  // buffers: every u ships out(u) to each member of N(u). N(v) comes from
  // the support index (algo/lcc_kernel.h) — no flag arrays.
  const int num_slots =
      exec::ExecContext::NumSlots(n, exec::ExecContext::kScratchSlots);
  ctx.PrepareSlotCharges(num_slots);
  std::vector<std::vector<std::int64_t>> slot_machine_bytes(
      num_slots, std::vector<std::int64_t>(ctx.num_machines(), 0));
  auto lcc_parallel_for = [&](auto&& body) {
    exec::parallel_for(ctx.exec(), 0, n,
                       std::forward<decltype(body)>(body),
                       exec::ExecContext::kScratchSlots);
  };
  lcc_parallel_for([&](const exec::Slice& slice) {
    JobContext::SlotCharges& charges = ctx.slot_charges(slice.slot);
    std::vector<std::int64_t>& machine_bytes =
        slot_machine_bytes[slice.slot];
    for (VertexIndex u = slice.begin; u < slice.end; ++u) {
      const std::span<const VertexIndex> neighborhood = index.Neighbors(u);
      const std::int64_t list_bytes =
          static_cast<std::int64_t>(graph.OutDegree(u)) * 8 + 48;
      for (VertexIndex v : neighborhood) {
        machine_bytes[workers.machine_of(v)] += list_bytes;
        charges.worker_ops[workers.worker_of(u)] +=
            static_cast<std::uint64_t>(
                ctx.profile().ops_per_message +
                ctx.profile().ops_per_edge *
                    static_cast<double>(graph.OutDegree(u)));
        if (workers.machine_of(u) != workers.machine_of(v)) {
          charges.comm[workers.machine_of(u)].bytes_sent +=
              static_cast<std::uint64_t>(list_bytes);
          charges.comm[workers.machine_of(v)].bytes_received +=
              static_cast<std::uint64_t>(list_bytes);
        }
        charges.ledger.messages += 1;
      }
    }
  });
  ctx.MergeSlotCharges();
  std::vector<std::int64_t> machine_bytes(ctx.num_machines(), 0);
  for (const auto& slot_bytes : slot_machine_bytes) {
    for (int m = 0; m < ctx.num_machines(); ++m) {
      machine_bytes[m] += slot_bytes[m];
    }
  }
  for (int m = 0; m < ctx.num_machines(); ++m) {
    GA_RETURN_IF_ERROR(
        ctx.ChargeMemory(m, machine_bytes[m], "lcc neighbour lists"));
  }
  GA_RETURN_IF_ERROR(ctx.EndSuperstep("lcc/exchange"));

  // Phase 2: intersect received lists with the local neighbourhood
  // (degree-oriented triangle counting; `scanned` keeps the modeled
  // per-row scan volume for the op charge).
  std::vector<std::int64_t> links;
  index.CountLinks(ctx.exec(), &links);
  ctx.PrepareSlotCharges(num_slots);
  lcc_parallel_for([&](const exec::Slice& slice) {
    JobContext::SlotCharges& charges = ctx.slot_charges(slice.slot);
    for (VertexIndex v = slice.begin; v < slice.end; ++v) {
      const std::span<const VertexIndex> neighborhood = index.Neighbors(v);
      std::uint64_t scanned = 0;
      if (neighborhood.size() >= 2) {
        scanned = lcc::ScannedEdgesProxy(graph, neighborhood);
        output.double_values[v] = lcc::Coefficient(
            links[v], static_cast<std::int64_t>(neighborhood.size()));
      }
      charges.worker_ops[workers.worker_of(v)] +=
          static_cast<std::uint64_t>(
              ctx.profile().ops_per_vertex +
              ctx.profile().ops_per_message * static_cast<double>(scanned));
    }
  });
  ctx.MergeSlotCharges();
  GA_RETURN_IF_ERROR(ctx.EndSuperstep("lcc/intersect"));
  for (int m = 0; m < ctx.num_machines(); ++m) {
    ctx.ReleaseMemory(m, machine_bytes[m]);
  }
  return output;
}

}  // namespace

BspLitePlatform::BspLitePlatform() {
  info_ = PlatformInfo{"bsplite", "Giraph 1.1.0 (Apache)", "community",
                       "Pregel vertex-centric BSP", /*distributed=*/true};
  profile_.ops_per_edge = 6.0;
  profile_.ops_per_vertex = 12.0;
  profile_.ops_per_message = 25.0;
  profile_.ops_per_load_entry = 17.0;
  profile_.bytes_per_message = 16.0;
  profile_.startup_seconds = 215.0;
  profile_.superstep_overhead_seconds = 0.307;
  profile_.hyperthread_efficiency = 0.15;
  profile_.serial_fraction = 0.11;
  profile_.mem_bytes_per_vertex = 200.0;
  profile_.mem_bytes_per_entry = 24.0;
  profile_.mem_bytes_per_hub_degree = 4500.0;
  profile_.variability_cv = 0.050;
}

Result<AlgorithmOutput> BspLitePlatform::Execute(
    JobContext& ctx, const Graph& graph, Algorithm algorithm,
    const AlgorithmParams& params) {
  switch (algorithm) {
    case Algorithm::kBfs: {
      const VertexIndex root = graph.IndexOf(params.source_vertex);
      if (root == kInvalidVertex) {
        return Status::InvalidArgument("BFS source not in graph");
      }
      return RunBfs(ctx, graph, root);
    }
    case Algorithm::kPageRank:
      return RunPageRank(ctx, graph, params.pagerank_iterations,
                         params.damping_factor);
    case Algorithm::kWcc:
      return RunWcc(ctx, graph);
    case Algorithm::kCdlp:
      return RunCdlp(ctx, graph, params.cdlp_iterations);
    case Algorithm::kLcc:
      return RunLcc(ctx, graph);
    case Algorithm::kSssp: {
      const VertexIndex root = graph.IndexOf(params.source_vertex);
      if (root == kInvalidVertex) {
        return Status::InvalidArgument("SSSP source not in graph");
      }
      return RunSssp(ctx, graph, root);
    }
  }
  return Status::Internal("unknown algorithm");
}

}  // namespace ga::platform
