// BspLite: analogue of Apache Giraph (paper Table 5, row 1).
//
// Implements the Pregel programming model: iterative vertex-centric BSP
// with message passing along edges, vote-to-halt semantics, and a global
// aggregator (used for PageRank's dangling mass, as in Giraph drivers).
// Every superstep delivers the previous superstep's messages to per-vertex
// inboxes, invokes the vertex program on active vertices, and exchanges
// new messages.
//
// Cost character (what makes Giraph slow in the paper): every value that
// crosses an edge is a message object — managed-runtime allocation,
// (de)serialisation and queueing are charged per message, which puts this
// engine ~two orders of magnitude behind the CSR-based engines (§4.1).
// Message inboxes are heap buffers proportional to in-degree; the hub
// inbox of skewed Graph500 graphs is what breaks it at scale 9.0 while the
// Datagen graph of equal scale still fits (§4.6).
#ifndef GRAPHALYTICS_PLATFORMS_BSPLITE_H_
#define GRAPHALYTICS_PLATFORMS_BSPLITE_H_

#include "platforms/platform.h"

namespace ga::platform {

class BspLitePlatform : public Platform {
 public:
  BspLitePlatform();

  const PlatformInfo& info() const override { return info_; }
  const CostProfile& profile() const override { return profile_; }

 protected:
  Result<AlgorithmOutput> Execute(JobContext& ctx, const Graph& graph,
                                  Algorithm algorithm,
                                  const AlgorithmParams& params) override;

 private:
  PlatformInfo info_;
  CostProfile profile_;
};

}  // namespace ga::platform

#endif  // GRAPHALYTICS_PLATFORMS_BSPLITE_H_
