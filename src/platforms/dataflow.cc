#include "platforms/dataflow.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <span>
#include <vector>

#include "algo/lcc_kernel.h"
#include "core/exec/exec.h"
#include "core/exec/scratch_pool.h"
#include "granula/tracer.h"
#include "platforms/worker_map.h"

namespace ga::platform {

namespace {

// Shuffle-row wire/heap footprint (boxed key + value + spill record).
constexpr std::int64_t kRowBytes = 48;
// CDLP shuffle rows: the mode aggregation has no map-side combiner, so
// groupByKey materialises the full label multiset as boxed (Long, Long)
// tuples in hash maps on a managed heap with ~55% usable fraction —
// ~650 effective bytes per vote. This is what makes GraphX "unable to
// complete CDLP" even on R4(S) in the paper (§4.2).
constexpr std::int64_t kCdlpRowBytes = 650;

struct MessageRow {
  VertexIndex dst;
  double value;
};

// The dataflow runtime: tracks row processing, shuffles (real sorts),
// memory for double-buffered shuffle files, and cross-machine bytes.
class DataflowRuntime {
 public:
  DataflowRuntime(JobContext& ctx, const Graph& graph)
      : ctx_(ctx),
        graph_(graph),
        workers_(graph, ctx.num_machines(), ctx.threads_per_machine()) {}

  ~DataflowRuntime() { ReleaseIterationBuffers(); }

  // Charges `rows` row-scans, spread across all workers (Spark balances
  // shuffle partitions); `op_factor` scales the per-row cost.
  void ChargeRows(std::uint64_t rows, double op_factor = 1.0) {
    const double per_row = ctx_.profile().ops_per_message * op_factor;
    const std::uint64_t total =
        static_cast<std::uint64_t>(static_cast<double>(rows) * per_row);
    const int workers = ctx_.num_workers();
    for (int w = 0; w < workers; ++w) {
      ctx_.worker_ops()[w] += total / workers;
    }
    ctx_.worker_ops()[0] += total % workers;
    ctx_.ledger().rows_materialized += rows;
  }

  // Real shuffle: sorts messages by destination and charges comparison
  // costs plus cross-machine traffic (a row moves when the destination
  // vertex's machine differs from the source's hash partition).
  void Shuffle(std::vector<MessageRow>* messages,
               std::int64_t row_bytes = kRowBytes) {
    if (messages->empty()) return;
    ChargeShuffle(messages->size(), row_bytes);
    std::sort(messages->begin(), messages->end(),
              [](const MessageRow& a, const MessageRow& b) {
                return a.dst < b.dst;
              });
  }

  // Shuffle variant for order-insensitive groupings (CDLP's mode counts a
  // multiset): a stable bucket scatter by destination, O(rows + n)
  // instead of a comparison sort. Simulated charges are identical to
  // Shuffle's — only the host-side grouping mechanism is cheaper; the
  // within-group row order differs, which a counting aggregation cannot
  // observe. Scatter scratch is pooled across iterations.
  void ShuffleByDestination(std::vector<MessageRow>* messages,
                            VertexIndex num_vertices,
                            std::int64_t row_bytes) {
    if (messages->empty()) return;
    ChargeShuffle(messages->size(), row_bytes);
    dst_offsets_.assign(static_cast<std::size_t>(num_vertices) + 1, 0);
    for (const MessageRow& row : *messages) {
      ++dst_offsets_[static_cast<std::size_t>(row.dst) + 1];
    }
    for (VertexIndex v = 0; v < num_vertices; ++v) {
      dst_offsets_[static_cast<std::size_t>(v) + 1] +=
          dst_offsets_[static_cast<std::size_t>(v)];
    }
    shuffle_scratch_.resize(messages->size());
    for (const MessageRow& row : *messages) {
      shuffle_scratch_[static_cast<std::size_t>(
          dst_offsets_[static_cast<std::size_t>(row.dst)]++)] = row;
    }
    messages->swap(shuffle_scratch_);
  }

 private:
  void ChargeShuffle(std::size_t rows, std::int64_t row_bytes) {
    const double log_rows =
        std::max(1.0, std::log2(static_cast<double>(rows)));
    ChargeRows(static_cast<std::uint64_t>(
                   static_cast<double>(rows) * log_rows / 12.0),
               2.0);
    if (ctx_.num_machines() > 1) {
      // Roughly (p-1)/p of rows cross machines under hash partitioning;
      // map-side combining shrinks the shipped rows by ~4x (except for
      // CDLP, whose mode aggregation cannot combine — its heavier
      // row_bytes already reflect that).
      constexpr double kMapSideCombine = 4.0;
      const double cross_fraction =
          static_cast<double>(ctx_.num_machines() - 1) /
          static_cast<double>(ctx_.num_machines());
      const auto cross_bytes = static_cast<std::uint64_t>(
          cross_fraction * static_cast<double>(rows) *
          static_cast<double>(ctx_.profile().bytes_per_message) /
          (kMapSideCombine * static_cast<double>(ctx_.num_machines())));
      (void)row_bytes;
      for (int m = 0; m < ctx_.num_machines(); ++m) {
        ctx_.machine_comm()[m].bytes_sent += cross_bytes;
        ctx_.machine_comm()[m].bytes_received += cross_bytes;
      }
    }
  }

 public:
  // Shuffle files + materialised RDD of this iteration stay resident until
  // the next iteration replaces them (GraphX unpersists the previous one).
  Status ChargeIterationBuffers(std::uint64_t rows, std::int64_t row_bytes) {
    ReleaseIterationBuffers();
    charged_per_machine_ =
        static_cast<std::int64_t>(rows) * row_bytes /
        std::max(ctx_.num_machines(), 1);
    for (int m = 0; m < ctx_.num_machines(); ++m) {
      GA_RETURN_IF_ERROR(
          ctx_.ChargeMemory(m, charged_per_machine_, "shuffle buffers"));
    }
    charged_ = true;
    return Status::Ok();
  }

  void ReleaseIterationBuffers() {
    if (!charged_) return;
    for (int m = 0; m < ctx_.num_machines(); ++m) {
      ctx_.ReleaseMemory(m, charged_per_machine_);
    }
    charged_ = false;
  }

  const WorkerMap& workers() const { return workers_; }

 private:
  JobContext& ctx_;
  const Graph& graph_;
  WorkerMap workers_;
  std::int64_t charged_per_machine_ = 0;
  bool charged_ = false;
  std::vector<EdgeIndex> dst_offsets_;      // bucket-scatter prefix sums
  std::vector<MessageRow> shuffle_scratch_;  // bucket-scatter target
};

// GraphX-Pregel skeleton over double-valued vertex state.
//
//   send(edge_source_state, edge, forward?) -> optional message value
//   merge(a, b) -> combined message
//   apply(v, old_state, merged) -> new state
//
// `reverse_sends` additionally evaluates each edge in the reverse
// direction (GraphX triplets can message both endpoints), used by WCC and
// CDLP on directed graphs.
template <typename SendFn, typename MergeFn, typename ApplyFn>
Status RunGraphxPregel(JobContext& ctx, const Graph& graph,
                       DataflowRuntime& runtime,
                       std::vector<double>* state,
                       std::vector<char>* active, int max_iterations,
                       bool reverse_sends, std::int64_t row_bytes,
                       double row_op_factor, const std::string& label,
                       SendFn&& send, MergeFn&& merge, ApplyFn&& apply) {
  std::vector<MessageRow> messages;
  exec::SlotBuffers<MessageRow> emitted;
  std::vector<char> next_active;
  for (int iteration = 0; iteration < max_iterations; ++iteration) {
    bool any_active = false;
    for (char a : *active) {
      if (a) {
        any_active = true;
        break;
      }
    }
    if (!any_active) break;
    if (ctx.tracer().enabled()) {
      // Traced-only occupancy probe: count of active vertices feeding
      // this iteration's full-edge-table triplet scan.
      std::int64_t active_count = 0;
      for (char a : *active) active_count += a ? 1 : 0;
      ctx.tracer().AnnotateActive(active_count);
    }

    // Triplet phase: the FULL edge table is scanned (GraphX cannot skip
    // inactive triplets without a full pass). The scan runs host-parallel
    // over edge slices; per-slot outputs concatenated in slot order
    // reproduce the serial emission sequence exactly.
    messages.clear();
    std::span<const Edge> edges = graph.edges();
    emitted.Reset(exec::ExecContext::NumSlots(
        static_cast<std::int64_t>(edges.size())));
    exec::parallel_for(
        ctx.exec(), 0, static_cast<std::int64_t>(edges.size()),
        [&](const exec::Slice& slice) {
          std::vector<MessageRow>& out = emitted.buf(slice.slot);
          for (std::int64_t e = slice.begin; e < slice.end; ++e) {
            const Edge& edge = edges[e];
            if ((*active)[edge.source]) {
              auto value =
                  send((*state)[edge.source], edge, /*forward=*/true);
              if (value) out.push_back({edge.target, *value});
            }
            const bool evaluate_reverse =
                !graph.is_directed() || reverse_sends;
            if (evaluate_reverse && (*active)[edge.target]) {
              auto value =
                  send((*state)[edge.target], edge, /*forward=*/false);
              if (value) out.push_back({edge.source, *value});
            }
          }
        });
    emitted.MergeInto(&messages);
    runtime.ChargeRows(graph.edges().size() * 2, row_op_factor);
    runtime.Shuffle(&messages, row_bytes);

    // Reduce by key + join: produces a brand-new vertex table. The
    // retained shuffle buffers hold the post-combine rows (one per
    // distinct destination; GraphX's aggregateMessages combines
    // map-side), not the raw message multiset.
    next_active.assign(state->size(), 0);
    std::size_t groups = 0;
    std::size_t i = 0;
    while (i < messages.size()) {
      const VertexIndex v = messages[i].dst;
      double combined = messages[i].value;
      std::size_t j = i + 1;
      while (j < messages.size() && messages[j].dst == v) {
        combined = merge(combined, messages[j].value);
        ++j;
      }
      if (apply(v, &(*state)[v], combined)) next_active[v] = 1;
      ++groups;
      i = j;
    }
    runtime.ChargeRows(messages.size() + state->size());
    GA_RETURN_IF_ERROR(runtime.ChargeIterationBuffers(
        groups + state->size(), row_bytes));
    active->swap(next_active);
    GA_RETURN_IF_ERROR(ctx.EndSuperstep(label));
  }
  runtime.ReleaseIterationBuffers();
  return Status::Ok();
}

Result<AlgorithmOutput> RunBfs(JobContext& ctx, const Graph& graph,
                               VertexIndex root) {
  DataflowRuntime runtime(ctx, graph);
  const VertexIndex n = graph.num_vertices();
  std::vector<double> state(n, static_cast<double>(kUnreachableHops));
  std::vector<char> active(n, 0);
  state[root] = 0;
  active[root] = 1;
  GA_RETURN_IF_ERROR(RunGraphxPregel(
      ctx, graph, runtime, &state, &active, static_cast<int>(n) + 1,
      /*reverse_sends=*/false, kRowBytes, 1.0, "bfs",
      [&](double source_state, const Edge&, bool) -> std::optional<double> {
        return source_state + 1.0;
      },
      [](double a, double b) { return std::min(a, b); },
      [](VertexIndex, double* value, double merged) {
        if (merged < *value) {
          *value = merged;
          return true;
        }
        return false;
      }));
  AlgorithmOutput output;
  output.algorithm = Algorithm::kBfs;
  output.int_values.resize(n);
  for (VertexIndex v = 0; v < n; ++v) {
    // Compare in double space: the unreachable sentinel exceeds the exact
    // double range and must not be cast back to int64.
    output.int_values[v] = state[v] >= 1e15
                               ? kUnreachableHops
                               : static_cast<std::int64_t>(state[v]);
  }
  return output;
}

Result<AlgorithmOutput> RunSssp(JobContext& ctx, const Graph& graph,
                                VertexIndex root) {
  DataflowRuntime runtime(ctx, graph);
  const VertexIndex n = graph.num_vertices();
  std::vector<double> state(n, kUnreachableDistance);
  std::vector<char> active(n, 0);
  state[root] = 0.0;
  active[root] = 1;
  GA_RETURN_IF_ERROR(RunGraphxPregel(
      ctx, graph, runtime, &state, &active, static_cast<int>(n) + 1,
      /*reverse_sends=*/false, kRowBytes, 1.0, "sssp",
      [&](double source_state, const Edge& edge,
          bool) -> std::optional<double> {
        return source_state + edge.weight;
      },
      [](double a, double b) { return std::min(a, b); },
      [](VertexIndex, double* value, double merged) {
        if (merged < *value) {
          *value = merged;
          return true;
        }
        return false;
      }));
  AlgorithmOutput output;
  output.algorithm = Algorithm::kSssp;
  output.double_values = std::move(state);
  return output;
}

Result<AlgorithmOutput> RunWcc(JobContext& ctx, const Graph& graph) {
  DataflowRuntime runtime(ctx, graph);
  const VertexIndex n = graph.num_vertices();
  std::vector<double> state(n);
  for (VertexIndex v = 0; v < n; ++v) {
    state[v] = static_cast<double>(graph.ExternalId(v));
  }
  std::vector<char> active(n, 1);
  GA_RETURN_IF_ERROR(RunGraphxPregel(
      ctx, graph, runtime, &state, &active, static_cast<int>(n) + 1,
      /*reverse_sends=*/true, kRowBytes, 1.0, "wcc",
      [&](double source_state, const Edge&, bool) -> std::optional<double> {
        return source_state;
      },
      [](double a, double b) { return std::min(a, b); },
      [](VertexIndex, double* value, double merged) {
        if (merged < *value) {
          *value = merged;
          return true;
        }
        return false;
      }));
  AlgorithmOutput output;
  output.algorithm = Algorithm::kWcc;
  output.int_values.resize(n);
  for (VertexIndex v = 0; v < n; ++v) {
    output.int_values[v] = static_cast<std::int64_t>(state[v]);
  }
  return output;
}

Result<AlgorithmOutput> RunPageRank(JobContext& ctx, const Graph& graph,
                                    int iterations, double damping) {
  DataflowRuntime runtime(ctx, graph);
  const VertexIndex n = graph.num_vertices();
  AlgorithmOutput output;
  output.algorithm = Algorithm::kPageRank;
  output.double_values.assign(n, n > 0 ? 1.0 / static_cast<double>(n) : 0.0);
  if (n == 0) return output;
  std::vector<double>& rank = output.double_values;
  std::vector<MessageRow> messages;
  exec::SlotBuffers<MessageRow> emitted;
  std::vector<double> next;
  std::vector<double> dangling_scratch;

  for (int iteration = 0; iteration < iterations; ++iteration) {
    messages.clear();
    const double dangling = exec::parallel_reduce(
        ctx.exec(), 0, n, 0.0,
        [&](const exec::Slice& slice, double& acc) {
          for (VertexIndex v = slice.begin; v < slice.end; ++v) {
            if (graph.OutDegree(v) == 0) acc += rank[v];
          }
        },
        [](double& into, double from) { into += from; },
        &dangling_scratch);
    std::span<const Edge> edges = graph.edges();
    emitted.Reset(exec::ExecContext::NumSlots(
        static_cast<std::int64_t>(edges.size())));
    exec::parallel_for(
        ctx.exec(), 0, static_cast<std::int64_t>(edges.size()),
        [&](const exec::Slice& slice) {
          std::vector<MessageRow>& out = emitted.buf(slice.slot);
          for (std::int64_t e = slice.begin; e < slice.end; ++e) {
            const Edge& edge = edges[e];
            out.push_back(
                {edge.target,
                 rank[edge.source] /
                     static_cast<double>(graph.OutDegree(edge.source))});
            if (!graph.is_directed()) {
              out.push_back(
                  {edge.source,
                   rank[edge.target] /
                       static_cast<double>(graph.OutDegree(edge.target))});
            }
          }
        });
    emitted.MergeInto(&messages);
    runtime.ChargeRows(graph.edges().size() * 2);
    // PageRank scatters along every edge, and GraphX materialises the
    // rank-joined triplet messages *before* the reduce can shrink them —
    // the per-iteration buffer holds the raw message multiset. This is
    // why PR needs 4 machines on D1000 where BFS needs only 2 (§4.4).
    GA_RETURN_IF_ERROR(runtime.ChargeIterationBuffers(
        messages.size() + static_cast<std::uint64_t>(n), kRowBytes));
    runtime.Shuffle(&messages);

    const double base = (1.0 - damping) / static_cast<double>(n) +
                        damping * dangling / static_cast<double>(n);
    next.assign(n, base);
    for (const MessageRow& row : messages) {
      next[row.dst] += damping * row.value;
    }
    runtime.ChargeRows(messages.size() + n);
    if (ctx.tracer().enabled()) {
      // Traced-only convergence probe: L1 delta between successive
      // rank vectors, observed before the swap installs the update.
      double residual = 0.0;
      for (VertexIndex v = 0; v < n; ++v) {
        residual += std::abs(next[v] - rank[v]);
      }
      ctx.tracer().AnnotateResidual(residual);
      ctx.tracer().AnnotateActive(n);
    }
    rank.swap(next);
    GA_RETURN_IF_ERROR(ctx.EndSuperstep("pr"));
  }
  runtime.ReleaseIterationBuffers();
  return output;
}

Result<AlgorithmOutput> RunCdlp(JobContext& ctx, const Graph& graph,
                                int iterations) {
  DataflowRuntime runtime(ctx, graph);
  const VertexIndex n = graph.num_vertices();
  AlgorithmOutput output;
  output.algorithm = Algorithm::kCdlp;
  output.int_values.resize(n);
  for (VertexIndex v = 0; v < n; ++v) {
    output.int_values[v] = graph.ExternalId(v);
  }
  std::vector<MessageRow> messages;
  exec::SlotBuffers<MessageRow> emitted;
  exec::LabelCounter votes;
  std::vector<std::int64_t> next;

  for (int iteration = 0; iteration < iterations; ++iteration) {
    messages.clear();
    std::span<const Edge> edges = graph.edges();
    emitted.Reset(exec::ExecContext::NumSlots(
        static_cast<std::int64_t>(edges.size())));
    exec::parallel_for(
        ctx.exec(), 0, static_cast<std::int64_t>(edges.size()),
        [&](const exec::Slice& slice) {
          std::vector<MessageRow>& out = emitted.buf(slice.slot);
          for (std::int64_t e = slice.begin; e < slice.end; ++e) {
            const Edge& edge = edges[e];
            // Labels travel both ways: along the edge and its reverse
            // (for directed graphs each direction is a separate vote).
            out.push_back({edge.target,
                           static_cast<double>(
                               output.int_values[edge.source])});
            out.push_back({edge.source,
                           static_cast<double>(
                               output.int_values[edge.target])});
          }
        });
    emitted.MergeInto(&messages);
    // groupByKey: no map-side combine exists for the mode aggregation, so
    // the full label multiset is shuffled and grouped (the reason GraphX
    // cannot complete CDLP in the paper, §4.2).
    runtime.ChargeRows(graph.edges().size() * 2, 4.0);
    GA_RETURN_IF_ERROR(
        runtime.ChargeIterationBuffers(messages.size() + n, kCdlpRowBytes));
    runtime.ShuffleByDestination(&messages, n, kCdlpRowBytes);

    next.assign(output.int_values.begin(), output.int_values.end());
    std::size_t i = 0;
    while (i < messages.size()) {
      const VertexIndex v = messages[i].dst;
      votes.Clear();
      std::size_t j = i;
      while (j < messages.size() && messages[j].dst == v) {
        votes.Add(static_cast<std::int64_t>(messages[j].value));
        ++j;
      }
      next[v] = votes.Mode();
      i = j;
    }
    runtime.ChargeRows(messages.size(), 4.0);
    output.int_values.swap(next);
    ctx.tracer().AnnotateActive(n);
    GA_RETURN_IF_ERROR(ctx.EndSuperstep("cdlp"));
  }
  runtime.ReleaseIterationBuffers();
  return output;
}

Result<AlgorithmOutput> RunLcc(JobContext& ctx, const Graph& graph) {
  DataflowRuntime runtime(ctx, graph);
  const VertexIndex n = graph.num_vertices();

  // The neighbourhood join materialises sum_v sum_{u in N(v)} deg(u) rows.
  // Charge that memory up front (computable in O(n)); on dense graphs this
  // is where the job dies, before any compute happens — as observed for
  // GraphX in the paper (§4.2).
  const double join_rows = exec::parallel_reduce(
      ctx.exec(), 0, n, 0.0,
      [&](const exec::Slice& slice, double& acc) {
        for (VertexIndex v = slice.begin; v < slice.end; ++v) {
          const double degree =
              static_cast<double>(graph.OutDegree(v)) +
              (graph.is_directed()
                   ? static_cast<double>(graph.InDegree(v))
                   : 0.0);
          acc += degree * degree;
        }
      },
      [](double& into, double from) { into += from; });
  GA_RETURN_IF_ERROR(runtime.ChargeIterationBuffers(
      static_cast<std::uint64_t>(join_rows), kRowBytes));

  AlgorithmOutput output;
  output.algorithm = Algorithm::kLcc;
  output.double_values.assign(n, 0.0);
  // Host-parallel degree-oriented triangle counting over the sorted CSR
  // (algo/lcc_kernel.h); the scanned-row counts charged per slot keep the
  // modeled join's flag-scan volume, so the simulated cost is unchanged.
  lcc::NeighborhoodIndex index;
  index.Build(ctx.exec(), graph);
  std::vector<std::int64_t> links;
  index.CountLinks(ctx.exec(), &links);
  const int num_slots =
      exec::ExecContext::NumSlots(n, exec::ExecContext::kScratchSlots);
  std::vector<std::uint64_t> slot_scanned(std::max(num_slots, 1), 0);
  exec::parallel_for(
      ctx.exec(), 0, n,
      [&](const exec::Slice& slice) {
    for (VertexIndex v = slice.begin; v < slice.end; ++v) {
      const std::span<const VertexIndex> neighborhood = index.Neighbors(v);
      if (neighborhood.size() < 2) continue;
      slot_scanned[slice.slot] += lcc::ScannedEdgesProxy(graph, neighborhood);
      output.double_values[v] = lcc::Coefficient(
          links[v], static_cast<std::int64_t>(neighborhood.size()));
    }
      },
      exec::ExecContext::kScratchSlots);
  for (int slot = 0; slot < num_slots; ++slot) {
    runtime.ChargeRows(slot_scanned[slot]);
  }
  GA_RETURN_IF_ERROR(ctx.EndSuperstep("lcc"));
  runtime.ReleaseIterationBuffers();
  return output;
}

}  // namespace

DataflowPlatform::DataflowPlatform() {
  info_ = PlatformInfo{"dataflow", "GraphX 1.6.0 (Apache Spark)",
                       "community", "Spark RDD dataflow (triplet joins)",
                       /*distributed=*/true};
  profile_.ops_per_edge = 4.0;
  profile_.ops_per_vertex = 8.0;
  profile_.ops_per_message = 10.0;  // per shuffle row
  profile_.ops_per_load_entry = 14.0;
  profile_.bytes_per_message = 40.0;
  profile_.startup_seconds = 164.0;
  profile_.superstep_overhead_seconds = 1.02;  // task scheduling per stage
  profile_.hyperthread_efficiency = 0.05;
  profile_.serial_fraction = 0.19;
  profile_.mem_bytes_per_vertex = 256.0;
  profile_.mem_bytes_per_entry = 46.0;
  profile_.mem_bytes_per_hub_degree = 4000.0;
  profile_.variability_cv = 0.026;
}

Result<AlgorithmOutput> DataflowPlatform::Execute(
    JobContext& ctx, const Graph& graph, Algorithm algorithm,
    const AlgorithmParams& params) {
  switch (algorithm) {
    case Algorithm::kBfs: {
      const VertexIndex root = graph.IndexOf(params.source_vertex);
      if (root == kInvalidVertex) {
        return Status::InvalidArgument("BFS source not in graph");
      }
      return RunBfs(ctx, graph, root);
    }
    case Algorithm::kPageRank:
      return RunPageRank(ctx, graph, params.pagerank_iterations,
                         params.damping_factor);
    case Algorithm::kWcc:
      return RunWcc(ctx, graph);
    case Algorithm::kCdlp:
      return RunCdlp(ctx, graph, params.cdlp_iterations);
    case Algorithm::kLcc:
      return RunLcc(ctx, graph);
    case Algorithm::kSssp: {
      const VertexIndex root = graph.IndexOf(params.source_vertex);
      if (root == kInvalidVertex) {
        return Status::InvalidArgument("SSSP source not in graph");
      }
      return RunSssp(ctx, graph, root);
    }
  }
  return Status::Internal("unknown algorithm");
}

}  // namespace ga::platform
