// DataflowDF: analogue of Apache GraphX (paper Table 5, row 2).
//
// Implements Pregel-on-dataflow the way GraphX's Pregel operator does:
// the graph lives in immutable vertex/edge tables; every iteration scans
// the *full* edge table to form triplets (regardless of how few vertices
// are active), shuffles the emitted messages by destination (a real sort
// in this engine), reduces by key, and joins the result back into a new
// vertex table (copy-on-write materialisation).
//
// Cost character: the full-table scans, sorts and re-materialisation per
// iteration make this the slowest engine — two orders of magnitude behind
// the CSR engines, worst on iteration-heavy workloads (§4.1, §4.2) — and
// the per-iteration shuffle rows are what exhaust memory for PageRank on
// few machines (§4.4) and break CDLP, which has no combiner (§4.2).
#ifndef GRAPHALYTICS_PLATFORMS_DATAFLOW_H_
#define GRAPHALYTICS_PLATFORMS_DATAFLOW_H_

#include "platforms/platform.h"

namespace ga::platform {

class DataflowPlatform : public Platform {
 public:
  DataflowPlatform();

  const PlatformInfo& info() const override { return info_; }
  const CostProfile& profile() const override { return profile_; }

 protected:
  Result<AlgorithmOutput> Execute(JobContext& ctx, const Graph& graph,
                                  Algorithm algorithm,
                                  const AlgorithmParams& params) override;

 private:
  PlatformInfo info_;
  CostProfile profile_;
};

}  // namespace ga::platform

#endif  // GRAPHALYTICS_PLATFORMS_DATAFLOW_H_
