#include "platforms/gaslite.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "algo/lcc_kernel.h"
#include "core/exec/exec.h"
#include "core/exec/frontier.h"
#include "core/exec/scratch_pool.h"
#include "core/partition.h"
#include "core/rng.h"
#include "granula/tracer.h"

namespace ga::platform {

namespace {

// Vertex-cut deployment of a graph: a flat machine-grouped view over the
// Graph's canonical edge array plus the master/mirror placement of every
// vertex. The former per-machine vector<vector<Edge>> duplicated every
// edge; here a stable counting sort by owning machine produces one index
// permutation — machine m's edges are edge_ids_of(m), in the same order
// the per-machine lists used to hold them, at a third of the memory and
// with no growth reallocation.
class GasDeployment {
 public:
  GasDeployment(const Graph& graph, int machines)
      : graph_(graph),
        machines_(machines),
        partition_(GreedyVertexCut(graph, machines)),
        hosts_(graph.num_vertices(), 0) {
    std::span<const Edge> edges = graph.edges();
    machine_offsets_.assign(static_cast<std::size_t>(machines) + 1, 0);
    for (std::size_t e = 0; e < edges.size(); ++e) {
      const int m = partition_.part_of_edge[e];
      ++machine_offsets_[static_cast<std::size_t>(m) + 1];
      hosts_[edges[e].source] |= 1ULL << m;
      hosts_[edges[e].target] |= 1ULL << m;
    }
    for (int m = 0; m < machines; ++m) {
      machine_offsets_[static_cast<std::size_t>(m) + 1] +=
          machine_offsets_[static_cast<std::size_t>(m)];
    }
    edge_ids_.resize(edges.size());
    std::vector<EdgeIndex> cursor(machine_offsets_.begin(),
                                  machine_offsets_.end() - 1);
    for (std::size_t e = 0; e < edges.size(); ++e) {
      edge_ids_[static_cast<std::size_t>(
          cursor[partition_.part_of_edge[e]]++)] =
          static_cast<EdgeIndex>(e);
    }
  }

  int machines() const { return machines_; }
  /// Indices into graph.edges() owned by `machine`, in canonical order.
  std::span<const EdgeIndex> edge_ids_of(int machine) const {
    const auto begin =
        static_cast<std::size_t>(machine_offsets_[machine]);
    const auto end =
        static_cast<std::size_t>(machine_offsets_[machine + 1]);
    return {edge_ids_.data() + begin, end - begin};
  }
  std::size_t edge_count(int machine) const {
    return static_cast<std::size_t>(machine_offsets_[machine + 1] -
                                    machine_offsets_[machine]);
  }
  int master_of(VertexIndex v) const { return partition_.master_of[v]; }
  int mirrors_of(VertexIndex v) const {
    const int hosting = std::popcount(hosts_[v]);
    return hosting > 0 ? hosting - 1 : 0;
  }
  double replication_factor() const {
    return partition_.replication_factor;
  }

 private:
  const Graph& graph_;
  int machines_;
  EdgePartition partition_;
  std::vector<std::uint64_t> hosts_;
  std::vector<EdgeIndex> machine_offsets_;  // machines+1 prefix sums
  std::vector<EdgeIndex> edge_ids_;         // grouped by machine
};

// Charges gather/scatter work and mirror synchronisation. The Charge*
// methods write to a SlotCharges staging area, so they may be called from
// inside host-parallel loops; JobContext::MergeSlotCharges folds the
// slots in fixed order afterwards.
class GasRuntime {
 public:
  GasRuntime(JobContext& ctx, const GasDeployment& deployment)
      : ctx_(ctx), deployment_(deployment) {}

  void ChargeEdgeWork(JobContext::SlotCharges& charges, int machine,
                      std::size_t edge_index, double ops) {
    const int thread = static_cast<int>(
        Mix64(edge_index * 0x9E37ULL + machine) %
        static_cast<std::uint64_t>(ctx_.threads_per_machine()));
    charges.worker_ops[ctx_.WorkerOf(machine, thread)] +=
        static_cast<std::uint64_t>(ops);
  }

  /// Per-worker edge counts of one full sweep over every machine's
  /// edges, matching ChargeEdgeWork's hash placement. PR/CDLP charge
  /// every edge a fixed cost each superstep, so they compute this once
  /// and re-add counts * ops per superstep instead of re-hashing O(E).
  std::vector<std::uint64_t> SweepWorkerCounts() const {
    std::vector<std::uint64_t> counts(
        static_cast<std::size_t>(ctx_.num_machines()) *
            static_cast<std::size_t>(ctx_.threads_per_machine()),
        0);
    for (int m = 0; m < deployment_.machines(); ++m) {
      const std::size_t num_edges = deployment_.edge_count(m);
      for (std::size_t e = 0; e < num_edges; ++e) {
        const int thread = static_cast<int>(
            Mix64(e * 0x9E37ULL + m) %
            static_cast<std::uint64_t>(ctx_.threads_per_machine()));
        ++counts[ctx_.WorkerOf(m, thread)];
      }
    }
    return counts;
  }

  void ChargeApply(JobContext::SlotCharges& charges, VertexIndex v,
                   double ops) {
    const int machine = deployment_.master_of(v);
    const int thread = static_cast<int>(
        Mix64(static_cast<std::uint64_t>(v)) %
        static_cast<std::uint64_t>(ctx_.threads_per_machine()));
    charges.worker_ops[ctx_.WorkerOf(machine, thread)] +=
        static_cast<std::uint64_t>(ops);
  }

  // Mirror -> master partial sync plus master -> mirror broadcast for one
  // updated vertex.
  void ChargeMirrorSync(JobContext::SlotCharges& charges, VertexIndex v) {
    const int mirrors = deployment_.mirrors_of(v);
    if (mirrors == 0 || ctx_.num_machines() == 1) return;
    const auto bytes = static_cast<std::uint64_t>(
        ctx_.profile().bytes_per_message * 2.0 *
        static_cast<double>(mirrors));
    const int master = deployment_.master_of(v);
    charges.comm[master].bytes_sent += bytes / 2;
    charges.comm[master].bytes_received += bytes / 2;
    // Mirrors' traffic is spread across the other machines; approximate by
    // charging the aggregate to the master's peers evenly.
    for (int m = 0; m < ctx_.num_machines(); ++m) {
      if (m == master) continue;
      charges.comm[m].bytes_sent +=
          bytes / (2 * std::max(ctx_.num_machines() - 1, 1));
      charges.comm[m].bytes_received +=
          bytes / (2 * std::max(ctx_.num_machines() - 1, 1));
    }
    charges.ledger.messages += static_cast<std::uint64_t>(2 * mirrors);
  }

 private:
  JobContext& ctx_;
  const GasDeployment& deployment_;
};

// Generic frontier propagation (BFS / SSSP / WCC share it): values only
// ever decrease; an edge relaxation that lowers the target's value puts
// the target in the next frontier (a hybrid exec::Frontier). Two scatter
// modes, chosen per round from frontier stats alone (deterministic at any
// host thread count):
//
//   * dense (heavy frontier): the historical machine-by-machine sweep
//     over every machine's edge permutation, testing endpoint activity
//     against the frontier's dense bitset; machine m's commits land
//     before machine m+1 scatters, so a label can hop machines within a
//     round (PowerGraph's per-machine gather/apply interleave).
//   * sparse (light frontier): scatter straight from the sparse queue
//     over the CSR adjacency — work proportional to the frontier's edge
//     volume instead of O(E) per round; candidates stage per slot and
//     commit once after the scan.
// `improves(target, value)` is commit's side-effect-free filter: the
// sparse mode applies it at scan time so hopeless candidates never stage
// (the dense sweep keeps its historical propose-everything behaviour).
template <typename Value, typename Propose, typename Improves,
          typename Commit>
Status RunFrontierPropagation(JobContext& ctx, const Graph& graph,
                            const GasDeployment& deployment,
                            GasRuntime& runtime, exec::Frontier* frontier,
                            bool traverse_reverse, const std::string& label,
                            Propose&& propose, Improves&& improves,
                            Commit&& commit) {
  struct Candidate {
    VertexIndex target;
    Value value;
  };
  const bool directed = graph.is_directed();
  const bool usable_reverse = !directed || traverse_reverse;
  auto scan_degree = [&](VertexIndex v) -> EdgeIndex {
    return graph.OutDegree(v) +
           ((directed && traverse_reverse) ? graph.InDegree(v) : 0);
  };
  const auto total_scan =
      static_cast<std::int64_t>(graph.num_adjacency_entries()) *
      ((directed && traverse_reverse) ? 2 : 1);
  exec::Frontier& active = *frontier;
  exec::SlotBuffers<Candidate> candidates;
  const int max_rounds = static_cast<int>(graph.num_vertices()) + 2;
  for (int round = 0; round < max_rounds && !active.empty(); ++round) {
    std::span<const Edge> all_edges = graph.edges();
    if (granula::TracedDecide(ctx.tracer(), active, total_scan,
                              exec::Frontier::kPullAlphaSweep) ==
        exec::TraversalDirection::kPull) {
      // Dense sweep, one machine at a time.
      for (int m = 0; m < deployment.machines(); ++m) {
        std::span<const EdgeIndex> edge_ids = deployment.edge_ids_of(m);
        const std::int64_t num_edges =
            static_cast<std::int64_t>(edge_ids.size());
        const int num_slots = exec::ExecContext::NumSlots(num_edges);
        ctx.PrepareSlotCharges(num_slots);
        candidates.Reset(num_slots);
        exec::parallel_for(
            ctx.exec(), 0, num_edges, [&](const exec::Slice& slice) {
              JobContext::SlotCharges& charges =
                  ctx.slot_charges(slice.slot);
              std::vector<Candidate>& out = candidates.buf(slice.slot);
              for (std::int64_t e = slice.begin; e < slice.end; ++e) {
                const Edge& edge =
                    all_edges[static_cast<std::size_t>(edge_ids[e])];
                bool touched = false;
                if (active.Contains(edge.source)) {
                  touched = true;
                  out.push_back(
                      {edge.target, propose(edge.source, edge.weight)});
                }
                if (usable_reverse && active.Contains(edge.target)) {
                  touched = true;
                  out.push_back(
                      {edge.source, propose(edge.target, edge.weight)});
                }
                if (touched) {
                  runtime.ChargeEdgeWork(charges, m,
                                         static_cast<std::size_t>(e),
                                         ctx.profile().ops_per_edge);
                }
              }
            });
        ctx.MergeSlotCharges();
        candidates.Drain([&](const Candidate& candidate) {
          if (commit(candidate.target, candidate.value)) {
            active.Activate(candidate.target, scan_degree(candidate.target));
          }
        });
      }
    } else {
      // Sparse scatter from the frontier queue over the CSR; the per-edge
      // work lands at the scattering vertex's master (the edge-id hash
      // placement needs the edge sweep, which this mode exists to skip).
      const std::int64_t frontier_size = active.active_count();
      const std::span<const VertexIndex> worklist = active.active();
      const int num_slots = exec::ExecContext::NumSlots(frontier_size);
      ctx.PrepareSlotCharges(num_slots);
      candidates.Reset(num_slots);
      exec::parallel_for(
          ctx.exec(), 0, frontier_size, [&](const exec::Slice& slice) {
            JobContext::SlotCharges& charges = ctx.slot_charges(slice.slot);
            std::vector<Candidate>& out = candidates.buf(slice.slot);
            for (std::int64_t i = slice.begin; i < slice.end; ++i) {
              const VertexIndex v = worklist[i];
              EdgeIndex scanned = 0;
              const auto neighbors = graph.OutNeighbors(v);
              const auto weights = graph.OutWeights(v);
              for (std::size_t j = 0; j < neighbors.size(); ++j) {
                const Value value =
                    propose(v, weights.empty() ? 1.0 : weights[j]);
                if (improves(neighbors[j], value)) {
                  out.push_back({neighbors[j], value});
                }
                ++scanned;
              }
              if (directed && traverse_reverse) {
                const auto sources = graph.InNeighbors(v);
                const auto in_weights = graph.InWeights(v);
                for (std::size_t j = 0; j < sources.size(); ++j) {
                  const Value value = propose(
                      v, in_weights.empty() ? 1.0 : in_weights[j]);
                  if (improves(sources[j], value)) {
                    out.push_back({sources[j], value});
                  }
                  ++scanned;
                }
              }
              runtime.ChargeApply(charges, v,
                                  ctx.profile().ops_per_edge *
                                      static_cast<double>(scanned));
            }
          });
      ctx.MergeSlotCharges();
      candidates.Drain([&](const Candidate& candidate) {
        if (commit(candidate.target, candidate.value)) {
          active.Activate(candidate.target, scan_degree(candidate.target));
        }
      });
    }
    active.Advance();
    // Apply at the masters of every vertex the round updated (the new
    // current frontier), mirror sync included.
    const std::int64_t updated = active.active_count();
    const std::span<const VertexIndex> applied = active.active();
    const int apply_slots = exec::ExecContext::NumSlots(updated);
    ctx.PrepareSlotCharges(apply_slots);
    exec::parallel_for(
        ctx.exec(), 0, updated, [&](const exec::Slice& slice) {
          JobContext::SlotCharges& charges = ctx.slot_charges(slice.slot);
          for (std::int64_t i = slice.begin; i < slice.end; ++i) {
            runtime.ChargeApply(charges, applied[i],
                                ctx.profile().ops_per_vertex);
            runtime.ChargeMirrorSync(charges, applied[i]);
          }
        });
    ctx.MergeSlotCharges();
    GA_RETURN_IF_ERROR(ctx.EndSuperstep(label));
  }
  return Status::Ok();
}

}  // namespace

GasLitePlatform::GasLitePlatform() {
  info_ = PlatformInfo{"gaslite", "PowerGraph 2.2 (CMU)", "community",
                       "Gather-Apply-Scatter, vertex-cut",
                       /*distributed=*/true};
  profile_.ops_per_edge = 8.0;
  profile_.ops_per_vertex = 10.0;
  profile_.ops_per_message = 6.0;
  profile_.ops_per_load_entry = 83.0;  // text-parse ingest (Table 8)
  profile_.bytes_per_message = 8.0;
  profile_.startup_seconds = 20.5;
  profile_.superstep_overhead_seconds = 12.3e-3;
  profile_.barrier_seconds = 8.2e-3;
  profile_.barrier_seconds = 15e-6;
  profile_.hyperthread_efficiency = 0.10;
  profile_.serial_fraction = 0.045;
  profile_.mem_bytes_per_vertex = 224.0;  // master + mirror contexts
  profile_.mem_bytes_per_entry = 17.0;    // edge stored once (vertex-cut)
  profile_.mem_bytes_per_hub_degree = 0.0;
  profile_.variability_cv = 0.015;
}

std::vector<std::int64_t> GasLitePlatform::UploadFootprintBytes(
    const Graph& graph, const ExecutionEnvironment& env) const {
  const int machines = std::max(env.num_machines, 1);
  GasDeployment deployment(graph, machines);
  std::vector<std::int64_t> bytes(machines, 0);
  // Edges live where the vertex-cut placed them.
  for (int m = 0; m < machines; ++m) {
    bytes[m] += static_cast<std::int64_t>(
        static_cast<double>(deployment.edge_count(m)) * 2.0 *
        profile_.mem_bytes_per_entry);
  }
  // A vertex context exists on every hosting machine (master + mirrors);
  // charge masters exactly and spread mirror contexts evenly.
  std::int64_t mirror_contexts = 0;
  for (VertexIndex v = 0; v < graph.num_vertices(); ++v) {
    bytes[deployment.master_of(v)] +=
        static_cast<std::int64_t>(profile_.mem_bytes_per_vertex);
    mirror_contexts += deployment.mirrors_of(v);
  }
  for (int m = 0; m < machines; ++m) {
    bytes[m] += static_cast<std::int64_t>(
        static_cast<double>(mirror_contexts) / machines *
        profile_.mem_bytes_per_vertex);
  }
  return bytes;
}

Result<AlgorithmOutput> GasLitePlatform::Execute(
    JobContext& ctx, const Graph& graph, Algorithm algorithm,
    const AlgorithmParams& params) {
  GasDeployment deployment(graph, ctx.num_machines());
  GasRuntime runtime(ctx, deployment);
  const VertexIndex n = graph.num_vertices();

  // Charges one gather/scatter pass over every machine's edges (ops only,
  // no data movement) — used by the algorithms whose gather runs over the
  // CSR for memory locality while the *accounting* stays edge-placed.
  // The per-worker placement is loop-invariant, so it is hashed once and
  // re-added each superstep.
  std::vector<std::uint64_t> sweep_counts;
  auto charge_edge_sweep = [&](double ops_per_edge) {
    if (sweep_counts.empty()) {
      sweep_counts = runtime.SweepWorkerCounts();
    }
    const auto unit = static_cast<std::uint64_t>(ops_per_edge);
    for (std::size_t w = 0; w < sweep_counts.size(); ++w) {
      ctx.worker_ops()[w] += sweep_counts[w] * unit;
    }
  };

  switch (algorithm) {
    case Algorithm::kBfs: {
      const VertexIndex root = graph.IndexOf(params.source_vertex);
      if (root == kInvalidVertex) {
        return Status::InvalidArgument("BFS source not in graph");
      }
      AlgorithmOutput output;
      output.algorithm = Algorithm::kBfs;
      output.int_values.assign(n, kUnreachableHops);
      output.int_values[root] = 0;
      exec::Frontier frontier;
      frontier.Init(n);
      frontier.Seed(root, graph.OutDegree(root));
      GA_RETURN_IF_ERROR(RunFrontierPropagation<std::int64_t>(
          ctx, graph, deployment, runtime, &frontier,
          /*traverse_reverse=*/false, "bfs",
          [&](VertexIndex from, Weight) {
            return output.int_values[from] + 1;
          },
          [&](VertexIndex to, std::int64_t candidate) {
            return candidate < output.int_values[to];
          },
          [&](VertexIndex to, std::int64_t candidate) {
            if (candidate < output.int_values[to]) {
              output.int_values[to] = candidate;
              return true;
            }
            return false;
          }));
      return output;
    }
    case Algorithm::kSssp: {
      const VertexIndex root = graph.IndexOf(params.source_vertex);
      if (root == kInvalidVertex) {
        return Status::InvalidArgument("SSSP source not in graph");
      }
      AlgorithmOutput output;
      output.algorithm = Algorithm::kSssp;
      output.double_values.assign(n, kUnreachableDistance);
      output.double_values[root] = 0.0;
      exec::Frontier frontier;
      frontier.Init(n);
      frontier.Seed(root, graph.OutDegree(root));
      GA_RETURN_IF_ERROR(RunFrontierPropagation<double>(
          ctx, graph, deployment, runtime, &frontier,
          /*traverse_reverse=*/false, "sssp",
          [&](VertexIndex from, Weight weight) {
            return output.double_values[from] + weight;
          },
          [&](VertexIndex to, double candidate) {
            return candidate < output.double_values[to];
          },
          [&](VertexIndex to, double candidate) {
            if (candidate < output.double_values[to]) {
              output.double_values[to] = candidate;
              return true;
            }
            return false;
          }));
      return output;
    }
    case Algorithm::kWcc: {
      AlgorithmOutput output;
      output.algorithm = Algorithm::kWcc;
      output.int_values.resize(n);
      for (VertexIndex v = 0; v < n; ++v) {
        output.int_values[v] = graph.ExternalId(v);
      }
      exec::Frontier frontier;
      frontier.Init(n);
      frontier.SeedAll(
          static_cast<std::int64_t>(graph.num_adjacency_entries()) *
          (graph.is_directed() ? 2 : 1));
      GA_RETURN_IF_ERROR(RunFrontierPropagation<std::int64_t>(
          ctx, graph, deployment, runtime, &frontier,
          /*traverse_reverse=*/true, "wcc",
          [&](VertexIndex from, Weight) { return output.int_values[from]; },
          [&](VertexIndex to, std::int64_t candidate) {
            return candidate < output.int_values[to];
          },
          [&](VertexIndex to, std::int64_t candidate) {
            if (candidate < output.int_values[to]) {
              output.int_values[to] = candidate;
              return true;
            }
            return false;
          }));
      return output;
    }
    case Algorithm::kPageRank: {
      AlgorithmOutput output;
      output.algorithm = Algorithm::kPageRank;
      output.double_values.assign(
          n, n > 0 ? 1.0 / static_cast<double>(n) : 0.0);
      if (n == 0) return output;
      std::vector<double>& rank = output.double_values;
      std::vector<double> partial(n, 0.0);
      std::vector<double> reduce_scratch;
      for (int iteration = 0; iteration < params.pagerank_iterations;
           ++iteration) {
        const double dangling = exec::parallel_reduce(
            ctx.exec(), 0, n, 0.0,
            [&](const exec::Slice& slice, double& acc) {
              for (VertexIndex v = slice.begin; v < slice.end; ++v) {
                if (graph.OutDegree(v) == 0) acc += rank[v];
              }
            },
            [](double& into, double from) { into += from; },
            &reduce_scratch);
        // Gather: host-parallel pull over the CSR (each vertex sums its
        // in-contributions — disjoint writes); the per-edge work is
        // charged to the machine owning each edge in a separate sweep.
        exec::parallel_for(
            ctx.exec(), 0, n, [&](const exec::Slice& slice) {
              for (VertexIndex v = slice.begin; v < slice.end; ++v) {
                double sum = 0.0;
                if (graph.is_directed()) {
                  for (VertexIndex u : graph.InNeighbors(v)) {
                    sum += rank[u] / static_cast<double>(graph.OutDegree(u));
                  }
                } else {
                  for (VertexIndex u : graph.OutNeighbors(v)) {
                    sum += rank[u] / static_cast<double>(graph.OutDegree(u));
                  }
                }
                partial[v] = sum;
              }
            });
        charge_edge_sweep(ctx.profile().ops_per_edge);
        // Apply at masters + mirror sync for every vertex (all change).
        const double base =
            (1.0 - params.damping_factor) / static_cast<double>(n) +
            params.damping_factor * dangling / static_cast<double>(n);
        if (ctx.tracer().enabled()) {
          // Traced-only convergence probe: L1 delta between the incoming
          // ranks and the values the apply sweep is about to install.
          double residual = 0.0;
          for (VertexIndex v = 0; v < n; ++v) {
            residual += std::abs(
                base + params.damping_factor * partial[v] - rank[v]);
          }
          ctx.tracer().AnnotateResidual(residual);
          ctx.tracer().AnnotateActive(n);
        }
        const int apply_slots = exec::ExecContext::NumSlots(n);
        ctx.PrepareSlotCharges(apply_slots);
        exec::parallel_for(
            ctx.exec(), 0, n, [&](const exec::Slice& slice) {
              JobContext::SlotCharges& charges =
                  ctx.slot_charges(slice.slot);
              for (VertexIndex v = slice.begin; v < slice.end; ++v) {
                rank[v] = base + params.damping_factor * partial[v];
                runtime.ChargeApply(charges, v,
                                    ctx.profile().ops_per_vertex);
                runtime.ChargeMirrorSync(charges, v);
              }
            });
        ctx.MergeSlotCharges();
        GA_RETURN_IF_ERROR(ctx.EndSuperstep("pr"));
      }
      return output;
    }
    case Algorithm::kCdlp: {
      AlgorithmOutput output;
      output.algorithm = Algorithm::kCdlp;
      output.int_values.resize(n);
      for (VertexIndex v = 0; v < n; ++v) {
        output.int_values[v] = graph.ExternalId(v);
      }
      std::vector<std::int64_t> next(n);
      for (int iteration = 0; iteration < params.cdlp_iterations;
           ++iteration) {
        charge_edge_sweep(ctx.profile().ops_per_edge * 2.0);
        // Gather + apply: each vertex pulls its neighbours' labels into a
        // slot-local pooled label counter (one vote per direction,
        // matching the reference semantics) and takes the mode.
        const int apply_slots = exec::ExecContext::NumSlots(n);
        ctx.PrepareSlotCharges(apply_slots);
        ctx.scratch().Prepare(apply_slots);
        exec::parallel_for(
            ctx.exec(), 0, n, [&](const exec::Slice& slice) {
              JobContext::SlotCharges& charges =
                  ctx.slot_charges(slice.slot);
              for (VertexIndex v = slice.begin; v < slice.end; ++v) {
                exec::LabelCounter& labels = ctx.scratch().labels(slice.slot);
                for (VertexIndex u : graph.OutNeighbors(v)) {
                  labels.Add(output.int_values[u]);
                }
                if (graph.is_directed()) {
                  for (VertexIndex u : graph.InNeighbors(v)) {
                    labels.Add(output.int_values[u]);
                  }
                }
                if (labels.empty()) {
                  next[v] = output.int_values[v];
                  continue;
                }
                next[v] = labels.Mode();
                runtime.ChargeApply(charges, v,
                                    ctx.profile().ops_per_vertex);
                runtime.ChargeMirrorSync(charges, v);
              }
            });
        ctx.MergeSlotCharges();
        output.int_values.swap(next);
        ctx.tracer().AnnotateActive(n);
        GA_RETURN_IF_ERROR(ctx.EndSuperstep("cdlp"));
      }
      return output;
    }
    case Algorithm::kLcc: {
      // Memory-frugal gather, no materialised inboxes — PowerGraph
      // survives LCC (§4.2). Host side: degree-oriented triangle
      // counting over the sorted CSR (algo/lcc_kernel.h); the simulated
      // ops still charge the modeled flag-array scan volume.
      AlgorithmOutput output;
      output.algorithm = Algorithm::kLcc;
      output.double_values.assign(n, 0.0);
      lcc::NeighborhoodIndex index;
      index.Build(ctx.exec(), graph);
      std::vector<std::int64_t> links;
      index.CountLinks(ctx.exec(), &links);
      const int num_slots =
          exec::ExecContext::NumSlots(n, exec::ExecContext::kScratchSlots);
      ctx.PrepareSlotCharges(num_slots);
      exec::parallel_for(
          ctx.exec(), 0, n,
          [&](const exec::Slice& slice) {
        JobContext::SlotCharges& charges = ctx.slot_charges(slice.slot);
        for (VertexIndex v = slice.begin; v < slice.end; ++v) {
          const std::span<const VertexIndex> neighborhood =
              index.Neighbors(v);
          std::uint64_t scanned = 0;
          if (neighborhood.size() >= 2) {
            scanned = lcc::ScannedEdgesProxy(graph, neighborhood);
            output.double_values[v] = lcc::Coefficient(
                links[v], static_cast<std::int64_t>(neighborhood.size()));
          }
          runtime.ChargeApply(
              charges, v,
              ctx.profile().ops_per_vertex +
                  ctx.profile().ops_per_edge * static_cast<double>(scanned));
        }
          },
          exec::ExecContext::kScratchSlots);
      ctx.MergeSlotCharges();
      GA_RETURN_IF_ERROR(ctx.EndSuperstep("lcc"));
      return output;
    }
  }
  return Status::Internal("unknown algorithm");
}

}  // namespace ga::platform
