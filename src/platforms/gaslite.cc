#include "platforms/gaslite.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/partition.h"
#include "core/rng.h"

namespace ga::platform {

namespace {

// Vertex-cut deployment of a graph: per-machine edge lists plus the
// master/mirror placement of every vertex.
class GasDeployment {
 public:
  GasDeployment(const Graph& graph, int machines)
      : graph_(graph),
        machines_(machines),
        partition_(GreedyVertexCut(graph, machines)),
        hosts_(graph.num_vertices(), 0) {
    edges_of_.resize(machines);
    std::span<const Edge> edges = graph.edges();
    for (std::size_t e = 0; e < edges.size(); ++e) {
      const int m = partition_.part_of_edge[e];
      edges_of_[m].push_back(edges[e]);
      hosts_[edges[e].source] |= 1ULL << m;
      hosts_[edges[e].target] |= 1ULL << m;
    }
  }

  int machines() const { return machines_; }
  const std::vector<Edge>& edges_of(int machine) const {
    return edges_of_[machine];
  }
  int master_of(VertexIndex v) const { return partition_.master_of[v]; }
  int mirrors_of(VertexIndex v) const {
    const int hosting = std::popcount(hosts_[v]);
    return hosting > 0 ? hosting - 1 : 0;
  }
  double replication_factor() const {
    return partition_.replication_factor;
  }

 private:
  const Graph& graph_;
  int machines_;
  EdgePartition partition_;
  std::vector<std::uint64_t> hosts_;
  std::vector<std::vector<Edge>> edges_of_;
};

// Charges one gather/scatter pass over machine-local edges (per-edge work
// attributed to the edge's machine, spread over its threads by hashing),
// plus mirror synchronisation traffic for the vertices in `touched`.
class GasRuntime {
 public:
  GasRuntime(JobContext& ctx, const GasDeployment& deployment)
      : ctx_(ctx), deployment_(deployment) {}

  void ChargeEdgeWork(int machine, std::size_t edge_index, double ops) {
    const int thread = static_cast<int>(
        Mix64(edge_index * 0x9E37ULL + machine) %
        static_cast<std::uint64_t>(ctx_.threads_per_machine()));
    ctx_.worker_ops()[ctx_.WorkerOf(machine, thread)] +=
        static_cast<std::uint64_t>(ops);
  }

  void ChargeApply(VertexIndex v, double ops) {
    const int machine = deployment_.master_of(v);
    const int thread = static_cast<int>(
        Mix64(static_cast<std::uint64_t>(v)) %
        static_cast<std::uint64_t>(ctx_.threads_per_machine()));
    ctx_.worker_ops()[ctx_.WorkerOf(machine, thread)] +=
        static_cast<std::uint64_t>(ops);
  }

  // Mirror -> master partial sync plus master -> mirror broadcast for one
  // updated vertex.
  void ChargeMirrorSync(VertexIndex v) {
    const int mirrors = deployment_.mirrors_of(v);
    if (mirrors == 0 || ctx_.num_machines() == 1) return;
    const auto bytes = static_cast<std::uint64_t>(
        ctx_.profile().bytes_per_message * 2.0 *
        static_cast<double>(mirrors));
    const int master = deployment_.master_of(v);
    ctx_.machine_comm()[master].bytes_sent += bytes / 2;
    ctx_.machine_comm()[master].bytes_received += bytes / 2;
    // Mirrors' traffic is spread across the other machines; approximate by
    // charging the aggregate to the master's peers evenly.
    for (int m = 0; m < ctx_.num_machines(); ++m) {
      if (m == master) continue;
      ctx_.machine_comm()[m].bytes_sent +=
          bytes / (2 * std::max(ctx_.num_machines() - 1, 1));
      ctx_.machine_comm()[m].bytes_received +=
          bytes / (2 * std::max(ctx_.num_machines() - 1, 1));
    }
    ctx_.ledger().messages += static_cast<std::uint64_t>(2 * mirrors);
  }

 private:
  JobContext& ctx_;
  const GasDeployment& deployment_;
};

// Generic frontier propagation (BFS / SSSP / WCC share it): values only
// ever decrease; an edge relaxation that lowers the target's value puts
// the target in the next frontier.
template <typename Relax>
void RunFrontierPropagation(JobContext& ctx, const Graph& graph,
                            const GasDeployment& deployment,
                            GasRuntime& runtime, std::vector<char>* frontier,
                            bool traverse_reverse, const std::string& label,
                            Relax&& relax) {
  std::vector<char>& active = *frontier;
  std::vector<char> next(active.size(), 0);
  const int max_rounds = static_cast<int>(graph.num_vertices()) + 2;
  for (int round = 0; round < max_rounds; ++round) {
    bool any = false;
    for (char a : active) {
      if (a) {
        any = true;
        break;
      }
    }
    if (!any) break;
    std::fill(next.begin(), next.end(), 0);
    for (int m = 0; m < deployment.machines(); ++m) {
      const std::vector<Edge>& edges = deployment.edges_of(m);
      for (std::size_t e = 0; e < edges.size(); ++e) {
        const Edge& edge = edges[e];
        bool touched = false;
        if (active[edge.source]) {
          touched = true;
          if (relax(edge.source, edge.target, edge.weight)) {
            next[edge.target] = 1;
          }
        }
        const bool usable_reverse =
            !graph.is_directed() || traverse_reverse;
        if (usable_reverse && active[edge.target]) {
          touched = true;
          if (relax(edge.target, edge.source, edge.weight)) {
            next[edge.source] = 1;
          }
        }
        if (touched) {
          runtime.ChargeEdgeWork(m, e, ctx.profile().ops_per_edge);
        }
      }
    }
    for (VertexIndex v = 0; v < static_cast<VertexIndex>(next.size());
         ++v) {
      if (next[v]) {
        runtime.ChargeApply(v, ctx.profile().ops_per_vertex);
        runtime.ChargeMirrorSync(v);
      }
    }
    active.swap(next);
    ctx.EndSuperstep(label);
  }
}

}  // namespace

GasLitePlatform::GasLitePlatform() {
  info_ = PlatformInfo{"gaslite", "PowerGraph 2.2 (CMU)", "community",
                       "Gather-Apply-Scatter, vertex-cut",
                       /*distributed=*/true};
  profile_.ops_per_edge = 8.0;
  profile_.ops_per_vertex = 10.0;
  profile_.ops_per_message = 6.0;
  profile_.ops_per_load_entry = 83.0;  // text-parse ingest (Table 8)
  profile_.bytes_per_message = 8.0;
  profile_.startup_seconds = 20.5;
  profile_.superstep_overhead_seconds = 12.3e-3;
  profile_.barrier_seconds = 8.2e-3;
  profile_.barrier_seconds = 15e-6;
  profile_.hyperthread_efficiency = 0.10;
  profile_.serial_fraction = 0.045;
  profile_.mem_bytes_per_vertex = 224.0;  // master + mirror contexts
  profile_.mem_bytes_per_entry = 17.0;    // edge stored once (vertex-cut)
  profile_.mem_bytes_per_hub_degree = 0.0;
  profile_.variability_cv = 0.015;
}

std::vector<std::int64_t> GasLitePlatform::UploadFootprintBytes(
    const Graph& graph, const ExecutionEnvironment& env) const {
  const int machines = std::max(env.num_machines, 1);
  GasDeployment deployment(graph, machines);
  std::vector<std::int64_t> bytes(machines, 0);
  // Edges live where the vertex-cut placed them.
  for (int m = 0; m < machines; ++m) {
    bytes[m] += static_cast<std::int64_t>(
        static_cast<double>(deployment.edges_of(m).size()) * 2.0 *
        profile_.mem_bytes_per_entry);
  }
  // A vertex context exists on every hosting machine (master + mirrors);
  // charge masters exactly and spread mirror contexts evenly.
  std::int64_t mirror_contexts = 0;
  for (VertexIndex v = 0; v < graph.num_vertices(); ++v) {
    bytes[deployment.master_of(v)] +=
        static_cast<std::int64_t>(profile_.mem_bytes_per_vertex);
    mirror_contexts += deployment.mirrors_of(v);
  }
  for (int m = 0; m < machines; ++m) {
    bytes[m] += static_cast<std::int64_t>(
        static_cast<double>(mirror_contexts) / machines *
        profile_.mem_bytes_per_vertex);
  }
  return bytes;
}

Result<AlgorithmOutput> GasLitePlatform::Execute(
    JobContext& ctx, const Graph& graph, Algorithm algorithm,
    const AlgorithmParams& params) {
  GasDeployment deployment(graph, ctx.num_machines());
  GasRuntime runtime(ctx, deployment);
  const VertexIndex n = graph.num_vertices();

  switch (algorithm) {
    case Algorithm::kBfs: {
      const VertexIndex root = graph.IndexOf(params.source_vertex);
      if (root == kInvalidVertex) {
        return Status::InvalidArgument("BFS source not in graph");
      }
      AlgorithmOutput output;
      output.algorithm = Algorithm::kBfs;
      output.int_values.assign(n, kUnreachableHops);
      output.int_values[root] = 0;
      std::vector<char> frontier(n, 0);
      frontier[root] = 1;
      RunFrontierPropagation(
          ctx, graph, deployment, runtime, &frontier,
          /*traverse_reverse=*/false, "bfs",
          [&](VertexIndex from, VertexIndex to, Weight) {
            const std::int64_t candidate = output.int_values[from] + 1;
            if (candidate < output.int_values[to]) {
              output.int_values[to] = candidate;
              return true;
            }
            return false;
          });
      return output;
    }
    case Algorithm::kSssp: {
      const VertexIndex root = graph.IndexOf(params.source_vertex);
      if (root == kInvalidVertex) {
        return Status::InvalidArgument("SSSP source not in graph");
      }
      AlgorithmOutput output;
      output.algorithm = Algorithm::kSssp;
      output.double_values.assign(n, kUnreachableDistance);
      output.double_values[root] = 0.0;
      std::vector<char> frontier(n, 0);
      frontier[root] = 1;
      RunFrontierPropagation(
          ctx, graph, deployment, runtime, &frontier,
          /*traverse_reverse=*/false, "sssp",
          [&](VertexIndex from, VertexIndex to, Weight weight) {
            const double candidate = output.double_values[from] + weight;
            if (candidate < output.double_values[to]) {
              output.double_values[to] = candidate;
              return true;
            }
            return false;
          });
      return output;
    }
    case Algorithm::kWcc: {
      AlgorithmOutput output;
      output.algorithm = Algorithm::kWcc;
      output.int_values.resize(n);
      for (VertexIndex v = 0; v < n; ++v) {
        output.int_values[v] = graph.ExternalId(v);
      }
      std::vector<char> frontier(n, 1);
      RunFrontierPropagation(
          ctx, graph, deployment, runtime, &frontier,
          /*traverse_reverse=*/true, "wcc",
          [&](VertexIndex from, VertexIndex to, Weight) {
            if (output.int_values[from] < output.int_values[to]) {
              output.int_values[to] = output.int_values[from];
              return true;
            }
            return false;
          });
      return output;
    }
    case Algorithm::kPageRank: {
      AlgorithmOutput output;
      output.algorithm = Algorithm::kPageRank;
      output.double_values.assign(
          n, n > 0 ? 1.0 / static_cast<double>(n) : 0.0);
      if (n == 0) return output;
      std::vector<double>& rank = output.double_values;
      std::vector<double> partial(n, 0.0);
      for (int iteration = 0; iteration < params.pagerank_iterations;
           ++iteration) {
        double dangling = 0.0;
        for (VertexIndex v = 0; v < n; ++v) {
          if (graph.OutDegree(v) == 0) dangling += rank[v];
        }
        std::fill(partial.begin(), partial.end(), 0.0);
        // Gather: every edge contributes on the machine that owns it.
        for (int m = 0; m < deployment.machines(); ++m) {
          const std::vector<Edge>& edges = deployment.edges_of(m);
          for (std::size_t e = 0; e < edges.size(); ++e) {
            const Edge& edge = edges[e];
            partial[edge.target] +=
                rank[edge.source] /
                static_cast<double>(graph.OutDegree(edge.source));
            if (!graph.is_directed()) {
              partial[edge.source] +=
                  rank[edge.target] /
                  static_cast<double>(graph.OutDegree(edge.target));
            }
            runtime.ChargeEdgeWork(m, e, ctx.profile().ops_per_edge);
          }
        }
        // Apply at masters + mirror sync for every vertex (all change).
        const double base =
            (1.0 - params.damping_factor) / static_cast<double>(n) +
            params.damping_factor * dangling / static_cast<double>(n);
        for (VertexIndex v = 0; v < n; ++v) {
          rank[v] = base + params.damping_factor * partial[v];
          runtime.ChargeApply(v, ctx.profile().ops_per_vertex);
          runtime.ChargeMirrorSync(v);
        }
        ctx.EndSuperstep("pr");
      }
      return output;
    }
    case Algorithm::kCdlp: {
      AlgorithmOutput output;
      output.algorithm = Algorithm::kCdlp;
      output.int_values.resize(n);
      for (VertexIndex v = 0; v < n; ++v) {
        output.int_values[v] = graph.ExternalId(v);
      }
      std::vector<std::unordered_map<std::int64_t, std::int64_t>> histogram(
          n);
      for (int iteration = 0; iteration < params.cdlp_iterations;
           ++iteration) {
        for (auto& h : histogram) h.clear();
        for (int m = 0; m < deployment.machines(); ++m) {
          const std::vector<Edge>& edges = deployment.edges_of(m);
          for (std::size_t e = 0; e < edges.size(); ++e) {
            const Edge& edge = edges[e];
            // One vote per direction (matches the reference semantics).
            ++histogram[edge.target][output.int_values[edge.source]];
            ++histogram[edge.source][output.int_values[edge.target]];
            runtime.ChargeEdgeWork(m, e, ctx.profile().ops_per_edge * 2.0);
          }
        }
        std::vector<std::int64_t> next(output.int_values);
        for (VertexIndex v = 0; v < n; ++v) {
          if (histogram[v].empty()) continue;
          std::int64_t best_label = 0;
          std::int64_t best_count = -1;
          for (const auto& [label, count] : histogram[v]) {
            if (count > best_count ||
                (count == best_count && label < best_label)) {
              best_label = label;
              best_count = count;
            }
          }
          next[v] = best_label;
          runtime.ChargeApply(v, ctx.profile().ops_per_vertex);
          runtime.ChargeMirrorSync(v);
        }
        output.int_values.swap(next);
        ctx.EndSuperstep("cdlp");
      }
      return output;
    }
    case Algorithm::kLcc: {
      // Memory-frugal gather: per-vertex neighbourhood flags + CSR scans,
      // no materialised inboxes — PowerGraph survives LCC (§4.2).
      AlgorithmOutput output;
      output.algorithm = Algorithm::kLcc;
      output.double_values.assign(n, 0.0);
      std::vector<char> flag(n, 0);
      std::vector<VertexIndex> neighborhood;
      for (VertexIndex v = 0; v < n; ++v) {
        neighborhood.clear();
        for (VertexIndex u : graph.OutNeighbors(v)) {
          if (u != v && !flag[u]) {
            flag[u] = 1;
            neighborhood.push_back(u);
          }
        }
        if (graph.is_directed()) {
          for (VertexIndex u : graph.InNeighbors(v)) {
            if (u != v && !flag[u]) {
              flag[u] = 1;
              neighborhood.push_back(u);
            }
          }
        }
        std::uint64_t scanned = 0;
        std::int64_t links = 0;
        if (neighborhood.size() >= 2) {
          for (VertexIndex u : neighborhood) {
            for (VertexIndex w : graph.OutNeighbors(u)) {
              ++scanned;
              if (w != v && flag[w]) ++links;
            }
          }
          const double degree = static_cast<double>(neighborhood.size());
          output.double_values[v] =
              static_cast<double>(links) / (degree * (degree - 1.0));
        }
        for (VertexIndex w : neighborhood) flag[w] = 0;
        runtime.ChargeApply(
            v, ctx.profile().ops_per_vertex +
                   ctx.profile().ops_per_edge * static_cast<double>(scanned));
      }
      ctx.EndSuperstep("lcc");
      return output;
    }
  }
  return Status::Internal("unknown algorithm");
}

}  // namespace ga::platform
