// GasLite: analogue of PowerGraph (paper Table 5, row 3).
//
// Implements the Gather-Apply-Scatter model over a *vertex-cut*: edges are
// partitioned across machines by the greedy heuristic, vertices are
// replicated as one master plus mirrors on every machine holding one of
// their edges. Each superstep gathers partial accumulations on the
// machines owning the edges, synchronises mirror -> master, applies the
// update at the master, and broadcasts the new value master -> mirrors.
//
// Cost character: edge placement balances work even under power-law skew
// (PowerGraph's design goal), giving good vertical scaling (11.8x in
// Table 9) and the lowest performance variability (Table 11); mirror
// synchronisation charges network bytes proportional to the replication
// factor. Its LCC gathers neighbour sets edge-by-edge without
// materialising inboxes, so LCC completes where the message-based engines
// die (§4.2) — at an order-of-magnitude run-time cost (§4.1).
#ifndef GRAPHALYTICS_PLATFORMS_GASLITE_H_
#define GRAPHALYTICS_PLATFORMS_GASLITE_H_

#include "platforms/platform.h"

namespace ga::platform {

class GasLitePlatform : public Platform {
 public:
  GasLitePlatform();

  const PlatformInfo& info() const override { return info_; }
  const CostProfile& profile() const override { return profile_; }

 protected:
  std::vector<std::int64_t> UploadFootprintBytes(
      const Graph& graph, const ExecutionEnvironment& env) const override;

  Result<AlgorithmOutput> Execute(JobContext& ctx, const Graph& graph,
                                  Algorithm algorithm,
                                  const AlgorithmParams& params) override;

 private:
  PlatformInfo info_;
  CostProfile profile_;
};

}  // namespace ga::platform

#endif  // GRAPHALYTICS_PLATFORMS_GASLITE_H_
