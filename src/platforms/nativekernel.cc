#include "platforms/nativekernel.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <vector>

#include "algo/lcc_kernel.h"
#include "core/exec/exec.h"
#include "core/exec/frontier.h"
#include "core/exec/scratch_pool.h"
#include "core/rng.h"
#include "granula/tracer.h"

namespace ga::platform {

namespace {

// Spreads `total` ops across the machine's threads with a small skew
// remainder on thread 0 (chunked parallel-for with dynamic scheduling).
void DistributeOps(JobContext& ctx, std::uint64_t total) {
  const int workers = ctx.num_workers();
  const std::uint64_t base = total / workers;
  for (int w = 0; w < workers; ++w) ctx.worker_ops()[w] += base;
  ctx.worker_ops()[0] += total % workers;
}

}  // namespace

NativeKernelPlatform::NativeKernelPlatform() {
  info_ = PlatformInfo{"nativekernel", "OpenG / GraphBIG (Feb '16)",
                       "Georgia Tech / IBM", "handwritten native kernels",
                       /*distributed=*/false};
  profile_.ops_per_edge = 4.0;
  profile_.ops_per_vertex = 6.0;
  profile_.ops_per_message = 0.0;
  profile_.ops_per_load_entry = 1.5;
  profile_.bytes_per_message = 0.0;
  profile_.startup_seconds = 0.51;
  profile_.superstep_overhead_seconds = 10.2e-3;
  profile_.hyperthread_efficiency = 0.0;  // memory-bound kernels (§4.3)
  profile_.serial_fraction = 0.105;
  profile_.mem_bytes_per_vertex = 128.0;
  profile_.mem_bytes_per_entry = 18.0;
  profile_.mem_bytes_per_hub_degree = 0.0;
  profile_.variability_cv = 0.048;
}

Result<AlgorithmOutput> NativeKernelPlatform::Execute(
    JobContext& ctx, const Graph& graph, Algorithm algorithm,
    const AlgorithmParams& params) {
  const VertexIndex n = graph.num_vertices();
  switch (algorithm) {
    case Algorithm::kBfs: {
      // Direction-optimizing worklist BFS on the hybrid frontier
      // (core/exec/frontier.h): light levels push from the sparse queue —
      // work proportional to the vertices and edges actually reached, the
      // paper's explanation for OpenG's win on R2 (§4.1) — and the heavy
      // middle levels pull against the dense bitset, stopping at the
      // first discovered parent. Depths are identical to the queue BFS
      // this replaces; level structure is decided from frontier stats
      // only, so the traversal is `--jobs`-invariant.
      const VertexIndex root = graph.IndexOf(params.source_vertex);
      if (root == kInvalidVertex) {
        return Status::InvalidArgument("BFS source not in graph");
      }
      AlgorithmOutput output;
      output.algorithm = Algorithm::kBfs;
      output.int_values.assign(n, kUnreachableHops);
      output.int_values[root] = 0;
      exec::Frontier frontier;
      frontier.Init(n);
      frontier.Seed(root, graph.OutDegree(root));
      const std::int64_t total_entries =
          static_cast<std::int64_t>(graph.num_adjacency_entries());
      std::vector<std::uint64_t> touched_scratch;
      std::int64_t depth = 0;
      std::uint64_t touched_edges = 0;
      std::uint64_t visited = 0;
      while (!frontier.empty()) {
        ++depth;
        visited += static_cast<std::uint64_t>(frontier.active_count());
        std::uint64_t level_touched = 0;
        if (granula::TracedDecide(ctx.tracer(), frontier, total_entries) ==
            exec::TraversalDirection::kPush) {
          const std::int64_t frontier_size = frontier.active_count();
          const std::span<const VertexIndex> active = frontier.active();
          const int num_slots = exec::ExecContext::NumSlots(frontier_size);
          frontier.PrepareStage(num_slots);
          level_touched = exec::parallel_reduce(
              ctx.exec(), 0, frontier_size, std::uint64_t{0},
              [&](const exec::Slice& slice, std::uint64_t& acc) {
                std::vector<VertexIndex>& out = frontier.stage(slice.slot);
                for (std::int64_t i = slice.begin; i < slice.end; ++i) {
                  for (VertexIndex u : graph.OutNeighbors(active[i])) {
                    ++acc;
                    if (output.int_values[u] == kUnreachableHops) {
                      out.push_back(u);
                    }
                  }
                }
              },
              [](std::uint64_t& into, std::uint64_t from) { into += from; },
              &touched_scratch);
        } else {
          // Pull: every undiscovered vertex scans in-neighbours, stopping
          // at the first one in the (dense) frontier.
          const int num_slots = exec::ExecContext::NumSlots(n);
          frontier.PrepareStage(num_slots);
          level_touched = exec::parallel_reduce(
              ctx.exec(), 0, n, std::uint64_t{0},
              [&](const exec::Slice& slice, std::uint64_t& acc) {
                std::vector<VertexIndex>& out = frontier.stage(slice.slot);
                for (VertexIndex v = slice.begin; v < slice.end; ++v) {
                  if (output.int_values[v] != kUnreachableHops) continue;
                  for (VertexIndex u : graph.InNeighbors(v)) {
                    ++acc;
                    if (frontier.Contains(u)) {
                      out.push_back(v);
                      break;
                    }
                  }
                }
              },
              [](std::uint64_t& into, std::uint64_t from) { into += from; },
              &touched_scratch);
        }
        frontier.CommitStage([&](VertexIndex u) {
          output.int_values[u] = depth;
          return graph.OutDegree(u);
        });
        touched_edges += level_touched;
        frontier.Advance();
      }
      DistributeOps(
          ctx, static_cast<std::uint64_t>(
                   static_cast<double>(touched_edges) *
                       ctx.profile().ops_per_edge +
                   static_cast<double>(visited) *
                       ctx.profile().ops_per_vertex));
      GA_RETURN_IF_ERROR(ctx.EndSuperstep("bfs"));
      return output;
    }
    case Algorithm::kSssp: {
      // Dijkstra with a binary heap; heap operations carry a log-factor.
      const VertexIndex root = graph.IndexOf(params.source_vertex);
      if (root == kInvalidVertex) {
        return Status::InvalidArgument("SSSP source not in graph");
      }
      AlgorithmOutput output;
      output.algorithm = Algorithm::kSssp;
      output.double_values.assign(n, kUnreachableDistance);
      output.double_values[root] = 0.0;
      using Entry = std::pair<double, VertexIndex>;
      std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
      heap.emplace(0.0, root);
      std::uint64_t relaxations = 0;
      std::uint64_t pops = 0;
      while (!heap.empty()) {
        const auto [distance, v] = heap.top();
        heap.pop();
        ++pops;
        if (distance > output.double_values[v]) continue;
        const auto neighbors = graph.OutNeighbors(v);
        const auto weights = graph.OutWeights(v);
        for (std::size_t i = 0; i < neighbors.size(); ++i) {
          ++relaxations;
          const double candidate = distance + weights[i];
          if (candidate < output.double_values[neighbors[i]]) {
            output.double_values[neighbors[i]] = candidate;
            heap.emplace(candidate, neighbors[i]);
          }
        }
      }
      const double log_n =
          std::max(1.0, std::log2(static_cast<double>(n) + 1.0));
      DistributeOps(
          ctx, static_cast<std::uint64_t>(
                   static_cast<double>(relaxations) *
                       (ctx.profile().ops_per_edge + log_n) +
                   static_cast<double>(pops) * log_n));
      GA_RETURN_IF_ERROR(ctx.EndSuperstep("sssp"));
      return output;
    }
    case Algorithm::kWcc: {
      // Union-find with path halving (the native-code idiom; frameworks
      // cannot express it, which is part of OpenG's edge on WCC, §4.2).
      AlgorithmOutput output;
      output.algorithm = Algorithm::kWcc;
      std::vector<VertexIndex> parent(n);
      std::iota(parent.begin(), parent.end(), VertexIndex{0});
      auto find = [&](VertexIndex v) {
        while (parent[v] != v) {
          parent[v] = parent[parent[v]];
          v = parent[v];
        }
        return v;
      };
      for (const Edge& edge : graph.edges()) {
        const VertexIndex a = find(edge.source);
        const VertexIndex b = find(edge.target);
        if (a != b) parent[std::max(a, b)] = std::min(a, b);
      }
      // Full compression (serial — the union phase is inherently
      // sequential), then a host-parallel labelling sweep over the now
      // read-only parent array.
      for (VertexIndex v = 0; v < n; ++v) parent[v] = find(v);
      output.int_values.assign(n, -1);
      exec::parallel_for(
          ctx.exec(), 0, n, [&](const exec::Slice& slice) {
            for (VertexIndex v = slice.begin; v < slice.end; ++v) {
              output.int_values[v] = graph.ExternalId(parent[v]);
            }
          });
      DistributeOps(
          ctx, static_cast<std::uint64_t>(
                   static_cast<double>(graph.num_edges()) *
                       ctx.profile().ops_per_edge * 1.5 +
                   static_cast<double>(n) * ctx.profile().ops_per_vertex));
      GA_RETURN_IF_ERROR(ctx.EndSuperstep("wcc"));
      return output;
    }
    case Algorithm::kPageRank: {
      AlgorithmOutput output;
      output.algorithm = Algorithm::kPageRank;
      output.double_values.assign(
          n, n > 0 ? 1.0 / static_cast<double>(n) : 0.0);
      if (n == 0) return output;
      std::vector<double> next(n, 0.0);
      std::vector<double> dangling_scratch;
      std::vector<std::uint64_t> touched_scratch;
      for (int iteration = 0; iteration < params.pagerank_iterations;
           ++iteration) {
        const double dangling = exec::parallel_reduce(
            ctx.exec(), 0, n, 0.0,
            [&](const exec::Slice& slice, double& acc) {
              for (VertexIndex v = slice.begin; v < slice.end; ++v) {
                if (graph.OutDegree(v) == 0) {
                  acc += output.double_values[v];
                }
              }
            },
            [](double& into, double from) { into += from; },
            &dangling_scratch);
        const double base =
            (1.0 - params.damping_factor) / static_cast<double>(n) +
            params.damping_factor * dangling / static_cast<double>(n);
        const std::uint64_t touched = exec::parallel_reduce(
            ctx.exec(), 0, n, std::uint64_t{0},
            [&](const exec::Slice& slice, std::uint64_t& acc) {
              for (VertexIndex v = slice.begin; v < slice.end; ++v) {
                double sum = 0.0;
                for (VertexIndex u : graph.InNeighbors(v)) {
                  ++acc;
                  sum += output.double_values[u] /
                         static_cast<double>(graph.OutDegree(u));
                }
                next[v] = base + params.damping_factor * sum;
              }
            },
            [](std::uint64_t& into, std::uint64_t from) { into += from; },
            &touched_scratch);
        if (ctx.tracer().enabled()) {
          // Traced-only convergence probe: L1 delta between successive
          // rank vectors, observed before the swap installs the update.
          double residual = 0.0;
          for (VertexIndex v = 0; v < n; ++v) {
            residual += std::abs(next[v] - output.double_values[v]);
          }
          ctx.tracer().AnnotateResidual(residual);
          ctx.tracer().AnnotateActive(n);
        }
        output.double_values.swap(next);
        DistributeOps(
            ctx, static_cast<std::uint64_t>(
                     static_cast<double>(touched) *
                         ctx.profile().ops_per_edge +
                     static_cast<double>(n) * ctx.profile().ops_per_vertex));
        GA_RETURN_IF_ERROR(ctx.EndSuperstep("pr"));
      }
      return output;
    }
    case Algorithm::kCdlp: {
      AlgorithmOutput output;
      output.algorithm = Algorithm::kCdlp;
      output.int_values.resize(n);
      for (VertexIndex v = 0; v < n; ++v) {
        output.int_values[v] = graph.ExternalId(v);
      }
      std::vector<std::int64_t> next(n);
      std::vector<std::uint64_t> touched_scratch;
      const int num_slots = exec::ExecContext::NumSlots(n);
      for (int iteration = 0; iteration < params.cdlp_iterations;
           ++iteration) {
        ctx.scratch().Prepare(num_slots);
        const std::uint64_t touched = exec::parallel_reduce(
            ctx.exec(), 0, n, std::uint64_t{0},
            [&](const exec::Slice& slice, std::uint64_t& acc) {
              for (VertexIndex v = slice.begin; v < slice.end; ++v) {
                exec::LabelCounter& labels = ctx.scratch().labels(slice.slot);
                for (VertexIndex u : graph.OutNeighbors(v)) {
                  ++acc;
                  labels.Add(output.int_values[u]);
                }
                if (graph.is_directed()) {
                  for (VertexIndex u : graph.InNeighbors(v)) {
                    ++acc;
                    labels.Add(output.int_values[u]);
                  }
                }
                next[v] = labels.empty() ? output.int_values[v]
                                         : labels.Mode();
              }
            },
            [](std::uint64_t& into, std::uint64_t from) { into += from; },
            &touched_scratch);
        output.int_values.swap(next);
        // Handwritten per-vertex counting arrays: cheaper per label vote
        // than any framework's aggregation (OpenG is best on CDLP, §4.2).
        DistributeOps(
            ctx, static_cast<std::uint64_t>(
                     static_cast<double>(touched) *
                         ctx.profile().ops_per_edge * 0.5 +
                     static_cast<double>(n) * ctx.profile().ops_per_vertex));
        ctx.tracer().AnnotateActive(n);
        GA_RETURN_IF_ERROR(ctx.EndSuperstep("cdlp"));
      }
      return output;
    }
    case Algorithm::kLcc: {
      // Degree-oriented triangle counting over the sorted CSR
      // (algo/lcc_kernel.h): no flag arrays, no O(n) per-slot scratch —
      // one of the two platforms that complete LCC (§4.2). The simulated
      // ops still charge the flag-array scan volume the modeled native
      // kernel performs.
      AlgorithmOutput output;
      output.algorithm = Algorithm::kLcc;
      output.double_values.assign(n, 0.0);
      lcc::NeighborhoodIndex index;
      index.Build(ctx.exec(), graph);
      std::vector<std::int64_t> links;
      index.CountLinks(ctx.exec(), &links);
      const std::uint64_t scanned = exec::parallel_reduce(
          ctx.exec(), 0, n, std::uint64_t{0},
          [&](const exec::Slice& slice, std::uint64_t& acc) {
            for (VertexIndex v = slice.begin; v < slice.end; ++v) {
              const std::span<const VertexIndex> neighborhood =
                  index.Neighbors(v);
              if (neighborhood.size() < 2) continue;
              acc += lcc::ScannedEdgesProxy(graph, neighborhood);
              output.double_values[v] = lcc::Coefficient(
                  links[v], static_cast<std::int64_t>(neighborhood.size()));
            }
          },
          [](std::uint64_t& into, std::uint64_t from) { into += from; });
      DistributeOps(ctx, static_cast<std::uint64_t>(
                             static_cast<double>(scanned) *
                             ctx.profile().ops_per_edge));
      GA_RETURN_IF_ERROR(ctx.EndSuperstep("lcc"));
      return output;
    }
  }
  return Status::Internal("unknown algorithm");
}

}  // namespace ga::platform
