// NativeKernel: analogue of OpenG / GraphBIG (paper Table 5, row 5).
//
// Handwritten per-algorithm kernels over plain adjacency arrays, with no
// framework layer at all: BFS uses an explicit work queue (the paper
// highlights the resulting win on graphs where BFS touches few vertices),
// WCC uses union-find, SSSP uses Dijkstra with a binary heap, PageRank /
// CDLP / LCC are direct array sweeps.
//
// Single-machine only (type S in Table 5). Lean memory (plain arrays)
// lets it process the largest graphs on one machine — it is one of the
// two platforms that survive the stress test up to scale 9.0 (§4.6) and
// one of the two that complete LCC (§4.2). Its thread scaling saturates
// early (Table 9: ~6.3x) because the hand-tuned kernels are memory-bound.
#ifndef GRAPHALYTICS_PLATFORMS_NATIVEKERNEL_H_
#define GRAPHALYTICS_PLATFORMS_NATIVEKERNEL_H_

#include "platforms/platform.h"

namespace ga::platform {

class NativeKernelPlatform : public Platform {
 public:
  NativeKernelPlatform();

  const PlatformInfo& info() const override { return info_; }
  const CostProfile& profile() const override { return profile_; }

 protected:
  Result<AlgorithmOutput> Execute(JobContext& ctx, const Graph& graph,
                                  Algorithm algorithm,
                                  const AlgorithmParams& params) override;

 private:
  PlatformInfo info_;
  CostProfile profile_;
};

}  // namespace ga::platform

#endif  // GRAPHALYTICS_PLATFORMS_NATIVEKERNEL_H_
