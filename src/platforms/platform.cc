#include "platforms/platform.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/exec/alloc_stats.h"
#include "core/partition.h"
#include "core/timer.h"
#include "faults/faults.h"

namespace ga::platform {

// ---------------------------------------------------------------------------
// JobContext

JobContext::JobContext(const sysmodel::ClusterModel& cluster,
                       sysmodel::MemoryAccountant* memory,
                       const CostProfile& profile,
                       granula::Operation* processing_op,
                       const ExecutionEnvironment& env)
    : cluster_(cluster),
      memory_(memory),
      profile_(profile),
      processing_op_(processing_op),
      env_(env),
      exec_(env.host_pool),
      worker_ops_(cluster.num_workers(), 0),
      machine_comm_(cluster.num_machines()) {
  exec_.set_cancel_token(env_.cancel);
  if (env_.trace_enabled) {
    tracer_.Enable();
    sheet_.Enable();
    exec_.set_counters(&sheet_);
    steal_base_ = env_.host_pool ? env_.host_pool->TotalSteals() : 0;
    alloc_base_ = exec::DataPathAllocEvents();
  } else if (env_.metrics_sheet != nullptr) {
    // Always-on service telemetry: the caller's aggregate-only sheet
    // rides the same parallel_for hooks as deep tracing, without spans
    // or per-superstep flushes.
    exec_.set_counters(env_.metrics_sheet);
  }
}

void JobContext::PrepareSlotCharges(int num_slots) {
  if (static_cast<int>(slot_charges_.size()) < num_slots) {
    slot_charges_.resize(num_slots);
  }
  for (int slot = 0; slot < num_slots; ++slot) {
    SlotCharges& charges = slot_charges_[slot];
    charges.worker_ops.assign(worker_ops_.size(), 0);
    charges.comm.assign(machine_comm_.size(), sysmodel::MachineComm{});
    charges.ledger = WorkLedger{};
  }
}

void JobContext::MergeSlotCharges() {
  for (SlotCharges& charges : slot_charges_) {
    for (std::size_t w = 0; w < charges.worker_ops.size(); ++w) {
      worker_ops_[w] += charges.worker_ops[w];
    }
    for (std::size_t m = 0; m < charges.comm.size(); ++m) {
      machine_comm_[m].bytes_sent += charges.comm[m].bytes_sent;
      machine_comm_[m].bytes_received += charges.comm[m].bytes_received;
    }
    ledger_ += charges.ledger;
    charges.worker_ops.assign(charges.worker_ops.size(), 0);
    charges.comm.assign(charges.comm.size(), sysmodel::MachineComm{});
    charges.ledger = WorkLedger{};
  }
}

void JobContext::ResetSuperstepCounters() {
  std::fill(worker_ops_.begin(), worker_ops_.end(), 0);
  std::fill(machine_comm_.begin(), machine_comm_.end(),
            sysmodel::MachineComm{});
}

Status JobContext::EndSuperstep(const std::string& label) {
  const double begin = sim_seconds_;
  std::uint64_t total_ops = 0;
  for (std::uint64_t ops : worker_ops_) total_ops += ops;
  ledger_.compute_ops += total_ops;
  for (const sysmodel::MachineComm& comm : machine_comm_) {
    ledger_.remote_bytes += comm.bytes_sent;
  }
  sim_seconds_ += cluster_.SuperstepSeconds(worker_ops_, machine_comm_) +
                  profile_.superstep_overhead_seconds * env_.overhead_scale;
  ++supersteps_;
  if (processing_op_ != nullptr) {
    granula::Operation* step = processing_op_->AddChild(
        "engine", std::string(granula::kMissionSuperstep));
    step->Begin(sim_origin_ + begin, 0.0);
    step->End(sim_origin_ + sim_seconds_, 0.0);
    step->AddInfo("label", label);
    step->AddInfo("ops", std::to_string(total_ops));
    step->AddInfo("step", std::to_string(supersteps_ - 1));
    step->AddInfo("messages",
                  std::to_string(ledger_.messages - last_messages_));
    if (tracer_.enabled()) {
      // Wall stamps + staged engine annotations (frontier occupancy,
      // push/pull decision, residual) land on the span...
      tracer_.CloseStep(step, sim_origin_ + begin,
                        sim_origin_ + sim_seconds_);
      // ...plus this superstep's exec-layer counter flush; the retained
      // chunk spans join the job-wide host timeline, keyed by step.
      const exec::CounterSheet::StepTotals totals =
          sheet_.FlushStep(supersteps_ - 1, &host_spans_);
      step->AddInfo("parallel_loops", std::to_string(totals.loops));
      step->AddInfo("parallel_chunks", std::to_string(totals.chunks));
      step->AddInfo("chunk_busy_ns", std::to_string(totals.busy_ns));
      if (totals.dropped > 0) {
        step->AddInfo("chunk_spans_dropped",
                      std::to_string(totals.dropped));
      }
    }
  }
  last_messages_ = ledger_.messages;
  ResetSuperstepCounters();
  // Resilience boundary: injected machine crashes land here (the end of
  // superstep `supersteps_`, 1-based), as does the wall-clock budget
  // check — both keyed by deterministic state, never host timing.
  if (faults::FaultInjector* injector = faults::GlobalInjector()) {
    GA_RETURN_IF_ERROR(injector->OnSuperstep(supersteps_));
  }
  if (env_.wall_timeout_seconds > 0.0 &&
      wall_.ElapsedSeconds() > env_.wall_timeout_seconds) {
    return Status::DeadlineExceeded(
        "job exceeded its wall-clock budget of " +
        std::to_string(env_.wall_timeout_seconds) + "s at superstep " +
        std::to_string(supersteps_));
  }
  // Cooperative cancellation: a token tripped between parallel loops
  // (serial engine phases) is observed here at the latest, so a
  // cancelled or deadline-expired job frees its ThreadPool slots no
  // later than the next superstep boundary.
  if (env_.cancel != nullptr && env_.cancel->stop_requested()) {
    return env_.cancel->status();
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Superstep checkpoint/restart (ga::resilience)

void JobContext::ConfigureCheckpoint(const resilience::CheckpointPlan& plan,
                                     std::uint64_t job_key) {
  checkpoint_plan_ = plan;
  checkpoint_key_ = job_key;
}

Result<const resilience::StateReader*> JobContext::MaybeRestore() {
  restore_.reset();
  if (!checkpoint_plan_.resume_enabled() ||
      !resilience::CheckpointExists(checkpoint_plan_.path)) {
    return static_cast<const resilience::StateReader*>(nullptr);
  }
  GA_ASSIGN_OR_RETURN(
      resilience::StateReader reader,
      resilience::StateReader::Open(checkpoint_plan_.path,
                                    checkpoint_key_));
  std::int64_t supersteps = 0;
  GA_RETURN_IF_ERROR(reader.ReadScalar("ctx/supersteps", &supersteps));
  // Raw double bytes round-trip bit-exact, so every simulated second
  // accumulated after the restore point lands on the same bit pattern as
  // the uninterrupted run — the byte-identity contract.
  GA_RETURN_IF_ERROR(reader.ReadScalar("ctx/sim_seconds", &sim_seconds_));
  GA_RETURN_IF_ERROR(reader.ReadScalar("ctx/ledger", &ledger_));
  std::vector<std::int64_t> used;
  std::vector<std::int64_t> peak;
  GA_RETURN_IF_ERROR(reader.ReadVector("ctx/mem_used", &used));
  GA_RETURN_IF_ERROR(reader.ReadVector("ctx/mem_peak", &peak));
  if (memory_ != nullptr) {
    GA_RETURN_IF_ERROR(memory_->RestoreState(used, peak));
  }
  supersteps_ = static_cast<int>(supersteps);
  last_messages_ = ledger_.messages;
  last_checkpoint_step_ = supersteps_;
  ResetSuperstepCounters();
  restore_.emplace(std::move(reader));
  return static_cast<const resilience::StateReader*>(&*restore_);
}

Status JobContext::MaybeCheckpoint(
    const std::function<void(resilience::StateWriter&)>& save_engine) {
  if (!checkpoint_plan_.writes_enabled() || supersteps_ == 0 ||
      supersteps_ % checkpoint_plan_.cadence != 0 ||
      supersteps_ == last_checkpoint_step_) {
    return Status::Ok();
  }
  resilience::StateWriter writer;
  writer.AddScalar("ctx/supersteps",
                   static_cast<std::int64_t>(supersteps_));
  writer.AddScalar("ctx/sim_seconds", sim_seconds_);
  writer.AddScalar("ctx/ledger", ledger_);
  std::vector<std::int64_t> used;
  std::vector<std::int64_t> peak;
  if (memory_ != nullptr) {
    for (int m = 0; m < cluster_.num_machines(); ++m) {
      used.push_back(memory_->used(m));
      peak.push_back(memory_->peak(m));
    }
  }
  writer.AddVector("ctx/mem_used", used);
  writer.AddVector("ctx/mem_peak", peak);
  save_engine(writer);
  GA_RETURN_IF_ERROR(resilience::WriteCheckpoint(
      checkpoint_plan_.path, checkpoint_key_, supersteps_, writer));
  last_checkpoint_step_ = supersteps_;
  return Status::Ok();
}

void JobContext::FlushTrailingTrace() {
  if (!tracer_.enabled()) return;
  // Chunks after the last EndSuperstep belong to no superstep; stamp
  // them with the one-past-the-end index.
  sheet_.FlushStep(supersteps_, &host_spans_);
}

TraceCounters JobContext::TraceTotals() const {
  TraceCounters trace;
  if (!tracer_.enabled()) return trace;
  trace.enabled = true;
  const exec::CounterSheet::StepTotals& totals = sheet_.job_totals();
  trace.parallel_loops = totals.loops;
  trace.parallel_chunks = totals.chunks;
  trace.chunk_busy_ns = totals.busy_ns;
  trace.dropped_spans = totals.dropped;
  trace.datapath_growth_events = exec::DataPathAllocEvents() - alloc_base_;
  trace.frontier_peak_active = tracer_.peak_active();
  trace.scratch_high_water_bytes = scratch_.HighWaterBytes();
  trace.steal_count =
      env_.host_pool ? env_.host_pool->TotalSteals() - steal_base_ : 0;
  return trace;
}

void JobContext::ChargeSequential(std::uint64_t ops,
                                  const std::string& label) {
  (void)label;
  ledger_.compute_ops += ops;
  sim_seconds_ += cluster_.SequentialSeconds(ops);
}

Status JobContext::ChargeMemory(int machine, std::int64_t bytes,
                                const std::string& what) {
  // Injected allocation failures are keyed by the charge ordinal, which
  // is a deterministic property of the engine's charge sequence.
  if (faults::FaultInjector* injector = faults::GlobalInjector()) {
    GA_RETURN_IF_ERROR(injector->OnMemoryCharge());
  }
  if (memory_ == nullptr) return Status::Ok();
  return memory_->Charge(machine, bytes, what);
}

void JobContext::ReleaseMemory(int machine, std::int64_t bytes) {
  if (memory_ != nullptr) memory_->Release(machine, bytes);
}

// ---------------------------------------------------------------------------
// Platform

sysmodel::ClusterConfig MakeClusterConfig(const ExecutionEnvironment& env,
                                          const CostProfile& profile) {
  sysmodel::ClusterConfig config;
  config.machine = env.machine;
  config.network = env.network;
  config.num_machines = env.num_machines;
  config.threads_per_machine = env.threads_per_machine;
  config.hyperthread_efficiency = profile.hyperthread_efficiency;
  config.serial_fraction = profile.serial_fraction;
  config.barrier_seconds = profile.barrier_seconds * env.overhead_scale;
  return config;
}

bool Platform::SupportsAlgorithm(Algorithm algorithm,
                                 const ExecutionEnvironment& env) const {
  (void)algorithm;
  if (env.num_machines > 1 && !info().distributed) return false;
  return true;
}

std::vector<std::int64_t> Platform::UploadFootprintBytes(
    const Graph& graph, const ExecutionEnvironment& env) const {
  const CostProfile& cost = profile();
  const int machines = std::max(env.num_machines, 1);
  VertexPartition partition = HashPartition(graph, machines);
  std::vector<std::int64_t> bytes(machines, 0);
  std::vector<std::int64_t> hub_degree(machines, 0);
  for (VertexIndex v = 0; v < graph.num_vertices(); ++v) {
    const int m = partition.part_of[v];
    bytes[m] += static_cast<std::int64_t>(cost.mem_bytes_per_vertex) +
                static_cast<std::int64_t>(
                    cost.mem_bytes_per_entry *
                    static_cast<double>(graph.OutDegree(v)));
    hub_degree[m] = std::max(hub_degree[m], graph.InDegree(v));
  }
  for (int m = 0; m < machines; ++m) {
    bytes[m] += static_cast<std::int64_t>(cost.mem_bytes_per_hub_degree *
                                          static_cast<double>(hub_degree[m]));
  }
  return bytes;
}

Result<RunResult> Platform::RunJob(const Graph& graph, Algorithm algorithm,
                                   const AlgorithmParams& params,
                                   const ExecutionEnvironment& env) {
  if (env.num_machines < 1 || env.threads_per_machine < 1) {
    return Status::InvalidArgument("environment needs >= 1 machine/thread");
  }
  if (env.num_machines > 1 && !info().distributed) {
    return Status::Unsupported(info().id +
                               " is a single-machine platform (paper: type "
                               "S); cannot use " +
                               std::to_string(env.num_machines) +
                               " machines");
  }
  if (!SupportsAlgorithm(algorithm, env)) {
    return Status::Unsupported(info().id + " does not implement " +
                               std::string(AlgorithmName(algorithm)) +
                               " in this configuration");
  }
  if (algorithm == Algorithm::kSssp && !graph.is_weighted()) {
    return Status::FailedPrecondition("SSSP requires edge weights");
  }
  // A request cancelled while queued never starts: the serve admission
  // path checks before dispatch, but a token can trip in the window
  // between dispatch and here.
  if (env.cancel != nullptr && env.cancel->stop_requested()) {
    return env.cancel->status();
  }

  WallTimer wall;
  const CostProfile& cost = profile();
  sysmodel::ClusterModel cluster(MakeClusterConfig(env, cost));
  // Swap-capable jobs get 15% headroom above the budget; exceeding the
  // budget (but not the headroom) then costs a swap-penalty slowdown
  // instead of a crash.
  const bool swap_capable = SwapCapable(algorithm, env);
  const std::int64_t capacity =
      swap_capable ? env.memory_budget_bytes +
                         env.memory_budget_bytes * 15 / 100
                   : env.memory_budget_bytes;
  sysmodel::MemoryAccountant memory(capacity, env.num_machines);

  auto root = std::make_unique<granula::Operation>(
      info().id, std::string(granula::kMissionJob));
  root->Begin(0.0, 0.0);
  root->AddInfo("algorithm", std::string(AlgorithmName(algorithm)));
  root->AddInfo("machines", std::to_string(env.num_machines));
  root->AddInfo("threads", std::to_string(env.threads_per_machine));

  double sim_now = 0.0;

  // --- Startup: runtime spin-up; grows mildly with cluster size. --------
  granula::Operation* startup = root->AddChild(
      info().id, std::string(granula::kMissionStartup));
  startup->Begin(sim_now, 0.0);
  sim_now += cost.startup_seconds * env.overhead_scale *
             (1.0 + 0.1 * std::log2(static_cast<double>(env.num_machines)));
  startup->End(sim_now, 0.0);

  // --- UploadGraph: ingest + format conversion + resident footprint. ----
  granula::Operation* upload = root->AddChild(
      info().id, std::string(granula::kMissionUploadGraph));
  upload->Begin(sim_now, 0.0);
  std::vector<std::int64_t> footprint = UploadFootprintBytes(graph, env);
  for (int m = 0; m < env.num_machines; ++m) {
    Status charged = memory.Charge(m, footprint[m], "graph upload");
    if (!charged.ok()) return charged;
  }
  // Ingest is parallel across machines but mostly I/O + parse bound:
  // charge the per-machine share of adjacency entries at load cost.
  const double load_entries =
      static_cast<double>(graph.num_adjacency_entries()) /
      static_cast<double>(env.num_machines);
  sim_now += load_entries * cost.ops_per_load_entry /
             env.machine.core_ops_per_second;
  upload->End(sim_now, 0.0);
  upload->AddInfo("vertices", std::to_string(graph.num_vertices()));
  upload->AddInfo("edges", std::to_string(graph.num_edges()));
  const double upload_seconds = sim_now;

  // --- ProcessGraph: the algorithm itself (T_proc). ---------------------
  granula::Operation* processing = root->AddChild(
      info().id, std::string(granula::kMissionProcessGraph));
  processing->Begin(sim_now, 0.0);
  JobContext ctx(cluster, &memory, cost, processing, env);
  ctx.set_sim_origin(sim_now);
  if (env.checkpoint.writes_enabled() || env.checkpoint.resume_enabled()) {
    ctx.ConfigureCheckpoint(
        env.checkpoint,
        resilience::MakeJobKey(
            info().id, std::string(AlgorithmName(algorithm)),
            graph.num_vertices(), graph.num_edges(), env.num_machines,
            env.threads_per_machine));
  }
  // The job boundary converts worker-chunk exceptions (surfaced by the
  // ThreadPool on the submitting thread) back into Status: the suite
  // must quarantine a crashing cell, never die with it.
  auto output = [&]() -> Result<AlgorithmOutput> {
    try {
      return Execute(ctx, graph, algorithm, params);
    } catch (const StatusException& e) {
      return e.status();
    } catch (const std::exception& e) {
      return Status::Aborted(std::string("worker exception escaped the "
                                         "engine: ") +
                             e.what());
    }
  }();
  if (!output.ok()) return output.status();
  double processing_seconds = ctx.sim_seconds();
  if (swap_capable) {
    std::int64_t max_peak = 0;
    for (int m = 0; m < env.num_machines; ++m) {
      max_peak = std::max(max_peak, memory.peak(m));
    }
    if (max_peak > env.memory_budget_bytes) {
      processing_seconds *= cost.swap_penalty;
      processing->AddInfo("swapping", "true");
    }
  }
  sim_now += processing_seconds;
  processing->End(sim_now, 0.0);
  processing->AddInfo("supersteps", std::to_string(ctx.supersteps()));
  if (env.trace_enabled) {
    // Job-level counter summary folded into the archive (per-superstep
    // detail already sits on the Superstep children).
    ctx.FlushTrailingTrace();
    const TraceCounters trace = ctx.TraceTotals();
    processing->AddInfo("parallel_loops",
                        std::to_string(trace.parallel_loops));
    processing->AddInfo("parallel_chunks",
                        std::to_string(trace.parallel_chunks));
    processing->AddInfo("chunk_busy_ns",
                        std::to_string(trace.chunk_busy_ns));
    processing->AddInfo("steal_count", std::to_string(trace.steal_count));
    processing->AddInfo("datapath_growth_events",
                        std::to_string(trace.datapath_growth_events));
    processing->AddInfo("frontier_peak_active",
                        std::to_string(trace.frontier_peak_active));
    processing->AddInfo("scratch_high_water_bytes",
                        std::to_string(trace.scratch_high_water_bytes));
  }

  // --- OffloadGraph: write results back for validation. -----------------
  granula::Operation* offload = root->AddChild(
      info().id, std::string(granula::kMissionOffloadGraph));
  offload->Begin(sim_now, 0.0);
  sim_now += static_cast<double>(graph.num_vertices()) * 4.0 /
             env.machine.core_ops_per_second;
  offload->End(sim_now, 0.0);

  // --- Cleanup. ----------------------------------------------------------
  granula::Operation* cleanup = root->AddChild(
      info().id, std::string(granula::kMissionCleanup));
  cleanup->Begin(sim_now, 0.0);
  sim_now += cost.startup_seconds * env.overhead_scale * 0.05;
  cleanup->End(sim_now, 0.0);

  root->End(sim_now, wall.ElapsedSeconds());

  RunResult result{std::move(output).value(), RunMetrics{},
                   granula::Archive(std::move(root))};
  result.metrics.upload_sim_seconds = upload_seconds;
  result.metrics.makespan_sim_seconds = sim_now;
  result.metrics.processing_sim_seconds = processing_seconds;
  result.metrics.wall_seconds = wall.ElapsedSeconds();
  result.metrics.supersteps = ctx.supersteps();
  result.metrics.ledger = ctx.ledger();
  if (env.trace_enabled) {
    result.metrics.trace = ctx.TraceTotals();
    result.archive.set_host_spans(ctx.TakeHostSpans());
  }
  return result;
}

}  // namespace ga::platform
