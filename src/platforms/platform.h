// Platform: the common interface of the six graph-analysis platform
// analogues (paper Section 3.1 / Table 5).
//
// A Platform mirrors the role of a Graphalytics *driver* plus the platform
// it drives: the harness instructs it to upload a graph, execute an
// algorithm with parameters, and return the output for validation
// (Figure 1, component 10). Every platform executes the algorithms for
// real on the in-memory graph; it differs from the others in
//   (a) the programming model it implements (Pregel BSP, dataflow joins,
//       GAS vertex-cut, SpMV semirings, handwritten kernels, push-pull),
//   (b) the cost profile with which its work is converted into simulated
//       time by ga::sysmodel (see DESIGN.md §3), and
//   (c) its memory model, which determines crash points (§4.6).
#ifndef GRAPHALYTICS_PLATFORMS_PLATFORM_H_
#define GRAPHALYTICS_PLATFORMS_PLATFORM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algo/output.h"
#include "algo/params.h"
#include "core/exec/counter_sheet.h"
#include "core/exec/exec.h"
#include "core/exec/scratch_pool.h"
#include "core/graph.h"
#include "core/status.h"
#include "core/timer.h"
#include "core/types.h"
#include "core/work_ledger.h"
#include "granula/archive.h"
#include "granula/model.h"
#include "granula/tracer.h"
#include "resilience/checkpoint.h"
#include "sysmodel/cluster.h"

namespace ga::platform {

struct PlatformInfo {
  std::string id;           // e.g. "bsplite"
  std::string analogue_of;  // e.g. "Giraph (Apache)"
  std::string vendor;       // community / Intel / Oracle / ...
  std::string model;        // programming model name
  bool distributed = true;  // supports > 1 machine
};

/// Calibration constants converting a platform's real work into simulated
/// cost. The *mechanisms* (which work is performed, what memory is
/// materialised) live in the engine implementations; the profile holds the
/// per-unit constants (see DESIGN.md §3 for the calibration story).
struct CostProfile {
  // --- computation (abstract ops) ---
  double ops_per_edge = 2.0;      // per adjacency entry traversed
  double ops_per_vertex = 4.0;    // per vertex program invocation
  double ops_per_message = 0.0;   // per message created or consumed
  double ops_per_load_entry = 20.0;  // graph ingest cost per adjacency entry

  // --- communication ---
  double bytes_per_message = 16.0;  // wire size of one remote message

  // --- fixed overheads (PAPER-scale seconds) ---
  // These are physical constants of the real testbed (JVM spin-up takes
  // minutes regardless of graph size). They are multiplied by the
  // environment's overhead_scale (1 / scale divisor) when deployed, so
  // projected reports show them at their true magnitude at any divisor.
  double startup_seconds = 10.0;       // runtime spin-up (JVM, MPI, ...)
  double superstep_overhead_seconds = 51.2e-3;
  // Cost of one global barrier; async engines (PGX.D's cooperative
  // scheduling) pay far less than BSP runtimes.
  double barrier_seconds = 20.5e-3;

  // --- scaling behaviour ---
  double hyperthread_efficiency = 0.2;
  double serial_fraction = 0.08;  // Amdahl cap (Table 9)

  // --- memory model (bytes) ---
  double mem_bytes_per_vertex = 64.0;
  double mem_bytes_per_entry = 24.0;  // per adjacency entry
  // Message/aggregation buffer proportional to the hottest vertex's
  // in-degree: the term that makes skewed Graph500 graphs crash platforms
  // that survive Datagen graphs of equal scale (§4.6, Table 10).
  double mem_bytes_per_hub_degree = 0.0;
  // Slowdown applied when a swap-capable backend's working set slightly
  // exceeds physical memory (paper §4.4: GraphMat's single-machine PR
  // outlier, "most likely because of swapping").
  double swap_penalty = 10.0;
  // Run-to-run coefficient of variation of T_proc (JIT, GC, OS and
  // network jitter). Deterministic engines have no intrinsic noise, so
  // the harness reintroduces it with a seeded jitter stream when a job is
  // repeated; per-platform values follow Table 11.
  double variability_cv = 0.05;
};

/// Deployment of the system under test for one job.
struct ExecutionEnvironment {
  int num_machines = 1;
  int threads_per_machine = 32;  // hardware threads of one DAS-5 node
  sysmodel::MachineSpec machine = sysmodel::MachineSpec::Das5();
  sysmodel::NetworkSpec network = sysmodel::NetworkSpec::GigabitEthernet();
  /// Per-machine memory available to the platform. The harness scales the
  /// paper's 64 GiB down by the dataset scale divisor.
  std::int64_t memory_budget_bytes = 64LL << 20;
  /// Use the distributed backend even on one machine, for platforms with
  /// manually selected backends (the paper runs GraphMat's D backend in
  /// all horizontal-scalability experiments, §4.4-4.5).
  bool prefer_distributed_backend = false;
  /// Converts the profile's paper-scale fixed overheads into simulated
  /// seconds: 1 / scale divisor. The default matches the default divisor
  /// of 1024.
  double overhead_scale = 1.0 / 1024.0;
  /// Host thread pool the engines execute their real work on (not owned;
  /// must outlive the job). Null runs everything on the calling thread.
  /// Orthogonal to num_machines/threads_per_machine, which configure the
  /// *simulated* cluster; results and simulated metrics are identical at
  /// any host parallelism (DESIGN.md §6).
  exec::ThreadPool* host_pool = nullptr;
  /// Arms the deep-tracing layer (granula::Tracer + exec::CounterSheet):
  /// per-superstep spans gain wall-clock stamps, engine annotations and
  /// exec-layer counters, and the archive carries a host chunk timeline.
  /// Off by default — the disabled path costs one branch per hook.
  /// Tracing never changes outputs, WorkLedger or simulated metrics
  /// (docs/OBSERVABILITY.md).
  bool trace_enabled = false;
  /// Lightweight always-on exec telemetry (ga::telemetry): an externally
  /// owned CounterSheet, Enable(false)'d by the caller (aggregate chunk
  /// counts + busy ticks, no span retention), attached to the job's
  /// ExecContext when deep tracing is off. The caller folds it with
  /// FlushStep after the job. Never changes outputs or scheduling — the
  /// sheet only observes the slot decomposition. Not owned; must outlive
  /// the job. Ignored while trace_enabled (the traced sheet subsumes it).
  exec::CounterSheet* metrics_sheet = nullptr;
  /// Superstep checkpoint/restart plan (ga::resilience, DESIGN.md §13).
  /// Default-constructed = no checkpointing, no resume.
  resilience::CheckpointPlan checkpoint;
  /// Wall-clock (host time) budget for the processing phase. Checked at
  /// superstep boundaries; a job past its budget fails with
  /// kDeadlineExceeded, which the hardened runner reports as kTimedOut.
  /// <= 0 disables the check.
  double wall_timeout_seconds = 0.0;
  /// Cooperative cancellation token (not owned; must outlive the job).
  /// Null — the default — runs uncancellable. When set, a tripped token
  /// stops the job within one exec chunk (parallel loops throw its
  /// status) and no later than the next superstep boundary; the job
  /// fails with kCancelled or kDeadlineExceeded (DESIGN.md §14).
  const exec::CancelToken* cancel = nullptr;
};

/// Deep-tracing summary of one job, filled only when tracing was enabled.
/// The deterministic group is a function of the slot decomposition and
/// the algorithm's own state evolution — identical at any --jobs value —
/// and is the ONLY part allowed into experiments.json. The host-timing
/// group varies run to run and stays in the archive / Chrome trace.
struct TraceCounters {
  bool enabled = false;
  // Deterministic.
  std::uint64_t parallel_loops = 0;       // parallel_for/reduce dispatches
  std::uint64_t parallel_chunks = 0;      // slot chunks executed
  std::uint64_t datapath_growth_events = 0;  // alloc_stats.h, this job
  std::int64_t frontier_peak_active = 0;  // max annotated active count
  std::uint64_t scratch_high_water_bytes = 0;  // ScratchPool footprint
  // Host-timing dependent.
  std::int64_t chunk_busy_ns = 0;   // summed chunk wall time
  std::uint64_t steal_count = 0;    // ThreadPool cross-band claims
  std::uint64_t dropped_spans = 0;  // chunk spans past the retention cap
};

struct RunMetrics {
  double upload_sim_seconds = 0.0;      // preprocess + ingest
  double makespan_sim_seconds = 0.0;    // full job (paper: makespan)
  double processing_sim_seconds = 0.0;  // Granula ProcessGraph (T_proc)
  double wall_seconds = 0.0;            // real host time spent
  int supersteps = 0;
  WorkLedger ledger;
  TraceCounters trace;  // all-zero unless env.trace_enabled
};

struct RunResult {
  AlgorithmOutput output;
  RunMetrics metrics;
  granula::Archive archive;
};

class Platform;

/// Execution context handed to an engine while it runs an algorithm.
/// The engine performs its real work, then reports per-worker operation
/// counts and per-machine communication for each superstep; the context
/// advances the simulated clock via the cluster model and maintains the
/// Granula phase tree.
class JobContext {
 public:
  JobContext(const sysmodel::ClusterModel& cluster,
             sysmodel::MemoryAccountant* memory, const CostProfile& profile,
             granula::Operation* processing_op,
             const ExecutionEnvironment& env);

  const ExecutionEnvironment& env() const { return env_; }
  const sysmodel::ClusterModel& cluster() const { return cluster_; }
  const CostProfile& profile() const { return profile_; }
  int num_machines() const { return cluster_.num_machines(); }
  int threads_per_machine() const { return cluster_.threads_per_machine(); }
  int num_workers() const { return cluster_.num_workers(); }

  /// Worker index for (machine, thread).
  int WorkerOf(int machine, int thread) const {
    return machine * cluster_.threads_per_machine() + thread;
  }

  /// Scratch vectors reused across supersteps.
  std::vector<std::uint64_t>& worker_ops() { return worker_ops_; }
  std::vector<sysmodel::MachineComm>& machine_comm() { return machine_comm_; }
  void ResetSuperstepCounters();

  /// Host-parallel execution handle for the engine's real work.
  exec::ExecContext& exec() { return exec_; }

  /// Deep-tracing handle. Disabled (near-free hooks) unless the job's
  /// environment set trace_enabled; engines call the annotation API
  /// unconditionally. Tracing observes — it never changes control flow,
  /// outputs or simulated accounting.
  granula::Tracer& tracer() { return tracer_; }

  /// Folds exec counters recorded after the last superstep (result
  /// assembly, serial-phase loops) into the job totals and host timeline.
  /// RunJob calls this once, after Execute returns.
  void FlushTrailingTrace();

  /// End-of-job tracing summary (all-zero when tracing is off).
  TraceCounters TraceTotals() const;

  /// Job-clock sim time at which processing began. The context's own
  /// sim clock starts at 0 (T_proc accounting); Superstep Operations are
  /// stamped at origin + local time so the archive's span tree shares
  /// one monotonic clock with the Startup/UploadGraph phases.
  void set_sim_origin(double origin_seconds) {
    sim_origin_ = origin_seconds;
  }

  /// Moves out the host chunk timeline accumulated across supersteps
  /// (RunJob attaches it to the archive).
  std::vector<exec::ChunkSpan> TakeHostSpans() {
    return std::move(host_spans_);
  }

  /// Slot-local reusable scratch (CDLP label counters, LCC flag arrays).
  /// Prepare() outside parallel regions; bodies touch only their slot's
  /// objects. Lives as long as the job, so steady-state supersteps reset
  /// scratch instead of reallocating it (DESIGN.md §8).
  exec::ScratchPool& scratch() { return scratch_; }

  /// Slot-local staging of the charges an engine makes inside a
  /// host-parallel region: per-worker ops, per-machine communication and
  /// ledger counters. Bodies write to slot_charges(slice.slot) only;
  /// MergeSlotCharges() folds every slot into the superstep counters in
  /// slot order, keeping the accounting independent of host thread count.
  struct SlotCharges {
    std::vector<std::uint64_t> worker_ops;    // per simulated worker
    std::vector<sysmodel::MachineComm> comm;  // per machine
    WorkLedger ledger;
  };
  /// Sizes (and zeroes) `num_slots` staging slots for a parallel region.
  void PrepareSlotCharges(int num_slots);
  SlotCharges& slot_charges(int slot) { return slot_charges_[slot]; }
  void MergeSlotCharges();

  /// Completes one superstep: charges the accumulated worker_ops() and
  /// machine_comm() to the simulated clock (plus the profile's per-
  /// superstep overhead) and records a Granula child operation.
  ///
  /// This is also the job's resilience boundary: an armed fault injector
  /// may fail the superstep (kAborted machine crash, or a real SIGKILL
  /// for the crash/restart harness), and a job past its wall-clock
  /// budget fails with kDeadlineExceeded. Engines must propagate the
  /// status (GA_RETURN_IF_ERROR).
  Status EndSuperstep(const std::string& label);

  // --- superstep checkpoint/restart (ga::resilience, DESIGN.md §13) ----

  /// Arms checkpointing for this job. RunJob calls this with the
  /// environment's plan and a key derived from (platform, algorithm,
  /// graph, simulated cluster); engines never configure it themselves.
  void ConfigureCheckpoint(const resilience::CheckpointPlan& plan,
                           std::uint64_t job_key);

  /// Probes for a checkpoint to resume from. Returns null when the job
  /// starts fresh (no plan, resume off, or no file yet); otherwise
  /// restores the context's own state — superstep count, simulated
  /// clock (bit-exact), ledger, memory accountant — and returns a
  /// reader positioned on the same checkpoint for the ENGINE to restore
  /// its vertex values / frontier / mail / loop counters from. Engines
  /// call this once, after building their structures, before the
  /// superstep loop.
  Result<const resilience::StateReader*> MaybeRestore();

  /// At a superstep boundary (after EndSuperstep + Advance): writes a
  /// checkpoint when the plan's cadence divides the superstep count.
  /// `save_engine` contributes the engine's state sections on top of the
  /// context's own. No-op (and no callback invocation) when a checkpoint
  /// is not due.
  Status MaybeCheckpoint(
      const std::function<void(resilience::StateWriter&)>& save_engine);

  /// Whether MaybeCheckpoint can ever fire for this job — engines that
  /// support checkpointing may skip assembling state for jobs that never
  /// write.
  bool checkpoint_writes_enabled() const {
    return checkpoint_plan_.writes_enabled();
  }

  /// Charges sequential (single-threaded) work, e.g. result assembly.
  void ChargeSequential(std::uint64_t ops, const std::string& label);

  /// Adds fixed simulated seconds (engine-specific overheads).
  void AddSimSeconds(double seconds) { sim_seconds_ += seconds; }

  /// Charges scratch memory on one machine; fails with kOutOfMemory when
  /// the machine budget is exceeded (the job then crashes).
  Status ChargeMemory(int machine, std::int64_t bytes,
                      const std::string& what);
  void ReleaseMemory(int machine, std::int64_t bytes);

  WorkLedger& ledger() { return ledger_; }
  double sim_seconds() const { return sim_seconds_; }
  int supersteps() const { return supersteps_; }
  granula::Operation* processing_op() { return processing_op_; }

 private:
  const sysmodel::ClusterModel& cluster_;
  sysmodel::MemoryAccountant* memory_;
  const CostProfile& profile_;
  ExecutionEnvironment env_;
  granula::Operation* processing_op_;
  exec::ExecContext exec_;
  exec::ScratchPool scratch_;
  std::vector<std::uint64_t> worker_ops_;
  std::vector<sysmodel::MachineComm> machine_comm_;
  std::vector<SlotCharges> slot_charges_;
  WorkLedger ledger_;
  double sim_seconds_ = 0.0;
  double sim_origin_ = 0.0;
  int supersteps_ = 0;

  // Resilience state (ConfigureCheckpoint; inert by default).
  resilience::CheckpointPlan checkpoint_plan_;
  std::uint64_t checkpoint_key_ = 0;
  std::optional<resilience::StateReader> restore_;
  int last_checkpoint_step_ = -1;
  WallTimer wall_;  // processing-phase wall clock (timeout checks)

  // Deep tracing (inert unless env.trace_enabled armed them in the ctor).
  granula::Tracer tracer_;
  exec::CounterSheet sheet_;
  std::vector<exec::ChunkSpan> host_spans_;
  std::uint64_t last_messages_ = 0;  // ledger messages at last superstep
  std::uint64_t steal_base_ = 0;     // pool steals when the job started
  std::uint64_t alloc_base_ = 0;     // global growth events at job start
};

class Platform {
 public:
  virtual ~Platform() = default;

  virtual const PlatformInfo& info() const = 0;
  virtual const CostProfile& profile() const = 0;

  /// Whether this platform implements `algorithm` in `env` (e.g. the
  /// PGX.D analogue has no LCC, matching the paper's "NA" in Figure 6).
  virtual bool SupportsAlgorithm(Algorithm algorithm,
                                 const ExecutionEnvironment& env) const;

  /// Whether this job can spill to disk instead of crashing when memory
  /// is up to ~15% over budget (GraphMat's mmap-backed D backend can;
  /// everything else crashes at the budget).
  virtual bool SwapCapable(Algorithm algorithm,
                           const ExecutionEnvironment& env) const {
    (void)algorithm;
    (void)env;
    return false;
  }

  /// Runs a complete benchmark job: startup, upload, process, offload,
  /// cleanup — with Granula instrumentation throughout. Returns the
  /// algorithm output plus metrics, or a non-OK status if the job crashed
  /// (kOutOfMemory), the algorithm is unsupported, or inputs are invalid.
  Result<RunResult> RunJob(const Graph& graph, Algorithm algorithm,
                           const AlgorithmParams& params,
                           const ExecutionEnvironment& env);

  /// Runs the engine kernel directly against a caller-provided JobContext:
  /// no startup/upload phases, no Granula tree, no memory accounting
  /// unless the context carries them. Entry point for the
  /// engine-throughput bench and the steady-state allocation tests, which
  /// measure the raw data path in isolation (DESIGN.md §8).
  Result<AlgorithmOutput> ExecuteKernel(JobContext& ctx, const Graph& graph,
                                        Algorithm algorithm,
                                        const AlgorithmParams& params) {
    return Execute(ctx, graph, algorithm, params);
  }

 protected:
  /// Estimated resident bytes per machine after upload, given how this
  /// platform partitions and represents the graph. Default: hash
  /// partition, profile byte constants, hub term on the machine owning
  /// the highest in-degree vertex.
  virtual std::vector<std::int64_t> UploadFootprintBytes(
      const Graph& graph, const ExecutionEnvironment& env) const;

  /// Engine-specific execution of the algorithm (the real work).
  virtual Result<AlgorithmOutput> Execute(JobContext& ctx, const Graph& graph,
                                          Algorithm algorithm,
                                          const AlgorithmParams& params) = 0;
};

/// The simulated-cluster configuration RunJob derives from an
/// environment and a platform's cost profile. Shared with the
/// engine-throughput bench and the steady-state allocation tests so
/// kernel drivers measure exactly the cluster model production uses.
sysmodel::ClusterConfig MakeClusterConfig(const ExecutionEnvironment& env,
                                          const CostProfile& profile);

/// All six platform analogues, in the paper's Table 5 order.
std::vector<std::unique_ptr<Platform>> CreateAllPlatforms();

/// Creates one platform by id ("bsplite", "dataflow", "gaslite", "spmat",
/// "nativekernel", "pushpull").
Result<std::unique_ptr<Platform>> CreatePlatform(const std::string& id);

/// The ids of all platforms, in canonical order.
std::vector<std::string> AllPlatformIds();

/// Descriptive info for one platform id (kNotFound for unknown ids).
/// Cheaper intent than CreatePlatform when a caller only needs metadata,
/// e.g. the experiment-suite scheduler deciding which platforms join the
/// multi-machine experiments (info.distributed).
Result<PlatformInfo> PlatformInfoFor(const std::string& id);

}  // namespace ga::platform

#endif  // GRAPHALYTICS_PLATFORMS_PLATFORM_H_
