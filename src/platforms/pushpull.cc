#include "platforms/pushpull.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "core/exec/exec.h"
#include "core/exec/frontier.h"
#include "core/exec/scratch_pool.h"
#include "granula/tracer.h"
#include "platforms/worker_map.h"

namespace ga::platform {

namespace {

// Frontier work-buffer entry (vertex id + payload) held during a superstep.
constexpr std::int64_t kFrontierEntryBytes = 24;

class PushPullRuntime {
 public:
  PushPullRuntime(JobContext& ctx, const Graph& graph)
      : ctx_(ctx),
        graph_(graph),
        workers_(graph, ctx.num_machines(), ctx.threads_per_machine()) {}

  /// Sizes (and zeroes) per-slot machine-op staging for one superstep's
  /// host-parallel loops.
  void PrepareSlots(int num_slots) {
    num_slots_ = std::max(num_slots, 1);
    if (static_cast<int>(slot_machine_ops_.size()) < num_slots_) {
      slot_machine_ops_.resize(num_slots_);
    }
    for (int slot = 0; slot < num_slots_; ++slot) {
      slot_machine_ops_[slot].assign(ctx_.num_machines(), 0);
    }
  }

  // Work lands on the vertex's machine (data locality), but threads within
  // a machine share it evenly: PGX.D's cooperative context switching
  // steals work dynamically, so hub vertices do not pin a single thread.
  // Charges stage per slot and fold in slot order at FlushMachineOps.
  void ChargeVertexWork(int slot, VertexIndex v, double ops) {
    slot_machine_ops_[slot][workers_.machine_of(v)] +=
        static_cast<std::uint64_t>(ops);
  }

  // Must run before JobContext::EndSuperstep: folds the slot-staged ops
  // into per-machine totals and spreads each machine's total across its
  // threads.
  void FlushMachineOps() {
    const int threads = ctx_.threads_per_machine();
    for (int m = 0; m < ctx_.num_machines(); ++m) {
      std::uint64_t total = 0;
      for (int slot = 0; slot < num_slots_; ++slot) {
        total += slot_machine_ops_[slot][m];
        slot_machine_ops_[slot][m] = 0;
      }
      for (int t = 0; t < threads; ++t) {
        ctx_.worker_ops()[ctx_.WorkerOf(m, t)] += total / threads;
      }
      ctx_.worker_ops()[ctx_.WorkerOf(m, 0)] += total % threads;
    }
  }

  // Remote values are aggregated per destination machine before hitting
  // the wire (PGX.D message combining): `remote_values` values shrink by
  // the combining factor.
  void ChargeRemoteValues(std::uint64_t remote_values) {
    if (ctx_.num_machines() <= 1 || remote_values == 0) return;
    constexpr double kCombiningFactor = 0.5;
    const auto bytes = static_cast<std::uint64_t>(
        static_cast<double>(remote_values) * kCombiningFactor *
        ctx_.profile().bytes_per_message /
        static_cast<double>(ctx_.num_machines()));
    for (int m = 0; m < ctx_.num_machines(); ++m) {
      ctx_.machine_comm()[m].bytes_sent += bytes;
      ctx_.machine_comm()[m].bytes_received += bytes;
    }
    ctx_.ledger().messages += remote_values;
  }

  Status ChargeFrontierBuffers(std::uint64_t entries,
                               const std::string& what) {
    charged_per_machine_ = static_cast<std::int64_t>(entries) *
                           kFrontierEntryBytes /
                           std::max(ctx_.num_machines(), 1);
    for (int m = 0; m < ctx_.num_machines(); ++m) {
      GA_RETURN_IF_ERROR(ctx_.ChargeMemory(m, charged_per_machine_, what));
    }
    charged_ = true;
    return Status::Ok();
  }

  void ReleaseFrontierBuffers() {
    if (!charged_) return;
    for (int m = 0; m < ctx_.num_machines(); ++m) {
      ctx_.ReleaseMemory(m, charged_per_machine_);
    }
    charged_ = false;
  }

  bool IsRemote(VertexIndex from, VertexIndex to) const {
    return workers_.machine_of(from) != workers_.machine_of(to);
  }

 private:
  JobContext& ctx_;
  const Graph& graph_;
  WorkerMap workers_;
  std::vector<std::vector<std::uint64_t>> slot_machine_ops_;
  int num_slots_ = 0;
  std::int64_t charged_per_machine_ = 0;
  bool charged_ = false;
};

Result<AlgorithmOutput> RunBfs(JobContext& ctx, const Graph& graph,
                               VertexIndex root) {
  const VertexIndex n = graph.num_vertices();
  AlgorithmOutput output;
  output.algorithm = Algorithm::kBfs;
  output.int_values.assign(n, kUnreachableHops);
  output.int_values[root] = 0;
  PushPullRuntime runtime(ctx, graph);
  const bool multi = ctx.num_machines() > 1;

  // Hybrid frontier (core/exec/frontier.h): the sparse queue drives push
  // levels, the dense bitset answers the pull level's parent tests, and
  // the out-edge stat replaces the per-level degree-summing loop.
  exec::Frontier frontier;
  frontier.Init(n);
  frontier.Seed(root, graph.OutDegree(root));
  std::vector<std::uint64_t> remote_scratch;
  std::int64_t depth = 0;
  const auto total_entries =
      static_cast<std::int64_t>(graph.num_adjacency_entries());
  while (!frontier.empty()) {
    ++depth;
    GA_RETURN_IF_ERROR(runtime.ChargeFrontierBuffers(
        static_cast<std::uint64_t>(frontier.active_count()),
        "bfs frontier"));

    // Both directions scan host-parallel against the previous level's
    // state; discoveries stage per slot and commit in slot order, which
    // matches the serial scan order exactly.
    std::uint64_t remote = 0;
    if (granula::TracedDecide(ctx.tracer(), frontier, total_entries) ==
        exec::TraversalDirection::kPush) {
      // Push: sparse frontier writes to unvisited out-neighbours.
      const std::int64_t frontier_size = frontier.active_count();
      const std::span<const VertexIndex> active = frontier.active();
      const int num_slots = exec::ExecContext::NumSlots(frontier_size);
      runtime.PrepareSlots(num_slots);
      frontier.PrepareStage(num_slots);
      remote = exec::parallel_reduce(
          ctx.exec(), 0, frontier_size, std::uint64_t{0},
          [&](const exec::Slice& slice, std::uint64_t& acc) {
            std::vector<VertexIndex>& out = frontier.stage(slice.slot);
            for (std::int64_t i = slice.begin; i < slice.end; ++i) {
              const VertexIndex v = active[i];
              double ops = ctx.profile().ops_per_vertex;
              for (VertexIndex u : graph.OutNeighbors(v)) {
                ops += ctx.profile().ops_per_edge;
                if (multi && runtime.IsRemote(v, u)) ++acc;
                if (output.int_values[u] == kUnreachableHops) {
                  out.push_back(u);
                }
              }
              runtime.ChargeVertexWork(slice.slot, v, ops);
            }
          },
          [](std::uint64_t& into, std::uint64_t from) { into += from; },
          &remote_scratch);
    } else {
      // Pull: every unvisited vertex scans in-neighbours, stopping at the
      // first frontier parent (the direction-optimisation payoff).
      const int num_slots = exec::ExecContext::NumSlots(n);
      runtime.PrepareSlots(num_slots);
      frontier.PrepareStage(num_slots);
      remote = exec::parallel_reduce(
          ctx.exec(), 0, n, std::uint64_t{0},
          [&](const exec::Slice& slice, std::uint64_t& acc) {
            std::vector<VertexIndex>& out = frontier.stage(slice.slot);
            for (VertexIndex v = slice.begin; v < slice.end; ++v) {
              if (output.int_values[v] != kUnreachableHops) continue;
              double ops = ctx.profile().ops_per_vertex;
              for (VertexIndex u : graph.InNeighbors(v)) {
                ops += ctx.profile().ops_per_edge;
                if (multi && runtime.IsRemote(u, v)) ++acc;
                if (frontier.Contains(u)) {
                  out.push_back(v);
                  break;
                }
              }
              runtime.ChargeVertexWork(slice.slot, v, ops);
            }
          },
          [](std::uint64_t& into, std::uint64_t from) { into += from; },
          &remote_scratch);
    }
    frontier.CommitStage([&](VertexIndex u) {
      output.int_values[u] = depth;
      return graph.OutDegree(u);
    });
    runtime.ChargeRemoteValues(remote);
    runtime.FlushMachineOps();
    GA_RETURN_IF_ERROR(ctx.EndSuperstep("bfs"));
    runtime.ReleaseFrontierBuffers();
    frontier.Advance();
  }
  return output;
}

Result<AlgorithmOutput> RunPageRank(JobContext& ctx, const Graph& graph,
                                    int iterations, double damping) {
  const VertexIndex n = graph.num_vertices();
  AlgorithmOutput output;
  output.algorithm = Algorithm::kPageRank;
  output.double_values.assign(n, n > 0 ? 1.0 / static_cast<double>(n) : 0.0);
  if (n == 0) return output;
  PushPullRuntime runtime(ctx, graph);
  const bool multi = ctx.num_machines() > 1;
  std::vector<double> next(n, 0.0);
  std::vector<double> dangling_scratch;
  std::vector<std::uint64_t> remote_scratch;
  const int num_slots = exec::ExecContext::NumSlots(n);
  for (int iteration = 0; iteration < iterations; ++iteration) {
    const double dangling = exec::parallel_reduce(
        ctx.exec(), 0, n, 0.0,
        [&](const exec::Slice& slice, double& acc) {
          for (VertexIndex v = slice.begin; v < slice.end; ++v) {
            if (graph.OutDegree(v) == 0) acc += output.double_values[v];
          }
        },
        [](double& into, double from) { into += from; },
        &dangling_scratch);
    const double base = (1.0 - damping) / static_cast<double>(n) +
                        damping * dangling / static_cast<double>(n);
    runtime.PrepareSlots(num_slots);
    const std::uint64_t remote = exec::parallel_reduce(
        ctx.exec(), 0, n, std::uint64_t{0},
        [&](const exec::Slice& slice, std::uint64_t& acc) {
          for (VertexIndex v = slice.begin; v < slice.end; ++v) {
            // Pull mode: read in-neighbours' ranks.
            double sum = 0.0;
            double ops = ctx.profile().ops_per_vertex;
            for (VertexIndex u : graph.InNeighbors(v)) {
              ops += ctx.profile().ops_per_edge;
              if (multi && runtime.IsRemote(u, v)) ++acc;
              sum += output.double_values[u] /
                     static_cast<double>(graph.OutDegree(u));
            }
            next[v] = base + damping * sum;
            runtime.ChargeVertexWork(slice.slot, v, ops);
          }
        },
        [](std::uint64_t& into, std::uint64_t from) { into += from; },
        &remote_scratch);
    if (ctx.tracer().enabled()) {
      // L1 rank movement of this sweep — observability only, computed
      // serially on the traced path so the untraced run does no work.
      double residual = 0.0;
      for (VertexIndex v = 0; v < n; ++v) {
        residual += std::abs(next[v] - output.double_values[v]);
      }
      ctx.tracer().AnnotateResidual(residual);
      ctx.tracer().AnnotateActive(n);
    }
    output.double_values.swap(next);
    runtime.ChargeRemoteValues(remote);
    runtime.FlushMachineOps();
    GA_RETURN_IF_ERROR(ctx.EndSuperstep("pr"));
  }
  return output;
}

Result<AlgorithmOutput> RunWcc(JobContext& ctx, const Graph& graph) {
  const VertexIndex n = graph.num_vertices();
  AlgorithmOutput output;
  output.algorithm = Algorithm::kWcc;
  output.int_values.resize(n);
  for (VertexIndex v = 0; v < n; ++v) {
    output.int_values[v] = graph.ExternalId(v);
  }
  PushPullRuntime runtime(ctx, graph);
  const bool multi = ctx.num_machines() > 1;

  // WCC propagates along both edge directions, so the frontier's degree
  // stat counts both and the pull threshold compares against the full
  // bidirectional scan volume.
  const bool directed = graph.is_directed();
  auto scan_degree = [&](VertexIndex v) {
    return graph.OutDegree(v) + (directed ? graph.InDegree(v) : 0);
  };
  const auto total_scan =
      static_cast<std::int64_t>(graph.num_adjacency_entries()) *
      (directed ? 2 : 1);
  exec::Frontier frontier;
  frontier.Init(n);
  frontier.SeedAll(total_scan);

  struct LabelPush {
    VertexIndex target;
    std::int64_t label;
  };
  exec::SlotBuffers<LabelPush> pushed;
  std::vector<std::uint64_t> remote_scratch;
  const int max_rounds = static_cast<int>(n) + 2;
  for (int round = 0; round < max_rounds && !frontier.empty(); ++round) {
    GA_RETURN_IF_ERROR(runtime.ChargeFrontierBuffers(
        static_cast<std::uint64_t>(frontier.active_count()),
        "wcc frontier"));
    std::uint64_t remote = 0;
    // Deliberately the early-exit alpha (20), NOT kPullAlphaSweep: this
    // engine's push stages a 16-byte candidate per improving edge, and
    // in WCC's label-cascade rounds most scanned edges improve — so a
    // pull round (at most one staged candidate per vertex) beats push
    // well below full saturation. Measured on the bench graph: 2.4x at
    // alpha 20 vs 1.0x at alpha 1.
    if (granula::TracedDecide(ctx.tracer(), frontier, total_scan) ==
        exec::TraversalDirection::kPull) {
      // Pull (the heavy early rounds, where nearly every vertex is
      // active): each vertex folds the labels of all its neighbours —
      // one improving candidate per vertex instead of a per-edge push
      // multiset.
      const int num_slots = exec::ExecContext::NumSlots(n);
      runtime.PrepareSlots(num_slots);
      pushed.Reset(num_slots);
      remote = exec::parallel_reduce(
          ctx.exec(), 0, n, std::uint64_t{0},
          [&](const exec::Slice& slice, std::uint64_t& acc) {
            std::vector<LabelPush>& out = pushed.buf(slice.slot);
            for (VertexIndex v = slice.begin; v < slice.end; ++v) {
              double ops = ctx.profile().ops_per_vertex;
              std::int64_t best = output.int_values[v];
              auto pull_from = [&](VertexIndex u) {
                ops += ctx.profile().ops_per_edge;
                if (multi && frontier.Contains(u) &&
                    runtime.IsRemote(u, v)) {
                  ++acc;
                }
                best = std::min(best, output.int_values[u]);
              };
              for (VertexIndex u : graph.OutNeighbors(v)) pull_from(u);
              if (directed) {
                for (VertexIndex u : graph.InNeighbors(v)) pull_from(u);
              }
              if (best < output.int_values[v]) out.push_back({v, best});
              runtime.ChargeVertexWork(slice.slot, v, ops);
            }
          },
          [](std::uint64_t& into, std::uint64_t from) { into += from; },
          &remote_scratch);
    } else {
      // Push: parallel expand from the sparse queue against last round's
      // labels; improving pushes commit min-first in slot order.
      const std::int64_t frontier_size = frontier.active_count();
      const std::span<const VertexIndex> active = frontier.active();
      const int num_slots = exec::ExecContext::NumSlots(frontier_size);
      runtime.PrepareSlots(num_slots);
      pushed.Reset(num_slots);
      remote = exec::parallel_reduce(
          ctx.exec(), 0, frontier_size, std::uint64_t{0},
          [&](const exec::Slice& slice, std::uint64_t& acc) {
            std::vector<LabelPush>& out = pushed.buf(slice.slot);
            for (std::int64_t i = slice.begin; i < slice.end; ++i) {
              const VertexIndex v = active[i];
              double ops = ctx.profile().ops_per_vertex;
              const std::int64_t label = output.int_values[v];
              auto push_to = [&](VertexIndex u) {
                ops += ctx.profile().ops_per_edge;
                if (multi && runtime.IsRemote(v, u)) ++acc;
                if (label < output.int_values[u]) {
                  out.push_back({u, label});
                }
              };
              for (VertexIndex u : graph.OutNeighbors(v)) push_to(u);
              if (directed) {
                for (VertexIndex u : graph.InNeighbors(v)) push_to(u);
              }
              runtime.ChargeVertexWork(slice.slot, v, ops);
            }
          },
          [](std::uint64_t& into, std::uint64_t from) { into += from; },
          &remote_scratch);
    }
    pushed.Drain([&](const LabelPush& push) {
      if (push.label < output.int_values[push.target]) {
        output.int_values[push.target] = push.label;
        frontier.Activate(push.target, scan_degree(push.target));
      }
    });
    runtime.ChargeRemoteValues(remote);
    runtime.FlushMachineOps();
    GA_RETURN_IF_ERROR(ctx.EndSuperstep("wcc"));
    runtime.ReleaseFrontierBuffers();
    frontier.Advance();
  }
  return output;
}

Result<AlgorithmOutput> RunCdlp(JobContext& ctx, const Graph& graph,
                                int iterations) {
  const VertexIndex n = graph.num_vertices();
  AlgorithmOutput output;
  output.algorithm = Algorithm::kCdlp;
  output.int_values.resize(n);
  for (VertexIndex v = 0; v < n; ++v) {
    output.int_values[v] = graph.ExternalId(v);
  }
  PushPullRuntime runtime(ctx, graph);
  const bool multi = ctx.num_machines() > 1;
  std::vector<std::int64_t> next(n);
  std::vector<std::uint64_t> remote_scratch;
  const int num_slots = exec::ExecContext::NumSlots(n);
  for (int iteration = 0; iteration < iterations; ++iteration) {
    runtime.PrepareSlots(num_slots);
    ctx.scratch().Prepare(num_slots);
    const std::uint64_t remote = exec::parallel_reduce(
        ctx.exec(), 0, n, std::uint64_t{0},
        [&](const exec::Slice& slice, std::uint64_t& acc) {
          for (VertexIndex v = slice.begin; v < slice.end; ++v) {
            exec::LabelCounter& labels = ctx.scratch().labels(slice.slot);
            double ops = ctx.profile().ops_per_vertex;
            for (VertexIndex u : graph.OutNeighbors(v)) {
              ops += ctx.profile().ops_per_edge * 3.5;
              if (multi && runtime.IsRemote(u, v)) ++acc;
              labels.Add(output.int_values[u]);
            }
            if (graph.is_directed()) {
              for (VertexIndex u : graph.InNeighbors(v)) {
                ops += ctx.profile().ops_per_edge * 3.5;
                if (multi && runtime.IsRemote(u, v)) ++acc;
                labels.Add(output.int_values[u]);
              }
            }
            next[v] = labels.empty() ? output.int_values[v] : labels.Mode();
            runtime.ChargeVertexWork(slice.slot, v, ops);
          }
        },
        [](std::uint64_t& into, std::uint64_t from) { into += from; },
        &remote_scratch);
    output.int_values.swap(next);
    ctx.tracer().AnnotateActive(n);
    // CDLP label votes cannot be combined per machine (mode aggregation).
    runtime.ChargeRemoteValues(remote * 2);
    runtime.FlushMachineOps();
    GA_RETURN_IF_ERROR(ctx.EndSuperstep("cdlp"));
  }
  return output;
}

Result<AlgorithmOutput> RunSssp(JobContext& ctx, const Graph& graph,
                                VertexIndex root) {
  const VertexIndex n = graph.num_vertices();
  AlgorithmOutput output;
  output.algorithm = Algorithm::kSssp;
  output.double_values.assign(n, kUnreachableDistance);
  output.double_values[root] = 0.0;
  PushPullRuntime runtime(ctx, graph);
  const bool multi = ctx.num_machines() > 1;
  exec::Frontier frontier;
  frontier.Init(n);
  frontier.Seed(root, graph.OutDegree(root));
  struct Relaxation {
    VertexIndex target;
    double distance;
  };
  exec::SlotBuffers<Relaxation> relaxed;
  std::vector<std::uint64_t> remote_scratch;
  const auto total_entries =
      static_cast<std::int64_t>(graph.num_adjacency_entries());
  const int max_rounds = static_cast<int>(n) + 2;
  for (int round = 0; round < max_rounds && !frontier.empty(); ++round) {
    GA_RETURN_IF_ERROR(runtime.ChargeFrontierBuffers(
        static_cast<std::uint64_t>(frontier.active_count()),
        "sssp frontier"));
    std::uint64_t remote = 0;
    if (granula::TracedDecide(ctx.tracer(), frontier, total_entries,
                              exec::Frontier::kPullAlphaSweep) ==
        exec::TraversalDirection::kPull) {
      // Pull (heavy relaxation waves): each vertex folds the candidate
      // distances of its frontier-resident in-neighbours — min is exact
      // in floating point, so the committed distances match the push
      // formulation bit for bit.
      const int num_slots = exec::ExecContext::NumSlots(n);
      runtime.PrepareSlots(num_slots);
      relaxed.Reset(num_slots);
      remote = exec::parallel_reduce(
          ctx.exec(), 0, n, std::uint64_t{0},
          [&](const exec::Slice& slice, std::uint64_t& acc) {
            std::vector<Relaxation>& out = relaxed.buf(slice.slot);
            for (VertexIndex v = slice.begin; v < slice.end; ++v) {
              double ops = ctx.profile().ops_per_vertex;
              double best = output.double_values[v];
              const auto sources = graph.InNeighbors(v);
              const auto weights = graph.InWeights(v);
              for (std::size_t j = 0; j < sources.size(); ++j) {
                ops += ctx.profile().ops_per_edge;
                if (multi && frontier.Contains(sources[j]) &&
                    runtime.IsRemote(sources[j], v)) {
                  ++acc;
                }
                best = std::min(
                    best, output.double_values[sources[j]] + weights[j]);
              }
              if (best < output.double_values[v]) out.push_back({v, best});
              runtime.ChargeVertexWork(slice.slot, v, ops);
            }
          },
          [](std::uint64_t& into, std::uint64_t from) { into += from; },
          &remote_scratch);
    } else {
      // Push: parallel expand over the sparse queue against last round's
      // distances; improving candidates commit min-first in slot order.
      const std::int64_t frontier_size = frontier.active_count();
      const std::span<const VertexIndex> active = frontier.active();
      const int num_slots = exec::ExecContext::NumSlots(frontier_size);
      runtime.PrepareSlots(num_slots);
      relaxed.Reset(num_slots);
      remote = exec::parallel_reduce(
          ctx.exec(), 0, frontier_size, std::uint64_t{0},
          [&](const exec::Slice& slice, std::uint64_t& acc) {
            std::vector<Relaxation>& out = relaxed.buf(slice.slot);
            for (std::int64_t i = slice.begin; i < slice.end; ++i) {
              const VertexIndex v = active[i];
              double ops = ctx.profile().ops_per_vertex;
              const auto neighbors = graph.OutNeighbors(v);
              const auto weights = graph.OutWeights(v);
              for (std::size_t j = 0; j < neighbors.size(); ++j) {
                ops += ctx.profile().ops_per_edge;
                if (multi && runtime.IsRemote(v, neighbors[j])) ++acc;
                const double candidate =
                    output.double_values[v] + weights[j];
                if (candidate < output.double_values[neighbors[j]]) {
                  out.push_back({neighbors[j], candidate});
                }
              }
              runtime.ChargeVertexWork(slice.slot, v, ops);
            }
          },
          [](std::uint64_t& into, std::uint64_t from) { into += from; },
          &remote_scratch);
    }
    relaxed.Drain([&](const Relaxation& relaxation) {
      if (relaxation.distance < output.double_values[relaxation.target]) {
        output.double_values[relaxation.target] = relaxation.distance;
        frontier.Activate(relaxation.target,
                          graph.OutDegree(relaxation.target));
      }
    });
    runtime.ChargeRemoteValues(remote);
    runtime.FlushMachineOps();
    GA_RETURN_IF_ERROR(ctx.EndSuperstep("sssp"));
    runtime.ReleaseFrontierBuffers();
    frontier.Advance();
  }
  return output;
}

}  // namespace

PushPullPlatform::PushPullPlatform() {
  info_ = PlatformInfo{"pushpull", "PGX.D (Oracle, Feb '16)", "Oracle",
                       "push-pull, cooperative context switching",
                       /*distributed=*/true};
  profile_.ops_per_edge = 2.0;
  profile_.ops_per_vertex = 3.0;
  profile_.ops_per_message = 1.5;
  profile_.ops_per_load_entry = 10.0;
  profile_.bytes_per_message = 10.0;
  profile_.startup_seconds = 246.0;
  profile_.superstep_overhead_seconds = 3.1e-3;
  profile_.barrier_seconds = 2.1e-3;
  profile_.hyperthread_efficiency = 0.30;  // context switching hides stalls
  profile_.serial_fraction = 0.02;
  profile_.mem_bytes_per_vertex = 256.0;  // per-vertex runtime contexts
  profile_.mem_bytes_per_entry = 50.0;    // eagerly sized buffers
  profile_.mem_bytes_per_hub_degree = 2500.0;
  profile_.variability_cv = 0.082;
}

bool PushPullPlatform::SupportsAlgorithm(
    Algorithm algorithm, const ExecutionEnvironment& env) const {
  if (algorithm == Algorithm::kLcc) return false;  // "NA" in Figure 6
  return Platform::SupportsAlgorithm(algorithm, env);
}

Result<AlgorithmOutput> PushPullPlatform::Execute(
    JobContext& ctx, const Graph& graph, Algorithm algorithm,
    const AlgorithmParams& params) {
  switch (algorithm) {
    case Algorithm::kBfs: {
      const VertexIndex root = graph.IndexOf(params.source_vertex);
      if (root == kInvalidVertex) {
        return Status::InvalidArgument("BFS source not in graph");
      }
      return RunBfs(ctx, graph, root);
    }
    case Algorithm::kPageRank:
      return RunPageRank(ctx, graph, params.pagerank_iterations,
                         params.damping_factor);
    case Algorithm::kWcc:
      return RunWcc(ctx, graph);
    case Algorithm::kCdlp:
      return RunCdlp(ctx, graph, params.cdlp_iterations);
    case Algorithm::kLcc:
      return Status::Unsupported("pushpull does not implement LCC");
    case Algorithm::kSssp: {
      const VertexIndex root = graph.IndexOf(params.source_vertex);
      if (root == kInvalidVertex) {
        return Status::InvalidArgument("SSSP source not in graph");
      }
      return RunSssp(ctx, graph, root);
    }
  }
  return Status::Internal("unknown algorithm");
}

}  // namespace ga::platform
