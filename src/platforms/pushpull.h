// PushPull: analogue of Oracle PGX.D (paper Table 5, row 6).
//
// A low-overhead engine built around direction-optimising traversal:
// vertices can both "push" (write) values along out-edges and "pull"
// (read) from in-neighbours — the paper singles PGX.D out for supporting
// pull. BFS switches between push (sparse frontier) and pull (dense
// frontier with early exit); PageRank runs in pull mode; WCC/CDLP/SSSP
// push over frontiers. Remote messages are aggregated per destination
// machine (PGX.D's "low-overhead, bandwidth-efficient network
// communication").
//
// Cost character: the fastest tier together with spmat, with the best
// thread scaling (15.0x in Table 9; cooperative context-switching hides
// latency). Its per-vertex runtime contexts and eagerly sized buffers
// assume big-memory machines: it cannot run class-XL graphs on one
// machine (§4.4) and is the first to crash in the stress test alongside
// GraphX (§4.6) — "PGX.D can be tuned to be more memory-efficient, but
// does not do so autonomously".
//
// LCC is not implemented, matching the "NA" entries in Figure 6.
#ifndef GRAPHALYTICS_PLATFORMS_PUSHPULL_H_
#define GRAPHALYTICS_PLATFORMS_PUSHPULL_H_

#include "platforms/platform.h"

namespace ga::platform {

class PushPullPlatform : public Platform {
 public:
  PushPullPlatform();

  const PlatformInfo& info() const override { return info_; }
  const CostProfile& profile() const override { return profile_; }

  bool SupportsAlgorithm(Algorithm algorithm,
                         const ExecutionEnvironment& env) const override;

 protected:
  Result<AlgorithmOutput> Execute(JobContext& ctx, const Graph& graph,
                                  Algorithm algorithm,
                                  const AlgorithmParams& params) override;

 private:
  PlatformInfo info_;
  CostProfile profile_;
};

}  // namespace ga::platform

#endif  // GRAPHALYTICS_PLATFORMS_PUSHPULL_H_
