#include "platforms/platform.h"

#include "platforms/bsplite.h"
#include "platforms/dataflow.h"
#include "platforms/gaslite.h"
#include "platforms/nativekernel.h"
#include "platforms/pushpull.h"
#include "platforms/spmat.h"

namespace ga::platform {

std::vector<std::unique_ptr<Platform>> CreateAllPlatforms() {
  std::vector<std::unique_ptr<Platform>> platforms;
  platforms.push_back(std::make_unique<BspLitePlatform>());
  platforms.push_back(std::make_unique<DataflowPlatform>());
  platforms.push_back(std::make_unique<GasLitePlatform>());
  platforms.push_back(std::make_unique<SpMatPlatform>());
  platforms.push_back(std::make_unique<NativeKernelPlatform>());
  platforms.push_back(std::make_unique<PushPullPlatform>());
  return platforms;
}

Result<std::unique_ptr<Platform>> CreatePlatform(const std::string& id) {
  for (auto& platform : CreateAllPlatforms()) {
    if (platform->info().id == id) {
      return std::move(platform);
    }
  }
  return Status::NotFound("no platform with id " + id);
}

Result<PlatformInfo> PlatformInfoFor(const std::string& id) {
  GA_ASSIGN_OR_RETURN(std::unique_ptr<Platform> platform, CreatePlatform(id));
  return platform->info();
}

std::vector<std::string> AllPlatformIds() {
  std::vector<std::string> ids;
  for (const auto& platform : CreateAllPlatforms()) {
    ids.push_back(platform->info().id);
  }
  return ids;
}

}  // namespace ga::platform
