#include "platforms/spmat.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "algo/lcc_kernel.h"
#include "core/exec/exec.h"
#include "core/exec/frontier.h"
#include "core/exec/scratch_pool.h"
#include "granula/tracer.h"
#include "platforms/worker_map.h"
#include "resilience/engine_state.h"

namespace ga::platform {

namespace {

// Bytes per sparse-vector entry in SpMV message/accumulator buffers.
constexpr std::int64_t kSparseEntryBytes = 8;
// Bytes per intermediate entry of the masked SpGEMM used by LCC.
constexpr std::int64_t kSpgemmEntryBytes = 16;

// Per-sweep counters accumulated by the parallel expand loops.
struct ExpandStats {
  std::uint64_t touched = 0;
  std::uint64_t remote = 0;
};

constexpr auto kMergeExpandStats = [](ExpandStats& into,
                                      const ExpandStats& from) {
  into.touched += from.touched;
  into.remote += from.remote;
};

class SpmvRuntime {
 public:
  SpmvRuntime(JobContext& ctx, const Graph& graph, bool distributed)
      : ctx_(ctx),
        graph_(graph),
        distributed_(distributed),
        workers_(graph, ctx.num_machines(), ctx.threads_per_machine()) {}

  // Charges one SpMV(-like) sweep that touched `entries` adjacency entries
  // and scanned `vector_length` vector slots, with the sparse buffer
  // memory held for the duration of the step. For the D backend, boundary
  // values cross machines in an all-to-all.
  Status EndSweep(std::uint64_t entries, std::uint64_t vector_length,
                  std::uint64_t remote_values, const std::string& label) {
    // Per-entry multiply-add, attributed by owning vertex of each entry is
    // approximated by an even spread weighted through the hash partition;
    // vector scans are evenly parallel.
    const double entry_ops = ctx_.profile().ops_per_edge;
    const double vector_ops = 0.3;
    const std::uint64_t total = static_cast<std::uint64_t>(
        static_cast<double>(entries) * entry_ops +
        static_cast<double>(vector_length) * vector_ops);
    DistributeOps(total);

    const std::int64_t buffer_bytes =
        static_cast<std::int64_t>(entries) * kSparseEntryBytes /
        std::max(ctx_.num_machines(), 1);
    // One job runs one algorithm, so the charge label is loop-invariant:
    // compose it once instead of allocating a fresh string every sweep.
    if (buffer_label_.empty()) buffer_label_ = label + " spmv buffers";
    for (int m = 0; m < ctx_.num_machines(); ++m) {
      GA_RETURN_IF_ERROR(ctx_.ChargeMemory(m, buffer_bytes, buffer_label_));
    }
    if (distributed_ && ctx_.num_machines() > 1) {
      const std::uint64_t combined_values =
          std::min(remote_values, vector_length);
      const auto bytes_per_machine = static_cast<std::uint64_t>(
          combined_values * kSparseEntryBytes /
          static_cast<std::uint64_t>(ctx_.num_machines()));
      for (int m = 0; m < ctx_.num_machines(); ++m) {
        ctx_.machine_comm()[m].bytes_sent += bytes_per_machine;
        ctx_.machine_comm()[m].bytes_received += bytes_per_machine;
      }
      ctx_.ledger().messages += remote_values;
    }
    GA_RETURN_IF_ERROR(ctx_.EndSuperstep(label));
    for (int m = 0; m < ctx_.num_machines(); ++m) {
      ctx_.ReleaseMemory(m, buffer_bytes);
    }
    return Status::Ok();
  }

  // Counts a value crossing machines (for frontier-push sweeps).
  std::uint64_t RemoteIfCross(VertexIndex from, VertexIndex to) const {
    return workers_.machine_of(from) != workers_.machine_of(to) ? 1 : 0;
  }

  const WorkerMap& workers() const { return workers_; }

 private:
  void DistributeOps(std::uint64_t total) {
    const int workers = ctx_.num_workers();
    // SpMV work is distributed by row blocks; residual imbalance beyond
    // the serial fraction is modest. Spread evenly with a small skew term
    // charged to worker 0 (the block holding the hottest rows).
    const std::uint64_t skew = total / 50;
    const std::uint64_t base = (total - skew) / workers;
    for (int w = 0; w < workers; ++w) ctx_.worker_ops()[w] += base;
    ctx_.worker_ops()[0] += skew + (total - skew) % workers;
  }

  JobContext& ctx_;
  const Graph& graph_;
  bool distributed_;
  WorkerMap workers_;
  std::string buffer_label_;
};

}  // namespace

SpMatPlatform::SpMatPlatform() {
  info_ = PlatformInfo{"spmat", "GraphMat (Intel, Feb '16)", "Intel",
                       "generalized SpMV / semirings",
                       /*distributed=*/true};
  profile_.ops_per_edge = 1.0;
  profile_.ops_per_vertex = 2.0;
  profile_.ops_per_message = 1.0;
  profile_.ops_per_load_entry = 8.0;
  profile_.bytes_per_message = 12.0;
  profile_.startup_seconds = 4.1;
  profile_.superstep_overhead_seconds = 10.2e-3;
  profile_.barrier_seconds = 8.2e-3;
  profile_.hyperthread_efficiency = 0.05;
  profile_.serial_fraction = 0.05;
  profile_.mem_bytes_per_vertex = 24.0;
  profile_.mem_bytes_per_entry = 18.0;
  profile_.mem_bytes_per_hub_degree = 6000.0;
  profile_.swap_penalty = 10.0;
  profile_.variability_cv = 0.097;
}

std::vector<std::int64_t> SpMatPlatform::UploadFootprintBytes(
    const Graph& graph, const ExecutionEnvironment& env) const {
  // Hash-partitioned CSR/CSC tiles; same shape as the default model.
  return Platform::UploadFootprintBytes(graph, env);
}

Result<AlgorithmOutput> SpMatPlatform::Execute(
    JobContext& ctx, const Graph& graph, Algorithm algorithm,
    const AlgorithmParams& params) {
  const bool distributed = UsesDistributedBackend(algorithm, ctx.env());
  SpmvRuntime runtime(ctx, graph, distributed);
  const bool multi = ctx.num_machines() > 1;
  const VertexIndex n = graph.num_vertices();

  switch (algorithm) {
    case Algorithm::kBfs: {
      const VertexIndex root = graph.IndexOf(params.source_vertex);
      if (root == kInvalidVertex) {
        return Status::InvalidArgument("BFS source not in graph");
      }
      AlgorithmOutput output;
      output.algorithm = Algorithm::kBfs;
      output.int_values.assign(n, kUnreachableHops);
      output.int_values[root] = 0;
      exec::Frontier frontier;
      frontier.Init(n);
      frontier.Seed(root, graph.OutDegree(root));
      const auto total_entries =
          static_cast<std::int64_t>(graph.num_adjacency_entries());
      std::vector<ExpandStats> stats_scratch;
      std::int64_t depth = 0;
      GA_ASSIGN_OR_RETURN(const resilience::StateReader* resume,
                          ctx.MaybeRestore());
      if (resume != nullptr) {
        GA_RETURN_IF_ERROR(resume->ReadScalar("bfs/depth", &depth));
        GA_RETURN_IF_ERROR(
            resume->ReadVector("bfs/depths", &output.int_values));
        GA_RETURN_IF_ERROR(
            resilience::LoadFrontier(*resume, "bfs/frontier", &frontier));
      }
      while (!frontier.empty()) {
        ++depth;
        ExpandStats stats;
        if (granula::TracedDecide(ctx.tracer(), frontier, total_entries) ==
            exec::TraversalDirection::kPush) {
          // Frontier-masked SpMSpV (push along out-edges): the expand
          // scans frontier slices host-parallel against last sweep's
          // state; the slot-ordered commit dedupes discoveries exactly
          // as the serial scan would.
          const std::int64_t frontier_size = frontier.active_count();
          const std::span<const VertexIndex> active = frontier.active();
          frontier.PrepareStage(
              exec::ExecContext::NumSlots(frontier_size));
          stats = exec::parallel_reduce(
              ctx.exec(), 0, frontier_size, ExpandStats{},
              [&](const exec::Slice& slice, ExpandStats& acc) {
                std::vector<VertexIndex>& out = frontier.stage(slice.slot);
                for (std::int64_t i = slice.begin; i < slice.end; ++i) {
                  const VertexIndex u = active[i];
                  for (VertexIndex v : graph.OutNeighbors(u)) {
                    ++acc.touched;
                    if (multi) acc.remote += runtime.RemoteIfCross(u, v);
                    if (output.int_values[v] == kUnreachableHops) {
                      out.push_back(v);
                    }
                  }
                }
              },
              kMergeExpandStats, &stats_scratch);
        } else {
          // Heavy frontier: masked pull SpMV — every undiscovered row
          // scans its in-entries against the dense frontier mask,
          // stopping at the first hit.
          frontier.PrepareStage(exec::ExecContext::NumSlots(n));
          stats = exec::parallel_reduce(
              ctx.exec(), 0, n, ExpandStats{},
              [&](const exec::Slice& slice, ExpandStats& acc) {
                std::vector<VertexIndex>& out = frontier.stage(slice.slot);
                for (VertexIndex v = slice.begin; v < slice.end; ++v) {
                  if (output.int_values[v] != kUnreachableHops) continue;
                  for (VertexIndex u : graph.InNeighbors(v)) {
                    ++acc.touched;
                    if (multi) acc.remote += runtime.RemoteIfCross(u, v);
                    if (frontier.Contains(u)) {
                      out.push_back(v);
                      break;
                    }
                  }
                }
              },
              kMergeExpandStats, &stats_scratch);
        }
        frontier.CommitStage([&](VertexIndex v) {
          output.int_values[v] = depth;
          return graph.OutDegree(v);
        });
        GA_RETURN_IF_ERROR(runtime.EndSweep(
            stats.touched, static_cast<std::uint64_t>(n), stats.remote,
            "bfs"));
        frontier.Advance();
        // Guarded so non-checkpointed jobs build no std::function here
        // (steady-state alloc discipline).
        if (ctx.checkpoint_writes_enabled()) {
          GA_RETURN_IF_ERROR(
              ctx.MaybeCheckpoint([&](resilience::StateWriter& writer) {
                writer.AddScalar("bfs/depth", depth);
                writer.AddVector("bfs/depths", output.int_values);
                resilience::SaveFrontier(writer, "bfs/frontier", frontier);
              }));
        }
      }
      return output;
    }
    case Algorithm::kSssp: {
      // SSSP exists only in the D backend (paper §4.2); the platform
      // selects D automatically here, noting the manual selection caveat.
      const VertexIndex root = graph.IndexOf(params.source_vertex);
      if (root == kInvalidVertex) {
        return Status::InvalidArgument("SSSP source not in graph");
      }
      AlgorithmOutput output;
      output.algorithm = Algorithm::kSssp;
      output.double_values.assign(n, kUnreachableDistance);
      output.double_values[root] = 0.0;
      exec::Frontier frontier;
      frontier.Init(n);
      frontier.Seed(root, graph.OutDegree(root));
      struct Relaxation {
        VertexIndex target;
        double distance;
      };
      exec::SlotBuffers<Relaxation> relaxed;
      std::vector<ExpandStats> stats_scratch;
      const auto total_entries =
          static_cast<std::int64_t>(graph.num_adjacency_entries());
      const int max_rounds = static_cast<int>(n) + 2;
      for (int round = 0; round < max_rounds && !frontier.empty();
           ++round) {
        ExpandStats stats;
        if (granula::TracedDecide(ctx.tracer(), frontier, total_entries,
                                  exec::Frontier::kPullAlphaSweep) ==
            exec::TraversalDirection::kPull) {
          // Heavy relaxation wave: masked pull — every row folds the
          // candidate distances of its frontier-resident in-entries (min
          // is exact in floating point, so the committed distances match
          // the push formulation bit for bit).
          relaxed.Reset(exec::ExecContext::NumSlots(n));
          stats = exec::parallel_reduce(
              ctx.exec(), 0, n, ExpandStats{},
              [&](const exec::Slice& slice, ExpandStats& acc) {
                std::vector<Relaxation>& out = relaxed.buf(slice.slot);
                for (VertexIndex v = slice.begin; v < slice.end; ++v) {
                  double best = output.double_values[v];
                  const auto sources = graph.InNeighbors(v);
                  const auto weights = graph.InWeights(v);
                  for (std::size_t j = 0; j < sources.size(); ++j) {
                    ++acc.touched;
                    if (multi) {
                      acc.remote += runtime.RemoteIfCross(sources[j], v);
                    }
                    best = std::min(best, output.double_values[sources[j]] +
                                              weights[j]);
                  }
                  if (best < output.double_values[v]) {
                    out.push_back({v, best});
                  }
                }
              },
              kMergeExpandStats, &stats_scratch);
        } else {
          // Parallel expand against last sweep's distances; improving
          // candidates are committed min-first in slot order.
          const std::int64_t frontier_size = frontier.active_count();
          const std::span<const VertexIndex> active = frontier.active();
          relaxed.Reset(exec::ExecContext::NumSlots(frontier_size));
          stats = exec::parallel_reduce(
              ctx.exec(), 0, frontier_size, ExpandStats{},
              [&](const exec::Slice& slice, ExpandStats& acc) {
                std::vector<Relaxation>& out = relaxed.buf(slice.slot);
                for (std::int64_t i = slice.begin; i < slice.end; ++i) {
                  const VertexIndex u = active[i];
                  const auto neighbors = graph.OutNeighbors(u);
                  const auto weights = graph.OutWeights(u);
                  for (std::size_t j = 0; j < neighbors.size(); ++j) {
                    ++acc.touched;
                    if (multi) acc.remote += runtime.RemoteIfCross(u, neighbors[j]);
                    const double candidate =
                        output.double_values[u] + weights[j];
                    if (candidate < output.double_values[neighbors[j]]) {
                      out.push_back({neighbors[j], candidate});
                    }
                  }
                }
              },
              kMergeExpandStats, &stats_scratch);
        }
        relaxed.Drain([&](const Relaxation& relaxation) {
          if (relaxation.distance <
              output.double_values[relaxation.target]) {
            output.double_values[relaxation.target] = relaxation.distance;
            frontier.Activate(relaxation.target,
                              graph.OutDegree(relaxation.target));
          }
        });
        GA_RETURN_IF_ERROR(runtime.EndSweep(
            stats.touched, static_cast<std::uint64_t>(n), stats.remote,
            "sssp"));
        frontier.Advance();
      }
      return output;
    }
    case Algorithm::kWcc: {
      AlgorithmOutput output;
      output.algorithm = Algorithm::kWcc;
      output.int_values.resize(n);
      for (VertexIndex v = 0; v < n; ++v) {
        output.int_values[v] = graph.ExternalId(v);
      }
      // Frontier-masked min-SpMV sweeps until fixpoint (both edge
      // directions). The frontier holds the rows whose label changed last
      // sweep; heavy rounds run the full masked sweep (pull against the
      // dense mask), light rounds push straight from the sparse queue —
      // so tail rounds cost O(frontier edges), not O(E).
      const bool directed = graph.is_directed();
      auto scan_degree = [&](VertexIndex v) {
        return graph.OutDegree(v) + (directed ? graph.InDegree(v) : 0);
      };
      const auto total_scan =
          static_cast<std::int64_t>(graph.num_adjacency_entries()) *
          (directed ? 2 : 1);
      exec::Frontier frontier;
      frontier.Init(n);
      frontier.SeedAll(total_scan);
      struct LabelCand {
        VertexIndex target;
        std::int64_t label;
      };
      exec::SlotBuffers<LabelCand> cands;
      std::vector<std::uint64_t> touched_scratch;
      const int max_rounds = static_cast<int>(n) + 2;
      std::int64_t round = 0;
      GA_ASSIGN_OR_RETURN(const resilience::StateReader* resume,
                          ctx.MaybeRestore());
      if (resume != nullptr) {
        GA_RETURN_IF_ERROR(resume->ReadScalar("wcc/round", &round));
        GA_RETURN_IF_ERROR(
            resume->ReadVector("wcc/labels", &output.int_values));
        GA_RETURN_IF_ERROR(
            resilience::LoadFrontier(*resume, "wcc/frontier", &frontier));
      }
      for (; round < max_rounds && !frontier.empty(); ++round) {
        std::uint64_t touched = 0;
        if (granula::TracedDecide(ctx.tracer(), frontier, total_scan,
                                  /*alpha=*/2) ==
            exec::TraversalDirection::kPull) {
          cands.Reset(exec::ExecContext::NumSlots(n));
          touched = exec::parallel_reduce(
              ctx.exec(), 0, n, std::uint64_t{0},
              [&](const exec::Slice& slice, std::uint64_t& acc) {
                std::vector<LabelCand>& out = cands.buf(slice.slot);
                for (VertexIndex v = slice.begin; v < slice.end; ++v) {
                  std::int64_t best = output.int_values[v];
                  auto pull_from = [&](VertexIndex u) {
                    ++acc;
                    best = std::min(best, output.int_values[u]);
                  };
                  for (VertexIndex u : graph.InNeighbors(v)) pull_from(u);
                  if (directed) {
                    for (VertexIndex u : graph.OutNeighbors(v)) {
                      pull_from(u);
                    }
                  }
                  if (best < output.int_values[v]) {
                    out.push_back({v, best});
                  }
                }
              },
              [](std::uint64_t& into, std::uint64_t from) { into += from; },
              &touched_scratch);
        } else {
          const std::int64_t frontier_size = frontier.active_count();
          const std::span<const VertexIndex> active = frontier.active();
          cands.Reset(exec::ExecContext::NumSlots(frontier_size));
          touched = exec::parallel_reduce(
              ctx.exec(), 0, frontier_size, std::uint64_t{0},
              [&](const exec::Slice& slice, std::uint64_t& acc) {
                std::vector<LabelCand>& out = cands.buf(slice.slot);
                for (std::int64_t i = slice.begin; i < slice.end; ++i) {
                  const VertexIndex v = active[i];
                  const std::int64_t label = output.int_values[v];
                  auto push_to = [&](VertexIndex u) {
                    ++acc;
                    if (label < output.int_values[u]) {
                      out.push_back({u, label});
                    }
                  };
                  for (VertexIndex u : graph.OutNeighbors(v)) push_to(u);
                  if (directed) {
                    for (VertexIndex u : graph.InNeighbors(v)) push_to(u);
                  }
                }
              },
              [](std::uint64_t& into, std::uint64_t from) { into += from; },
              &touched_scratch);
        }
        cands.Drain([&](const LabelCand& cand) {
          if (cand.label < output.int_values[cand.target]) {
            output.int_values[cand.target] = cand.label;
            frontier.Activate(cand.target, scan_degree(cand.target));
          }
        });
        GA_RETURN_IF_ERROR(runtime.EndSweep(
            touched, static_cast<std::uint64_t>(n),
            static_cast<std::uint64_t>(n), "wcc"));
        frontier.Advance();
        if (ctx.checkpoint_writes_enabled()) {
          GA_RETURN_IF_ERROR(
              ctx.MaybeCheckpoint([&](resilience::StateWriter& writer) {
                writer.AddScalar("wcc/round", round + 1);
                writer.AddVector("wcc/labels", output.int_values);
                resilience::SaveFrontier(writer, "wcc/frontier", frontier);
              }));
        }
      }
      return output;
    }
    case Algorithm::kPageRank: {
      AlgorithmOutput output;
      output.algorithm = Algorithm::kPageRank;
      output.double_values.assign(
          n, n > 0 ? 1.0 / static_cast<double>(n) : 0.0);
      if (n == 0) return output;
      std::vector<double> next(n, 0.0);
      std::vector<double> dangling_scratch;
      std::vector<std::uint64_t> touched_scratch;
      std::int64_t iteration = 0;
      GA_ASSIGN_OR_RETURN(const resilience::StateReader* resume,
                          ctx.MaybeRestore());
      if (resume != nullptr) {
        GA_RETURN_IF_ERROR(resume->ReadScalar("pr/iteration", &iteration));
        GA_RETURN_IF_ERROR(
            resume->ReadVector("pr/ranks", &output.double_values));
      }
      for (; iteration < params.pagerank_iterations; ++iteration) {
        const double dangling = exec::parallel_reduce(
            ctx.exec(), 0, n, 0.0,
            [&](const exec::Slice& slice, double& acc) {
              for (VertexIndex v = slice.begin; v < slice.end; ++v) {
                if (graph.OutDegree(v) == 0) {
                  acc += output.double_values[v];
                }
              }
            },
            [](double& into, double from) { into += from; },
            &dangling_scratch);
        const double base =
            (1.0 - params.damping_factor) / static_cast<double>(n) +
            params.damping_factor * dangling / static_cast<double>(n);
        const std::uint64_t touched = exec::parallel_reduce(
            ctx.exec(), 0, n, std::uint64_t{0},
            [&](const exec::Slice& slice, std::uint64_t& acc) {
              for (VertexIndex v = slice.begin; v < slice.end; ++v) {
                double sum = 0.0;
                for (VertexIndex u : graph.InNeighbors(v)) {
                  ++acc;
                  sum += output.double_values[u] /
                         static_cast<double>(graph.OutDegree(u));
                }
                next[v] = base + params.damping_factor * sum;
              }
            },
            [](std::uint64_t& into, std::uint64_t from) { into += from; },
            &touched_scratch);
        if (ctx.tracer().enabled()) {
          double residual = 0.0;
          for (VertexIndex v = 0; v < n; ++v) {
            residual += std::abs(next[v] - output.double_values[v]);
          }
          ctx.tracer().AnnotateResidual(residual);
          ctx.tracer().AnnotateActive(n);
        }
        output.double_values.swap(next);
        GA_RETURN_IF_ERROR(runtime.EndSweep(
            touched, static_cast<std::uint64_t>(n),
            static_cast<std::uint64_t>(n), "pr"));
        if (ctx.checkpoint_writes_enabled()) {
          GA_RETURN_IF_ERROR(
              ctx.MaybeCheckpoint([&](resilience::StateWriter& writer) {
                writer.AddScalar("pr/iteration", iteration + 1);
                writer.AddVector("pr/ranks", output.double_values);
              }));
        }
      }
      return output;
    }
    case Algorithm::kCdlp: {
      AlgorithmOutput output;
      output.algorithm = Algorithm::kCdlp;
      output.int_values.resize(n);
      for (VertexIndex v = 0; v < n; ++v) {
        output.int_values[v] = graph.ExternalId(v);
      }
      std::vector<std::int64_t> next(n);
      std::vector<std::uint64_t> touched_scratch;
      const int num_slots = exec::ExecContext::NumSlots(n);
      for (int iteration = 0; iteration < params.cdlp_iterations;
           ++iteration) {
        ctx.scratch().Prepare(num_slots);
        const std::uint64_t touched = exec::parallel_reduce(
            ctx.exec(), 0, n, std::uint64_t{0},
            [&](const exec::Slice& slice, std::uint64_t& acc) {
              for (VertexIndex v = slice.begin; v < slice.end; ++v) {
                exec::LabelCounter& labels = ctx.scratch().labels(slice.slot);
                for (VertexIndex u : graph.OutNeighbors(v)) {
                  ++acc;
                  labels.Add(output.int_values[u]);
                }
                if (graph.is_directed()) {
                  for (VertexIndex u : graph.InNeighbors(v)) {
                    ++acc;
                    labels.Add(output.int_values[u]);
                  }
                }
                next[v] = labels.empty() ? output.int_values[v]
                                         : labels.Mode();
              }
            },
            [](std::uint64_t& into, std::uint64_t from) { into += from; },
            &touched_scratch);
        output.int_values.swap(next);
        ctx.tracer().AnnotateActive(n);
        GA_RETURN_IF_ERROR(runtime.EndSweep(
            touched * 3,  // histogram insertion is pricier than a MAC
            static_cast<std::uint64_t>(n),
            static_cast<std::uint64_t>(n), "cdlp"));
      }
      return output;
    }
    case Algorithm::kLcc: {
      // Masked SpGEMM (A^2 .* A): the intermediate product rows are
      // materialised; their size is sum_v sum_{u in N(v)} deg(u). Charge
      // that memory up front — on dense graphs this is the OOM that makes
      // GraphMat fail LCC in the paper (§4.2).
      const double intermediate_entries = exec::parallel_reduce(
          ctx.exec(), 0, n, 0.0,
          [&](const exec::Slice& slice, double& acc) {
            for (VertexIndex v = slice.begin; v < slice.end; ++v) {
              for (VertexIndex u : graph.OutNeighbors(v)) {
                acc += static_cast<double>(graph.OutDegree(u));
              }
              if (graph.is_directed()) {
                for (VertexIndex u : graph.InNeighbors(v)) {
                  acc += static_cast<double>(graph.OutDegree(u));
                }
              }
            }
          },
          [](double& into, double from) { into += from; });
      const std::int64_t bytes_per_machine =
          static_cast<std::int64_t>(intermediate_entries) *
          kSpgemmEntryBytes / std::max(ctx.num_machines(), 1);
      for (int m = 0; m < ctx.num_machines(); ++m) {
        GA_RETURN_IF_ERROR(
            ctx.ChargeMemory(m, bytes_per_machine, "lcc spgemm"));
      }

      AlgorithmOutput output;
      output.algorithm = Algorithm::kLcc;
      output.double_values.assign(n, 0.0);
      // Host side: degree-oriented triangle counting over the sorted CSR
      // (algo/lcc_kernel.h); `touched` keeps the modeled flag-array scan
      // volume so the simulated SpGEMM cost is unchanged.
      lcc::NeighborhoodIndex index;
      index.Build(ctx.exec(), graph);
      std::vector<std::int64_t> links;
      index.CountLinks(ctx.exec(), &links);
      const std::uint64_t touched = exec::parallel_reduce(
          ctx.exec(), 0, n, std::uint64_t{0},
          [&](const exec::Slice& slice, std::uint64_t& acc) {
            for (VertexIndex v = slice.begin; v < slice.end; ++v) {
              const std::span<const VertexIndex> neighborhood =
                  index.Neighbors(v);
              if (neighborhood.size() < 2) continue;
              acc += lcc::ScannedEdgesProxy(graph, neighborhood);
              output.double_values[v] = lcc::Coefficient(
                  links[v], static_cast<std::int64_t>(neighborhood.size()));
            }
          },
          [](std::uint64_t& into, std::uint64_t from) { into += from; });
      GA_RETURN_IF_ERROR(runtime.EndSweep(
          touched * 2, static_cast<std::uint64_t>(n), 0, "lcc"));
      for (int m = 0; m < ctx.num_machines(); ++m) {
        ctx.ReleaseMemory(m, bytes_per_machine);
      }
      return output;
    }
  }
  return Status::Internal("unknown algorithm");
}

}  // namespace ga::platform
