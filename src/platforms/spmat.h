// SpMat: analogue of Intel GraphMat (paper Table 5, row 4).
//
// Maps Pregel-style vertex programs to sparse-matrix-vector products over
// algorithm-specific semirings on CSR/CSC structure: BFS and SSSP are
// frontier-masked SpMSpV (push), PageRank and WCC are full SpMV sweeps
// (pull), CDLP gathers label votes per row, and LCC is a masked sparse
// matrix product whose intermediate is materialised (and is what kills it
// on dense graphs, §4.2).
//
// Two backends, as in the paper: a shared-memory backend (S) and a
// distributed MPI-like backend (D). The backend is selected per job the
// way the paper ran it: D for any multi-machine deployment and for SSSP
// (not supported in S); S otherwise. The D backend adds an all-to-all
// exchange of boundary values per superstep, and models GraphMat's
// swap-induced slowdown when the working set slightly exceeds memory
// (the paper's single-machine PR outlier on D1000, §4.4).
#ifndef GRAPHALYTICS_PLATFORMS_SPMAT_H_
#define GRAPHALYTICS_PLATFORMS_SPMAT_H_

#include "platforms/platform.h"

namespace ga::platform {

class SpMatPlatform : public Platform {
 public:
  SpMatPlatform();

  const PlatformInfo& info() const override { return info_; }
  const CostProfile& profile() const override { return profile_; }

  /// Which backend a job uses (exposed for tests and reports).
  static bool UsesDistributedBackend(Algorithm algorithm,
                                     const ExecutionEnvironment& env) {
    return env.prefer_distributed_backend || env.num_machines > 1 ||
           algorithm == Algorithm::kSssp;
  }

  bool SwapCapable(Algorithm algorithm,
                   const ExecutionEnvironment& env) const override {
    // The D backend's mmap-backed buffers spill instead of aborting
    // (paper §4.4: the single-machine PR outlier, "most likely because
    // of swapping").
    return UsesDistributedBackend(algorithm, env);
  }

 protected:
  std::vector<std::int64_t> UploadFootprintBytes(
      const Graph& graph, const ExecutionEnvironment& env) const override;

  Result<AlgorithmOutput> Execute(JobContext& ctx, const Graph& graph,
                                  Algorithm algorithm,
                                  const AlgorithmParams& params) override;

 private:
  PlatformInfo info_;
  CostProfile profile_;
};

}  // namespace ga::platform

#endif  // GRAPHALYTICS_PLATFORMS_SPMAT_H_
