// Assignment of vertices to virtual workers (machine, thread) for the
// edge-cut platform analogues. Hash partitioning over machines (the
// default of Giraph/GraphX/GraphMat/PGX.D) and hashing over threads
// within a machine. Load imbalance across workers — and hence sub-linear
// scaling on skewed graphs — emerges naturally from real degree skew.
#ifndef GRAPHALYTICS_PLATFORMS_WORKER_MAP_H_
#define GRAPHALYTICS_PLATFORMS_WORKER_MAP_H_

#include <utility>

#include "core/graph.h"
#include "core/partition.h"
#include "core/rng.h"

namespace ga::platform {

class WorkerMap {
 public:
  WorkerMap(const Graph& graph, int num_machines, int threads_per_machine)
      : partition_(HashPartition(graph, num_machines)),
        threads_(threads_per_machine) {}

  int machine_of(VertexIndex v) const { return partition_.part_of[v]; }

  int thread_of(VertexIndex v) const {
    return static_cast<int>(Mix64(static_cast<std::uint64_t>(v) + 0x51ED) %
                            static_cast<std::uint64_t>(threads_));
  }

  int worker_of(VertexIndex v) const {
    return machine_of(v) * threads_ + thread_of(v);
  }

  const VertexPartition& partition() const { return partition_; }

 private:
  VertexPartition partition_;
  int threads_;
};

}  // namespace ga::platform

#endif  // GRAPHALYTICS_PLATFORMS_WORKER_MAP_H_
