#include "resilience/checkpoint.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sys/stat.h>

#include "faults/faults.h"
#include "store/snapshot.h"

namespace ga::resilience {

namespace {

std::uint64_t AlignUp(std::uint64_t offset) {
  return (offset + kCheckpointAlignment - 1) &
         ~(kCheckpointAlignment - 1);
}

}  // namespace

void StateWriter::AddBytes(const std::string& name, const void* data,
                           std::size_t size) {
  Section section;
  section.name = name;
  section.bytes.resize(size);
  if (size > 0) std::memcpy(section.bytes.data(), data, size);
  sections_.push_back(std::move(section));
}

Status WriteCheckpoint(const std::string& path, std::uint64_t job_key,
                       std::int64_t superstep, const StateWriter& state) {
  const auto& sections = state.sections();

  CheckpointHeader header{};
  std::memcpy(header.magic, kCheckpointMagic, sizeof(header.magic));
  header.version = kCheckpointVersion;
  header.endian_tag = store::kEndianTag;
  header.section_count = static_cast<std::uint32_t>(sections.size());
  header.job_key = job_key;
  header.superstep = superstep;

  std::string names;
  std::vector<CheckpointSectionEntry> table(sections.size());
  for (std::size_t i = 0; i < sections.size(); ++i) {
    table[i].name_offset = static_cast<std::uint32_t>(names.size());
    table[i].name_bytes =
        static_cast<std::uint32_t>(sections[i].name.size());
    names += sections[i].name;
  }
  header.name_blob_bytes = names.size();

  std::uint64_t offset = sizeof(CheckpointHeader) +
                         table.size() * sizeof(CheckpointSectionEntry) +
                         names.size();
  for (std::size_t i = 0; i < sections.size(); ++i) {
    offset = AlignUp(offset);
    table[i].payload_offset = offset;
    table[i].payload_bytes = sections[i].bytes.size();
    table[i].checksum = store::Fnv1a64(sections[i].bytes.data(),
                                       sections[i].bytes.size());
    offset += table[i].payload_bytes;
  }

  // Header checksum: header with the field zeroed, then table, then names.
  std::uint64_t checksum = store::Fnv1a64(&header, sizeof(header));
  checksum = store::Fnv1a64(table.data(),
                            table.size() * sizeof(CheckpointSectionEntry),
                            checksum);
  checksum = store::Fnv1a64(names.data(), names.size(), checksum);
  header.header_checksum = checksum;

  const std::string tmp = path + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) {
    return Status::IoError("cannot create " + tmp + ": " +
                           std::strerror(errno));
  }
  const auto write_bytes = [&](const void* data,
                               std::size_t size) -> bool {
    return size == 0 || std::fwrite(data, 1, size, out) == size;
  };
  bool ok = write_bytes(&header, sizeof(header)) &&
            write_bytes(table.data(),
                        table.size() * sizeof(CheckpointSectionEntry)) &&
            write_bytes(names.data(), names.size());
  std::uint64_t written = sizeof(header) +
                          table.size() * sizeof(CheckpointSectionEntry) +
                          names.size();
  static constexpr char kPadding[kCheckpointAlignment] = {};
  for (std::size_t i = 0; ok && i < sections.size(); ++i) {
    const std::uint64_t pad = table[i].payload_offset - written;
    ok = write_bytes(kPadding, static_cast<std::size_t>(pad)) &&
         write_bytes(sections[i].bytes.data(), sections[i].bytes.size());
    written = table[i].payload_offset + table[i].payload_bytes;
  }
  if (std::fclose(out) != 0) ok = false;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot write checkpoint " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename " + tmp + " -> " + path + ": " +
                           std::strerror(err));
  }
  return Status::Ok();
}

bool CheckpointExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Result<StateReader> StateReader::Open(const std::string& path,
                                      std::uint64_t job_key) {
  if (!CheckpointExists(path)) {
    return Status::NotFound("no checkpoint at " + path);
  }
  if (faults::FaultInjector* injector = faults::GlobalInjector()) {
    GA_RETURN_IF_ERROR(injector->OnStoreRead(path));
  }
  GA_ASSIGN_OR_RETURN(store::MappedFile file, store::MappedFile::Open(path));
  if (file.size() < sizeof(CheckpointHeader)) {
    return Status::IoError("checkpoint " + path + " truncated (" +
                           std::to_string(file.size()) + " bytes)");
  }
  CheckpointHeader header;
  std::memcpy(&header, file.data(), sizeof(header));
  if (std::memcmp(header.magic, kCheckpointMagic,
                  sizeof(header.magic)) != 0) {
    return Status::IoError("checkpoint " + path + ": bad magic");
  }
  if (header.endian_tag != store::kEndianTag) {
    return Status::IoError("checkpoint " + path +
                           ": foreign-endian file");
  }
  if (header.version != kCheckpointVersion) {
    return Status::IoError("checkpoint " + path + ": version " +
                           std::to_string(header.version) +
                           " unsupported");
  }
  if (header.job_key != job_key) {
    return Status::FailedPrecondition(
        "checkpoint " + path +
        " belongs to a different job (key mismatch); refusing to "
        "restore");
  }
  const std::uint64_t table_bytes =
      std::uint64_t{header.section_count} * sizeof(CheckpointSectionEntry);
  const std::uint64_t meta_end =
      sizeof(CheckpointHeader) + table_bytes + header.name_blob_bytes;
  if (meta_end > file.size()) {
    return Status::IoError("checkpoint " + path +
                           ": section table past end of file");
  }

  CheckpointHeader zeroed = header;
  zeroed.header_checksum = 0;
  std::uint64_t checksum = store::Fnv1a64(&zeroed, sizeof(zeroed));
  checksum = store::Fnv1a64(file.data() + sizeof(CheckpointHeader),
                            table_bytes + header.name_blob_bytes, checksum);
  if (checksum != header.header_checksum) {
    return Status::IoError("checkpoint " + path +
                           ": header checksum mismatch");
  }

  StateReader reader;
  reader.superstep_ = header.superstep;
  const char* names = reinterpret_cast<const char*>(
      file.data() + sizeof(CheckpointHeader) + table_bytes);
  for (std::uint32_t i = 0; i < header.section_count; ++i) {
    CheckpointSectionEntry entry;
    std::memcpy(&entry,
                file.data() + sizeof(CheckpointHeader) +
                    i * sizeof(CheckpointSectionEntry),
                sizeof(entry));
    if (entry.name_offset + std::uint64_t{entry.name_bytes} >
        header.name_blob_bytes) {
      return Status::IoError("checkpoint " + path +
                             ": section name past name blob");
    }
    std::string name(names + entry.name_offset, entry.name_bytes);
    if (entry.payload_offset + entry.payload_bytes > file.size() ||
        entry.payload_offset < meta_end) {
      return Status::IoError("checkpoint " + path + ": section " + name +
                             " out of bounds");
    }
    const std::byte* payload = file.data() + entry.payload_offset;
    if (store::Fnv1a64(payload, entry.payload_bytes) != entry.checksum) {
      return Status::IoError("checkpoint " + path + ": section " + name +
                             " checksum mismatch");
    }
    if (!reader.sections_
             .emplace(std::move(name),
                      std::span<const std::byte>(payload,
                                                 entry.payload_bytes))
             .second) {
      return Status::IoError("checkpoint " + path +
                             ": duplicate section name");
    }
  }
  reader.file_ = std::move(file);
  return reader;
}

Result<std::span<const std::byte>> StateReader::Bytes(
    const std::string& name) const {
  const auto it = sections_.find(name);
  if (it == sections_.end()) {
    return Status::NotFound("checkpoint has no section " + name);
  }
  return it->second;
}

std::uint64_t MakeJobKey(const std::string& platform_id,
                         const std::string& algorithm,
                         std::int64_t num_vertices, std::int64_t num_edges,
                         int num_machines, int threads_per_machine) {
  std::string blob = platform_id + '\0' + algorithm + '\0';
  const auto append = [&blob](std::int64_t value) {
    blob.append(reinterpret_cast<const char*>(&value), sizeof(value));
  };
  append(num_vertices);
  append(num_edges);
  append(num_machines);
  append(threads_per_machine);
  return store::Fnv1a64(blob.data(), blob.size());
}

}  // namespace ga::resilience
