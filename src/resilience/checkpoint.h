// ga::resilience — superstep checkpoint/restart (DESIGN.md §13).
//
// A checkpoint captures everything a BSP job needs to resume at a
// superstep boundary: the JobContext's simulated clock, superstep count,
// WorkLedger and memory-accountant state, plus the engine's own vertex
// values, frontier and pending mail. Restarting from a checkpoint
// produces outputs, ledgers and simulated metrics BYTE-IDENTICAL to the
// uninterrupted run at any `--jobs` value, because
//   (a) doubles are stored as raw bit patterns (bit-exact restore), and
//   (b) everything accumulated after the boundary is computed in the
//       same slot order as an uninterrupted run (DESIGN.md §6).
//
// File format (`.gackpt`, sibling of the `.gab` snapshot layout):
//
//   [0,  64)  CheckpointHeader  magic "GACKPT01", version, endian tag,
//                               job key, superstep, header checksum
//   [64, ..)  section table     one 32-byte SectionEntry per section
//   ...       name blob         section names, back to back
//   ...       payloads          raw little-endian bytes, each offset
//                               64-byte aligned, zero padding between
//
// Sections are NAMED (engine state is heterogeneous across engines and
// algorithms, unlike the fixed snapshot schema); every payload carries an
// FNV-1a 64 checksum and the header checksum covers header + table +
// names. Files are written atomically (tmp + rename), so a crash mid-
// write — including the injected SIGKILL of ga::faults — never leaves a
// checkpoint that parses.
#ifndef GRAPHALYTICS_RESILIENCE_CHECKPOINT_H_
#define GRAPHALYTICS_RESILIENCE_CHECKPOINT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "core/status.h"
#include "store/mapped_file.h"

namespace ga::resilience {

inline constexpr char kCheckpointMagic[8] = {'G', 'A', 'C', 'K',
                                             'P', 'T', '0', '1'};
inline constexpr std::uint32_t kCheckpointVersion = 1;
inline constexpr std::uint64_t kCheckpointAlignment = 64;

struct CheckpointHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t endian_tag;
  std::uint32_t section_count;
  std::uint32_t reserved0;
  std::uint64_t job_key;    // binds a file to one (platform, algo, graph,
                            // env) — a stale file from another job never
                            // restores silently
  std::int64_t superstep;   // boundary the state was captured at
  std::uint64_t name_blob_bytes;
  std::uint64_t reserved1;
  std::uint64_t header_checksum;  // FNV over header (field zeroed) +
                                  // section table + name blob
};
static_assert(sizeof(CheckpointHeader) == 64);

struct CheckpointSectionEntry {
  std::uint32_t name_offset;  // into the name blob
  std::uint32_t name_bytes;
  std::uint64_t payload_offset;  // from file start; 64-byte aligned
  std::uint64_t payload_bytes;
  std::uint64_t checksum;  // FNV-1a 64 over the payload
};
static_assert(sizeof(CheckpointSectionEntry) == 32);

/// How a job checkpoints and whether it resumes. Carried on the
/// ExecutionEnvironment; the harness fills it from --checkpoint-dir /
/// --checkpoint-cadence / --resume.
struct CheckpointPlan {
  /// Checkpoint file path. Empty disables checkpointing entirely.
  std::string path;
  /// Checkpoint every `cadence` supersteps (at the boundary AFTER
  /// supersteps 1*cadence, 2*cadence, ...). <= 0 disables writes.
  int cadence = 0;
  /// Restore from `path` before the first superstep when the file exists
  /// (a missing file means a fresh run, not an error).
  bool resume = false;

  bool writes_enabled() const { return !path.empty() && cadence > 0; }
  bool resume_enabled() const { return !path.empty() && resume; }
};

/// Collects named state sections for one checkpoint. Engines add their
/// vertex arrays / frontier / mail; the JobContext adds its clock and
/// ledger. Names must be unique per checkpoint.
class StateWriter {
 public:
  struct Section {
    std::string name;
    std::vector<std::byte> bytes;
  };

  void AddBytes(const std::string& name, const void* data,
                std::size_t size);

  template <typename T>
  void AddScalar(const std::string& name, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    AddBytes(name, &value, sizeof(T));
  }

  template <typename T>
  void AddVector(const std::string& name, const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    AddBytes(name, values.data(), values.size() * sizeof(T));
  }

  template <typename T>
  void AddSpan(const std::string& name, std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    AddBytes(name, values.data(), values.size() * sizeof(T));
  }

  const std::vector<Section>& sections() const { return sections_; }

 private:
  std::vector<Section> sections_;
};

/// Read side: maps a checkpoint file, verifies magic/version/endianness,
/// the job key, the header checksum and EVERY section checksum up front
/// (checkpoints are small next to snapshots), then serves sections by
/// name as spans into the mapping.
class StateReader {
 public:
  /// kNotFound when the file does not exist; kFailedPrecondition on a
  /// job-key mismatch; kIoError on corruption (or an injected
  /// corrupt_read fault).
  static Result<StateReader> Open(const std::string& path,
                                  std::uint64_t job_key);

  /// The superstep boundary this checkpoint was captured at.
  std::int64_t superstep() const { return superstep_; }

  bool Has(const std::string& name) const {
    return sections_.count(name) != 0;
  }

  /// kNotFound when the checkpoint has no section `name`.
  Result<std::span<const std::byte>> Bytes(const std::string& name) const;

  template <typename T>
  Status ReadScalar(const std::string& name, T* out) const {
    static_assert(std::is_trivially_copyable_v<T>);
    GA_ASSIGN_OR_RETURN(std::span<const std::byte> bytes, Bytes(name));
    if (bytes.size() != sizeof(T)) {
      return Status::IoError("checkpoint section " + name + " holds " +
                             std::to_string(bytes.size()) +
                             " bytes, expected " +
                             std::to_string(sizeof(T)));
    }
    std::memcpy(out, bytes.data(), sizeof(T));
    return Status::Ok();
  }

  template <typename T>
  Status ReadVector(const std::string& name, std::vector<T>* out) const {
    static_assert(std::is_trivially_copyable_v<T>);
    GA_ASSIGN_OR_RETURN(std::span<const std::byte> bytes, Bytes(name));
    if (bytes.size() % sizeof(T) != 0) {
      return Status::IoError("checkpoint section " + name + " holds " +
                             std::to_string(bytes.size()) +
                             " bytes, not a multiple of " +
                             std::to_string(sizeof(T)));
    }
    out->resize(bytes.size() / sizeof(T));
    std::memcpy(out->data(), bytes.data(), bytes.size());
    return Status::Ok();
  }

  template <typename T>
  Result<std::span<const T>> Span(const std::string& name) const {
    static_assert(std::is_trivially_copyable_v<T>);
    GA_ASSIGN_OR_RETURN(std::span<const std::byte> bytes, Bytes(name));
    if (bytes.size() % sizeof(T) != 0) {
      return Status::IoError("checkpoint section " + name + " holds " +
                             std::to_string(bytes.size()) +
                             " bytes, not a multiple of " +
                             std::to_string(sizeof(T)));
    }
    return std::span<const T>(
        reinterpret_cast<const T*>(bytes.data()),
        bytes.size() / sizeof(T));
  }

 private:
  store::MappedFile file_;
  std::map<std::string, std::span<const std::byte>> sections_;
  std::int64_t superstep_ = 0;
};

/// Writes the collected sections as a checkpoint file at `path`,
/// atomically (tmp in the same directory, then rename).
Status WriteCheckpoint(const std::string& path, std::uint64_t job_key,
                       std::int64_t superstep, const StateWriter& state);

/// Whether `path` exists (resume probes; not a validity check — Open
/// still verifies everything).
bool CheckpointExists(const std::string& path);

/// Stable job key binding a checkpoint to one (platform, algorithm,
/// graph shape, simulated environment): FNV over the identifying fields.
/// Host parallelism is deliberately excluded — a checkpoint taken at
/// --jobs 8 restores at --jobs 1 (outputs are host-invariant).
std::uint64_t MakeJobKey(const std::string& platform_id,
                         const std::string& algorithm,
                         std::int64_t num_vertices, std::int64_t num_edges,
                         int num_machines, int threads_per_machine);

}  // namespace ga::resilience

#endif  // GRAPHALYTICS_RESILIENCE_CHECKPOINT_H_
