// Checkpoint serialization of the exec-layer engine structures
// (ga::resilience, DESIGN.md §13).
//
// Engines checkpoint at superstep boundaries, where the double-buffered
// structures are in their narrow state: the frontier's next side and
// stage are empty (Advance just ran) and the message arena's non-current
// counts are all zero (AdvanceSuperstep* just zeroed them). Both
// therefore checkpoint as ONE side plus the side index; the restore path
// rebuilds the structure with its normal Init/Reset call — which
// recreates the empty side — and overwrites the current side wholesale.
// Everything restored is bit-exact, so the supersteps that follow
// accumulate on identical state and the job's outputs, ledger and
// simulated metrics match the uninterrupted run byte for byte.
#ifndef GRAPHALYTICS_RESILIENCE_ENGINE_STATE_H_
#define GRAPHALYTICS_RESILIENCE_ENGINE_STATE_H_

#include <cstdint>
#include <span>
#include <string>

#include "core/exec/frontier.h"
#include "core/exec/message_arena.h"
#include "core/status.h"
#include "core/types.h"
#include "resilience/checkpoint.h"

namespace ga::resilience {

inline void SaveFrontier(StateWriter& writer, const std::string& prefix,
                         const exec::Frontier& frontier) {
  writer.AddScalar(prefix + "/side",
                   static_cast<std::int32_t>(frontier.current_side()));
  writer.AddSpan<VertexIndex>(prefix + "/sparse", frontier.active());
  writer.AddSpan<std::uint64_t>(prefix + "/bits",
                                frontier.bits().words());
  writer.AddScalar(prefix + "/degree_sum", frontier.active_degree_sum());
}

/// `frontier` must already be Init(n)'d for the same universe.
inline Status LoadFrontier(const StateReader& reader,
                           const std::string& prefix,
                           exec::Frontier* frontier) {
  std::int32_t side = 0;
  GA_RETURN_IF_ERROR(reader.ReadScalar(prefix + "/side", &side));
  std::int64_t degree_sum = 0;
  GA_RETURN_IF_ERROR(
      reader.ReadScalar(prefix + "/degree_sum", &degree_sum));
  GA_ASSIGN_OR_RETURN(std::span<const VertexIndex> sparse,
                      reader.Span<VertexIndex>(prefix + "/sparse"));
  GA_ASSIGN_OR_RETURN(std::span<const std::uint64_t> bits,
                      reader.Span<std::uint64_t>(prefix + "/bits"));
  const auto n = static_cast<std::size_t>(frontier->universe());
  if (side != 0 && side != 1) {
    return Status::IoError("checkpoint frontier " + prefix +
                           ": bad side " + std::to_string(side));
  }
  if (bits.size() != (n + 63) / 64 || sparse.size() > n) {
    return Status::IoError("checkpoint frontier " + prefix +
                           " does not fit a universe of " +
                           std::to_string(n) + " vertices");
  }
  frontier->RestoreCurrent(side, sparse, bits, degree_sum);
  return Status::Ok();
}

template <typename T>
void SaveArena(StateWriter& writer, const std::string& prefix,
               const exec::MessageArena<T>& arena) {
  writer.AddScalar(prefix + "/side",
                   static_cast<std::int32_t>(arena.current_side()));
  writer.AddSpan<T>(prefix + "/values", arena.current_values());
  writer.AddSpan<std::int64_t>(prefix + "/counts",
                               arena.current_counts());
  writer.AddScalar(prefix + "/total", arena.TotalMessages());
}

/// `arena` must already carry the same Reset/ResetUniform layout.
template <typename T>
Status LoadArena(const StateReader& reader, const std::string& prefix,
                 exec::MessageArena<T>* arena) {
  std::int32_t side = 0;
  GA_RETURN_IF_ERROR(reader.ReadScalar(prefix + "/side", &side));
  std::uint64_t total = 0;
  GA_RETURN_IF_ERROR(reader.ReadScalar(prefix + "/total", &total));
  GA_ASSIGN_OR_RETURN(std::span<const T> values,
                      reader.Span<T>(prefix + "/values"));
  GA_ASSIGN_OR_RETURN(std::span<const std::int64_t> counts,
                      reader.Span<std::int64_t>(prefix + "/counts"));
  if (side != 0 && side != 1) {
    return Status::IoError("checkpoint arena " + prefix + ": bad side " +
                           std::to_string(side));
  }
  if (counts.size() != static_cast<std::size_t>(arena->num_vertices()) ||
      values.size() != arena->current_values().size()) {
    return Status::IoError("checkpoint arena " + prefix +
                           " does not match the job's message layout");
  }
  arena->RestoreCurrent(side, values, counts, total);
  return Status::Ok();
}

}  // namespace ga::resilience

#endif  // GRAPHALYTICS_RESILIENCE_ENGINE_STATE_H_
