#include "serve/admission.h"

#include <algorithm>

namespace ga::serve {

namespace {

/// Until the first completion calibrates the EWMA, hint with a nominal
/// service time so early shed responses still carry a usable back-off.
constexpr double kDefaultServiceMs = 50.0;

}  // namespace

AdmissionQueue::AdmissionQueue(int capacity, int workers)
    : capacity_(std::max(capacity, 1)), workers_(std::max(workers, 1)) {}

AdmitDecision AdmissionQueue::Submit(PendingJob job) {
  std::unique_lock<std::mutex> lock(mutex_);
  ++stats_.submitted;
  AdmitDecision decision;
  if (closed_) {
    decision.outcome = AdmitOutcome::kClosed;
    return decision;
  }
  job.seq = next_seq_++;
  decision.retry_after_ms = HintLocked();
  if (static_cast<int>(queue_.size()) < capacity_) {
    queue_.push_back(std::move(job));
    ++stats_.admitted;
    stats_.depth = static_cast<int>(queue_.size());
    decision.outcome = AdmitOutcome::kAdmitted;
    lock.unlock();
    ready_.notify_one();
    return decision;
  }
  // Full: the victim candidate is the lowest-priority entry, youngest
  // first among equals (seq is unique, so the scan is total-ordered and
  // the choice deterministic).
  std::size_t victim = 0;
  for (std::size_t i = 1; i < queue_.size(); ++i) {
    const bool lower =
        queue_[i].request.priority < queue_[victim].request.priority ||
        (queue_[i].request.priority == queue_[victim].request.priority &&
         queue_[i].seq > queue_[victim].seq);
    if (lower) victim = i;
  }
  if (job.request.priority > queue_[victim].request.priority) {
    decision.victim = std::move(queue_[victim]);
    queue_[victim] = std::move(job);
    ++stats_.admitted;
    ++stats_.shed_victims;
    decision.outcome = AdmitOutcome::kAdmitted;
    lock.unlock();
    ready_.notify_one();
    return decision;
  }
  ++stats_.shed_arrivals;
  decision.outcome = AdmitOutcome::kShed;
  return decision;
}

std::optional<PendingJob> AdmissionQueue::Pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t i = 1; i < queue_.size(); ++i) {
    const bool better =
        queue_[i].request.priority > queue_[best].request.priority ||
        (queue_[i].request.priority == queue_[best].request.priority &&
         queue_[i].seq < queue_[best].seq);
    if (better) best = i;
  }
  PendingJob job = std::move(queue_[best]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
  ++stats_.popped;
  stats_.depth = static_cast<int>(queue_.size());
  return job;
}

void AdmissionQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::vector<PendingJob> AdmissionQueue::TakeAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<PendingJob> taken = std::move(queue_);
  queue_.clear();
  stats_.depth = 0;
  return taken;
}

void AdmissionQueue::OnJobFinished(double service_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.finished;
  stats_.service_ewma_ms = stats_.service_ewma_ms <= 0.0
                               ? service_ms
                               : 0.8 * stats_.service_ewma_ms +
                                     0.2 * service_ms;
}

double AdmissionQueue::RetryAfterHintMs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return HintLocked();
}

double AdmissionQueue::HintLocked() const {
  const double ewma = stats_.service_ewma_ms > 0.0 ? stats_.service_ewma_ms
                                                   : kDefaultServiceMs;
  return (static_cast<double>(queue_.size()) + 1.0) * ewma /
         static_cast<double>(workers_);
}

int AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(queue_.size());
}

QueueStats AdmissionQueue::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  QueueStats snapshot = stats_;
  snapshot.depth = static_cast<int>(queue_.size());
  return snapshot;
}

}  // namespace ga::serve
