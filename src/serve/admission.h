// Admission control for ga::serve: a bounded priority queue with
// explicit, deterministic load shedding.
//
// The queue never grows past its capacity. When a request arrives at a
// full queue the decision is a pure function of the queue's contents and
// the request's priority — no clocks, no randomness — so the same
// submit/pop/finish event trace produces the same admit/shed/displace
// decisions at any host thread count (the shedding determinism the PR's
// tests replay):
//
//   * depth < capacity            -> admit.
//   * depth == capacity           -> find the victim candidate: the entry
//     with the LOWEST priority; among equals, the YOUNGEST (highest
//     arrival seq — older requests have waited longest and keep their
//     slot). If the arrival's priority is strictly higher than the
//     candidate's, the candidate is displaced (shed) and the arrival is
//     admitted; otherwise the arrival itself is shed.
//
// Shed responses carry a retry-after hint derived from queue occupancy
// and an EWMA of recent service times — advisory, not part of the
// deterministic decision.
//
// Pop() serves the highest priority first, FIFO within a priority.
#ifndef GRAPHALYTICS_SERVE_ADMISSION_H_
#define GRAPHALYTICS_SERVE_ADMISSION_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/exec/cancel.h"
#include "serve/protocol.h"

namespace ga::serve {

/// One admitted-or-pending request: the parsed request, its cancellation
/// token (armed with the client deadline), and the completion callback
/// that delivers the response (to a socket writer, a test promise, ...).
struct PendingJob {
  Request request;
  std::shared_ptr<exec::CancelToken> cancel;
  std::function<void(const Response&)> respond;
  /// Arrival order, assigned by Submit; ties in priority break FIFO.
  std::int64_t seq = 0;
  /// Arrival wall instant, stamped by the server before Submit — feeds
  /// the queue-wait stage histogram (ga::telemetry) and the response's
  /// queue_wait_ms. Purely observational: the admit/shed decision never
  /// reads it, so shedding stays clock-free and deterministic.
  std::chrono::steady_clock::time_point enqueued_at{};
};

enum class AdmitOutcome {
  kAdmitted,  // queued (possibly displacing a lower-priority victim)
  kShed,      // rejected: queue full of equal-or-higher priority work
  kClosed,    // admission closed (server draining)
};

struct AdmitDecision {
  AdmitOutcome outcome = AdmitOutcome::kShed;
  /// Advisory back-off for shed requests (and for a displaced victim).
  double retry_after_ms = 0.0;
  /// The displaced lower-priority job, when admission evicted one. The
  /// caller sheds it (responds kResourceExhausted) outside the queue
  /// lock.
  std::optional<PendingJob> victim;
};

struct QueueStats {
  std::int64_t submitted = 0;
  std::int64_t admitted = 0;
  std::int64_t shed_arrivals = 0;  // arrivals rejected at the door
  std::int64_t shed_victims = 0;   // queued jobs displaced by priority
  std::int64_t popped = 0;
  std::int64_t finished = 0;
  int depth = 0;
  double service_ewma_ms = 0.0;
};

class AdmissionQueue {
 public:
  /// `capacity` bounds the number of queued (not yet running) jobs;
  /// `workers` is the executor count the retry hint divides by.
  AdmissionQueue(int capacity, int workers);

  /// Deterministic admit/shed decision as documented above. Thread-safe.
  AdmitDecision Submit(PendingJob job);

  /// Blocks until a job is available or the queue is closed AND empty
  /// (then nullopt). Highest priority first, FIFO within a priority.
  std::optional<PendingJob> Pop();

  /// Stops admission (Submit returns kClosed) and wakes blocked Pop()
  /// callers. Already-queued jobs still drain through Pop().
  void Close();
  bool closed() const;

  /// Removes and returns every queued job (drain-with-cancel path).
  std::vector<PendingJob> TakeAll();

  /// Feeds one completed job's service time into the EWMA behind the
  /// retry-after hint.
  void OnJobFinished(double service_ms);

  /// Current advisory hint: (depth + 1) * ewma / workers.
  double RetryAfterHintMs() const;

  int depth() const;
  QueueStats stats() const;

 private:
  double HintLocked() const;

  const int capacity_;
  const int workers_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::vector<PendingJob> queue_;
  bool closed_ = false;
  std::int64_t next_seq_ = 0;
  QueueStats stats_;
};

}  // namespace ga::serve

#endif  // GRAPHALYTICS_SERVE_ADMISSION_H_
