#include "serve/protocol.h"

#include "core/json_reader.h"
#include "core/json_writer.h"

namespace ga::serve {

Result<Request> ParseRequest(const std::string& line) {
  GA_ASSIGN_OR_RETURN(json::Value doc, json::Parse(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  Request request;
  const std::string op = doc.GetString("op", "run");
  if (op == "run") {
    request.op = RequestOp::kRun;
  } else if (op == "cancel") {
    request.op = RequestOp::kCancel;
  } else if (op == "stats") {
    request.op = RequestOp::kStats;
  } else if (op == "metrics") {
    request.op = RequestOp::kMetrics;
  } else {
    return Status::InvalidArgument("unknown op \"" + op + "\"");
  }
  request.id = doc.GetString("id");
  if (request.op != RequestOp::kStats && request.op != RequestOp::kMetrics &&
      request.id.empty()) {
    return Status::InvalidArgument("request needs an \"id\"");
  }
  if (request.op != RequestOp::kRun) return request;

  request.dataset = doc.GetString("dataset");
  if (request.dataset.empty()) {
    return Status::InvalidArgument("run request needs a \"dataset\"");
  }
  const std::string algorithm = doc.GetString("algorithm", "bfs");
  if (!ParseAlgorithm(algorithm, &request.algorithm)) {
    return Status::InvalidArgument("unknown algorithm \"" + algorithm +
                                   "\"");
  }
  request.platform = doc.GetString("platform", request.platform);
  request.priority = static_cast<int>(doc.GetNumber("priority", 0.0));
  request.deadline_ms = doc.GetNumber("deadline_ms", 0.0);
  if (request.deadline_ms < 0.0) {
    return Status::InvalidArgument("deadline_ms must be >= 0");
  }
  request.validate = doc.GetBool("validate", false);
  request.faults = doc.GetString("faults");
  request.num_machines =
      static_cast<int>(doc.GetNumber("machines", request.num_machines));
  request.threads_per_machine = static_cast<int>(
      doc.GetNumber("threads", request.threads_per_machine));
  if (request.num_machines < 1 || request.threads_per_machine < 1) {
    return Status::InvalidArgument("machines/threads must be >= 1");
  }
  return request;
}

std::string FormatResponse(const Response& response) {
  JsonWriter json;
  json.BeginObject();
  if (!response.id.empty()) json.Field("id", response.id);
  json.Field("status", response.status);
  if (!response.code.empty()) json.Field("code", response.code);
  if (!response.message.empty()) json.Field("message", response.message);
  if (response.retry_after_ms > 0.0) {
    json.Field("retry_after_ms", response.retry_after_ms);
  }
  if (!response.output_fnv.empty()) {
    json.Field("output_fnv", response.output_fnv);
    json.Field("tproc_seconds", response.tproc_seconds);
    json.Field("makespan_seconds", response.makespan_seconds);
    json.Field("supersteps", response.supersteps);
    json.Field("validated", response.validated);
  }
  if (response.queue_wait_ms >= 0.0) {
    json.Field("queue_wait_ms", response.queue_wait_ms);
    json.Field("load_ms", response.load_ms);
    json.Field("exec_ms", response.exec_ms);
  }
  if (!response.body.empty()) json.Field("body", response.body);
  json.EndObject();
  std::string rendered = json.str();
  if (!response.stats_json.empty()) {
    // Splice the pre-rendered stats object in as a "stats" member.
    rendered.insert(rendered.size() - 1,
                    ",\"stats\":" + response.stats_json);
  }
  return rendered;
}

Response ErrorResponse(const std::string& id, const Status& status) {
  Response response;
  response.id = id;
  switch (status.code()) {
    case StatusCode::kCancelled:
      response.status = "cancelled";
      break;
    case StatusCode::kDeadlineExceeded:
      response.status = "timed-out";
      break;
    case StatusCode::kResourceExhausted:
      response.status = "shed";
      break;
    case StatusCode::kOutOfMemory:
    case StatusCode::kAborted:
      response.status = "crashed";
      break;
    case StatusCode::kUnsupported:
      response.status = "unsupported";
      break;
    case StatusCode::kInvalidArgument:
      response.status = "error";
      break;
    default:
      response.status = "failed";
      break;
  }
  response.code = std::string(StatusCodeName(status.code()));
  response.message = status.message();
  return response;
}

Response ShedResponse(const std::string& id, double retry_after_ms,
                      const std::string& message) {
  Response response;
  response.id = id;
  response.status = "shed";
  response.code = std::string(StatusCodeName(StatusCode::kResourceExhausted));
  response.message = message;
  response.retry_after_ms = retry_after_ms;
  return response;
}

}  // namespace ga::serve
