// ga::serve wire protocol: line-delimited JSON over a local stream
// socket. One request object per line in, one response object per line
// out. The protocol is deliberately flat (no framing beyond '\n', no
// request pipelining semantics beyond ids) so a client is a few lines of
// any language — `nc -U` works for smoke tests.
//
// Requests:
//   {"op":"run","id":"r1","algorithm":"bfs","dataset":"R1", ...}
//   {"op":"cancel","id":"r1"}           cancel an in-flight request
//   {"op":"stats"}                      server counters snapshot (JSON)
//   {"op":"metrics"}                    Prometheus text exposition,
//                                       carried in the response's "body"
//
// Responses echo the request id and carry a status slug from the
// JobOutcome/StatusCode taxonomy plus, for shed requests, a
// retry_after_ms hint (docs/SERVING.md).
#ifndef GRAPHALYTICS_SERVE_PROTOCOL_H_
#define GRAPHALYTICS_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "core/status.h"
#include "core/types.h"

namespace ga::serve {

enum class RequestOp { kRun, kCancel, kStats, kMetrics };

struct Request {
  RequestOp op = RequestOp::kRun;
  /// Client-chosen id, echoed on every response line for this request.
  std::string id;
  Algorithm algorithm = Algorithm::kBfs;
  std::string dataset;
  std::string platform = "bsplite";
  /// Admission priority: higher displaces lower when the queue is full.
  int priority = 0;
  /// Wall-clock deadline for the whole request (queue wait + execution),
  /// in milliseconds; 0 inherits the server default (which may be
  /// "none").
  double deadline_ms = 0.0;
  /// Validate the output against the reference implementation.
  bool validate = false;
  /// Fault-injection plan for this request (faults::FaultPlan::Parse
  /// syntax). Faulted requests run exclusively — see server.h.
  std::string faults;
  int num_machines = 1;
  int threads_per_machine = 32;
};

/// Parses one request line. kInvalidArgument (with the reason) on
/// malformed JSON, unknown op, unknown algorithm, or a missing id/dataset
/// for ops that need one.
Result<Request> ParseRequest(const std::string& line);

struct Response {
  std::string id;
  /// "completed", "shed", "cancelled", "timed-out", "failed", "crashed",
  /// "unsupported", "cancel-requested", "stats", "error".
  std::string status;
  /// StatusCodeName of the failure (empty for completed/stats).
  std::string code;
  std::string message;
  /// Shed responses: suggested client back-off before retrying.
  double retry_after_ms = 0.0;
  // Completed runs:
  /// FNV-1a 64 of FormatOutput(graph, output), hex — the byte-identity
  /// handle chaos tests compare against batch mode.
  std::string output_fnv;
  double tproc_seconds = 0.0;
  double makespan_seconds = 0.0;
  int supersteps = 0;
  bool validated = false;
  /// Completed runs: host wall-clock spent in each lifecycle stage —
  /// waiting in the admission queue, acquiring residency (snapshot
  /// load), executing the job. Emitted when queue_wait_ms >= 0 (the
  /// server always stamps them; hand-built responses leave them -1).
  double queue_wait_ms = -1.0;
  double load_ms = -1.0;
  double exec_ms = -1.0;
  /// stats responses: pre-rendered JSON object (spliced verbatim).
  std::string stats_json;
  /// metrics responses: Prometheus text exposition, carried as one JSON
  /// string field so the one-line-per-response framing holds.
  std::string body;
};

/// Renders a response as one JSON line (no trailing newline).
std::string FormatResponse(const Response& response);

/// Convenience constructors for the common shapes.
Response ErrorResponse(const std::string& id, const Status& status);
Response ShedResponse(const std::string& id, double retry_after_ms,
                      const std::string& message);

}  // namespace ga::serve

#endif  // GRAPHALYTICS_SERVE_PROTOCOL_H_
