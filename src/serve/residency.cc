#include "serve/residency.h"

#include <algorithm>
#include <chrono>

namespace ga::serve {

std::int64_t GraphResidentBytes(const Graph& graph) {
  std::int64_t bytes = 0;
  bytes += static_cast<std::int64_t>(graph.external_ids().size_bytes());
  bytes += static_cast<std::int64_t>(graph.edges().size_bytes());
  bytes += static_cast<std::int64_t>(graph.out_offsets().size_bytes());
  bytes += static_cast<std::int64_t>(graph.out_targets().size_bytes());
  bytes += static_cast<std::int64_t>(graph.out_weights().size_bytes());
  // Undirected graphs alias the in-views onto the out-arrays; only
  // directed graphs keep a separate in-CSC.
  if (graph.is_directed()) {
    bytes += static_cast<std::int64_t>(graph.in_offsets().size_bytes());
    bytes += static_cast<std::int64_t>(graph.in_sources().size_bytes());
    bytes += static_cast<std::int64_t>(graph.in_weights().size_bytes());
  }
  return bytes;
}

SnapshotResidency::SnapshotResidency(std::int64_t budget_bytes,
                                     Loader loader, SizeEstimator estimator)
    : budget_bytes_(budget_bytes > 0 ? budget_bytes : 0),
      loader_(std::move(loader)),
      estimator_(std::move(estimator)) {}

bool SnapshotResidency::MakeRoomLocked(std::int64_t needed) {
  if (budget_bytes_ <= 0) return true;
  while (resident_bytes_ + needed > budget_bytes_) {
    // LRU scan over idle, fully-loaded entries.
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.pins > 0 || it->second.loading) continue;
      if (victim == entries_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return false;  // everything pinned
    resident_bytes_ -= victim->second.bytes;
    entries_.erase(victim);
    ++evictions_;
    if (telemetry_.evictions != nullptr) telemetry_.evictions->Add(1);
    if (telemetry_.resident_bytes != nullptr) {
      telemetry_.resident_bytes->Set(resident_bytes_);
    }
  }
  return true;
}

Result<std::shared_ptr<const Graph>> SnapshotResidency::Acquire(
    const std::string& id, const exec::CancelToken* cancel) {
  std::unique_lock<std::mutex> lock(mutex_);
  // The miss path re-enters the hit path to build its handle; that
  // re-entry is part of the same logical miss, not a cache hit.
  bool just_loaded = false;
  for (;;) {
    if (cancel != nullptr && cancel->stop_requested()) {
      return cancel->status();
    }
    auto it = entries_.find(id);
    if (it != entries_.end() && !it->second.loading) {
      Entry& entry = it->second;
      entry.last_use = ++use_clock_;
      ++entry.pins;
      if (!just_loaded) {
        ++hits_;
        if (telemetry_.hits != nullptr) telemetry_.hits->Add(1);
      }
      // The handle's deleter unpins under the lock and wakes waiters;
      // the captured `keep` guarantees the graph outlives the handle
      // even if the residency map no longer holds the entry.
      std::shared_ptr<const Graph> keep = entry.graph;
      const Graph* raw = keep.get();
      return std::shared_ptr<const Graph>(
          raw, [this, id, keep](const Graph*) mutable {
            {
              std::lock_guard<std::mutex> inner(mutex_);
              auto entry_it = entries_.find(id);
              if (entry_it != entries_.end()) --entry_it->second.pins;
              keep.reset();
            }
            released_.notify_all();
          });
    }
    if (it != entries_.end()) {
      // Another job is loading this dataset; wait for it.
      released_.wait_for(lock, std::chrono::milliseconds(20));
      continue;
    }
    // Miss: reserve the estimate, evicting idle LRU entries for room.
    const std::int64_t estimate =
        estimator_ != nullptr ? std::max<std::int64_t>(estimator_(id), 0)
                              : 0;
    if (budget_bytes_ > 0 && estimate > budget_bytes_) {
      return Status::ResourceExhausted(
          "dataset " + id + " needs ~" + std::to_string(estimate) +
          " bytes, over the " + std::to_string(budget_bytes_) +
          "-byte residency budget");
    }
    if (!MakeRoomLocked(estimate)) {
      // Every resident graph is pinned by running jobs: serialize — wait
      // for a release instead of blowing the budget. Bounded by the
      // cancel token's deadline, checked at the top of the loop.
      released_.wait_for(lock, std::chrono::milliseconds(20));
      continue;
    }
    Entry& entry = entries_[id];
    entry.bytes = estimate;
    entry.loading = true;
    entry.last_use = ++use_clock_;
    resident_bytes_ += estimate;
    ++misses_;
    if (telemetry_.misses != nullptr) telemetry_.misses->Add(1);
    if (telemetry_.resident_bytes != nullptr) {
      telemetry_.resident_bytes->Set(resident_bytes_);
    }
    lock.unlock();
    auto loaded = loader_(id);
    lock.lock();
    auto loading_it = entries_.find(id);
    if (!loaded.ok()) {
      if (loading_it != entries_.end()) {
        resident_bytes_ -= loading_it->second.bytes;
        entries_.erase(loading_it);
        if (telemetry_.resident_bytes != nullptr) {
          telemetry_.resident_bytes->Set(resident_bytes_);
        }
      }
      released_.notify_all();
      return loaded.status();
    }
    const std::int64_t actual = GraphResidentBytes(**loaded);
    if (budget_bytes_ > 0 && actual > budget_bytes_) {
      resident_bytes_ -= loading_it->second.bytes;
      entries_.erase(loading_it);
      if (telemetry_.resident_bytes != nullptr) {
        telemetry_.resident_bytes->Set(resident_bytes_);
      }
      released_.notify_all();
      return Status::ResourceExhausted(
          "dataset " + id + " is " + std::to_string(actual) +
          " bytes resident, over the " + std::to_string(budget_bytes_) +
          "-byte residency budget");
    }
    resident_bytes_ += actual - loading_it->second.bytes;
    if (telemetry_.resident_bytes != nullptr) {
      telemetry_.resident_bytes->Set(resident_bytes_);
    }
    loading_it->second.bytes = actual;
    loading_it->second.graph = std::move(*loaded);
    loading_it->second.loading = false;
    // The estimate may have undershot: best-effort correction against
    // idle entries (the new graph itself is about to be pinned).
    loading_it->second.pins = 1;  // pin through MakeRoom, unpinned below
    MakeRoomLocked(0);
    loading_it->second.pins = 0;
    released_.notify_all();
    just_loaded = true;
    // Loop: the next iteration takes the hit path and builds the handle.
  }
}

void SnapshotResidency::EvictIdle() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->second.pins == 0 && !it->second.loading) {
        resident_bytes_ -= it->second.bytes;
        it = entries_.erase(it);
        ++evictions_;
        if (telemetry_.evictions != nullptr) telemetry_.evictions->Add(1);
        if (telemetry_.resident_bytes != nullptr) {
          telemetry_.resident_bytes->Set(resident_bytes_);
        }
      } else {
        ++it;
      }
    }
  }
  released_.notify_all();
}

std::int64_t SnapshotResidency::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return resident_bytes_;
}

std::int64_t SnapshotResidency::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

std::int64_t SnapshotResidency::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::int64_t SnapshotResidency::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::vector<std::string> SnapshotResidency::ResidentIds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::int64_t, std::string>> by_use;
  for (const auto& [id, entry] : entries_) {
    by_use.emplace_back(entry.last_use, id);
  }
  std::sort(by_use.begin(), by_use.end());
  std::vector<std::string> ids;
  ids.reserve(by_use.size());
  for (auto& [use, id] : by_use) ids.push_back(std::move(id));
  return ids;
}

}  // namespace ga::serve
