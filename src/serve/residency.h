// Memory-budget governor for ga::serve: refcounted read-only residency
// of dataset graphs shared across in-flight jobs, with LRU eviction
// under a configurable byte budget.
//
// Jobs Acquire() a dataset and get back a shared handle; many jobs on
// the same dataset share ONE resident graph (mmap'd `.gab` snapshots
// stay zero-copy — the bytes are the page cache's, counted once). An
// idle graph (no outstanding handles) stays resident as cache until the
// budget needs the room, then is evicted in LRU order. Degradation under
// pressure is graceful and explicit, never an OOM kill:
//
//   * budget has room (possibly after evicting idle LRU entries): load;
//   * every resident graph is pinned by running jobs: Acquire WAITS for
//     a release (serialize-rather-than-OOM), bounded by the request's
//     cancel token / deadline — expiry surfaces kDeadlineExceeded, a
//     drain cancel surfaces kCancelled;
//   * the dataset alone exceeds the whole budget: kResourceExhausted
//     immediately (retry cannot fix it, shed it loudly).
//
// The loader is injected so the server wires it to DatasetRegistry and
// tests wire it to synthetic graphs with scripted sizes. Admission is
// reserved against a size ESTIMATE before loading (the registry knows a
// dataset's instance dimensions), then trued up to the actual resident
// bytes after the load — so the budget is respected while the load is
// in flight, not only after.
#ifndef GRAPHALYTICS_SERVE_RESIDENCY_H_
#define GRAPHALYTICS_SERVE_RESIDENCY_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/exec/cancel.h"
#include "core/graph.h"
#include "core/status.h"
#include "telemetry/metrics.h"

namespace ga::serve {

/// Optional lock-free mirrors of the residency counters (ga::telemetry).
/// Null members are skipped; the internal int64 counters stay
/// authoritative for StatsSnapshot and the residency tests.
struct ResidencyTelemetry {
  telemetry::Counter* hits = nullptr;
  telemetry::Counter* misses = nullptr;
  telemetry::Counter* evictions = nullptr;
  telemetry::Gauge* resident_bytes = nullptr;
};

/// Bytes a graph keeps resident: the sum of its array views (for
/// storage-backed graphs this is the mapped snapshot's payload; the
/// undirected in-view aliases are not double-counted).
std::int64_t GraphResidentBytes(const Graph& graph);

class SnapshotResidency {
 public:
  using Loader =
      std::function<Result<std::shared_ptr<const Graph>>(const std::string&)>;
  using SizeEstimator = std::function<std::int64_t(const std::string&)>;

  /// `budget_bytes` <= 0 disables the budget (everything stays
  /// resident). `estimator` pre-reserves budget before a load; null
  /// reserves nothing and trues up after the load.
  SnapshotResidency(std::int64_t budget_bytes, Loader loader,
                    SizeEstimator estimator = nullptr);

  /// Returns a shared handle to the resident graph, loading it on a
  /// miss. Blocks under budget pressure until eviction frees room, the
  /// token is cancelled, or its deadline expires. The handle pins the
  /// graph against eviction; dropping the last handle makes it evictable
  /// (it stays cached until the budget wants the room).
  Result<std::shared_ptr<const Graph>> Acquire(
      const std::string& id, const exec::CancelToken* cancel = nullptr);

  /// Drops every idle entry (drain/tests). Pinned entries stay.
  void EvictIdle();

  std::int64_t budget_bytes() const { return budget_bytes_; }
  std::int64_t resident_bytes() const;
  std::int64_t evictions() const;
  std::int64_t hits() const;
  std::int64_t misses() const;
  /// Resident ids in LRU order (oldest first); tests assert eviction
  /// order through this.
  std::vector<std::string> ResidentIds() const;

  /// Installs telemetry mirrors (the server wires these to its metric
  /// registry). Call before the first Acquire; instruments must outlive
  /// this object.
  void set_telemetry(const ResidencyTelemetry& telemetry) {
    telemetry_ = telemetry;
  }

 private:
  struct Entry {
    std::shared_ptr<const Graph> graph;  // null while loading
    std::int64_t bytes = 0;              // estimate until loaded
    std::int64_t last_use = 0;
    int pins = 0;
    bool loading = false;
  };

  /// Evicts idle entries (LRU first) until `needed` more bytes fit the
  /// budget. True when they fit. Caller holds the lock.
  bool MakeRoomLocked(std::int64_t needed);

  const std::int64_t budget_bytes_;
  Loader loader_;
  SizeEstimator estimator_;
  ResidencyTelemetry telemetry_;

  mutable std::mutex mutex_;
  std::condition_variable released_;
  std::map<std::string, Entry> entries_;
  std::int64_t resident_bytes_ = 0;
  std::int64_t use_clock_ = 0;
  std::int64_t evictions_ = 0;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace ga::serve

#endif  // GRAPHALYTICS_SERVE_RESIDENCY_H_
