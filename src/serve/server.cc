#include "serve/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>

#include "algo/output.h"
#include "algo/reference.h"
#include "core/json_writer.h"
#include "faults/faults.h"
#include "harness/results_db.h"
#include "platforms/platform.h"
#include "store/snapshot.h"

namespace ga::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::string FnvHex(const std::string& text) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(
                    store::Fnv1a64(text.data(), text.size())));
  return hex;
}

/// Estimated resident bytes of a dataset instance, from catalogue
/// dimensions alone — no load needed. Mirrors GraphResidentBytes: ids +
/// canonical edges + out-CSR (+ in-CSC for directed graphs).
std::int64_t EstimateDatasetBytes(const harness::DatasetSpec& spec,
                                  std::int64_t divisor) {
  const std::int64_t v =
      std::max<std::int64_t>(spec.paper_vertices / divisor, 1);
  const std::int64_t e =
      std::max<std::int64_t>(spec.paper_edges / divisor, 1);
  const bool directed = spec.directedness == Directedness::kDirected;
  const std::int64_t adjacency = directed ? e : 2 * e;
  std::int64_t bytes =
      v * static_cast<std::int64_t>(sizeof(VertexId)) +
      e * static_cast<std::int64_t>(sizeof(Edge)) +
      (v + 1) * static_cast<std::int64_t>(sizeof(EdgeIndex)) +
      adjacency * static_cast<std::int64_t>(sizeof(VertexIndex));
  if (spec.weighted) {
    bytes += adjacency * static_cast<std::int64_t>(sizeof(Weight));
  }
  if (directed) {
    bytes += (v + 1) * static_cast<std::int64_t>(sizeof(EdgeIndex)) +
             adjacency * static_cast<std::int64_t>(sizeof(VertexIndex));
    if (spec.weighted) {
      bytes += adjacency * static_cast<std::int64_t>(sizeof(Weight));
    }
  }
  return bytes;
}

/// Benchmark parameters from a resident graph (the registry's rule: the
/// BFS/SSSP root is the first vertex of maximum out-degree).
AlgorithmParams ParamsFromGraph(const Graph& graph) {
  AlgorithmParams params;
  VertexIndex best = 0;
  EdgeIndex best_degree = -1;
  for (VertexIndex v = 0; v < graph.num_vertices(); ++v) {
    if (graph.OutDegree(v) > best_degree) {
      best_degree = graph.OutDegree(v);
      best = v;
    }
  }
  if (graph.num_vertices() > 0) {
    params.source_vertex = graph.ExternalId(best);
  }
  return params;
}

}  // namespace

Server::Server(const ServeOptions& options)
    : options_(options),
      queue_(std::make_unique<AdmissionQueue>(options.queue_capacity,
                                              options.workers)),
      registry_(options.bench) {
  residency_ = std::make_unique<SnapshotResidency>(
      options_.memory_budget_bytes,
      [this](const std::string& id) -> Result<std::shared_ptr<const Graph>> {
        std::lock_guard<std::mutex> lock(registry_mutex_);
        GA_ASSIGN_OR_RETURN(const Graph* graph, registry_.Load(id));
        // Residency owns the resident lifetime: dropping the entry
        // evicts the registry's RAM cache so the bytes are actually
        // reclaimed (a disk snapshot, if any, survives for the reload).
        return std::shared_ptr<const Graph>(
            graph, [this, id](const Graph*) {
              std::lock_guard<std::mutex> inner(registry_mutex_);
              registry_.Evict(id);
            });
      },
      [this](const std::string& id) -> std::int64_t {
        std::lock_guard<std::mutex> lock(registry_mutex_);
        auto spec = registry_.Find(id);
        if (!spec.ok()) return 0;
        return EstimateDatasetBytes(*spec, options_.bench.scale_divisor);
      });
}

Server::~Server() {
  if (started_) Drain();
}

Status Server::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  if (options_.queue_capacity < 1) {
    return Status::InvalidArgument("queue capacity must be >= 1");
  }
  if (options_.workers < 1) {
    return Status::InvalidArgument("workers must be >= 1");
  }
  started_ = true;

  worker_pools_.reserve(static_cast<std::size_t>(options_.workers));
  executors_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    worker_pools_.push_back(
        std::make_unique<exec::ThreadPool>(options_.bench.host_jobs));
  }
  // Dataset generation happens inside the residency loader, serialized
  // by registry_mutex_ — its own pool, never a job's execution pool.
  loader_pool_ = std::make_unique<exec::ThreadPool>(options_.bench.host_jobs);
  registry_.set_host_pool(loader_pool_.get());
  for (int i = 0; i < options_.workers; ++i) {
    executors_.emplace_back([this, i] { ExecutorLoop(i); });
  }

  if (options_.socket_path.empty()) return Status::Ok();

  if (::pipe(wake_pipe_) != 0) {
    return Status::IoError("cannot create wake pipe");
  }
  ::fcntl(wake_pipe_[0], F_SETFL, O_NONBLOCK);
  ::fcntl(wake_pipe_[1], F_SETFL, O_NONBLOCK);

  ::unlink(options_.socket_path.c_str());
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::IoError("cannot create socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " +
                                   options_.socket_path);
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::IoError("cannot bind " + options_.socket_path + ": " +
                           std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    return Status::IoError("cannot listen on " + options_.socket_path);
  }
  acceptor_ = std::thread([this] { AcceptorLoop(); });
  return Status::Ok();
}

void Server::Submit(const Request& request,
                    std::function<void(const Response&)> respond) {
  const std::string id = request.id;
  if (drain_requested_.load(std::memory_order_acquire)) {
    respond(ErrorResponse(
        id, Status::FailedPrecondition("server draining; admission closed")));
    return;
  }
  auto token = std::make_shared<exec::CancelToken>();
  const double deadline_ms = request.deadline_ms > 0.0
                                 ? request.deadline_ms
                                 : options_.default_deadline_ms;
  if (deadline_ms > 0.0) {
    token->SetDeadlineAfter(std::chrono::nanoseconds(
        static_cast<std::int64_t>(deadline_ms * 1e6)));
  }
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    if (!inflight_.emplace(id, token).second) {
      respond(ErrorResponse(
          id, Status::AlreadyExists("request id \"" + id +
                                    "\" is already in flight")));
      return;
    }
  }
  PendingJob job;
  job.request = request;
  job.cancel = token;
  job.respond = respond;
  AdmitDecision decision = queue_->Submit(std::move(job));
  switch (decision.outcome) {
    case AdmitOutcome::kAdmitted:
      if (decision.victim.has_value()) {
        FinishRequest(decision.victim->request.id);
        if (decision.victim->respond) {
          decision.victim->respond(ShedResponse(
              decision.victim->request.id, decision.retry_after_ms,
              "displaced by a higher-priority request"));
        }
      }
      return;
    case AdmitOutcome::kShed:
      FinishRequest(id);
      respond(ShedResponse(id, decision.retry_after_ms,
                           "admission queue full"));
      return;
    case AdmitOutcome::kClosed:
      FinishRequest(id);
      respond(ErrorResponse(
          id,
          Status::FailedPrecondition("server draining; admission closed")));
      return;
  }
}

Response Server::Cancel(const std::string& id, const std::string& reason) {
  std::shared_ptr<exec::CancelToken> token;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    auto it = inflight_.find(id);
    if (it != inflight_.end()) token = it->second;
  }
  if (token == nullptr) {
    return ErrorResponse(
        id, Status::NotFound("no in-flight request with id \"" + id + "\""));
  }
  token->Cancel(reason);
  Response response;
  response.id = id;
  response.status = "cancel-requested";
  return response;
}

ServeStats Server::StatsSnapshot() {
  ServeStats snapshot;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    snapshot = stats_;
  }
  snapshot.queue = queue_->stats();
  snapshot.resident_bytes = residency_->resident_bytes();
  snapshot.evictions = residency_->evictions();
  snapshot.residency_hits = residency_->hits();
  snapshot.residency_misses = residency_->misses();
  return snapshot;
}

Response Server::Stats() {
  const ServeStats stats = StatsSnapshot();
  JsonWriter json;
  json.BeginObject();
  json.Field("submitted", stats.queue.submitted);
  json.Field("admitted", stats.queue.admitted);
  json.Field("shed_arrivals", stats.queue.shed_arrivals);
  json.Field("shed_victims", stats.queue.shed_victims);
  json.Field("queue_depth", stats.queue.depth);
  json.Field("completed", stats.completed);
  json.Field("failed", stats.failed);
  json.Field("cancelled", stats.cancelled);
  json.Field("timed_out", stats.timed_out);
  json.Field("faulted_requests", stats.faulted_requests);
  json.Field("resident_bytes", stats.resident_bytes);
  json.Field("memory_budget_bytes", options_.memory_budget_bytes);
  json.Field("evictions", stats.evictions);
  json.Field("residency_hits", stats.residency_hits);
  json.Field("residency_misses", stats.residency_misses);
  json.EndObject();
  Response response;
  response.status = "stats";
  response.stats_json = json.str();
  return response;
}

void Server::RequestDrain() {
  drain_requested_.store(true, std::memory_order_release);
  if (wake_pipe_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
  }
}

Status Server::Drain() {
  if (drained_.exchange(true)) return Status::Ok();
  drain_requested_.store(true, std::memory_order_release);
  queue_->Close();
  if (wake_pipe_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
  }
  if (options_.drain == ServeOptions::DrainPolicy::kCancel) {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    for (auto& [id, token] : inflight_) {
      token->Cancel("server draining");
    }
  }
  // Executors drain the (closed) queue — quickly under the cancel
  // policy, to completion under finish — then exit on the empty queue.
  for (std::thread& executor : executors_) {
    if (executor.joinable()) executor.join();
  }
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& connection : connections_) {
      if (connection->fd >= 0) ::shutdown(connection->fd, SHUT_RDWR);
    }
    for (auto& connection : connections_) {
      if (connection->reader.joinable()) connection->reader.join();
      std::lock_guard<std::mutex> write_lock(connection->write_mutex);
      if (connection->fd >= 0) {
        ::close(connection->fd);
        connection->fd = -1;
      }
    }
    connections_.clear();
  }
  for (int i = 0; i < 2; ++i) {
    if (wake_pipe_[i] >= 0) {
      ::close(wake_pipe_[i]);
      wake_pipe_[i] = -1;
    }
  }
  residency_->EvictIdle();
  return Status::Ok();
}

Status Server::ServeUntilDrained() {
  if (!started_) return Status::FailedPrecondition("server not started");
  while (!drain_requested_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return Drain();
}

void Server::ExecutorLoop(int worker_index) {
  exec::ThreadPool* pool =
      worker_pools_[static_cast<std::size_t>(worker_index)].get();
  while (auto job = queue_->Pop()) {
    ExecuteJob(std::move(*job), pool);
  }
}

void Server::ExecuteJob(PendingJob job, exec::ThreadPool* pool) {
  const auto start = Clock::now();
  Response response;
  if (job.cancel != nullptr && job.cancel->stop_requested()) {
    // Cancelled or expired while queued: never touches an executor slot
    // beyond this check.
    response = ErrorResponse(job.request.id, job.cancel->status());
  } else {
    response = RunRequest(job.request, job.cancel.get(), pool);
  }
  const double service_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start)
          .count();
  queue_->OnJobFinished(service_ms);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (response.status == "completed") {
      ++stats_.completed;
    } else if (response.status == "cancelled") {
      ++stats_.cancelled;
    } else if (response.status == "timed-out") {
      ++stats_.timed_out;
    } else {
      ++stats_.failed;
    }
    if (!job.request.faults.empty()) ++stats_.faulted_requests;
  }
  RecordReport(job.request, response, response.tproc_seconds);
  FinishRequest(job.request.id);
  if (job.respond) job.respond(response);
}

Response Server::RunRequest(const Request& request,
                            const exec::CancelToken* cancel,
                            exec::ThreadPool* pool) {
  auto platform = platform::CreatePlatform(request.platform);
  if (!platform.ok()) {
    return ErrorResponse(request.id, platform.status());
  }
  // Parse the fault plan BEFORE acquiring residency: a malformed plan is
  // a usage error, not a run.
  std::optional<faults::FaultPlan> fault_plan;
  if (!request.faults.empty()) {
    auto plan = faults::FaultPlan::Parse(request.faults);
    if (!plan.ok()) return ErrorResponse(request.id, plan.status());
    fault_plan = *plan;
  }
  auto graph_handle = residency_->Acquire(request.dataset, cancel);
  if (!graph_handle.ok()) {
    Response response = ErrorResponse(request.id, graph_handle.status());
    if (graph_handle.status().code() == StatusCode::kResourceExhausted) {
      response.retry_after_ms = queue_->RetryAfterHintMs();
    }
    return response;
  }
  const Graph& graph = **graph_handle;
  const AlgorithmParams params = ParamsFromGraph(graph);

  platform::ExecutionEnvironment env;
  env.num_machines = request.num_machines;
  env.threads_per_machine = request.threads_per_machine;
  env.memory_budget_bytes = options_.bench.ScaledMemoryBudget();
  env.overhead_scale =
      1.0 / static_cast<double>(options_.bench.scale_divisor);
  env.host_pool = pool;
  env.cancel = cancel;

  Result<platform::RunResult> run = [&]() -> Result<platform::RunResult> {
    if (fault_plan.has_value()) {
      // Chaos isolation: the fault injector is process-global, so a
      // faulted request runs EXCLUSIVELY — no clean job shares the
      // process while the injector is armed.
      faults::FaultInjector injector(*fault_plan);
      std::unique_lock<std::shared_mutex> exclusive(exec_mutex_);
      faults::ScopedGlobalInjector scoped(&injector);
      return (*platform)->RunJob(graph, request.algorithm, params, env);
    }
    std::shared_lock<std::shared_mutex> shared(exec_mutex_);
    return (*platform)->RunJob(graph, request.algorithm, params, env);
  }();
  if (!run.ok()) return ErrorResponse(request.id, run.status());

  Response response;
  response.id = request.id;
  response.status = "completed";
  response.output_fnv = FnvHex(FormatOutput(graph, run->output));
  response.tproc_seconds =
      options_.bench.Project(run->metrics.processing_sim_seconds);
  response.makespan_seconds =
      options_.bench.Project(run->metrics.makespan_sim_seconds);
  response.supersteps = run->metrics.supersteps;
  if (request.validate) {
    auto reference =
        reference::Run(graph, request.algorithm, params, pool);
    if (!reference.ok()) return ErrorResponse(request.id, reference.status());
    Status valid = ValidateOutput(graph, *reference, run->output);
    if (!valid.ok()) {
      return ErrorResponse(request.id,
                           Status::InvalidArgument("output validation: " +
                                                   valid.ToString()));
    }
    response.validated = true;
  }
  return response;
}

void Server::RecordReport(const Request& request, const Response& response,
                          double tproc_seconds) {
  if (options_.results_jsonl.empty()) return;
  harness::JobReport report;
  report.spec.platform_id = request.platform;
  report.spec.dataset_id = request.dataset;
  report.spec.algorithm = request.algorithm;
  report.spec.num_machines = request.num_machines;
  report.spec.threads_per_machine = request.threads_per_machine;
  if (response.status == "completed") {
    report.outcome = harness::JobOutcome::kCompleted;
    report.tproc_seconds = tproc_seconds;
    report.makespan_seconds = response.makespan_seconds;
    report.supersteps = response.supersteps;
    report.output_validated = response.validated;
  } else if (response.status == "timed-out") {
    report.outcome = harness::JobOutcome::kTimedOut;
    report.failure = response.message;
    report.failure_cause = "wall-timeout";
  } else if (response.status == "crashed") {
    report.outcome = harness::JobOutcome::kCrashed;
    report.failure = response.message;
    report.failure_cause = "worker-abort";
  } else if (response.status == "unsupported") {
    report.outcome = harness::JobOutcome::kUnsupported;
    report.failure = response.message;
    report.failure_cause = "unsupported";
  } else {
    report.outcome = harness::JobOutcome::kFailed;
    report.failure = response.message;
    report.failure_cause =
        response.status == "cancelled"
            ? "cancelled"
            : (response.status == "shed" ? "resource-exhausted"
                                         : "failed");
  }
  // Best-effort: a full results log must not take the daemon down.
  Status appended = harness::AppendRecord(options_.results_jsonl, report);
  (void)appended;
}

void Server::FinishRequest(const std::string& id) {
  std::lock_guard<std::mutex> lock(inflight_mutex_);
  inflight_.erase(id);
}

void Server::AcceptorLoop() {
  for (;;) {
    pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[1].fd = wake_pipe_[0];
    fds[1].events = POLLIN;
    const int ready = ::poll(fds, 2, 250);
    if (drain_requested_.load(std::memory_order_acquire)) return;
    if (ready <= 0) continue;
    if ((fds[1].revents & POLLIN) != 0) return;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    Connection* raw = connection.get();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(connection));
    }
    raw->reader = std::thread([this, raw] { ConnectionLoop(raw); });
  }
}

void Server::ConnectionLoop(Connection* connection) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(connection->fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty()) HandleLine(connection, line);
    }
  }
  // Disconnected client: cancel its in-flight requests so they free
  // their executor slots promptly instead of computing into the void.
  std::vector<std::string> ids;
  {
    std::lock_guard<std::mutex> lock(connection->ids_mutex);
    ids = connection->request_ids;
  }
  for (const std::string& id : ids) {
    Cancel(id, "client disconnected");
  }
}

void Server::HandleLine(Connection* connection, const std::string& line) {
  auto request = ParseRequest(line);
  if (!request.ok()) {
    WriteResponse(connection, ErrorResponse("", request.status()));
    return;
  }
  switch (request->op) {
    case RequestOp::kRun: {
      {
        std::lock_guard<std::mutex> lock(connection->ids_mutex);
        connection->request_ids.push_back(request->id);
      }
      Submit(*request, [this, connection](const Response& response) {
        WriteResponse(connection, response);
      });
      return;
    }
    case RequestOp::kCancel:
      WriteResponse(connection, Cancel(request->id, "client cancel"));
      return;
    case RequestOp::kStats:
      WriteResponse(connection, Stats());
      return;
  }
}

void Server::WriteResponse(Connection* connection,
                           const Response& response) {
  const std::string line = FormatResponse(response) + "\n";
  std::lock_guard<std::mutex> lock(connection->write_mutex);
  if (connection->fd < 0) return;
  // MSG_NOSIGNAL: a disconnected client must not SIGPIPE the daemon.
  std::size_t written = 0;
  while (written < line.size()) {
    const ssize_t n = ::send(connection->fd, line.data() + written,
                             line.size() - written, MSG_NOSIGNAL);
    if (n <= 0) return;  // client gone; the response is dropped
    written += static_cast<std::size_t>(n);
  }
}

}  // namespace ga::serve
