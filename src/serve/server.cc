#include "serve/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "algo/output.h"
#include "algo/reference.h"
#include "core/exec/counter_sheet.h"
#include "core/json_writer.h"
#include "faults/faults.h"
#include "harness/results_db.h"
#include "platforms/platform.h"
#include "store/snapshot.h"
#include "telemetry/metrics.h"

namespace ga::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Stage histograms record integer microseconds; the registry's 1e-6
/// unit scale exposes them as Prometheus base-unit seconds.
std::int64_t ElapsedMicros(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration_cast<std::chrono::microseconds>(end - begin)
      .count();
}

double MicrosToMs(std::int64_t micros) {
  return static_cast<double>(micros) / 1000.0;
}

std::string FnvHex(const std::string& text) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(
                    store::Fnv1a64(text.data(), text.size())));
  return hex;
}

/// Estimated resident bytes of a dataset instance, from catalogue
/// dimensions alone — no load needed. Mirrors GraphResidentBytes: ids +
/// canonical edges + out-CSR (+ in-CSC for directed graphs).
std::int64_t EstimateDatasetBytes(const harness::DatasetSpec& spec,
                                  std::int64_t divisor) {
  const std::int64_t v =
      std::max<std::int64_t>(spec.paper_vertices / divisor, 1);
  const std::int64_t e =
      std::max<std::int64_t>(spec.paper_edges / divisor, 1);
  const bool directed = spec.directedness == Directedness::kDirected;
  const std::int64_t adjacency = directed ? e : 2 * e;
  std::int64_t bytes =
      v * static_cast<std::int64_t>(sizeof(VertexId)) +
      e * static_cast<std::int64_t>(sizeof(Edge)) +
      (v + 1) * static_cast<std::int64_t>(sizeof(EdgeIndex)) +
      adjacency * static_cast<std::int64_t>(sizeof(VertexIndex));
  if (spec.weighted) {
    bytes += adjacency * static_cast<std::int64_t>(sizeof(Weight));
  }
  if (directed) {
    bytes += (v + 1) * static_cast<std::int64_t>(sizeof(EdgeIndex)) +
             adjacency * static_cast<std::int64_t>(sizeof(VertexIndex));
    if (spec.weighted) {
      bytes += adjacency * static_cast<std::int64_t>(sizeof(Weight));
    }
  }
  return bytes;
}

/// Benchmark parameters from a resident graph (the registry's rule: the
/// BFS/SSSP root is the first vertex of maximum out-degree).
AlgorithmParams ParamsFromGraph(const Graph& graph) {
  AlgorithmParams params;
  VertexIndex best = 0;
  EdgeIndex best_degree = -1;
  for (VertexIndex v = 0; v < graph.num_vertices(); ++v) {
    if (graph.OutDegree(v) > best_degree) {
      best_degree = graph.OutDegree(v);
      best = v;
    }
  }
  if (graph.num_vertices() > 0) {
    params.source_vertex = graph.ExternalId(best);
  }
  return params;
}

}  // namespace

Server::Server(const ServeOptions& options)
    : options_(options),
      queue_(std::make_unique<AdmissionQueue>(options.queue_capacity,
                                              options.workers)),
      registry_(options.bench) {
  residency_ = std::make_unique<SnapshotResidency>(
      options_.memory_budget_bytes,
      [this](const std::string& id) -> Result<std::shared_ptr<const Graph>> {
        std::lock_guard<std::mutex> lock(registry_mutex_);
        GA_ASSIGN_OR_RETURN(const Graph* graph, registry_.Load(id));
        // Residency owns the resident lifetime: dropping the entry
        // evicts the registry's RAM cache so the bytes are actually
        // reclaimed (a disk snapshot, if any, survives for the reload).
        return std::shared_ptr<const Graph>(
            graph, [this, id](const Graph*) {
              std::lock_guard<std::mutex> inner(registry_mutex_);
              registry_.Evict(id);
            });
      },
      [this](const std::string& id) -> std::int64_t {
        std::lock_guard<std::mutex> lock(registry_mutex_);
        auto spec = registry_.Find(id);
        if (!spec.ok()) return 0;
        return EstimateDatasetBytes(*spec, options_.bench.scale_divisor);
      });
  RegisterInstruments();
}

void Server::RegisterInstruments() {
  // Registration allocates and takes the registry mutex — done once
  // here; every request-path Add/Record afterwards is lock-free and
  // allocation-free through these cached pointers.
  metrics_.completed = telemetry_registry_.GetCounter(
      "ga_serve_requests_total", {{"outcome", "completed"}},
      "Requests finished, by terminal outcome.");
  metrics_.failed = telemetry_registry_.GetCounter("ga_serve_requests_total",
                                         {{"outcome", "failed"}});
  metrics_.cancelled = telemetry_registry_.GetCounter("ga_serve_requests_total",
                                            {{"outcome", "cancelled"}});
  metrics_.timed_out = telemetry_registry_.GetCounter("ga_serve_requests_total",
                                            {{"outcome", "timed-out"}});
  metrics_.faulted = telemetry_registry_.GetCounter(
      "ga_serve_faulted_requests_total", {},
      "Requests that carried a fault-injection plan.");
  const std::string stage_help =
      "Host wall-clock per request lifecycle stage, seconds.";
  metrics_.stage_queue_wait = telemetry_registry_.GetHistogram(
      "ga_serve_stage_seconds", {{"stage", "queue_wait"}}, stage_help, 1e-6);
  metrics_.stage_load = telemetry_registry_.GetHistogram(
      "ga_serve_stage_seconds", {{"stage", "load"}}, stage_help, 1e-6);
  metrics_.stage_execute = telemetry_registry_.GetHistogram(
      "ga_serve_stage_seconds", {{"stage", "execute"}}, stage_help, 1e-6);
  metrics_.stage_serialize = telemetry_registry_.GetHistogram(
      "ga_serve_stage_seconds", {{"stage", "serialize"}}, stage_help, 1e-6);
  metrics_.inflight = telemetry_registry_.GetGauge(
      "ga_serve_inflight_jobs", {}, "Jobs currently on an executor.");
  metrics_.queue_depth = telemetry_registry_.GetGauge(
      "ga_serve_queue_depth", {}, "Admitted jobs waiting for an executor.");
  metrics_.exec_loops = telemetry_registry_.GetCounter(
      "ga_exec_loops_total", {},
      "parallel_for/parallel_reduce dispatches across served jobs.");
  metrics_.exec_chunks = telemetry_registry_.GetCounter(
      "ga_exec_chunks_total", {},
      "Work-stealing chunks executed across served jobs.");
  metrics_.exec_busy_ns = telemetry_registry_.GetCounter(
      "ga_exec_chunk_busy_ns_total", {},
      "Nanoseconds of slot busy time across served jobs.");
  metrics_.exec_steals = telemetry_registry_.GetCounter(
      "ga_exec_steals_total", {},
      "Chunks stolen across executor pools during served jobs.");
  ResidencyTelemetry residency_telemetry;
  residency_telemetry.hits = telemetry_registry_.GetCounter(
      "ga_serve_residency_total", {{"event", "hit"}},
      "Residency cache events (hit/miss/eviction).");
  residency_telemetry.misses = telemetry_registry_.GetCounter(
      "ga_serve_residency_total", {{"event", "miss"}});
  residency_telemetry.evictions = telemetry_registry_.GetCounter(
      "ga_serve_residency_total", {{"event", "eviction"}});
  residency_telemetry.resident_bytes = telemetry_registry_.GetGauge(
      "ga_serve_resident_bytes", {},
      "Bytes of dataset graphs currently resident.");
  residency_->set_telemetry(residency_telemetry);
}

void Server::CountAdmission(const char* decision, int priority) {
  if (!telemetry::Enabled()) return;
  telemetry_registry_
      .GetCounter("ga_serve_admission_total",
                  {{"decision", decision},
                   {"priority", std::to_string(priority)}},
                  "Admission decisions, by decision and request priority.")
      ->Add(1);
}

Server::~Server() {
  if (started_) Drain();
}

Status Server::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  if (options_.queue_capacity < 1) {
    return Status::InvalidArgument("queue capacity must be >= 1");
  }
  if (options_.workers < 1) {
    return Status::InvalidArgument("workers must be >= 1");
  }
  started_ = true;

  worker_pools_.reserve(static_cast<std::size_t>(options_.workers));
  executors_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    worker_pools_.push_back(
        std::make_unique<exec::ThreadPool>(options_.bench.host_jobs));
  }
  // Dataset generation happens inside the residency loader, serialized
  // by registry_mutex_ — its own pool, never a job's execution pool.
  loader_pool_ = std::make_unique<exec::ThreadPool>(options_.bench.host_jobs);
  registry_.set_host_pool(loader_pool_.get());
  for (int i = 0; i < options_.workers; ++i) {
    executors_.emplace_back([this, i] { ExecutorLoop(i); });
  }
  if (!options_.metrics_jsonl.empty()) {
    metrics_sampler_ = std::thread([this] { MetricsSamplerLoop(); });
  }

  if (options_.socket_path.empty()) return Status::Ok();

  if (::pipe(wake_pipe_) != 0) {
    return Status::IoError("cannot create wake pipe");
  }
  ::fcntl(wake_pipe_[0], F_SETFL, O_NONBLOCK);
  ::fcntl(wake_pipe_[1], F_SETFL, O_NONBLOCK);

  ::unlink(options_.socket_path.c_str());
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::IoError("cannot create socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " +
                                   options_.socket_path);
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::IoError("cannot bind " + options_.socket_path + ": " +
                           std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    return Status::IoError("cannot listen on " + options_.socket_path);
  }
  acceptor_ = std::thread([this] { AcceptorLoop(); });
  return Status::Ok();
}

void Server::Submit(const Request& request,
                    std::function<void(const Response&)> respond) {
  const std::string id = request.id;
  if (drain_requested_.load(std::memory_order_acquire)) {
    respond(ErrorResponse(
        id, Status::FailedPrecondition("server draining; admission closed")));
    return;
  }
  auto token = std::make_shared<exec::CancelToken>();
  const double deadline_ms = request.deadline_ms > 0.0
                                 ? request.deadline_ms
                                 : options_.default_deadline_ms;
  if (deadline_ms > 0.0) {
    token->SetDeadlineAfter(std::chrono::nanoseconds(
        static_cast<std::int64_t>(deadline_ms * 1e6)));
  }
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    if (!inflight_.emplace(id, token).second) {
      respond(ErrorResponse(
          id, Status::AlreadyExists("request id \"" + id +
                                    "\" is already in flight")));
      return;
    }
  }
  PendingJob job;
  job.request = request;
  job.cancel = token;
  job.respond = respond;
  job.enqueued_at = Clock::now();
  AdmitDecision decision = queue_->Submit(std::move(job));
  metrics_.queue_depth->Set(queue_->depth());
  switch (decision.outcome) {
    case AdmitOutcome::kAdmitted:
      CountAdmission("admitted", request.priority);
      if (decision.victim.has_value()) {
        CountAdmission("displaced", decision.victim->request.priority);
        FinishRequest(decision.victim->request.id);
        if (decision.victim->respond) {
          decision.victim->respond(ShedResponse(
              decision.victim->request.id, decision.retry_after_ms,
              "displaced by a higher-priority request"));
        }
      }
      return;
    case AdmitOutcome::kShed:
      CountAdmission("shed", request.priority);
      FinishRequest(id);
      respond(ShedResponse(id, decision.retry_after_ms,
                           "admission queue full"));
      return;
    case AdmitOutcome::kClosed:
      FinishRequest(id);
      respond(ErrorResponse(
          id,
          Status::FailedPrecondition("server draining; admission closed")));
      return;
  }
}

Response Server::Cancel(const std::string& id, const std::string& reason) {
  std::shared_ptr<exec::CancelToken> token;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    auto it = inflight_.find(id);
    if (it != inflight_.end()) token = it->second;
  }
  if (token == nullptr) {
    return ErrorResponse(
        id, Status::NotFound("no in-flight request with id \"" + id + "\""));
  }
  token->Cancel(reason);
  Response response;
  response.id = id;
  response.status = "cancel-requested";
  return response;
}

ServeStats Server::StatsSnapshot() {
  // Assembled from the lock-free registry instruments — there is no
  // stats mutex anywhere on the request path.
  ServeStats snapshot;
  snapshot.completed = metrics_.completed->Value();
  snapshot.failed = metrics_.failed->Value();
  snapshot.cancelled = metrics_.cancelled->Value();
  snapshot.timed_out = metrics_.timed_out->Value();
  snapshot.faulted_requests = metrics_.faulted->Value();
  snapshot.queue = queue_->stats();
  snapshot.resident_bytes = residency_->resident_bytes();
  snapshot.evictions = residency_->evictions();
  snapshot.residency_hits = residency_->hits();
  snapshot.residency_misses = residency_->misses();
  return snapshot;
}

Response Server::Stats() {
  const ServeStats stats = StatsSnapshot();
  JsonWriter json;
  json.BeginObject();
  json.Field("submitted", stats.queue.submitted);
  json.Field("admitted", stats.queue.admitted);
  json.Field("shed_arrivals", stats.queue.shed_arrivals);
  json.Field("shed_victims", stats.queue.shed_victims);
  json.Field("queue_depth", stats.queue.depth);
  json.Field("completed", stats.completed);
  json.Field("failed", stats.failed);
  json.Field("cancelled", stats.cancelled);
  json.Field("timed_out", stats.timed_out);
  json.Field("faulted_requests", stats.faulted_requests);
  json.Field("resident_bytes", stats.resident_bytes);
  json.Field("memory_budget_bytes", options_.memory_budget_bytes);
  json.Field("evictions", stats.evictions);
  json.Field("residency_hits", stats.residency_hits);
  json.Field("residency_misses", stats.residency_misses);
  json.Field("inflight", metrics_.inflight->Value());
  json.Field("queue_capacity", options_.queue_capacity);
  json.Field("workers", options_.workers);
  json.Field("service_ewma_ms", stats.queue.service_ewma_ms);
  // Per-stage latency distributions (milliseconds; recorded in µs).
  json.Key("stages");
  json.BeginObject();
  const std::pair<const char*, telemetry::Histogram*> stages[] = {
      {"queue_wait", metrics_.stage_queue_wait},
      {"load", metrics_.stage_load},
      {"execute", metrics_.stage_execute},
      {"serialize", metrics_.stage_serialize},
  };
  for (const auto& [name, histogram] : stages) {
    const telemetry::Histogram::Snapshot dist = histogram->Take();
    json.Key(name);
    json.BeginObject();
    json.Field("count", dist.count);
    json.Field("mean_ms", dist.MeanValue() / 1000.0);
    json.Field("p50_ms", dist.Quantile(0.50) / 1000.0);
    json.Field("p90_ms", dist.Quantile(0.90) / 1000.0);
    json.Field("p99_ms", dist.Quantile(0.99) / 1000.0);
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
  Response response;
  response.status = "stats";
  response.stats_json = json.str();
  return response;
}

Response Server::Metrics() {
  Response response;
  response.status = "metrics";
  response.body = telemetry::Registry::Global().RenderPrometheus() +
                  telemetry_registry_.RenderPrometheus();
  return response;
}

void Server::RequestDrain() {
  drain_requested_.store(true, std::memory_order_release);
  if (wake_pipe_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
  }
}

Status Server::Drain() {
  if (drained_.exchange(true)) return Status::Ok();
  drain_requested_.store(true, std::memory_order_release);
  queue_->Close();
  if (wake_pipe_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
  }
  if (options_.drain == ServeOptions::DrainPolicy::kCancel) {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    for (auto& [id, token] : inflight_) {
      token->Cancel("server draining");
    }
  }
  // Executors drain the (closed) queue — quickly under the cancel
  // policy, to completion under finish — then exit on the empty queue.
  for (std::thread& executor : executors_) {
    if (executor.joinable()) executor.join();
  }
  {
    std::lock_guard<std::mutex> lock(sampler_mutex_);
    sampler_stop_ = true;
  }
  sampler_cv_.notify_all();
  if (metrics_sampler_.joinable()) metrics_sampler_.join();
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& connection : connections_) {
      if (connection->fd >= 0) ::shutdown(connection->fd, SHUT_RDWR);
    }
    for (auto& connection : connections_) {
      if (connection->reader.joinable()) connection->reader.join();
      std::lock_guard<std::mutex> write_lock(connection->write_mutex);
      if (connection->fd >= 0) {
        ::close(connection->fd);
        connection->fd = -1;
      }
    }
    connections_.clear();
  }
  for (int i = 0; i < 2; ++i) {
    if (wake_pipe_[i] >= 0) {
      ::close(wake_pipe_[i]);
      wake_pipe_[i] = -1;
    }
  }
  residency_->EvictIdle();
  return Status::Ok();
}

Status Server::ServeUntilDrained() {
  if (!started_) return Status::FailedPrecondition("server not started");
  while (!drain_requested_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return Drain();
}

void Server::ExecutorLoop(int worker_index) {
  exec::ThreadPool* pool =
      worker_pools_[static_cast<std::size_t>(worker_index)].get();
  while (auto job = queue_->Pop()) {
    ExecuteJob(std::move(*job), pool);
  }
}

void Server::ExecuteJob(PendingJob job, exec::ThreadPool* pool) {
  const auto start = Clock::now();
  // Queue-wait stage: submit-stamp to executor pickup. In-process tests
  // that hand-build PendingJobs leave enqueued_at default; skip those.
  std::int64_t queue_wait_us = -1;
  if (job.enqueued_at != Clock::time_point{}) {
    queue_wait_us = ElapsedMicros(job.enqueued_at, start);
    metrics_.stage_queue_wait->Record(queue_wait_us);
  }
  metrics_.queue_depth->Set(queue_->depth());
  metrics_.inflight->Add(1);
  Response response;
  if (job.cancel != nullptr && job.cancel->stop_requested()) {
    // Cancelled or expired while queued: never touches an executor slot
    // beyond this check.
    response = ErrorResponse(job.request.id, job.cancel->status());
  } else {
    response = RunRequest(job.request, job.cancel.get(), pool);
  }
  metrics_.inflight->Add(-1);
  const double service_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start)
          .count();
  queue_->OnJobFinished(service_ms);
  if (response.status == "completed") {
    metrics_.completed->Add(1);
    if (queue_wait_us >= 0) {
      response.queue_wait_ms = MicrosToMs(queue_wait_us);
    } else {
      response.queue_wait_ms = 0.0;
    }
  } else if (response.status == "cancelled") {
    metrics_.cancelled->Add(1);
  } else if (response.status == "timed-out") {
    metrics_.timed_out->Add(1);
  } else {
    metrics_.failed->Add(1);
  }
  if (!job.request.faults.empty()) metrics_.faulted->Add(1);
  RecordReport(job.request, response, response.tproc_seconds);
  FinishRequest(job.request.id);
  if (job.respond) job.respond(response);
}

Response Server::RunRequest(const Request& request,
                            const exec::CancelToken* cancel,
                            exec::ThreadPool* pool) {
  auto platform = platform::CreatePlatform(request.platform);
  if (!platform.ok()) {
    return ErrorResponse(request.id, platform.status());
  }
  // Parse the fault plan BEFORE acquiring residency: a malformed plan is
  // a usage error, not a run.
  std::optional<faults::FaultPlan> fault_plan;
  if (!request.faults.empty()) {
    auto plan = faults::FaultPlan::Parse(request.faults);
    if (!plan.ok()) return ErrorResponse(request.id, plan.status());
    fault_plan = *plan;
  }
  const auto load_begin = Clock::now();
  auto graph_handle = residency_->Acquire(request.dataset, cancel);
  if (!graph_handle.ok()) {
    Response response = ErrorResponse(request.id, graph_handle.status());
    if (graph_handle.status().code() == StatusCode::kResourceExhausted) {
      response.retry_after_ms = queue_->RetryAfterHintMs();
    }
    return response;
  }
  const std::int64_t load_us = ElapsedMicros(load_begin, Clock::now());
  metrics_.stage_load->Record(load_us);
  const Graph& graph = **graph_handle;
  const AlgorithmParams params = ParamsFromGraph(graph);

  platform::ExecutionEnvironment env;
  env.num_machines = request.num_machines;
  env.threads_per_machine = request.threads_per_machine;
  env.memory_budget_bytes = options_.bench.ScaledMemoryBudget();
  env.overhead_scale =
      1.0 / static_cast<double>(options_.bench.scale_divisor);
  env.host_pool = pool;
  env.cancel = cancel;

  // Aggregate-only exec counters ride the deep-tracing hooks without
  // spans or allocation; purely observational, so outputs stay
  // byte-identical with telemetry on or off.
  exec::CounterSheet sheet;
  if (telemetry::Enabled()) {
    sheet.Enable(/*retain_spans=*/false);
    env.metrics_sheet = &sheet;
  }
  const std::uint64_t steal_base = pool != nullptr ? pool->TotalSteals() : 0;

  const auto exec_begin = Clock::now();
  Result<platform::RunResult> run = [&]() -> Result<platform::RunResult> {
    if (fault_plan.has_value()) {
      // Chaos isolation: the fault injector is process-global, so a
      // faulted request runs EXCLUSIVELY — no clean job shares the
      // process while the injector is armed.
      faults::FaultInjector injector(*fault_plan);
      std::unique_lock<std::shared_mutex> exclusive(exec_mutex_);
      faults::ScopedGlobalInjector scoped(&injector);
      return (*platform)->RunJob(graph, request.algorithm, params, env);
    }
    std::shared_lock<std::shared_mutex> shared(exec_mutex_);
    return (*platform)->RunJob(graph, request.algorithm, params, env);
  }();
  const std::int64_t exec_us = ElapsedMicros(exec_begin, Clock::now());
  metrics_.stage_execute->Record(exec_us);
  if (sheet.enabled()) {
    // One serial fold after the job; job_totals absorbs every row.
    sheet.FlushStep(0, nullptr);
    const exec::CounterSheet::StepTotals& totals = sheet.job_totals();
    metrics_.exec_loops->Add(static_cast<std::int64_t>(totals.loops));
    metrics_.exec_chunks->Add(static_cast<std::int64_t>(totals.chunks));
    metrics_.exec_busy_ns->Add(totals.busy_ns);
    if (pool != nullptr) {
      metrics_.exec_steals->Add(
          static_cast<std::int64_t>(pool->TotalSteals() - steal_base));
    }
  }
  if (!run.ok()) return ErrorResponse(request.id, run.status());

  Response response;
  response.id = request.id;
  response.status = "completed";
  response.load_ms = MicrosToMs(load_us);
  response.exec_ms = MicrosToMs(exec_us);
  const auto serialize_begin = Clock::now();
  response.output_fnv = FnvHex(FormatOutput(graph, run->output));
  metrics_.stage_serialize->Record(
      ElapsedMicros(serialize_begin, Clock::now()));
  response.tproc_seconds =
      options_.bench.Project(run->metrics.processing_sim_seconds);
  response.makespan_seconds =
      options_.bench.Project(run->metrics.makespan_sim_seconds);
  response.supersteps = run->metrics.supersteps;
  if (request.validate) {
    auto reference =
        reference::Run(graph, request.algorithm, params, pool);
    if (!reference.ok()) return ErrorResponse(request.id, reference.status());
    Status valid = ValidateOutput(graph, *reference, run->output);
    if (!valid.ok()) {
      return ErrorResponse(request.id,
                           Status::InvalidArgument("output validation: " +
                                                   valid.ToString()));
    }
    response.validated = true;
  }
  return response;
}

void Server::RecordReport(const Request& request, const Response& response,
                          double tproc_seconds) {
  if (options_.results_jsonl.empty()) return;
  harness::JobReport report;
  report.spec.platform_id = request.platform;
  report.spec.dataset_id = request.dataset;
  report.spec.algorithm = request.algorithm;
  report.spec.num_machines = request.num_machines;
  report.spec.threads_per_machine = request.threads_per_machine;
  if (response.status == "completed") {
    report.outcome = harness::JobOutcome::kCompleted;
    report.tproc_seconds = tproc_seconds;
    report.makespan_seconds = response.makespan_seconds;
    report.supersteps = response.supersteps;
    report.output_validated = response.validated;
  } else if (response.status == "timed-out") {
    report.outcome = harness::JobOutcome::kTimedOut;
    report.failure = response.message;
    report.failure_cause = "wall-timeout";
  } else if (response.status == "crashed") {
    report.outcome = harness::JobOutcome::kCrashed;
    report.failure = response.message;
    report.failure_cause = "worker-abort";
  } else if (response.status == "unsupported") {
    report.outcome = harness::JobOutcome::kUnsupported;
    report.failure = response.message;
    report.failure_cause = "unsupported";
  } else {
    report.outcome = harness::JobOutcome::kFailed;
    report.failure = response.message;
    report.failure_cause =
        response.status == "cancelled"
            ? "cancelled"
            : (response.status == "shed" ? "resource-exhausted"
                                         : "failed");
  }
  // Best-effort: a full results log must not take the daemon down.
  Status appended = harness::AppendRecord(options_.results_jsonl, report);
  (void)appended;
}

void Server::FinishRequest(const std::string& id) {
  std::lock_guard<std::mutex> lock(inflight_mutex_);
  inflight_.erase(id);
}

void Server::AcceptorLoop() {
  for (;;) {
    pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[1].fd = wake_pipe_[0];
    fds[1].events = POLLIN;
    const int ready = ::poll(fds, 2, 250);
    if (drain_requested_.load(std::memory_order_acquire)) return;
    if (ready <= 0) continue;
    if ((fds[1].revents & POLLIN) != 0) return;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    Connection* raw = connection.get();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(connection));
    }
    raw->reader = std::thread([this, raw] { ConnectionLoop(raw); });
  }
}

void Server::ConnectionLoop(Connection* connection) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(connection->fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty()) HandleLine(connection, line);
    }
  }
  // Disconnected client: cancel its in-flight requests so they free
  // their executor slots promptly instead of computing into the void.
  std::vector<std::string> ids;
  {
    std::lock_guard<std::mutex> lock(connection->ids_mutex);
    ids = connection->request_ids;
  }
  for (const std::string& id : ids) {
    Cancel(id, "client disconnected");
  }
}

void Server::HandleLine(Connection* connection, const std::string& line) {
  auto request = ParseRequest(line);
  if (!request.ok()) {
    WriteResponse(connection, ErrorResponse("", request.status()));
    return;
  }
  switch (request->op) {
    case RequestOp::kRun: {
      {
        std::lock_guard<std::mutex> lock(connection->ids_mutex);
        connection->request_ids.push_back(request->id);
      }
      Submit(*request, [this, connection](const Response& response) {
        WriteResponse(connection, response);
      });
      return;
    }
    case RequestOp::kCancel:
      WriteResponse(connection, Cancel(request->id, "client cancel"));
      return;
    case RequestOp::kStats:
      WriteResponse(connection, Stats());
      return;
    case RequestOp::kMetrics:
      WriteResponse(connection, Metrics());
      return;
  }
}

void Server::MetricsSamplerLoop() {
  const auto interval =
      std::chrono::milliseconds(std::max(options_.metrics_interval_ms, 10));
  std::unique_lock<std::mutex> lock(sampler_mutex_);
  for (;;) {
    if (sampler_cv_.wait_for(lock, interval,
                             [this] { return sampler_stop_; })) {
      return;
    }
    lock.unlock();
    // One JSON object per line: a wall timestamp plus the JSON
    // exposition of the global and server registries.
    JsonWriter json;
    json.BeginObject();
    json.Field(
        "ts_ms",
        static_cast<std::int64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::system_clock::now().time_since_epoch())
                .count()));
    json.Key("global");
    json.BeginObject();
    telemetry::Registry::Global().RenderJson(&json);
    json.EndObject();
    json.Key("server");
    json.BeginObject();
    telemetry_registry_.RenderJson(&json);
    json.EndObject();
    json.EndObject();
    std::ofstream out(options_.metrics_jsonl, std::ios::app);
    if (out) out << json.str() << "\n";
    lock.lock();
  }
}

void Server::WriteResponse(Connection* connection,
                           const Response& response) {
  const std::string line = FormatResponse(response) + "\n";
  std::lock_guard<std::mutex> lock(connection->write_mutex);
  if (connection->fd < 0) return;
  // MSG_NOSIGNAL: a disconnected client must not SIGPIPE the daemon.
  std::size_t written = 0;
  while (written < line.size()) {
    const ssize_t n = ::send(connection->fd, line.data() + written,
                             line.size() - written, MSG_NOSIGNAL);
    if (n <= 0) return;  // client gone; the response is dropped
    written += static_cast<std::size_t>(n);
  }
}

}  // namespace ga::serve
