// ga::serve — the overload-robust analytics daemon (docs/SERVING.md).
//
// A long-lived process accepting analytics requests (algorithm + dataset
// + params) from concurrent clients over a local unix stream socket,
// line-delimited JSON both ways (serve/protocol.h). The server composes
// four robustness mechanisms, each testable on its own:
//
//   admission   AdmissionQueue — bounded priority queue, deterministic
//               load shedding with kResourceExhausted + retry-after.
//   deadlines   one exec::CancelToken per request, armed with the client
//               deadline and the disconnect signal, threaded through the
//               platform layer (PR 8's timeout plumbing) — a cancelled
//               or expired job stops within one exec chunk and frees its
//               executor promptly.
//   memory      SnapshotResidency — refcounted graph residency under a
//               byte budget, LRU eviction, serialize-rather-than-OOM.
//   drain       SIGINT/SIGTERM (wired by the CLI) stops admission and
//               finishes or cancels in-flight jobs by policy.
//
// Concurrency model: `workers` executor threads, each owning its own
// ThreadPool (ThreadPool::Execute must not be entered concurrently).
// The default of one executor gives every job the full pool and
// serialises jobs — which is also the strongest memory degradation mode.
// Fault-injected requests (chaos) install the PROCESS-GLOBAL fault
// injector, so they take an exclusive lock over execution while clean
// jobs share it: a faulted request never leaks faults into a neighbour.
#ifndef GRAPHALYTICS_SERVE_SERVER_H_
#define GRAPHALYTICS_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/exec/thread_pool.h"
#include "harness/config.h"
#include "harness/dataset_registry.h"
#include "serve/admission.h"
#include "serve/protocol.h"
#include "serve/residency.h"
#include "telemetry/registry.h"

namespace ga::serve {

struct ServeOptions {
  /// Unix socket path. Empty runs without a listener (in-process Submit
  /// only — tests and the load bench drive the server this way too).
  std::string socket_path;
  /// Bounded admission queue depth.
  int queue_capacity = 8;
  /// Executor threads. Each owns a ThreadPool of bench.host_jobs
  /// threads; 1 (default) serialises jobs.
  int workers = 1;
  /// Residency budget for resident dataset graphs; 0 = unlimited.
  std::int64_t memory_budget_bytes = 0;
  /// Default request deadline in ms when the client sends none; 0 = no
  /// deadline.
  double default_deadline_ms = 0.0;
  /// Scale divisor, seed, host_jobs, data_dir for dataset loading and
  /// job execution.
  harness::BenchmarkConfig bench;
  /// Append-only .jsonl results log (harness::AppendRecord); empty
  /// disables. Safe across concurrent daemons.
  std::string results_jsonl;
  /// Periodic telemetry snapshots, one JSON object per line, appended to
  /// this path every metrics_interval_ms; empty disables the sampler.
  std::string metrics_jsonl;
  int metrics_interval_ms = 1000;
  enum class DrainPolicy {
    kFinish,  // complete queued + running jobs, then exit
    kCancel,  // cancel queued + running jobs, then exit
  };
  DrainPolicy drain = DrainPolicy::kFinish;
};

struct ServeStats {
  QueueStats queue;
  std::int64_t completed = 0;
  std::int64_t failed = 0;
  std::int64_t cancelled = 0;
  std::int64_t timed_out = 0;
  std::int64_t faulted_requests = 0;
  std::int64_t resident_bytes = 0;
  std::int64_t evictions = 0;
  std::int64_t residency_hits = 0;
  std::int64_t residency_misses = 0;
};

class Server {
 public:
  explicit Server(const ServeOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawns the executor threads (and the acceptor, when socket_path is
  /// set). kAddressInUse-style failures surface as kIoError.
  Status Start();

  /// In-process submission: parses nothing, admits `request` and
  /// delivers exactly one response through `respond` — synchronously for
  /// shed/closed/duplicate ids, from an executor thread otherwise.
  /// `respond` must be thread-safe against the caller.
  void Submit(const Request& request,
              std::function<void(const Response&)> respond);

  /// Cancels an in-flight (queued or running) request by id.
  Response Cancel(const std::string& id, const std::string& reason);

  /// Counters snapshot as a response with stats_json filled.
  Response Stats();
  ServeStats StatsSnapshot();

  /// Prometheus text exposition (telemetry::Registry::Global() plus this
  /// server's own registry) as a response with body filled.
  Response Metrics();
  telemetry::Registry& metrics_registry() { return telemetry_registry_; }

  /// Signal-safe drain trigger: flips a flag and pokes the acceptor.
  /// The CLI's signal handler calls this; Run() (or a Drain() caller)
  /// notices and performs the actual drain.
  void RequestDrain();
  bool drain_requested() const {
    return drain_requested_.load(std::memory_order_acquire);
  }

  /// Graceful drain: close admission (new Submits shed with "draining"),
  /// apply the drain policy to queued + running jobs, join every thread.
  /// Idempotent.
  Status Drain();

  /// Blocks until RequestDrain() (typically from the CLI's signal
  /// handler), then Drains. Requires Start() to have succeeded.
  Status ServeUntilDrained();

  SnapshotResidency& residency() { return *residency_; }
  AdmissionQueue& queue() { return *queue_; }
  const ServeOptions& options() const { return options_; }

 private:
  struct Connection {
    int fd = -1;
    std::thread reader;
    std::mutex write_mutex;
    std::vector<std::string> request_ids;  // cancelled on disconnect
    std::mutex ids_mutex;
  };

  void RegisterInstruments();
  void MetricsSamplerLoop();
  /// Lazily registered `ga_serve_admission_total{decision,priority}`
  /// series (priority values are client-chosen, so the label set is
  /// discovered at runtime; the registry caches each series).
  void CountAdmission(const char* decision, int priority);

  void ExecutorLoop(int worker_index);
  void ExecuteJob(PendingJob job, exec::ThreadPool* pool);
  Response RunRequest(const Request& request, const exec::CancelToken* cancel,
                      exec::ThreadPool* pool);
  void AcceptorLoop();
  void ConnectionLoop(Connection* connection);
  void HandleLine(Connection* connection, const std::string& line);
  void WriteResponse(Connection* connection, const Response& response);
  void FinishRequest(const std::string& id);
  void RecordReport(const Request& request, const Response& response,
                    double tproc_seconds);

  ServeOptions options_;
  std::unique_ptr<AdmissionQueue> queue_;
  std::unique_ptr<SnapshotResidency> residency_;

  /// Dataset loading funnels through one registry behind a mutex (the
  /// registry is not thread-safe); residency owns the resident lifetime
  /// by evicting the registry's RAM cache when an entry is dropped.
  harness::DatasetRegistry registry_;
  std::mutex registry_mutex_;

  /// Chaos isolation: clean jobs run under a shared lock, fault-injected
  /// jobs take it exclusively while the process-global injector is
  /// installed.
  std::shared_mutex exec_mutex_;

  /// Dedicated pool for dataset generation/loading. Only the residency
  /// loader uses it, always under registry_mutex_ — never concurrently
  /// with itself, and never shared with a job's execution pool
  /// (ThreadPool::Execute must not be entered concurrently).
  std::unique_ptr<exec::ThreadPool> loader_pool_;
  std::vector<std::unique_ptr<exec::ThreadPool>> worker_pools_;
  std::vector<std::thread> executors_;
  std::thread acceptor_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};

  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;

  std::mutex inflight_mutex_;
  std::map<std::string, std::shared_ptr<exec::CancelToken>> inflight_;

  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> drained_{false};
  bool started_ = false;

  /// Per-server metric registry (tests spin up many servers per process;
  /// a shared global registry would bleed counts between them). The
  /// exposition endpoints render Global() + this. All request-path
  /// counters live here — there is no mutex-guarded stats struct; the
  /// ServeStats snapshot is assembled from these lock-free instruments.
  telemetry::Registry telemetry_registry_;
  struct Instruments {
    telemetry::Counter* completed = nullptr;
    telemetry::Counter* failed = nullptr;
    telemetry::Counter* cancelled = nullptr;
    telemetry::Counter* timed_out = nullptr;
    telemetry::Counter* faulted = nullptr;
    telemetry::Histogram* stage_queue_wait = nullptr;  // microseconds
    telemetry::Histogram* stage_load = nullptr;
    telemetry::Histogram* stage_execute = nullptr;
    telemetry::Histogram* stage_serialize = nullptr;
    telemetry::Gauge* inflight = nullptr;
    telemetry::Gauge* queue_depth = nullptr;
    telemetry::Counter* exec_loops = nullptr;
    telemetry::Counter* exec_chunks = nullptr;
    telemetry::Counter* exec_busy_ns = nullptr;
    telemetry::Counter* exec_steals = nullptr;
  } metrics_;

  std::thread metrics_sampler_;
  std::mutex sampler_mutex_;
  std::condition_variable sampler_cv_;
  bool sampler_stop_ = false;
};

}  // namespace ga::serve

#endif  // GRAPHALYTICS_SERVE_SERVER_H_
