#include "store/chain.h"

#include <cstring>

#include "store/snapshot.h"

namespace ga::store {

Result<std::uint64_t> SnapshotChecksum(const std::string& path) {
  GA_ASSIGN_OR_RETURN(SnapshotInfo info, InspectSnapshot(path));
  return info.header.header_checksum;
}

Status WriteChainedSnapshot(const Graph& child, const std::string& path,
                            std::uint64_t parent_checksum,
                            std::uint64_t epoch,
                            const mutate::DeltaBatch& applied) {
  ChainInfoRecord record;
  record.parent_checksum = parent_checksum;
  record.epoch = epoch;
  record.op_count = static_cast<std::uint64_t>(applied.ops.size());
  // An empty batch still gets a (zero-byte) kDeltaOps section; point it
  // at a real object so the writer never touches a null data pointer.
  static const mutate::EdgeDelta kNoOps{};
  const void* ops_data =
      applied.ops.empty() ? static_cast<const void*>(&kNoOps)
                          : static_cast<const void*>(applied.ops.data());
  const ExtraSection extra[] = {
      {SectionKind::kChainInfo, &record, sizeof(record)},
      {SectionKind::kDeltaOps, ops_data,
       applied.ops.size() * sizeof(mutate::EdgeDelta)},
  };
  return WriteSnapshot(child, path, extra);
}

Result<std::optional<ChainRecord>> ReadChainRecord(
    const std::string& path) {
  auto info_bytes = ReadSectionPayload(path, SectionKind::kChainInfo);
  if (!info_bytes.ok()) {
    if (info_bytes.status().code() == StatusCode::kNotFound) {
      return std::optional<ChainRecord>{};  // unchained root snapshot
    }
    return info_bytes.status();
  }
  if (info_bytes->size() != sizeof(ChainInfoRecord)) {
    return Status::IoError(path + ": chain_info section has " +
                           std::to_string(info_bytes->size()) +
                           " bytes, expected " +
                           std::to_string(sizeof(ChainInfoRecord)));
  }
  ChainInfoRecord record;
  std::memcpy(&record, info_bytes->data(), sizeof(record));

  GA_ASSIGN_OR_RETURN(std::vector<std::byte> ops_bytes,
                      ReadSectionPayload(path, SectionKind::kDeltaOps));
  if (ops_bytes.size() != record.op_count * sizeof(mutate::EdgeDelta)) {
    return Status::IoError(
        path + ": delta_ops section has " +
        std::to_string(ops_bytes.size()) + " bytes, expected " +
        std::to_string(record.op_count * sizeof(mutate::EdgeDelta)) +
        " for " + std::to_string(record.op_count) + " ops");
  }

  std::optional<ChainRecord> out;
  out.emplace();
  out->parent_checksum = record.parent_checksum;
  out->epoch = record.epoch;
  out->deltas.ops.resize(static_cast<std::size_t>(record.op_count));
  if (!ops_bytes.empty()) {
    std::memcpy(out->deltas.ops.data(), ops_bytes.data(),
                ops_bytes.size());
  }
  return out;
}

Result<Graph> ReplayChain(const std::vector<std::string>& paths,
                          exec::ThreadPool* pool) {
  if (paths.empty()) {
    return Status::InvalidArgument("ReplayChain needs at least one path");
  }
  GA_ASSIGN_OR_RETURN(Graph current, ReadSnapshot(paths[0]));
  GA_ASSIGN_OR_RETURN(std::uint64_t current_checksum,
                      SnapshotChecksum(paths[0]));
  for (std::size_t i = 1; i < paths.size(); ++i) {
    GA_ASSIGN_OR_RETURN(std::optional<ChainRecord> record,
                        ReadChainRecord(paths[i]));
    if (!record.has_value()) {
      return Status::FailedPrecondition(
          paths[i] + ": not a chained snapshot (no chain_info section)");
    }
    if (record->parent_checksum != current_checksum) {
      return Status::FailedPrecondition(
          paths[i] + ": parent checksum mismatch (snapshot was chained " +
          "from a different parent than " + paths[i - 1] + ")");
    }
    auto replayed = mutate::ApplyDeltas(current, record->deltas, pool);
    if (!replayed.ok()) {
      return Status::FailedPrecondition(paths[i] +
                                        ": stored delta batch no longer " +
                                        "applies: " +
                                        replayed.status().message());
    }
    GA_ASSIGN_OR_RETURN(Graph stored, ReadSnapshot(paths[i]));
    if (!GraphsBitIdentical(replayed->graph, stored)) {
      return Status::FailedPrecondition(
          paths[i] + ": replaying the stored deltas onto " + paths[i - 1] +
          " does not reproduce the stored child bit-for-bit");
    }
    current = std::move(stored);
    GA_ASSIGN_OR_RETURN(current_checksum, SnapshotChecksum(paths[i]));
  }
  return current;
}

}  // namespace ga::store
