// Versioned snapshot chains: `.gab` files that record their provenance.
//
// A chained snapshot is an ordinary snapshot (fully self-contained — any
// reader can load it without its ancestors) carrying two extra sections:
//
//   kChainInfo  a ChainInfoRecord naming the PARENT snapshot by its
//               header checksum, the epoch number, and the op count;
//   kDeltaOps   the raw mutate::EdgeDelta batch that produced this child
//               from that parent.
//
// The parent checksum links snapshots into a hash chain: the header
// checksum covers the section table, the table covers every payload, so
// two snapshots with equal checksums hold byte-equal content — including
// their own chain sections, which transitively pins the whole ancestry.
// ReplayChain exploits the redundancy as an end-to-end oracle: it walks
// root -> head re-applying each stored delta batch and demands the result
// be bit-identical to the stored child at every link.
#ifndef GRAPHALYTICS_STORE_CHAIN_H_
#define GRAPHALYTICS_STORE_CHAIN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/graph.h"
#include "core/status.h"
#include "mutate/delta.h"

namespace ga::store {

/// Wire format of the kChainInfo section.
struct ChainInfoRecord {
  std::uint64_t parent_checksum = 0;  // parent's header_checksum
  std::uint64_t epoch = 0;            // 1-based link position
  std::uint64_t op_count = 0;         // EdgeDelta records in kDeltaOps
  std::uint64_t reserved = 0;         // zero on the wire
};
static_assert(sizeof(ChainInfoRecord) == 32,
              "ChainInfoRecord is a wire format");

/// A decoded chain link: who the parent was, plus the batch to replay.
struct ChainRecord {
  std::uint64_t parent_checksum = 0;
  std::uint64_t epoch = 0;
  mutate::DeltaBatch deltas;
};

/// A snapshot's identity for chaining purposes: its header checksum
/// (which covers the section table, whose entries carry the payload
/// checksums — equal checksum implies byte-equal content). O(header).
Result<std::uint64_t> SnapshotChecksum(const std::string& path);

/// Writes `child` at `path` with chain provenance attached: parent
/// checksum, 1-based epoch number, and the raw delta batch that produced
/// it. Atomic like WriteSnapshot.
Status WriteChainedSnapshot(const Graph& child, const std::string& path,
                            std::uint64_t parent_checksum,
                            std::uint64_t epoch,
                            const mutate::DeltaBatch& applied);

/// Decodes a snapshot's chain link. nullopt for an unchained (root)
/// snapshot; IoError for files whose chain sections are malformed,
/// truncated or checksum-corrupt.
Result<std::optional<ChainRecord>> ReadChainRecord(const std::string& path);

/// Verifies and replays a chain. `paths[0]` is the root (chained or
/// not); every later snapshot must name its predecessor's checksum as
/// parent (FailedPrecondition otherwise). Each link's stored batch is
/// re-applied and the result compared bit-for-bit against the stored
/// child graph — any divergence is a FailedPrecondition naming the link.
/// Returns the head (last) graph, loaded with full verification.
Result<Graph> ReplayChain(const std::vector<std::string>& paths,
                          exec::ThreadPool* pool = nullptr);

}  // namespace ga::store

#endif  // GRAPHALYTICS_STORE_CHAIN_H_
