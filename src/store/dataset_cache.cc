#include "store/dataset_cache.h"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "store/snapshot.h"

namespace ga::store {

std::string CacheKeyString(const CacheKey& key) {
  return key.generator + "|" + key.dataset_id + "|" + key.params +
         "|divisor=" + std::to_string(key.scale_divisor) +
         "|gab=" + std::to_string(kSnapshotVersion);
}

std::uint64_t CacheKeyHash(const CacheKey& key) {
  const std::string canonical = CacheKeyString(key);
  return Fnv1a64(canonical.data(), canonical.size());
}

DatasetCache::DatasetCache(std::string root_dir)
    : root_(std::move(root_dir)) {}

std::string DatasetCache::PathFor(const CacheKey& key) const {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(CacheKeyHash(key)));
  return root_ + "/" + key.dataset_id + "-" + hex + ".gab";
}

bool DatasetCache::Contains(const CacheKey& key) const {
  std::error_code ec;
  return std::filesystem::exists(PathFor(key), ec);
}

Result<Graph> DatasetCache::Load(const CacheKey& key) const {
  const std::string path = PathFor(key);
  auto snapshot = ReadSnapshot(path);
  if (!snapshot.ok()) {
    // One open attempt, classified after the fact: an absent file is the
    // ordinary miss (NotFound); anything else (corrupt, truncated,
    // unreadable) keeps its IoError so callers can tell the difference.
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) {
      return Status::NotFound("no cached snapshot at " + path);
    }
  }
  return snapshot;
}

Status DatasetCache::Store(const Graph& graph, const CacheKey& key) {
  std::error_code ec;
  std::filesystem::create_directories(root_, ec);
  if (ec) {
    return Status::IoError("cannot create cache directory " + root_ + ": " +
                           ec.message());
  }
  return WriteSnapshot(graph, PathFor(key));
}

Status DatasetCache::Remove(const CacheKey& key) {
  std::error_code ec;
  std::filesystem::remove(PathFor(key), ec);
  if (ec) {
    return Status::IoError("cannot remove " + PathFor(key) + ": " +
                           ec.message());
  }
  return Status::Ok();
}

}  // namespace ga::store
