// Persistent content-addressed dataset cache.
//
// Generated benchmark datasets are expensive (the 687-job paper preset
// regenerates every graph each run); this cache stores each generated
// instance once as a `.gab` snapshot keyed by everything that determines
// its content: generator id, dataset id, canonical parameter string,
// scale divisor and the snapshot format version. The key hashes into the
// file name, so any parameter change — a new seed, a different divisor, a
// format bump — addresses a different file and stale snapshots can never
// be served. Loads are zero-copy mmaps (checksum-verified), so a warm
// cache turns dataset acquisition from minutes of generation into a
// page-in.
#ifndef GRAPHALYTICS_STORE_DATASET_CACHE_H_
#define GRAPHALYTICS_STORE_DATASET_CACHE_H_

#include <cstdint>
#include <string>

#include "core/graph.h"
#include "core/status.h"

namespace ga::store {

struct CacheKey {
  std::string generator;   // "realproxy" | "datagen" | "graph500" | ...
  std::string dataset_id;  // registry id, e.g. "R1"
  std::string params;      // canonical "k=v;..." generator parameters
  std::int64_t scale_divisor = 1;
};

/// The canonical key string; includes the snapshot format version so a
/// format bump invalidates every old entry.
std::string CacheKeyString(const CacheKey& key);

/// FNV-1a 64 of CacheKeyString — the content address.
std::uint64_t CacheKeyHash(const CacheKey& key);

class DatasetCache {
 public:
  /// `root_dir` is created on first Store; it may be shared by concurrent
  /// processes (snapshot writes are atomic renames).
  explicit DatasetCache(std::string root_dir);

  const std::string& root() const { return root_; }

  /// `<root>/<dataset_id>-<key hash hex>.gab` — readable names, exact
  /// addressing.
  std::string PathFor(const CacheKey& key) const;

  bool Contains(const CacheKey& key) const;

  /// Zero-copy loads the cached snapshot (checksums verified). NotFound
  /// if absent; IoError if present but unreadable/corrupt — callers
  /// regenerate and overwrite in both cases.
  Result<Graph> Load(const CacheKey& key) const;

  /// Snapshots `graph` under the key (atomic rename; concurrent writers
  /// of the same key race benignly to identical bytes).
  Status Store(const Graph& graph, const CacheKey& key);

  /// Removes the on-disk snapshot. Ok if it did not exist.
  Status Remove(const CacheKey& key);

 private:
  std::string root_;
};

}  // namespace ga::store

#endif  // GRAPHALYTICS_STORE_DATASET_CACHE_H_
