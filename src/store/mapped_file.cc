#include "store/mapped_file.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define GA_STORE_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define GA_STORE_HAS_MMAP 0
#include <cstdio>
#endif

namespace ga::store {

namespace {
void (*g_open_race_hook)(const std::string&) = nullptr;
}  // namespace

void MappedFile::SetOpenRaceTestHook(void (*hook)(const std::string& path)) {
  g_open_race_hook = hook;
}

void MappedFile::Reset() {
  if (data_ == nullptr) return;
#if GA_STORE_HAS_MMAP
  if (mapped_) {
    ::munmap(data_, size_);
  } else {
    std::free(data_);
  }
#else
  std::free(data_);
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

Result<MappedFile> MappedFile::Open(const std::string& path) {
  MappedFile file;
#if GA_STORE_HAS_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("cannot stat " + path + ": " +
                           std::strerror(err));
  }
  file.size_ = static_cast<std::size_t>(st.st_size);
  if (file.size_ == 0) {
    ::close(fd);
    return file;
  }
  if (g_open_race_hook != nullptr) g_open_race_hook(path);
  void* mapping =
      ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
  if (mapping == MAP_FAILED) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("cannot mmap " + path + ": " +
                           std::strerror(err));
  }
  // Fail closed on the stat→mmap truncation race: mmap happily maps past
  // EOF, but touching those pages raises SIGBUS. Re-check the size on the
  // descriptor we actually mapped (not the path, which may have been
  // atomically replaced — the mapping pins the old inode, which is safe).
  struct stat st_after;
  const int restat = ::fstat(fd, &st_after);
  ::close(fd);
  if (restat != 0 ||
      static_cast<std::size_t>(st_after.st_size) < file.size_) {
    ::munmap(mapping, file.size_);
    file.size_ = 0;
    return Status::IoError(
        "file shrank while mapping " + path + " (" +
        std::to_string(st.st_size) + " -> " +
        std::to_string(restat == 0 ? st_after.st_size : -1) +
        " bytes); refusing a mapping that would SIGBUS");
  }
  file.data_ = mapping;
  file.mapped_ = true;
  return file;
#else
  std::FILE* handle = std::fopen(path.c_str(), "rb");
  if (handle == nullptr) return Status::IoError("cannot open " + path);
  std::fseek(handle, 0, SEEK_END);
  const long end = std::ftell(handle);
  if (end < 0) {
    std::fclose(handle);
    return Status::IoError("cannot size " + path);
  }
  std::fseek(handle, 0, SEEK_SET);
  file.size_ = static_cast<std::size_t>(end);
  if (file.size_ > 0) {
    file.data_ = std::malloc(file.size_);
    if (file.data_ == nullptr ||
        std::fread(file.data_, 1, file.size_, handle) != file.size_) {
      std::fclose(handle);
      return Status::IoError("cannot read " + path);
    }
  }
  std::fclose(handle);
  return file;
#endif
}

}  // namespace ga::store
