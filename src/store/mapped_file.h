// Read-only memory-mapped file (RAII).
//
// The zero-copy substrate of ga::store: a snapshot is mapped once and the
// Graph's span views point straight into the mapping. On POSIX this is
// mmap(PROT_READ, MAP_PRIVATE); elsewhere the file is read into a heap
// buffer (same interface, one copy). The mapping is immutable for its
// whole lifetime, so graphs backed by it are safe to share across
// threads.
#ifndef GRAPHALYTICS_STORE_MAPPED_FILE_H_
#define GRAPHALYTICS_STORE_MAPPED_FILE_H_

#include <cstddef>
#include <string>
#include <utility>

#include "core/status.h"

namespace ga::store {

class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile() { Reset(); }

  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept {
    if (this != &other) {
      Reset();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      mapped_ = std::exchange(other.mapped_, false);
    }
    return *this;
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only. Empty files yield a valid zero-size mapping.
  ///
  /// Fails closed against the stat→mmap truncation race: after mapping,
  /// the still-open descriptor is fstat'ed again, and a file that shrank
  /// in the window is rejected with kIoError instead of handing out a
  /// mapping whose tail pages would SIGBUS on first read. (Writers in
  /// this repo never truncate in place — ga::store replaces files by
  /// atomic tmp+rename — but the reader must not trust that.)
  static Result<MappedFile> Open(const std::string& path);

  /// Test hook: invoked between the initial fstat and the mmap of Open
  /// (the truncation-race window). Null by default; the regression test
  /// installs a callback that truncates the file under the reader.
  static void SetOpenRaceTestHook(void (*hook)(const std::string& path));

  const std::byte* data() const {
    return static_cast<const std::byte*>(data_);
  }
  std::size_t size() const { return size_; }

 private:
  void Reset();

  void* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;  // mmap-ed (true) vs heap fallback (false)
};

}  // namespace ga::store

#endif  // GRAPHALYTICS_STORE_MAPPED_FILE_H_
